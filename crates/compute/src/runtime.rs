//! Job execution with checkpoint-based failure recovery.
//!
//! The executor drives a linear operator chain over a source, generating
//! watermarks and periodically persisting a consistent snapshot — source
//! positions plus every stateful operator's state — to the object store
//! (the paper's "robust checkpoints" on HDFS, §4.4/§10). Recovery seeks
//! the source back to the snapshot and restores operator state, giving
//! at-least-once end-to-end and exactly-once state semantics.
//!
//! [`run_staged`] is the alternative multi-threaded runtime: one thread
//! per operator connected by *bounded* channels, whose blocking sends are
//! the credit-based backpressure that lets the engine absorb massive input
//! backlogs gracefully (§4.2) — measured against the Storm-like baseline
//! in experiment E6.

use crate::operator::Operator;
use crate::sink::Sink;
use crate::source::Source;
use crate::watermark::WatermarkGenerator;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rtdi_common::fault_point;
use rtdi_common::{Clock, Error, FaultPoint, PipelineTracer, Record, Result, Timestamp};
use rtdi_storage::object::ObjectStore;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A runnable job: source -> operators -> sink.
pub struct Job {
    pub name: String,
    pub source: Box<dyn Source>,
    pub operators: Vec<Box<dyn Operator>>,
    pub sink: Box<dyn Sink>,
    /// Watermark bound; Kappa+ backfills use a larger value (§7).
    pub max_out_of_orderness: i64,
}

impl Job {
    pub fn new(
        name: impl Into<String>,
        source: Box<dyn Source>,
        operators: Vec<Box<dyn Operator>>,
        sink: Box<dyn Sink>,
    ) -> Self {
        Job {
            name: name.into(),
            source,
            operators,
            sink,
            max_out_of_orderness: 0,
        }
    }

    pub fn with_out_of_orderness(mut self, ms: i64) -> Self {
        self.max_out_of_orderness = ms;
        self
    }
}

/// Outcome of a job run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobRunStats {
    pub records_in: u64,
    pub records_out: u64,
    pub checkpoints_taken: u64,
    pub restored_from_checkpoint: Option<u64>,
    /// Peak total operator state (drives memory-bound classification).
    pub peak_state_bytes: usize,
}

/// One persisted checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointData {
    pub checkpoint_id: u64,
    pub source_position: Vec<u64>,
    pub operator_state: Vec<Bytes>,
    pub records_in: u64,
}

impl CheckpointData {
    fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64(self.checkpoint_id);
        buf.put_u64(self.records_in);
        buf.put_u32(self.source_position.len() as u32);
        for p in &self.source_position {
            buf.put_u64(*p);
        }
        buf.put_u32(self.operator_state.len() as u32);
        for s in &self.operator_state {
            buf.put_u32(s.len() as u32);
            buf.put_slice(s);
        }
        buf.freeze()
    }

    fn decode(data: &Bytes) -> Result<Self> {
        let mut buf = data.clone();
        if buf.remaining() < 20 {
            return Err(Error::Corruption("truncated checkpoint".into()));
        }
        let checkpoint_id = buf.get_u64();
        let records_in = buf.get_u64();
        let np = buf.get_u32() as usize;
        let mut source_position = Vec::with_capacity(np);
        for _ in 0..np {
            source_position.push(buf.get_u64());
        }
        let ns = buf.get_u32() as usize;
        let mut operator_state = Vec::with_capacity(ns);
        for _ in 0..ns {
            let len = buf.get_u32() as usize;
            operator_state.push(buf.split_to(len));
        }
        Ok(CheckpointData {
            checkpoint_id,
            source_position,
            operator_state,
            records_in,
        })
    }
}

/// Checkpoint persistence over the object store.
#[derive(Clone)]
pub struct CheckpointStore {
    store: Arc<dyn ObjectStore>,
}

impl CheckpointStore {
    pub fn new(store: Arc<dyn ObjectStore>) -> Self {
        CheckpointStore { store }
    }

    fn key(job: &str, id: u64) -> String {
        format!("checkpoints/{job}/ckpt-{id:010}")
    }

    pub fn persist(&self, job: &str, data: &CheckpointData) -> Result<()> {
        self.store
            .put(&Self::key(job, data.checkpoint_id), data.encode())
    }

    pub fn latest(&self, job: &str) -> Result<Option<CheckpointData>> {
        let keys = self.store.list(&format!("checkpoints/{job}/"))?;
        match keys.last() {
            None => Ok(None),
            Some(k) => Ok(Some(CheckpointData::decode(&self.store.get(k)?)?)),
        }
    }

    pub fn clear(&self, job: &str) -> Result<()> {
        for k in self.store.list(&format!("checkpoints/{job}/"))? {
            self.store.delete(&k)?;
        }
        Ok(())
    }
}

/// Freshness tracing for a job run: each record read from the source is
/// measured against its last traced hop (the broker append) and restamped,
/// so the `"compute"` stage captures stream->compute read lag.
#[derive(Clone)]
pub struct TraceHook {
    pub tracer: PipelineTracer,
    /// Pipeline name the dwells are recorded under (usually the source
    /// topic).
    pub pipeline: String,
    pub clock: Arc<dyn Clock>,
}

/// Executor knobs.
#[derive(Clone)]
pub struct ExecutorConfig {
    pub batch_size: usize,
    /// Checkpoint every N input records (0 = no checkpoints).
    pub checkpoint_interval: u64,
    pub checkpoint_store: Option<CheckpointStore>,
    /// Optional freshness tracing of every record entering the chain.
    pub trace: Option<TraceHook>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            batch_size: 512,
            checkpoint_interval: 0,
            checkpoint_store: None,
            trace: None,
        }
    }
}

/// Single-threaded job executor with checkpointing.
pub struct Executor {
    config: ExecutorConfig,
}

impl Executor {
    pub fn new(config: ExecutorConfig) -> Self {
        Executor { config }
    }

    /// Run a bounded job to completion (or an unbounded one until `stop`
    /// is raised and the source momentarily idles).
    pub fn run(&self, job: &mut Job) -> Result<JobRunStats> {
        self.run_with_stop(job, &AtomicBool::new(false))
    }

    pub fn run_with_stop(&self, job: &mut Job, stop: &AtomicBool) -> Result<JobRunStats> {
        let mut stats = JobRunStats::default();
        let mut wm_gen = WatermarkGenerator::new(job.max_out_of_orderness);
        let mut next_checkpoint_id = 1;

        // recovery
        if let Some(cs) = &self.config.checkpoint_store {
            if let Some(ckpt) = cs.latest(&job.name)? {
                job.source.seek(&ckpt.source_position)?;
                for (op, state) in job.operators.iter_mut().zip(&ckpt.operator_state) {
                    if !state.is_empty() {
                        op.restore(state.clone())?;
                    }
                }
                stats.records_in = ckpt.records_in;
                stats.restored_from_checkpoint = Some(ckpt.checkpoint_id);
                next_checkpoint_id = ckpt.checkpoint_id + 1;
            }
        }

        let mut since_checkpoint = 0u64;
        loop {
            let batch = job.source.poll_batch(self.config.batch_size)?;
            if batch.is_empty() {
                if job.source.is_exhausted() || stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
            for mut record in batch {
                wm_gen.observe(record.timestamp);
                stats.records_in += 1;
                since_checkpoint += 1;
                if let Some(hook) = &self.config.trace {
                    // event-time lag of the operator chain's input, per
                    // record: dwell since the broker appended it
                    hook.tracer.observe_hop(
                        &hook.pipeline,
                        "compute",
                        &mut record,
                        hook.clock.now(),
                    );
                }
                stats.records_out += push_chain(&mut job.operators, record, job.sink.as_mut())?;
            }
            let out = cascade_watermark(&mut job.operators, wm_gen.current(), job.sink.as_mut())?;
            stats.records_out += out;
            let state: usize = job.operators.iter().map(|o| o.memory_bytes()).sum();
            stats.peak_state_bytes = stats.peak_state_bytes.max(state);

            if self.config.checkpoint_interval > 0
                && since_checkpoint >= self.config.checkpoint_interval
            {
                if let Some(cs) = &self.config.checkpoint_store {
                    let data = CheckpointData {
                        checkpoint_id: next_checkpoint_id,
                        source_position: job.source.position(),
                        operator_state: job.operators.iter().map(|o| o.snapshot()).collect(),
                        records_in: stats.records_in,
                    };
                    cs.persist(&job.name, &data)?;
                    next_checkpoint_id += 1;
                    stats.checkpoints_taken += 1;
                }
                since_checkpoint = 0;
            }
        }

        // end of input: flush every window
        stats.records_out +=
            cascade_watermark(&mut job.operators, Timestamp::MAX, job.sink.as_mut())?;
        job.sink.flush()?;
        Ok(stats)
    }
}

/// Push one record through the chain; returns records written to the sink.
fn push_chain(
    operators: &mut [Box<dyn Operator>],
    record: Record,
    sink: &mut dyn Sink,
) -> Result<u64> {
    // the chaos crash site for operator-chain processing: replaces the
    // old hard-coded "injected crash" test operator
    fault_point!(FaultPoint::ComputeProcess);
    let mut current = vec![record];
    for op in operators.iter_mut() {
        let mut next = Vec::new();
        for r in current {
            op.process(r, &mut next)?;
        }
        current = next;
        if current.is_empty() {
            return Ok(0);
        }
    }
    let n = current.len() as u64;
    for r in current {
        sink.write(r)?;
    }
    Ok(n)
}

/// Advance the watermark through the chain; emissions from operator i flow
/// through operators i+1.. and into the sink.
fn cascade_watermark(
    operators: &mut [Box<dyn Operator>],
    wm: Timestamp,
    sink: &mut dyn Sink,
) -> Result<u64> {
    let mut written = 0u64;
    for i in 0..operators.len() {
        let mut emitted = Vec::new();
        operators[i].on_watermark(wm, &mut emitted);
        for rec in emitted {
            let (_, rest) = operators.split_at_mut(i + 1);
            written += push_chain(rest, rec, sink)?;
        }
    }
    Ok(written)
}

/// Per-stage throughput numbers from a staged run.
#[derive(Debug, Clone, Default)]
pub struct StagedRunStats {
    pub records_in: u64,
    pub records_out: u64,
    pub elapsed: std::time::Duration,
}

enum StagedMsg {
    Record(Record),
    Watermark(Timestamp),
}

/// Multi-threaded execution: one thread per operator, bounded channels in
/// between. A full channel blocks the upstream sender — credit-based flow
/// control, Flink-style. `channel_capacity` is the per-hop buffer.
pub fn run_staged(mut job: Job, channel_capacity: usize) -> Result<StagedRunStats> {
    let start = std::time::Instant::now();
    let mut stats = StagedRunStats::default();
    let n_ops = job.operators.len();
    let mut senders = Vec::with_capacity(n_ops + 1);
    let mut receivers = Vec::with_capacity(n_ops + 1);
    for _ in 0..=n_ops {
        let (tx, rx) = crossbeam::channel::bounded::<StagedMsg>(channel_capacity.max(1));
        senders.push(tx);
        receivers.push(rx);
    }
    let records_out = Arc::new(std::sync::atomic::AtomicU64::new(0));

    std::thread::scope(|scope| -> Result<()> {
        // operator stages
        let mut rx_iter = receivers.into_iter();
        let first_rx = rx_iter.next().expect("at least one channel");
        let mut prev_rx = first_rx;
        for (i, mut op) in job.operators.drain(..).enumerate() {
            let rx = prev_rx;
            let tx = senders[i + 1].clone();
            prev_rx = rx_iter.next().expect("channel per stage");
            scope.spawn(move || {
                let mut buf = Vec::new();
                while let Ok(msg) = rx.recv() {
                    buf.clear();
                    match msg {
                        StagedMsg::Record(r) => {
                            if op.process(r, &mut buf).is_err() {
                                break;
                            }
                            for out in buf.drain(..) {
                                if tx.send(StagedMsg::Record(out)).is_err() {
                                    return;
                                }
                            }
                        }
                        StagedMsg::Watermark(wm) => {
                            op.on_watermark(wm, &mut buf);
                            for out in buf.drain(..) {
                                if tx.send(StagedMsg::Record(out)).is_err() {
                                    return;
                                }
                            }
                            if tx.send(StagedMsg::Watermark(wm)).is_err() {
                                return;
                            }
                        }
                    }
                }
            });
        }
        // sink stage
        let sink_rx = prev_rx;
        let out_counter = records_out.clone();
        let mut sink = job.sink;
        scope.spawn(move || {
            while let Ok(msg) = sink_rx.recv() {
                if let StagedMsg::Record(r) = msg {
                    if sink.write(r).is_err() {
                        return;
                    }
                    out_counter.fetch_add(1, Ordering::Relaxed);
                }
            }
            let _ = sink.flush();
        });

        // source pump on this thread
        let tx0 = senders.remove(0);
        drop(senders); // stages own their senders via clone
        let mut wm_gen = WatermarkGenerator::new(job.max_out_of_orderness);
        loop {
            let batch = job.source.poll_batch(512)?;
            if batch.is_empty() {
                if job.source.is_exhausted() {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
            for rec in batch {
                wm_gen.observe(rec.timestamp);
                stats.records_in += 1;
                // a channel-hop fault surfaces exactly like a dead stage
                fault_point!(FaultPoint::ComputeChannel);
                tx0.send(StagedMsg::Record(rec))
                    .map_err(|_| Error::Internal("stage died".into()))?;
            }
            tx0.send(StagedMsg::Watermark(wm_gen.current()))
                .map_err(|_| Error::Internal("stage died".into()))?;
        }
        tx0.send(StagedMsg::Watermark(Timestamp::MAX))
            .map_err(|_| Error::Internal("stage died".into()))?;
        drop(tx0);
        Ok(())
    })?;

    stats.records_out = records_out.load(Ordering::Relaxed);
    stats.elapsed = start.elapsed();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFn;
    use crate::operator::{FilterOp, MapOp, WindowAggregateOp};
    use crate::sink::CollectSink;
    use crate::source::VecSource;
    use crate::window::WindowAssigner;
    use rtdi_common::Row;
    use rtdi_storage::object::InMemoryStore;

    fn trip_rows(n: usize) -> Vec<(Timestamp, Row)> {
        (0..n)
            .map(|i| {
                (
                    (i as i64) * 100,
                    Row::new()
                        .with("city", if i % 2 == 0 { "sf" } else { "la" })
                        .with("fare", 10.0 + i as f64),
                )
            })
            .collect()
    }

    fn window_count_job(name: &str, rows: Vec<(Timestamp, Row)>, sink: CollectSink) -> Job {
        Job::new(
            name,
            Box::new(VecSource::from_rows(rows)),
            vec![
                Box::new(FilterOp::new("nonneg", |r: &Row| {
                    r.get_double("fare").unwrap_or(0.0) >= 0.0
                })),
                Box::new(WindowAggregateOp::new(
                    "agg",
                    vec!["city".into()],
                    WindowAssigner::tumbling(1000),
                    vec![
                        ("trips".into(), AggFn::Count),
                        ("total".into(), AggFn::Sum("fare".into())),
                    ],
                    0,
                )),
            ],
            Box::new(sink),
        )
    }

    #[test]
    fn bounded_run_emits_all_windows() {
        let sink = CollectSink::new();
        let mut job = window_count_job("j", trip_rows(100), sink.clone());
        let stats = Executor::new(ExecutorConfig::default())
            .run(&mut job)
            .unwrap();
        assert_eq!(stats.records_in, 100);
        let total: i64 = sink
            .rows()
            .iter()
            .map(|r| r.get_int("trips").unwrap())
            .sum();
        assert_eq!(total, 100);
        // 100 records at 100ms spacing = 10s -> 10 windows x 2 cities
        assert_eq!(sink.len(), 20);
        assert!(stats.peak_state_bytes > 0);
    }

    #[test]
    fn chained_map_runs() {
        let sink = CollectSink::new();
        let mut job = Job::new(
            "m",
            Box::new(VecSource::from_rows(trip_rows(10))),
            vec![Box::new(MapOp::new("tag", |r: &Row| {
                let mut out = r.clone();
                out.push("tagged", true);
                out
            }))],
            Box::new(sink.clone()),
        );
        let stats = Executor::new(ExecutorConfig::default())
            .run(&mut job)
            .unwrap();
        assert_eq!(stats.records_out, 10);
        assert!(sink.rows().iter().all(|r| r.get("tagged").is_some()));
    }

    #[test]
    fn checkpoint_and_recover_produces_identical_results() {
        use rtdi_common::chaos::{self, FaultKind, FaultPlan, Trigger};
        let _g = chaos::test_guard();
        chaos::registry().reset(0xC0FFEE);
        let store = Arc::new(InMemoryStore::new());
        let cs = CheckpointStore::new(store);
        let config = ExecutorConfig {
            batch_size: 10,
            checkpoint_interval: 30,
            checkpoint_store: Some(cs.clone()),
            trace: None,
        };

        let agg_op = || {
            Box::new(WindowAggregateOp::new(
                "agg",
                vec!["city".into()],
                WindowAssigner::tumbling(1000),
                vec![
                    ("trips".into(), AggFn::Count),
                    ("total".into(), AggFn::Sum("fare".into())),
                ],
                0,
            ))
        };

        // baseline: uninterrupted run
        let baseline_sink = CollectSink::new();
        let mut baseline = window_count_job("base", trip_rows(100), baseline_sink.clone());
        Executor::new(ExecutorConfig::default())
            .run(&mut baseline)
            .unwrap();

        // crash run: the compute.process fault point hard-fails the chain
        // mid-run (after the checkpoint at 30 records)
        chaos::registry().arm(
            FaultPoint::ComputeProcess,
            FaultPlan::fail(FaultKind::ProcessingFailed, Trigger::Always).with_burst(58, None),
        );
        let crash_sink = CollectSink::new();
        let mut crashing = Job::new(
            "ckpt-job",
            Box::new(VecSource::from_rows(trip_rows(100))),
            vec![agg_op()],
            Box::new(crash_sink.clone()),
        );
        let err = Executor::new(config.clone()).run(&mut crashing);
        assert!(matches!(err, Err(Error::ProcessingFailed(_))));
        chaos::registry().disarm_all();

        // recovery run: fresh job instance restores from the checkpoint and
        // keeps writing into the SAME sink (at-least-once to the sink,
        // exactly-once for state)
        let mut recovered = Job::new(
            "ckpt-job",
            Box::new(VecSource::from_rows(trip_rows(100))),
            vec![agg_op()],
            Box::new(crash_sink.clone()),
        );
        let stats = Executor::new(config).run(&mut recovered).unwrap();
        assert!(stats.restored_from_checkpoint.is_some());

        // after deduplication (window contents are deterministic, so
        // replayed emissions are byte-identical), results match the
        // uninterrupted baseline exactly
        let canon = |mut rows: Vec<Row>| {
            rows.sort_by_key(|r| {
                (
                    r.get_str("city").unwrap().to_string(),
                    r.get_int("window_start").unwrap(),
                )
            });
            rows.dedup();
            rows
        };
        assert_eq!(canon(baseline_sink.rows()), canon(crash_sink.rows()));
    }

    #[test]
    fn checkpoint_store_roundtrip() {
        let cs = CheckpointStore::new(Arc::new(InMemoryStore::new()));
        assert!(cs.latest("j").unwrap().is_none());
        let data = CheckpointData {
            checkpoint_id: 3,
            source_position: vec![10, 20],
            operator_state: vec![Bytes::from_static(b"abc"), Bytes::new()],
            records_in: 30,
        };
        cs.persist("j", &data).unwrap();
        assert_eq!(cs.latest("j").unwrap().unwrap(), data);
        let newer = CheckpointData {
            checkpoint_id: 4,
            ..data.clone()
        };
        cs.persist("j", &newer).unwrap();
        assert_eq!(cs.latest("j").unwrap().unwrap().checkpoint_id, 4);
        cs.clear("j").unwrap();
        assert!(cs.latest("j").unwrap().is_none());
    }

    #[test]
    fn staged_run_matches_single_threaded() {
        let sink = CollectSink::new();
        let job = window_count_job("staged", trip_rows(1000), sink.clone());
        let stats = run_staged(job, 64).unwrap();
        assert_eq!(stats.records_in, 1000);
        let total: i64 = sink
            .rows()
            .iter()
            .map(|r| r.get_int("trips").unwrap())
            .sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn staged_run_surfaces_channel_faults_and_recovers_when_disarmed() {
        use rtdi_common::chaos::{self, FaultKind, FaultPlan, FaultPoint, Trigger};
        let _g = chaos::test_guard();
        chaos::registry().reset(0xC4A7);
        chaos::registry().arm(
            FaultPoint::ComputeChannel,
            FaultPlan::fail(FaultKind::Unavailable, Trigger::Always).with_burst(100, None),
        );
        let sink = CollectSink::new();
        let job = window_count_job("chan-fault", trip_rows(1000), sink.clone());
        // the injected channel-hop fault kills the run like a dead stage
        assert!(matches!(run_staged(job, 64), Err(Error::Unavailable(_))));
        chaos::registry().disarm_all();
        // a fresh run with the fault cleared completes normally
        let sink = CollectSink::new();
        let job = window_count_job("chan-ok", trip_rows(1000), sink.clone());
        assert_eq!(run_staged(job, 64).unwrap().records_in, 1000);
        let total: i64 = sink
            .rows()
            .iter()
            .map(|r| r.get_int("trips").unwrap())
            .sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn staged_run_with_tiny_buffers_still_completes() {
        // capacity-1 channels exercise full backpressure blocking
        let sink = CollectSink::new();
        let job = window_count_job("tiny", trip_rows(200), sink.clone());
        let stats = run_staged(job, 1).unwrap();
        assert_eq!(stats.records_in, 200);
        let total: i64 = sink
            .rows()
            .iter()
            .map(|r| r.get_int("trips").unwrap())
            .sum();
        assert_eq!(total, 200);
    }
}
