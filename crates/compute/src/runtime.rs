//! Job execution with checkpoint-based failure recovery.
//!
//! The executor drives a linear operator chain over a source, generating
//! watermarks and periodically persisting a consistent snapshot — source
//! positions plus every stateful operator's state — to the object store
//! (the paper's "robust checkpoints" on HDFS, §4.4/§10). Recovery seeks
//! the source back to the snapshot and restores operator state, giving
//! at-least-once end-to-end and exactly-once state semantics.
//!
//! [`run_staged_with`] is the multi-threaded runtime: one thread per
//! operator connected by *bounded* channels, whose blocking sends are the
//! credit-based backpressure that lets the engine absorb massive input
//! backlogs gracefully (§4.2) — measured against the Storm-like baseline
//! in experiment E6. Its hot path is micro-batched ([`StagedMsg::Batch`]
//! moves one `Vec<Arc<Record>>` per hop instead of one message per
//! record — Flink's network-buffer batching) and operator-chained
//! (adjacent stateless stages fuse into one thread via
//! [`crate::operator::fuse_stateless`]). Checkpoints use aligned barriers
//! that flow through the chain collecting stage snapshots, so a barrier
//! arriving mid-batch captures exactly the records before it.
//! [`run_staged`] is the per-record, unfused reference configuration.
//!
//! Stages whose operator declares a [`ShardSpec`] run *data-parallel*:
//! the runtime expands them into a router thread (FNV key-hash over 128
//! key groups, plus count-min-sketch driven hot-key salting), N shard
//! threads with per-instance state and watermarks, and a merge thread
//! that reassembles output deterministically (inline emissions by input
//! sequence number, watermark flushes by grouping key) — so parallel
//! output is byte-identical to `parallelism = 1`. Barriers broadcast to
//! every shard and their key-group framed snapshots merge into one
//! parallelism-independent stage snapshot, which is what lets
//! [`RescaleHandle`]-driven restarts redistribute state by key group.

use crate::operator::{key_string, Operator, ShardSpec};
use crate::sink::Sink;
use crate::source::Source;
use crate::watermark::WatermarkGenerator;
use crate::window::{WINDOW_END_COL, WINDOW_START_COL};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rtdi_common::fault_point;
use rtdi_common::{
    Clock, CountMinSketch, Error, FaultPoint, PipelineTracer, Record, Result, Timestamp, Value,
};
use rtdi_storage::keyed::{key_group_of, shard_of_group, KeyedSnapshot};
use rtdi_storage::object::ObjectStore;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A runnable job: source -> operators -> sink.
pub struct Job {
    pub name: String,
    pub source: Box<dyn Source>,
    pub operators: Vec<Box<dyn Operator>>,
    pub sink: Box<dyn Sink>,
    /// Watermark bound; Kappa+ backfills use a larger value (§7).
    pub max_out_of_orderness: i64,
}

impl Job {
    pub fn new(
        name: impl Into<String>,
        source: Box<dyn Source>,
        operators: Vec<Box<dyn Operator>>,
        sink: Box<dyn Sink>,
    ) -> Self {
        Job {
            name: name.into(),
            source,
            operators,
            sink,
            max_out_of_orderness: 0,
        }
    }

    pub fn with_out_of_orderness(mut self, ms: i64) -> Self {
        self.max_out_of_orderness = ms;
        self
    }
}

/// Outcome of a job run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobRunStats {
    pub records_in: u64,
    pub records_out: u64,
    pub checkpoints_taken: u64,
    pub restored_from_checkpoint: Option<u64>,
    /// Peak total operator state (drives memory-bound classification).
    pub peak_state_bytes: usize,
}

/// One persisted checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointData {
    pub checkpoint_id: u64,
    pub source_position: Vec<u64>,
    pub operator_state: Vec<Bytes>,
    pub records_in: u64,
}

impl CheckpointData {
    fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64(self.checkpoint_id);
        buf.put_u64(self.records_in);
        buf.put_u32(self.source_position.len() as u32);
        for p in &self.source_position {
            buf.put_u64(*p);
        }
        buf.put_u32(self.operator_state.len() as u32);
        for s in &self.operator_state {
            buf.put_u32(s.len() as u32);
            buf.put_slice(s);
        }
        buf.freeze()
    }

    fn decode(data: &Bytes) -> Result<Self> {
        let mut buf = data.clone();
        if buf.remaining() < 20 {
            return Err(Error::Corruption("truncated checkpoint".into()));
        }
        let checkpoint_id = buf.get_u64();
        let records_in = buf.get_u64();
        let np = buf.get_u32() as usize;
        if buf.remaining() < np.saturating_mul(8) {
            return Err(Error::Corruption("truncated checkpoint positions".into()));
        }
        let mut source_position = Vec::with_capacity(np);
        for _ in 0..np {
            source_position.push(buf.get_u64());
        }
        if buf.remaining() < 4 {
            return Err(Error::Corruption("truncated checkpoint state count".into()));
        }
        let ns = buf.get_u32() as usize;
        let mut operator_state = Vec::with_capacity(ns.min(1024));
        for _ in 0..ns {
            if buf.remaining() < 4 {
                return Err(Error::Corruption("truncated checkpoint state len".into()));
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(Error::Corruption("truncated checkpoint state".into()));
            }
            operator_state.push(buf.split_to(len));
        }
        Ok(CheckpointData {
            checkpoint_id,
            source_position,
            operator_state,
            records_in,
        })
    }
}

/// Checkpoint persistence over the object store.
///
/// Retains the last [`CheckpointStore::with_retain`] checkpoints per job
/// (pruning older ones on persist) so recovery can fall back to an
/// earlier snapshot when the newest one fails to decode — a single
/// corrupt object must degrade recovery, never defeat it.
#[derive(Clone)]
pub struct CheckpointStore {
    store: Arc<dyn ObjectStore>,
    retain: usize,
}

/// Checkpoints kept per job by default.
pub const DEFAULT_CHECKPOINT_RETENTION: usize = 3;

impl CheckpointStore {
    pub fn new(store: Arc<dyn ObjectStore>) -> Self {
        CheckpointStore {
            store,
            retain: DEFAULT_CHECKPOINT_RETENTION,
        }
    }

    /// Keep the last `n` checkpoints per job (minimum 1).
    pub fn with_retain(mut self, n: usize) -> Self {
        self.retain = n.max(1);
        self
    }

    /// The underlying object store (cross-region mirroring wraps this).
    pub fn object_store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    fn key(job: &str, id: u64) -> String {
        format!("checkpoints/{job}/ckpt-{id:010}")
    }

    pub fn persist(&self, job: &str, data: &CheckpointData) -> Result<()> {
        self.store
            .put(&Self::key(job, data.checkpoint_id), data.encode())?;
        // prune beyond the retention window (keys sort by id)
        let keys = self.store.list(&format!("checkpoints/{job}/"))?;
        if keys.len() > self.retain {
            for k in &keys[..keys.len() - self.retain] {
                self.store.delete(k)?;
            }
        }
        Ok(())
    }

    /// The newest *decodable* checkpoint: a corrupt latest object
    /// (`Error::Corruption`) falls back to the previous retained one
    /// instead of failing recovery outright. Surfaces the corruption
    /// only when every retained checkpoint is damaged.
    pub fn latest(&self, job: &str) -> Result<Option<CheckpointData>> {
        let keys = self.store.list(&format!("checkpoints/{job}/"))?;
        let mut last_corruption = None;
        for k in keys.iter().rev() {
            match CheckpointData::decode(&self.store.get(k)?) {
                Ok(data) => return Ok(Some(data)),
                Err(Error::Corruption(msg)) => last_corruption = Some(msg),
                Err(e) => return Err(e),
            }
        }
        match last_corruption {
            None => Ok(None),
            Some(msg) => Err(Error::Corruption(format!(
                "every retained checkpoint of job '{job}' is corrupt (latest: {msg})"
            ))),
        }
    }

    pub fn clear(&self, job: &str) -> Result<()> {
        for k in self.store.list(&format!("checkpoints/{job}/"))? {
            self.store.delete(&k)?;
        }
        Ok(())
    }
}

/// Freshness tracing for a job run: each record read from the source is
/// measured against its last traced hop (the broker append) and restamped,
/// so the `"compute"` stage captures stream->compute read lag.
#[derive(Clone)]
pub struct TraceHook {
    pub tracer: PipelineTracer,
    /// Pipeline name the dwells are recorded under (usually the source
    /// topic).
    pub pipeline: String,
    pub clock: Arc<dyn Clock>,
}

/// Executor knobs.
#[derive(Clone)]
pub struct ExecutorConfig {
    pub batch_size: usize,
    /// Checkpoint every N input records (0 = no checkpoints).
    pub checkpoint_interval: u64,
    pub checkpoint_store: Option<CheckpointStore>,
    /// Optional freshness tracing of every record entering the chain.
    pub trace: Option<TraceHook>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            batch_size: 512,
            checkpoint_interval: 0,
            checkpoint_store: None,
            trace: None,
        }
    }
}

/// Single-threaded job executor with checkpointing.
pub struct Executor {
    config: ExecutorConfig,
}

impl Executor {
    pub fn new(config: ExecutorConfig) -> Self {
        Executor { config }
    }

    /// Run a bounded job to completion (or an unbounded one until `stop`
    /// is raised and the source momentarily idles).
    pub fn run(&self, job: &mut Job) -> Result<JobRunStats> {
        self.run_with_stop(job, &AtomicBool::new(false))
    }

    pub fn run_with_stop(&self, job: &mut Job, stop: &AtomicBool) -> Result<JobRunStats> {
        let mut stats = JobRunStats::default();
        let mut wm_gen = WatermarkGenerator::new(job.max_out_of_orderness);
        let mut next_checkpoint_id = 1;

        // recovery
        if let Some(cs) = &self.config.checkpoint_store {
            if let Some(ckpt) = cs.latest(&job.name)? {
                job.source.seek(&ckpt.source_position)?;
                for (op, state) in job.operators.iter_mut().zip(&ckpt.operator_state) {
                    if !state.is_empty() {
                        op.restore(state.clone())?;
                    }
                }
                stats.records_in = ckpt.records_in;
                stats.restored_from_checkpoint = Some(ckpt.checkpoint_id);
                next_checkpoint_id = ckpt.checkpoint_id + 1;
            }
        }

        let mut since_checkpoint = 0u64;
        loop {
            let batch = job.source.poll_batch(self.config.batch_size)?;
            if batch.is_empty() {
                if job.source.is_exhausted() || stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
            for mut record in batch {
                wm_gen.observe(record.timestamp);
                stats.records_in += 1;
                since_checkpoint += 1;
                if let Some(hook) = &self.config.trace {
                    // event-time lag of the operator chain's input, per
                    // record: dwell since the broker appended it
                    hook.tracer.observe_hop(
                        &hook.pipeline,
                        "compute",
                        &mut record,
                        hook.clock.now(),
                    );
                }
                stats.records_out += push_chain(&mut job.operators, record, job.sink.as_mut())?;
            }
            let out = cascade_watermark(&mut job.operators, wm_gen.current(), job.sink.as_mut())?;
            stats.records_out += out;
            let state: usize = job.operators.iter().map(|o| o.memory_bytes()).sum();
            stats.peak_state_bytes = stats.peak_state_bytes.max(state);

            if self.config.checkpoint_interval > 0
                && since_checkpoint >= self.config.checkpoint_interval
            {
                if let Some(cs) = &self.config.checkpoint_store {
                    let data = CheckpointData {
                        checkpoint_id: next_checkpoint_id,
                        source_position: job.source.position(),
                        operator_state: job.operators.iter().map(|o| o.snapshot()).collect(),
                        records_in: stats.records_in,
                    };
                    cs.persist(&job.name, &data)?;
                    next_checkpoint_id += 1;
                    stats.checkpoints_taken += 1;
                }
                since_checkpoint = 0;
            }
        }

        // end of input: flush every window
        stats.records_out +=
            cascade_watermark(&mut job.operators, Timestamp::MAX, job.sink.as_mut())?;
        job.sink.flush()?;
        Ok(stats)
    }
}

/// Push one record through the chain; returns records written to the sink.
fn push_chain(
    operators: &mut [Box<dyn Operator>],
    record: Record,
    sink: &mut dyn Sink,
) -> Result<u64> {
    // the chaos crash site for operator-chain processing: replaces the
    // old hard-coded "injected crash" test operator
    fault_point!(FaultPoint::ComputeProcess);
    let mut current = vec![record];
    for op in operators.iter_mut() {
        let mut next = Vec::new();
        for r in current {
            op.process(r, &mut next)?;
        }
        current = next;
        if current.is_empty() {
            return Ok(0);
        }
    }
    let n = current.len() as u64;
    for r in current {
        sink.write(r)?;
    }
    Ok(n)
}

/// Advance the watermark through the chain; emissions from operator i flow
/// through operators i+1.. and into the sink.
fn cascade_watermark(
    operators: &mut [Box<dyn Operator>],
    wm: Timestamp,
    sink: &mut dyn Sink,
) -> Result<u64> {
    let mut written = 0u64;
    for i in 0..operators.len() {
        let mut emitted = Vec::new();
        operators[i].on_watermark(wm, &mut emitted);
        for rec in emitted {
            let (_, rest) = operators.split_at_mut(i + 1);
            written += push_chain(rest, rec, sink)?;
        }
    }
    Ok(written)
}

/// Per-stage counters from a staged run. A fused stage lists every
/// logical operator it executes in `operators` — observability parity
/// with the unchained plan.
#[derive(Debug, Clone, Default)]
pub struct StageStats {
    pub stage: String,
    pub operators: Vec<String>,
    pub records_in: u64,
    pub records_out: u64,
    /// Channel messages carrying records (batches + singles).
    pub batches_in: u64,
    pub late_dropped: u64,
    /// Per-instance counters when the stage ran data-parallel (empty for
    /// serial stages). Skew shows up here: a hot key inflates one shard's
    /// `records_in` and `max_queue_depth` relative to its siblings.
    pub shards: Vec<ShardStats>,
}

/// Counters for one parallel instance of a sharded stage.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    pub instance: usize,
    pub records_in: u64,
    pub records_out: u64,
    /// Deepest this shard's input queue got (a saturation/skew signal).
    pub max_queue_depth: usize,
    /// The shard's own watermark (stage watermark is the min over shards).
    pub watermark: Timestamp,
    pub late_dropped: u64,
}

/// Per-stage throughput numbers from a staged run.
#[derive(Debug, Clone, Default)]
pub struct StagedRunStats {
    pub records_in: u64,
    pub records_out: u64,
    pub checkpoints_taken: u64,
    pub restored_from_checkpoint: Option<u64>,
    /// `Some(id)` when the run stopped deliberately at checkpoint `id`
    /// because a [`RescaleHandle`] requested it; the job can be restarted
    /// from that checkpoint at a different parallelism.
    pub stopped_at_checkpoint: Option<u64>,
    pub stages: Vec<StageStats>,
    pub elapsed: std::time::Duration,
}

/// Cooperative rescale request: the job manager raises the flag, the
/// source pump notices right after it emits a checkpoint barrier and shuts
/// the run down cleanly at that exact cut. All open windows live in the
/// checkpoint; the restarted job (at any parallelism) resumes from it with
/// no loss and no duplication.
#[derive(Clone, Default)]
pub struct RescaleHandle {
    flag: Arc<AtomicBool>,
}

impl RescaleHandle {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ask the running job to stop at its next checkpoint boundary.
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    pub fn is_requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Lower the flag (done by the supervisor before restarting).
    pub fn clear(&self) {
        self.flag.store(false, Ordering::SeqCst);
    }
}

/// An aligned checkpoint barrier flowing down the chain. Each stage
/// appends its snapshot when the barrier passes — by the time it reaches
/// the sink it holds a consistent cut of exactly the records before it.
struct BarrierState {
    id: u64,
    source_position: Vec<u64>,
    records_in: u64,
    snapshots: Vec<Bytes>,
}

enum StagedMsg {
    /// Per-record protocol (batch_size = 1): one send per record.
    Record(Arc<Record>),
    /// Micro-batched protocol: one send per batch.
    Batch(Vec<Arc<Record>>),
    Watermark(Timestamp),
    Barrier(Box<BarrierState>),
}

/// Knobs for the staged runtime.
#[derive(Clone, Default)]
pub struct StagedConfig {
    /// Per-hop channel buffer (in messages).
    pub channel_capacity: usize,
    /// Records per channel hop. 1 selects the per-record reference
    /// protocol; larger values amortize one send + one wakeup across the
    /// whole batch. Watermarks/barriers flush any partial batch first, so
    /// ordering semantics are identical at every size.
    pub batch_size: usize,
    /// Run the operator-chaining pass ([`crate::operator::fuse_stateless`])
    /// before spawning stages.
    pub fuse_operators: bool,
    /// Checkpoint every N input records via barrier alignment (0 = off).
    pub checkpoint_interval: u64,
    pub checkpoint_store: Option<CheckpointStore>,
    /// Optional tracer; parallel routers record per-watermark max-shard
    /// queue lag under `"<stage>/max-shard-lag"` so key skew is visible
    /// in `health()`.
    pub trace: Option<TraceHook>,
    /// Optional cooperative stop-at-checkpoint flag for elastic rescale.
    /// Only effective when checkpointing is configured.
    pub rescale: Option<RescaleHandle>,
}

impl StagedConfig {
    /// Batched + fused defaults used by production-style runs.
    pub fn batched(channel_capacity: usize, batch_size: usize) -> Self {
        StagedConfig {
            channel_capacity,
            batch_size,
            fuse_operators: true,
            checkpoint_interval: 0,
            checkpoint_store: None,
            trace: None,
            rescale: None,
        }
    }

    /// The per-record, unfused reference protocol.
    pub fn reference(channel_capacity: usize) -> Self {
        StagedConfig {
            channel_capacity,
            batch_size: 1,
            fuse_operators: false,
            checkpoint_interval: 0,
            checkpoint_store: None,
            trace: None,
            rescale: None,
        }
    }
}

/// Multi-threaded execution with the per-record reference protocol: one
/// thread per operator, bounded channels in between. A full channel blocks
/// the upstream sender — credit-based flow control, Flink-style.
/// `channel_capacity` is the per-hop buffer.
pub fn run_staged(job: Job, channel_capacity: usize) -> Result<StagedRunStats> {
    run_staged_with(job, &StagedConfig::reference(channel_capacity))
}

fn unwrap_or_clone(r: Arc<Record>) -> Record {
    Arc::try_unwrap(r).unwrap_or_else(|a| (*a).clone())
}

/// One entry of the staged execution plan: a serial operator thread, or a
/// sharded stage expanded into router + N shards + merge. Each entry owns
/// exactly one checkpoint slot, so slot counts are independent of
/// parallelism and checkpoints survive rescales.
enum StagePlan {
    Serial(Box<dyn Operator>),
    Parallel {
        shards: Vec<Box<dyn Operator>>,
        spec: ShardSpec,
        name: String,
        operators: Vec<String>,
    },
}

impl StagePlan {
    fn restore(&mut self, state: Bytes) -> Result<()> {
        match self {
            StagePlan::Serial(op) => op.restore(state),
            StagePlan::Parallel { shards, .. } => {
                // every shard gets the whole stage snapshot and keeps only
                // the key groups it owns
                for shard in shards.iter_mut() {
                    shard.restore(state.clone())?;
                }
                Ok(())
            }
        }
    }
}

/// Expand the (possibly fused) operator chain into the execution plan:
/// operators declaring a [`ShardSpec`] become parallel entries, and a
/// salted windowed aggregate contributes its final-combine operator as an
/// extra serial entry right behind the shards.
fn build_stage_plan(ops: Vec<Box<dyn Operator>>) -> Result<Vec<StagePlan>> {
    let mut plan = Vec::with_capacity(ops.len());
    for op in ops {
        let Some(spec) = op.shard_spec() else {
            plan.push(StagePlan::Serial(op));
            continue;
        };
        let n = spec.parallelism.max(1);
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            shards.push(op.make_shard(i, n).ok_or_else(|| {
                Error::Internal(format!(
                    "operator '{}' declared shard_spec but produced no shard",
                    op.name()
                ))
            })?);
        }
        let combiner = op.make_combiner();
        plan.push(StagePlan::Parallel {
            name: format!("{}[x{n}]", op.name()),
            operators: op.operator_names(),
            shards,
            spec,
        });
        if let Some(c) = combiner {
            plan.push(StagePlan::Serial(c));
        }
    }
    Ok(plan)
}

/// Records routed to one shard, tagged with their global input sequence
/// number so the merge can restore input order exactly.
enum ShardMsg {
    Batch(Vec<(u64, Arc<Record>)>),
    Watermark(Timestamp),
    /// Take a state snapshot for barrier `id`.
    Snapshot(u64),
}

/// What shards send the merge thread.
enum MergeMsg {
    /// Inline emissions: `(input seq, emission index within record, rec)`.
    Data(usize, Vec<(u64, u32, Record)>),
    /// Watermark epoch complete on this shard, with its flush emissions
    /// (already in the operator's deterministic per-shard order). Sent
    /// even when empty — it is the epoch-completion signal.
    Flush(usize, Timestamp, Vec<Record>),
    /// This shard's snapshot for barrier `id`.
    Snapshot(usize, u64, Bytes),
}

/// What the router measured; shard errors surface from the shards.
#[derive(Default)]
struct RouterOutcome {
    records_in: u64,
    batches_in: u64,
    max_depth: Vec<usize>,
}

fn flush_buckets(
    buckets: &mut [Vec<(u64, Arc<Record>)>],
    txs: &[crossbeam::channel::Sender<ShardMsg>],
    max_depth: &mut [usize],
) -> bool {
    for (s, bucket) in buckets.iter_mut().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        if txs[s]
            .send(ShardMsg::Batch(std::mem::take(bucket)))
            .is_err()
        {
            return false;
        }
        max_depth[s] = max_depth[s].max(txs[s].len());
    }
    true
}

/// The router thread of a parallel stage: key-hash partitioning over key
/// groups, with count-min-sketch hot-key detection spraying keys above
/// the threshold round-robin across shards (their partial aggregates are
/// recombined by the combine stage). Barriers go to the merge thread
/// first (so it can attach the merged snapshot), then broadcast to every
/// shard; watermarks broadcast to every shard.
fn run_parallel_router(
    rx: crossbeam::channel::Receiver<StagedMsg>,
    shard_txs: Vec<crossbeam::channel::Sender<ShardMsg>>,
    barrier_tx: crossbeam::channel::Sender<Box<BarrierState>>,
    spec: ShardSpec,
    stage: String,
    trace: Option<TraceHook>,
) -> RouterOutcome {
    let n = shard_txs.len();
    let mut out = RouterOutcome {
        max_depth: vec![0; n],
        ..RouterOutcome::default()
    };
    let mut sketch = CountMinSketch::new(4, 1024);
    let mut seq = 0u64;
    let mut buckets: Vec<Vec<(u64, Arc<Record>)>> = (0..n).map(|_| Vec::new()).collect();
    let mut route = |r: Arc<Record>, seq: &mut u64, buckets: &mut Vec<Vec<(u64, Arc<Record>)>>| {
        let h = Value::hash_of_str(&key_string(&r.value, &spec.key_cols));
        let shard = match spec.hot_key_threshold {
            // hot key: salt it across all shards (two-phase aggregation
            // recombines); cold keys keep their stable key-group home
            Some(t) if sketch.observe(h) >= t => (*seq % n as u64) as usize,
            _ => shard_of_group(key_group_of(h), n),
        };
        buckets[shard].push((*seq, r));
        *seq += 1;
    };
    'recv: while let Ok(msg) = rx.recv() {
        match msg {
            StagedMsg::Record(r) => {
                out.records_in += 1;
                out.batches_in += 1;
                route(r, &mut seq, &mut buckets);
                if !flush_buckets(&mut buckets, &shard_txs, &mut out.max_depth) {
                    break 'recv;
                }
            }
            StagedMsg::Batch(batch) => {
                out.records_in += batch.len() as u64;
                out.batches_in += 1;
                for r in batch {
                    route(r, &mut seq, &mut buckets);
                }
                if !flush_buckets(&mut buckets, &shard_txs, &mut out.max_depth) {
                    break 'recv;
                }
            }
            StagedMsg::Watermark(wm) => {
                if let Some(hook) = &trace {
                    // skew signal: spread between the fullest and emptiest
                    // shard queue at this watermark
                    let max = shard_txs.iter().map(|t| t.len()).max().unwrap_or(0);
                    let min = shard_txs.iter().map(|t| t.len()).min().unwrap_or(0);
                    hook.tracer.record_dwell(
                        &hook.pipeline,
                        &format!("{stage}/max-shard-lag"),
                        (max - min) as i64,
                    );
                }
                for t in &shard_txs {
                    if t.send(ShardMsg::Watermark(wm)).is_err() {
                        break 'recv;
                    }
                }
            }
            StagedMsg::Barrier(b) => {
                let id = b.id;
                // merge must receive the barrier before any shard snapshot
                // for it can arrive
                if barrier_tx.send(b).is_err() {
                    break 'recv;
                }
                for t in &shard_txs {
                    if t.send(ShardMsg::Snapshot(id)).is_err() {
                        break 'recv;
                    }
                }
            }
        }
    }
    out
}

/// One shard thread: processes its partition of the keyed stream with its
/// own operator instance, tagging inline emissions with input sequence
/// numbers for the merge. Watermark flushes always produce a `Flush`
/// message (even empty) so the merge can close the epoch.
fn run_parallel_shard(
    index: usize,
    mut op: Box<dyn Operator>,
    rx: crossbeam::channel::Receiver<ShardMsg>,
    tx: crossbeam::channel::Sender<MergeMsg>,
) -> (ShardStats, Option<Error>) {
    let inline = op.emits_inline();
    let mut st = ShardStats {
        instance: index,
        watermark: Timestamp::MIN,
        ..ShardStats::default()
    };
    let mut err = None;
    let mut owned: Vec<Record> = Vec::new();
    let mut buf: Vec<Record> = Vec::new();
    let mut data: Vec<(u64, u32, Record)> = Vec::new();
    'recv: while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(batch) => {
                st.records_in += batch.len() as u64;
                if inline {
                    for (seq, r) in batch {
                        if let Err(e) = op.process(unwrap_or_clone(r), &mut buf) {
                            err = Some(e);
                            break 'recv;
                        }
                        for (sub, rec) in buf.drain(..).enumerate() {
                            data.push((seq, sub as u32, rec));
                        }
                    }
                } else {
                    // stateful fold: emissions only happen on watermarks,
                    // so the batched fast path needs no seq attribution
                    owned.clear();
                    owned.extend(batch.into_iter().map(|(_, r)| unwrap_or_clone(r)));
                    if let Err(e) = op.process_batch(&mut owned, &mut buf) {
                        err = Some(e);
                        break;
                    }
                    debug_assert!(
                        buf.is_empty(),
                        "operator declared emits_inline=false but emitted from process"
                    );
                    buf.clear();
                }
                if !data.is_empty() {
                    st.records_out += data.len() as u64;
                    if tx
                        .send(MergeMsg::Data(index, std::mem::take(&mut data)))
                        .is_err()
                    {
                        break;
                    }
                }
            }
            ShardMsg::Watermark(wm) => {
                op.on_watermark(wm, &mut buf);
                st.watermark = st.watermark.max(wm);
                st.records_out += buf.len() as u64;
                let flushed = std::mem::take(&mut buf);
                if tx.send(MergeMsg::Flush(index, wm, flushed)).is_err() {
                    break;
                }
            }
            ShardMsg::Snapshot(id) => {
                if tx
                    .send(MergeMsg::Snapshot(index, id, op.snapshot()))
                    .is_err()
                {
                    break;
                }
            }
        }
    }
    st.late_dropped = op.late_dropped();
    (st, err)
}

/// Deterministic downstream order of watermark-flush emissions: grouping
/// key first, then window bounds — exactly the `BTreeMap` emission order
/// of the serial windowed operators, reconstructed across shards.
fn flush_sort_key(r: &Record, key_cols: &[String]) -> (String, i64, i64) {
    (
        key_string(&r.value, key_cols),
        r.value.get_int(WINDOW_START_COL).unwrap_or(r.timestamp),
        r.value.get_int(WINDOW_END_COL).unwrap_or(0),
    )
}

fn send_merge_out(
    tx: &crossbeam::channel::Sender<StagedMsg>,
    recs: Vec<Record>,
    batch_size: usize,
    records_out: &mut u64,
) -> bool {
    if recs.is_empty() {
        return true;
    }
    *records_out += recs.len() as u64;
    if batch_size > 1 {
        tx.send(StagedMsg::Batch(recs.into_iter().map(Arc::new).collect()))
            .is_ok()
    } else {
        for r in recs {
            if tx.send(StagedMsg::Record(Arc::new(r))).is_err() {
                return false;
            }
        }
        true
    }
}

/// The merge thread of a parallel stage: buffers each shard's output per
/// watermark epoch and, once all shards closed the epoch, re-emits inline
/// data in global input order (by sequence number), flush emissions in
/// key order, then the stage watermark (min over shards). Snapshots merge
/// into one key-group framed stage snapshot attached to the barrier.
fn run_parallel_merge(
    n: usize,
    rx: crossbeam::channel::Receiver<MergeMsg>,
    barrier_rx: crossbeam::channel::Receiver<Box<BarrierState>>,
    tx: crossbeam::channel::Sender<StagedMsg>,
    key_cols: Vec<String>,
    batch_size: usize,
) -> (u64, Option<Error>) {
    let mut records_out = 0u64;
    let mut err = None;
    // per shard: data of the open epoch, plus closed-but-unmerged epochs
    let mut cur: Vec<Vec<(u64, u32, Record)>> = (0..n).map(|_| Vec::new()).collect();
    type Epoch = (Timestamp, Vec<(u64, u32, Record)>, Vec<Record>);
    let mut done: Vec<VecDeque<Epoch>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut parts: BTreeMap<u64, Vec<Option<Bytes>>> = BTreeMap::new();
    'recv: while let Ok(msg) = rx.recv() {
        match msg {
            MergeMsg::Data(s, mut v) => cur[s].append(&mut v),
            MergeMsg::Flush(s, wm, flushed) => {
                let data = std::mem::take(&mut cur[s]);
                done[s].push_back((wm, data, flushed));
                while done.iter().all(|q| !q.is_empty()) {
                    let mut epoch_data: Vec<(u64, u32, Record)> = Vec::new();
                    let mut epoch_flush: Vec<Record> = Vec::new();
                    let mut wm_min = Timestamp::MAX;
                    for q in done.iter_mut() {
                        let (w, d, f) = q.pop_front().expect("queue checked non-empty");
                        wm_min = wm_min.min(w);
                        epoch_data.extend(d);
                        epoch_flush.extend(f);
                    }
                    epoch_data.sort_by_key(|(seq, sub, _)| (*seq, *sub));
                    let inline: Vec<Record> = epoch_data.into_iter().map(|(_, _, r)| r).collect();
                    if !send_merge_out(&tx, inline, batch_size, &mut records_out) {
                        break 'recv;
                    }
                    epoch_flush.sort_by_cached_key(|r| flush_sort_key(r, &key_cols));
                    if !send_merge_out(&tx, epoch_flush, batch_size, &mut records_out) {
                        break 'recv;
                    }
                    if tx.send(StagedMsg::Watermark(wm_min)).is_err() {
                        break 'recv;
                    }
                }
            }
            MergeMsg::Snapshot(s, id, bytes) => {
                let entry = parts.entry(id).or_insert_with(|| vec![None; n]);
                entry[s] = Some(bytes);
                if entry.iter().all(Option::is_some) {
                    let ready = parts.remove(&id).expect("entry just inserted");
                    // FIFO per shard means barriers complete in id order,
                    // and the router enqueued this barrier before any of
                    // its snapshot requests — recv cannot block forever
                    let mut b = match barrier_rx.recv() {
                        Ok(b) => b,
                        Err(_) => break,
                    };
                    debug_assert_eq!(b.id, id, "barriers complete in order");
                    let decoded: Result<Vec<KeyedSnapshot>> = ready
                        .into_iter()
                        .map(|p| KeyedSnapshot::decode(p.expect("all parts present")))
                        .collect();
                    match decoded {
                        Ok(shard_snaps) => {
                            b.snapshots.push(KeyedSnapshot::merge(shard_snaps).encode());
                            if tx.send(StagedMsg::Barrier(b)).is_err() {
                                break;
                            }
                        }
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
            }
        }
    }
    (records_out, err)
}

/// One serial operator stage (the classic staged-runtime thread body).
fn run_serial_stage(
    mut op: Box<dyn Operator>,
    rx: crossbeam::channel::Receiver<StagedMsg>,
    tx: crossbeam::channel::Sender<StagedMsg>,
    batch_size: usize,
) -> (StageStats, Option<Error>) {
    let mut st = StageStats {
        stage: op.name().to_string(),
        operators: op.operator_names(),
        ..StageStats::default()
    };
    let mut err = None;
    let mut owned: Vec<Record> = Vec::new();
    let mut buf: Vec<Record> = Vec::new();
    'recv: while let Ok(msg) = rx.recv() {
        match msg {
            StagedMsg::Record(r) => {
                st.records_in += 1;
                st.batches_in += 1;
                if let Err(e) = op.process(unwrap_or_clone(r), &mut buf) {
                    err = Some(e);
                    break;
                }
                for out in buf.drain(..) {
                    st.records_out += 1;
                    if tx.send(StagedMsg::Record(Arc::new(out))).is_err() {
                        break 'recv;
                    }
                }
            }
            StagedMsg::Batch(batch) => {
                st.records_in += batch.len() as u64;
                st.batches_in += 1;
                owned.extend(batch.into_iter().map(unwrap_or_clone));
                if let Err(e) = op.process_batch(&mut owned, &mut buf) {
                    err = Some(e);
                    break;
                }
                owned.clear();
                if !buf.is_empty() {
                    st.records_out += buf.len() as u64;
                    let out = buf.drain(..).map(Arc::new).collect();
                    if tx.send(StagedMsg::Batch(out)).is_err() {
                        break;
                    }
                }
            }
            StagedMsg::Watermark(wm) => {
                op.on_watermark(wm, &mut buf);
                if batch_size > 1 {
                    if !buf.is_empty() {
                        st.records_out += buf.len() as u64;
                        let out = buf.drain(..).map(Arc::new).collect();
                        if tx.send(StagedMsg::Batch(out)).is_err() {
                            break;
                        }
                    }
                } else {
                    for out in buf.drain(..) {
                        st.records_out += 1;
                        if tx.send(StagedMsg::Record(Arc::new(out))).is_err() {
                            break 'recv;
                        }
                    }
                }
                if tx.send(StagedMsg::Watermark(wm)).is_err() {
                    break;
                }
            }
            StagedMsg::Barrier(mut b) => {
                b.snapshots.push(op.snapshot());
                if tx.send(StagedMsg::Barrier(b)).is_err() {
                    break;
                }
            }
        }
    }
    st.late_dropped = op.late_dropped();
    (st, err)
}

/// Multi-threaded execution with micro-batching, operator chaining and
/// aligned checkpoint barriers, per `config`.
pub fn run_staged_with(mut job: Job, config: &StagedConfig) -> Result<StagedRunStats> {
    let start = std::time::Instant::now();
    let mut stats = StagedRunStats::default();
    if config.fuse_operators {
        job.operators = crate::operator::fuse_stateless(std::mem::take(&mut job.operators));
    }

    // expand sharded operators into router+shards+merge entries — after
    // fusion, so shard specs on unfusable stateful ops are still visible
    let mut plan = build_stage_plan(std::mem::take(&mut job.operators))?;

    // recovery — against the plan, so snapshot slots line up with the
    // topology the barriers will capture (one slot per plan entry, stable
    // across parallelism changes)
    let mut next_checkpoint_id = 1u64;
    if let Some(cs) = &config.checkpoint_store {
        if let Some(ckpt) = cs.latest(&job.name)? {
            job.source.seek(&ckpt.source_position)?;
            for (entry, state) in plan.iter_mut().zip(&ckpt.operator_state) {
                if !state.is_empty() {
                    entry.restore(state.clone())?;
                }
            }
            stats.records_in = ckpt.records_in;
            stats.restored_from_checkpoint = Some(ckpt.checkpoint_id);
            next_checkpoint_id = ckpt.checkpoint_id + 1;
        }
    }

    let batch_size = config.batch_size.max(1);
    let checkpointing = config.checkpoint_interval > 0 && config.checkpoint_store.is_some();
    let n_stages = plan.len();
    let mut senders = Vec::with_capacity(n_stages + 1);
    let mut receivers = Vec::with_capacity(n_stages + 1);
    for _ in 0..=n_stages {
        let (tx, rx) = crossbeam::channel::bounded::<StagedMsg>(config.channel_capacity.max(1));
        senders.push(tx);
        receivers.push(rx);
    }
    let records_out = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let checkpoints_taken = Arc::new(std::sync::atomic::AtomicU64::new(0));

    // pair stages with their channels before any thread exists, so a
    // topology mismatch is an error on this thread — never a panicking
    // worker wedging the scope
    if receivers.len() != n_stages + 1 {
        return Err(Error::Internal(format!(
            "staged topology mismatch: {} channels for {n_stages} stages",
            receivers.len()
        )));
    }
    let sink_rx = receivers
        .pop()
        .ok_or_else(|| Error::Internal("staged topology missing sink channel".into()))?;
    let stage_inputs: Vec<(StagePlan, crossbeam::channel::Receiver<StagedMsg>)> =
        plan.drain(..).zip(receivers).collect();

    // handles of one spawned plan entry (lifetime = the thread scope)
    enum Spawned<'s> {
        Serial(std::thread::ScopedJoinHandle<'s, (StageStats, Option<Error>)>),
        Parallel {
            name: String,
            operators: Vec<String>,
            router: std::thread::ScopedJoinHandle<'s, RouterOutcome>,
            shards: Vec<std::thread::ScopedJoinHandle<'s, (ShardStats, Option<Error>)>>,
            merge: std::thread::ScopedJoinHandle<'s, (u64, Option<Error>)>,
        },
    }

    let (pump_res, stage_outcomes, sink_err) = std::thread::scope(|scope| {
        // operator stages
        let mut handles = Vec::with_capacity(n_stages);
        for (i, (entry, rx)) in stage_inputs.into_iter().enumerate() {
            let tx = senders[i + 1].clone();
            match entry {
                StagePlan::Serial(op) => {
                    handles.push(Spawned::Serial(
                        scope.spawn(move || run_serial_stage(op, rx, tx, batch_size)),
                    ));
                }
                StagePlan::Parallel {
                    shards,
                    spec,
                    name,
                    operators,
                } => {
                    let n = shards.len();
                    let cap = config.channel_capacity.max(1);
                    let mut shard_txs = Vec::with_capacity(n);
                    let mut shard_rxs = Vec::with_capacity(n);
                    for _ in 0..n {
                        let (stx, srx) = crossbeam::channel::bounded::<ShardMsg>(cap);
                        shard_txs.push(stx);
                        shard_rxs.push(srx);
                    }
                    let (merge_tx, merge_rx) = crossbeam::channel::bounded::<MergeMsg>(cap.max(n));
                    let (barrier_tx, barrier_rx) =
                        crossbeam::channel::bounded::<Box<BarrierState>>(cap);
                    let key_cols = spec.key_cols.clone();
                    let trace = config.trace.clone();
                    let stage_label = name.clone();
                    let router = scope.spawn(move || {
                        run_parallel_router(rx, shard_txs, barrier_tx, spec, stage_label, trace)
                    });
                    let shard_handles: Vec<_> = shards
                        .into_iter()
                        .zip(shard_rxs)
                        .enumerate()
                        .map(|(idx, (op, srx))| {
                            let mtx = merge_tx.clone();
                            scope.spawn(move || run_parallel_shard(idx, op, srx, mtx))
                        })
                        .collect();
                    drop(merge_tx); // merge ends when every shard exits
                    let merge = scope.spawn(move || {
                        run_parallel_merge(n, merge_rx, barrier_rx, tx, key_cols, batch_size)
                    });
                    handles.push(Spawned::Parallel {
                        name,
                        operators,
                        router,
                        shards: shard_handles,
                        merge,
                    });
                }
            }
        }

        // sink stage
        let out_counter = records_out.clone();
        let ckpt_counter = checkpoints_taken.clone();
        let mut sink = job.sink;
        let job_name = job.name.clone();
        let store = config.checkpoint_store.clone();
        let sink_handle = scope.spawn(move || -> Option<Error> {
            let mut err = None;
            while let Ok(msg) = sink_rx.recv() {
                match msg {
                    StagedMsg::Record(r) => {
                        if let Err(e) = sink.write(unwrap_or_clone(r)) {
                            err = Some(e);
                            break;
                        }
                        out_counter.fetch_add(1, Ordering::Relaxed);
                    }
                    StagedMsg::Batch(batch) => {
                        let n = batch.len() as u64;
                        let owned = batch.into_iter().map(unwrap_or_clone).collect();
                        if let Err(e) = sink.write_batch(owned) {
                            err = Some(e);
                            break;
                        }
                        out_counter.fetch_add(n, Ordering::Relaxed);
                    }
                    StagedMsg::Watermark(_) => {}
                    StagedMsg::Barrier(b) => {
                        if let Some(cs) = &store {
                            let b = *b;
                            let res = sink.flush().and_then(|_| {
                                cs.persist(
                                    &job_name,
                                    &CheckpointData {
                                        checkpoint_id: b.id,
                                        source_position: b.source_position,
                                        operator_state: b.snapshots,
                                        records_in: b.records_in,
                                    },
                                )
                            });
                            if let Err(e) = res {
                                err = Some(e);
                                break;
                            }
                            ckpt_counter.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            if err.is_none() {
                if let Err(e) = sink.flush() {
                    err = Some(e);
                }
            }
            err
        });

        // source pump on this thread
        let tx0 = senders.remove(0);
        drop(senders); // stages own their senders via clone
        let mut wm_gen = WatermarkGenerator::new(job.max_out_of_orderness);
        let mut since_checkpoint = 0u64;
        let mut pending: Vec<Arc<Record>> = Vec::with_capacity(batch_size);
        let source = &mut job.source;
        let interval = config.checkpoint_interval;
        let records_in = &mut stats.records_in;
        let stopped_at = &mut stats.stopped_at_checkpoint;
        let rescale = config.rescale.clone();
        let pump_res = {
            let mut pump = || -> Result<()> {
                let send_err = |_| Error::Internal("stage died".into());
                loop {
                    // cap the poll so a due barrier lands exactly at a poll
                    // boundary: source.position() then describes precisely the
                    // records ahead of the barrier
                    let mut want = 512.max(batch_size);
                    if checkpointing {
                        want = want.min((interval - since_checkpoint).max(1) as usize);
                    }
                    let batch = source.poll_batch_shared(want)?;
                    if batch.is_empty() {
                        if source.is_exhausted() {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    for rec in batch {
                        wm_gen.observe(rec.timestamp);
                        *records_in += 1;
                        since_checkpoint += 1;
                        // a channel-hop fault surfaces exactly like a dead stage
                        fault_point!(FaultPoint::ComputeChannel);
                        if batch_size > 1 {
                            pending.push(rec);
                            if pending.len() >= batch_size {
                                let full =
                                    std::mem::replace(&mut pending, Vec::with_capacity(batch_size));
                                tx0.send(StagedMsg::Batch(full)).map_err(send_err)?;
                            }
                        } else {
                            tx0.send(StagedMsg::Record(rec)).map_err(send_err)?;
                        }
                    }
                    // linger flush: watermarks/barriers never pass records
                    if !pending.is_empty() {
                        let partial =
                            std::mem::replace(&mut pending, Vec::with_capacity(batch_size));
                        tx0.send(StagedMsg::Batch(partial)).map_err(send_err)?;
                    }
                    tx0.send(StagedMsg::Watermark(wm_gen.current()))
                        .map_err(send_err)?;
                    if checkpointing && since_checkpoint >= interval {
                        tx0.send(StagedMsg::Barrier(Box::new(BarrierState {
                            id: next_checkpoint_id,
                            source_position: source.position(),
                            records_in: *records_in,
                            snapshots: Vec::new(),
                        })))
                        .map_err(send_err)?;
                        next_checkpoint_id += 1;
                        since_checkpoint = 0;
                        // cooperative rescale: stop cleanly right at this
                        // barrier — open windows live in the checkpoint,
                        // so the restart (at any parallelism) loses and
                        // duplicates nothing. Skips the final MAX
                        // watermark on purpose.
                        if rescale.as_ref().is_some_and(|h| h.is_requested()) {
                            *stopped_at = Some(next_checkpoint_id - 1);
                            return Ok(());
                        }
                    }
                }
                if !pending.is_empty() {
                    let partial = std::mem::take(&mut pending);
                    tx0.send(StagedMsg::Batch(partial)).map_err(send_err)?;
                }
                tx0.send(StagedMsg::Watermark(Timestamp::MAX))
                    .map_err(send_err)?;
                Ok(())
            };
            pump()
        };
        drop(tx0);

        let stage_outcomes: Vec<(StageStats, Option<Error>)> = handles
            .into_iter()
            .map(|h| match h {
                Spawned::Serial(h) => h.join().unwrap_or_else(|_| {
                    (
                        StageStats::default(),
                        Some(Error::Internal("stage panicked".into())),
                    )
                }),
                Spawned::Parallel {
                    name,
                    operators,
                    router,
                    shards,
                    merge,
                } => {
                    let mut st = StageStats {
                        stage: name,
                        operators,
                        ..StageStats::default()
                    };
                    let mut err: Option<Error> = None;
                    let router_out = match router.join() {
                        Ok(out) => out,
                        Err(_) => {
                            err = Some(Error::Internal("router panicked".into()));
                            RouterOutcome::default()
                        }
                    };
                    st.records_in = router_out.records_in;
                    st.batches_in = router_out.batches_in;
                    for (idx, sh) in shards.into_iter().enumerate() {
                        let (mut sst, serr) = sh.join().unwrap_or_else(|_| {
                            (
                                ShardStats::default(),
                                Some(Error::Internal("shard panicked".into())),
                            )
                        });
                        sst.max_queue_depth = router_out.max_depth.get(idx).copied().unwrap_or(0);
                        st.late_dropped += sst.late_dropped;
                        if err.is_none() {
                            err = serr;
                        }
                        st.shards.push(sst);
                    }
                    let (merged_out, merr) = merge
                        .join()
                        .unwrap_or_else(|_| (0, Some(Error::Internal("merge panicked".into()))));
                    st.records_out = merged_out;
                    if err.is_none() {
                        err = merr;
                    }
                    (st, err)
                }
            })
            .collect();
        let sink_err = sink_handle
            .join()
            .unwrap_or_else(|_| Some(Error::Internal("sink panicked".into())));
        (pump_res, stage_outcomes, sink_err)
    });

    // error precedence: a stage's own failure is the root cause — the
    // pump's "stage died" send error is only its symptom
    let mut stage_stats = Vec::with_capacity(stage_outcomes.len());
    let mut first_stage_err = None;
    for (st, err) in stage_outcomes {
        if first_stage_err.is_none() {
            first_stage_err = err;
        }
        stage_stats.push(st);
    }
    if let Some(e) = first_stage_err {
        return Err(e);
    }
    if let Some(e) = sink_err {
        return Err(e);
    }
    pump_res?;

    stats.stages = stage_stats;
    stats.records_out = records_out.load(Ordering::Relaxed);
    stats.checkpoints_taken = checkpoints_taken.load(Ordering::Relaxed);
    stats.elapsed = start.elapsed();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{FilterOp, MapOp, WindowAggregateOp};
    use crate::sink::CollectSink;
    use crate::source::VecSource;
    use crate::window::WindowAssigner;
    use rtdi_common::AggFn;
    use rtdi_common::Row;
    use rtdi_storage::object::InMemoryStore;

    fn trip_rows(n: usize) -> Vec<(Timestamp, Row)> {
        (0..n)
            .map(|i| {
                (
                    (i as i64) * 100,
                    Row::new()
                        .with("city", if i % 2 == 0 { "sf" } else { "la" })
                        .with("fare", 10.0 + i as f64),
                )
            })
            .collect()
    }

    fn window_count_job(name: &str, rows: Vec<(Timestamp, Row)>, sink: CollectSink) -> Job {
        Job::new(
            name,
            Box::new(VecSource::from_rows(rows)),
            vec![
                Box::new(FilterOp::new("nonneg", |r: &Row| {
                    r.get_double("fare").unwrap_or(0.0) >= 0.0
                })),
                Box::new(WindowAggregateOp::new(
                    "agg",
                    vec!["city".into()],
                    WindowAssigner::tumbling(1000),
                    vec![
                        ("trips".into(), AggFn::Count),
                        ("total".into(), AggFn::Sum("fare".into())),
                    ],
                    0,
                )),
            ],
            Box::new(sink),
        )
    }

    #[test]
    fn bounded_run_emits_all_windows() {
        let sink = CollectSink::new();
        let mut job = window_count_job("j", trip_rows(100), sink.clone());
        let stats = Executor::new(ExecutorConfig::default())
            .run(&mut job)
            .unwrap();
        assert_eq!(stats.records_in, 100);
        let total: i64 = sink
            .rows()
            .iter()
            .map(|r| r.get_int("trips").unwrap())
            .sum();
        assert_eq!(total, 100);
        // 100 records at 100ms spacing = 10s -> 10 windows x 2 cities
        assert_eq!(sink.len(), 20);
        assert!(stats.peak_state_bytes > 0);
    }

    #[test]
    fn chained_map_runs() {
        let sink = CollectSink::new();
        let mut job = Job::new(
            "m",
            Box::new(VecSource::from_rows(trip_rows(10))),
            vec![Box::new(MapOp::new("tag", |r: &Row| {
                let mut out = r.clone();
                out.push("tagged", true);
                out
            }))],
            Box::new(sink.clone()),
        );
        let stats = Executor::new(ExecutorConfig::default())
            .run(&mut job)
            .unwrap();
        assert_eq!(stats.records_out, 10);
        assert!(sink.rows().iter().all(|r| r.get("tagged").is_some()));
    }

    #[test]
    fn checkpoint_and_recover_produces_identical_results() {
        use rtdi_common::chaos::{self, FaultKind, FaultPlan, Trigger};
        let _g = chaos::test_guard();
        chaos::registry().reset(0xC0FFEE);
        let store = Arc::new(InMemoryStore::new());
        let cs = CheckpointStore::new(store);
        let config = ExecutorConfig {
            batch_size: 10,
            checkpoint_interval: 30,
            checkpoint_store: Some(cs.clone()),
            trace: None,
        };

        let agg_op = || {
            Box::new(WindowAggregateOp::new(
                "agg",
                vec!["city".into()],
                WindowAssigner::tumbling(1000),
                vec![
                    ("trips".into(), AggFn::Count),
                    ("total".into(), AggFn::Sum("fare".into())),
                ],
                0,
            ))
        };

        // baseline: uninterrupted run
        let baseline_sink = CollectSink::new();
        let mut baseline = window_count_job("base", trip_rows(100), baseline_sink.clone());
        Executor::new(ExecutorConfig::default())
            .run(&mut baseline)
            .unwrap();

        // crash run: the compute.process fault point hard-fails the chain
        // mid-run (after the checkpoint at 30 records)
        chaos::registry().arm(
            FaultPoint::ComputeProcess,
            FaultPlan::fail(FaultKind::ProcessingFailed, Trigger::Always).with_burst(58, None),
        );
        let crash_sink = CollectSink::new();
        let mut crashing = Job::new(
            "ckpt-job",
            Box::new(VecSource::from_rows(trip_rows(100))),
            vec![agg_op()],
            Box::new(crash_sink.clone()),
        );
        let err = Executor::new(config.clone()).run(&mut crashing);
        assert!(matches!(err, Err(Error::ProcessingFailed(_))));
        chaos::registry().disarm_all();

        // recovery run: fresh job instance restores from the checkpoint and
        // keeps writing into the SAME sink (at-least-once to the sink,
        // exactly-once for state)
        let mut recovered = Job::new(
            "ckpt-job",
            Box::new(VecSource::from_rows(trip_rows(100))),
            vec![agg_op()],
            Box::new(crash_sink.clone()),
        );
        let stats = Executor::new(config).run(&mut recovered).unwrap();
        assert!(stats.restored_from_checkpoint.is_some());

        // after deduplication (window contents are deterministic, so
        // replayed emissions are byte-identical), results match the
        // uninterrupted baseline exactly
        let canon = |mut rows: Vec<Row>| {
            rows.sort_by_key(|r| {
                (
                    r.get_str("city").unwrap().to_string(),
                    r.get_int("window_start").unwrap(),
                )
            });
            rows.dedup();
            rows
        };
        assert_eq!(canon(baseline_sink.rows()), canon(crash_sink.rows()));
    }

    #[test]
    fn checkpoint_store_roundtrip() {
        let cs = CheckpointStore::new(Arc::new(InMemoryStore::new()));
        assert!(cs.latest("j").unwrap().is_none());
        let data = CheckpointData {
            checkpoint_id: 3,
            source_position: vec![10, 20],
            operator_state: vec![Bytes::from_static(b"abc"), Bytes::new()],
            records_in: 30,
        };
        cs.persist("j", &data).unwrap();
        assert_eq!(cs.latest("j").unwrap().unwrap(), data);
        let newer = CheckpointData {
            checkpoint_id: 4,
            ..data.clone()
        };
        cs.persist("j", &newer).unwrap();
        assert_eq!(cs.latest("j").unwrap().unwrap().checkpoint_id, 4);
        cs.clear("j").unwrap();
        assert!(cs.latest("j").unwrap().is_none());
    }

    #[test]
    fn checkpoint_store_retains_last_n() {
        let store = Arc::new(InMemoryStore::new());
        let cs = CheckpointStore::new(store.clone()).with_retain(2);
        for id in 1..=5 {
            cs.persist(
                "j",
                &CheckpointData {
                    checkpoint_id: id,
                    source_position: vec![id * 10],
                    operator_state: vec![],
                    records_in: id,
                },
            )
            .unwrap();
        }
        let keys = store.list("checkpoints/j/").unwrap();
        assert_eq!(keys.len(), 2, "older checkpoints pruned: {keys:?}");
        assert_eq!(cs.latest("j").unwrap().unwrap().checkpoint_id, 5);
    }

    #[test]
    fn corrupt_latest_checkpoint_falls_back_to_previous() {
        let store = Arc::new(InMemoryStore::new());
        let cs = CheckpointStore::new(store.clone());
        for id in 1..=3 {
            cs.persist(
                "j",
                &CheckpointData {
                    checkpoint_id: id,
                    source_position: vec![id * 100],
                    operator_state: vec![Bytes::from_static(b"state")],
                    records_in: id,
                },
            )
            .unwrap();
        }
        // damage the newest object: truncate it mid-header
        let keys = store.list("checkpoints/j/").unwrap();
        let newest = keys.last().unwrap().clone();
        let bytes = store.get(&newest).unwrap();
        store.put(&newest, bytes.slice(0..7)).unwrap();
        // recovery degrades to checkpoint 2 instead of failing outright
        let recovered = cs.latest("j").unwrap().unwrap();
        assert_eq!(recovered.checkpoint_id, 2);
        assert_eq!(recovered.source_position, vec![200]);

        // bit-flip damage (bogus element counts) is also contained
        let second = keys[keys.len() - 2].clone();
        let mut raw = store.get(&second).unwrap().to_vec();
        raw[16] = 0xFF; // position count explodes past the buffer
        store.put(&second, bytes::Bytes::from(raw)).unwrap();
        let recovered = cs.latest("j").unwrap().unwrap();
        assert_eq!(recovered.checkpoint_id, 1);

        // every retained checkpoint damaged -> Corruption surfaces
        for k in store.list("checkpoints/j/").unwrap() {
            store.put(&k, Bytes::from_static(b"xx")).unwrap();
        }
        assert!(matches!(cs.latest("j"), Err(Error::Corruption(_))));
    }

    #[test]
    fn staged_run_matches_single_threaded() {
        let sink = CollectSink::new();
        let job = window_count_job("staged", trip_rows(1000), sink.clone());
        let stats = run_staged(job, 64).unwrap();
        assert_eq!(stats.records_in, 1000);
        let total: i64 = sink
            .rows()
            .iter()
            .map(|r| r.get_int("trips").unwrap())
            .sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn staged_run_surfaces_channel_faults_and_recovers_when_disarmed() {
        use rtdi_common::chaos::{self, FaultKind, FaultPlan, FaultPoint, Trigger};
        let _g = chaos::test_guard();
        chaos::registry().reset(0xC4A7);
        chaos::registry().arm(
            FaultPoint::ComputeChannel,
            FaultPlan::fail(FaultKind::Unavailable, Trigger::Always).with_burst(100, None),
        );
        let sink = CollectSink::new();
        let job = window_count_job("chan-fault", trip_rows(1000), sink.clone());
        // the injected channel-hop fault kills the run like a dead stage
        assert!(matches!(run_staged(job, 64), Err(Error::Unavailable(_))));
        chaos::registry().disarm_all();
        // a fresh run with the fault cleared completes normally
        let sink = CollectSink::new();
        let job = window_count_job("chan-ok", trip_rows(1000), sink.clone());
        assert_eq!(run_staged(job, 64).unwrap().records_in, 1000);
        let total: i64 = sink
            .rows()
            .iter()
            .map(|r| r.get_int("trips").unwrap())
            .sum();
        assert_eq!(total, 1000);
    }

    fn four_stage_job(name: &str, rows: Vec<(Timestamp, Row)>, sink: CollectSink) -> Job {
        Job::new(
            name,
            Box::new(VecSource::from_rows(rows)),
            vec![
                Box::new(MapOp::new("tag", |r: &Row| {
                    let mut out = r.clone();
                    out.push("fare2", r.get_double("fare").unwrap_or(0.0) * 2.0);
                    out
                })),
                Box::new(FilterOp::new("nonneg", |r: &Row| {
                    r.get_double("fare").unwrap_or(0.0) >= 0.0
                })),
                Box::new(WindowAggregateOp::new(
                    "agg",
                    vec!["city".into()],
                    WindowAssigner::tumbling(1000),
                    vec![
                        ("trips".into(), AggFn::Count),
                        ("total2".into(), AggFn::Sum("fare2".into())),
                    ],
                    0,
                )),
                Box::new(MapOp::new("post", |r: &Row| {
                    let mut out = r.clone();
                    out.push(
                        "avg2",
                        r.get_double("total2").unwrap_or(0.0)
                            / r.get_int("trips").unwrap_or(1) as f64,
                    );
                    out
                })),
            ],
            Box::new(sink),
        )
    }

    #[test]
    fn staged_batched_fused_matches_reference_protocol() {
        let ref_sink = CollectSink::new();
        let ref_stats =
            run_staged(four_stage_job("ref", trip_rows(1000), ref_sink.clone()), 64).unwrap();
        assert_eq!(ref_stats.stages.len(), 4, "reference runs unchained");
        for batch in [2usize, 64, 256] {
            let sink = CollectSink::new();
            let stats = run_staged_with(
                four_stage_job("fused", trip_rows(1000), sink.clone()),
                &StagedConfig::batched(64, batch),
            )
            .unwrap();
            assert_eq!(stats.records_in, ref_stats.records_in);
            assert_eq!(stats.records_out, ref_stats.records_out);
            assert_eq!(sink.records(), ref_sink.records(), "batch={batch}");
            // chaining: map+filter fused; window and trailing map separate
            assert_eq!(stats.stages.len(), 3);
            assert_eq!(stats.stages[0].stage, "fused[tag->nonneg]");
            assert_eq!(stats.stages[0].operators, vec!["tag", "nonneg"]);
            assert_eq!(stats.stages[1].operators, vec!["agg"]);
            // batching: far fewer channel messages than records
            assert!(
                stats.stages[0].batches_in * batch as u64 >= stats.stages[0].records_in,
                "batches carry up to batch_size records"
            );
            if batch >= 64 {
                assert!(
                    stats.stages[0].batches_in < stats.stages[0].records_in / 8,
                    "hop amortization: {} msgs for {} records",
                    stats.stages[0].batches_in,
                    stats.stages[0].records_in
                );
            }
        }
    }

    #[test]
    fn barrier_mid_batch_checkpoints_exactly_the_records_before_it() {
        use rtdi_common::chaos::{self, FaultKind, FaultPlan, Trigger};
        let _g = chaos::test_guard();
        chaos::registry().reset(0xBA881E);
        let store = Arc::new(InMemoryStore::new());
        let cs = CheckpointStore::new(store);
        // interval 130 is deliberately not a multiple of batch_size 64, so
        // every barrier lands mid-micro-batch (after a partial flush of 2)
        let cfg = StagedConfig {
            channel_capacity: 8,
            batch_size: 64,
            fuse_operators: true,
            checkpoint_interval: 130,
            checkpoint_store: Some(cs.clone()),
            trace: None,
            rescale: None,
        };

        // baseline: uninterrupted run, no checkpoints
        let baseline_sink = CollectSink::new();
        run_staged_with(
            window_count_job("base", trip_rows(1000), baseline_sink.clone()),
            &StagedConfig::batched(8, 64),
        )
        .unwrap();

        // crash run: channel-hop fault fires once at the 701st record
        chaos::registry().arm(
            FaultPoint::ComputeChannel,
            FaultPlan::fail(FaultKind::Unavailable, Trigger::Always).with_burst(700, Some(1)),
        );
        let sink = CollectSink::new();
        let job = window_count_job("mid-batch", trip_rows(1000), sink.clone());
        assert!(matches!(
            run_staged_with(job, &cfg),
            Err(Error::Unavailable(_))
        ));
        // the surviving checkpoint covers exactly the 5 full intervals
        // before the crash — not the records of any in-flight batch
        let ckpt = cs.latest("mid-batch").unwrap().expect("checkpoints taken");
        assert_eq!(ckpt.checkpoint_id, 5);
        assert_eq!(ckpt.records_in, 650);
        assert_eq!(ckpt.source_position, vec![650]);

        // recovery run: restores the mid-stream cut and completes
        let job = window_count_job("mid-batch", trip_rows(1000), sink.clone());
        let stats = run_staged_with(job, &cfg).unwrap();
        assert_eq!(stats.restored_from_checkpoint, Some(5));
        assert_eq!(stats.records_in, 1000);
        assert!(stats.checkpoints_taken >= 2);

        // exactly-once state: deduplicated replayed output matches the
        // uninterrupted baseline byte for byte
        let canon = |mut rows: Vec<Row>| {
            rows.sort_by_key(|r| {
                (
                    r.get_str("city").unwrap().to_string(),
                    r.get_int("window_start").unwrap(),
                )
            });
            rows.dedup();
            rows
        };
        assert_eq!(canon(baseline_sink.rows()), canon(sink.rows()));
    }

    fn parallel_window_job(
        name: &str,
        rows: Vec<(Timestamp, Row)>,
        sink: CollectSink,
        parallelism: usize,
    ) -> Job {
        Job::new(
            name,
            Box::new(VecSource::from_rows(rows)),
            vec![
                Box::new(FilterOp::new("nonneg", |r: &Row| {
                    r.get_double("fare").unwrap_or(0.0) >= 0.0
                })),
                Box::new(
                    WindowAggregateOp::new(
                        "agg",
                        vec!["city".into()],
                        WindowAssigner::tumbling(1000),
                        vec![
                            ("trips".into(), AggFn::Count),
                            ("total".into(), AggFn::Sum("fare".into())),
                        ],
                        0,
                    )
                    .with_parallelism(parallelism),
                ),
            ],
            Box::new(sink),
        )
    }

    #[test]
    fn parallel_stage_output_matches_serial_exactly() {
        let serial_sink = CollectSink::new();
        run_staged_with(
            window_count_job("ser", trip_rows(1000), serial_sink.clone()),
            &StagedConfig::batched(16, 32),
        )
        .unwrap();
        for p in [2usize, 4] {
            let sink = CollectSink::new();
            let stats = run_staged_with(
                parallel_window_job("par", trip_rows(1000), sink.clone(), p),
                &StagedConfig::batched(16, 32),
            )
            .unwrap();
            assert_eq!(sink.records(), serial_sink.records(), "parallelism {p}");
            let stage = stats
                .stages
                .iter()
                .find(|s| s.stage.starts_with("agg[x"))
                .expect("parallel stage present");
            assert_eq!(stage.shards.len(), p);
            assert_eq!(stage.records_in, 1000);
            let sharded_in: u64 = stage.shards.iter().map(|s| s.records_in).sum();
            assert_eq!(sharded_in, 1000, "router partitions every record");
        }
    }

    #[test]
    fn rescale_stop_at_barrier_then_resume_is_exactly_once() {
        let store = Arc::new(InMemoryStore::new());
        let cs = CheckpointStore::new(store);
        let handle = RescaleHandle::new();
        handle.request(); // stop at the very first checkpoint boundary
        let mut cfg = StagedConfig::batched(8, 32);
        cfg.checkpoint_interval = 150;
        cfg.checkpoint_store = Some(cs.clone());
        cfg.rescale = Some(handle.clone());

        let base_sink = CollectSink::new();
        run_staged_with(
            parallel_window_job("base", trip_rows(600), base_sink.clone(), 2),
            &StagedConfig::batched(8, 32),
        )
        .unwrap();

        let sink = CollectSink::new();
        let stats = run_staged_with(
            parallel_window_job("rescale", trip_rows(600), sink.clone(), 2),
            &cfg,
        )
        .unwrap();
        assert_eq!(stats.stopped_at_checkpoint, Some(1));
        assert_eq!(stats.records_in, 150, "stopped exactly at the barrier cut");

        // resume at doubled parallelism into the same sink — key-group
        // frames redistribute, open windows keep accumulating
        cfg.rescale = None;
        let stats2 = run_staged_with(
            parallel_window_job("rescale", trip_rows(600), sink.clone(), 4),
            &cfg,
        )
        .unwrap();
        assert_eq!(stats2.restored_from_checkpoint, Some(1));
        assert_eq!(stats2.records_in, 600);

        // exactly-once: sorted (NOT deduplicated) outputs match — nothing
        // lost across the rescale, nothing emitted twice
        let canon = |mut rows: Vec<Row>| {
            rows.sort_by_key(|r| {
                (
                    r.get_str("city").unwrap().to_string(),
                    r.get_int("window_start").unwrap(),
                )
            });
            rows
        };
        assert_eq!(canon(base_sink.rows()), canon(sink.rows()));
    }

    #[test]
    fn staged_run_with_tiny_buffers_still_completes() {
        // capacity-1 channels exercise full backpressure blocking
        let sink = CollectSink::new();
        let job = window_count_job("tiny", trip_rows(200), sink.clone());
        let stats = run_staged(job, 1).unwrap();
        assert_eq!(stats.records_in, 200);
        let total: i64 = sink
            .rows()
            .iter()
            .map(|r| r.get_int("trips").unwrap())
            .sum();
        assert_eq!(total, 200);
    }
}
