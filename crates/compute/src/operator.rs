//! Dataflow operators.
//!
//! A job is a linear chain of operators; records flow through
//! [`Operator::process`] and event-time progress flows through
//! [`Operator::on_watermark`]. Stateful operators (windowed aggregation,
//! windowed stream-stream join) expose snapshot/restore for the
//! checkpointing runtime — the Flink "state management and checkpointing
//! features for failure recovery" the paper names as the reason it chose
//! Flink (§4.2).
//!
//! The batched runtime hands operators whole record batches via
//! [`Operator::process_batch`]; keyed operators override it to amortize
//! per-record work (grouping-key construction, window assignment) across
//! the batch. [`fuse_stateless`] is the operator-chaining pass: adjacent
//! stateless operators collapse into one [`FusedOp`] stage that executes
//! in a single thread with no channel hop in between — Flink's operator
//! chaining.
//!
//! Keyed stateful operators ([`WindowAggregateOp`], [`DedupOp`]) can also
//! run *data-parallel*: [`Operator::shard_spec`] declares the stage's
//! parallelism and grouping columns, [`Operator::make_shard`] builds the
//! per-instance operators, and their state snapshots use the key-group
//! framed [`KeyedSnapshot`] envelope so a stage checkpoint is independent
//! of the parallelism it was taken at (the rescale unit is the key group,
//! exactly as in Flink). Salted hot-key aggregation adds a second phase:
//! shards emit partial aggregates ([`PARTIAL_COL`]) and a
//! [`PartialCombineOp`] built by [`Operator::make_combiner`] folds them
//! into final rows via [`AggAcc::merge`].

use crate::window::{Window, WindowAssigner, WINDOW_END_COL, WINDOW_START_COL};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rtdi_common::agg::{AggAcc, AggFn};
use rtdi_common::{Error, Record, Result, Row, Timestamp, Value};
use rtdi_storage::archival::{decode_rows, encode_rows};
use rtdi_storage::keyed::{key_group_of, shard_of_group, KeyedSnapshot};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

/// Convenience alias for operator emission buffers.
pub type OperatorOutput = Vec<Record>;

/// Sharding contract of a keyed stateful stage (see
/// [`Operator::shard_spec`]). The runtime's router hashes the grouping
/// key built from `key_cols` to a key group and the key group to one of
/// `parallelism` instances; when `hot_key_threshold` is set, keys whose
/// estimated frequency crosses it are salted round-robin across all
/// instances instead (two-phase pre-aggregation).
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Number of parallel instances (1 is legal for a salted-only stage:
    /// the two-phase topology is kept so checkpoints stay slot-stable
    /// across rescales).
    pub parallelism: usize,
    /// Grouping columns; the router and the deterministic merge both key
    /// off [`key_string`] over these.
    pub key_cols: Vec<String>,
    /// Salting threshold (estimated per-key frequency); `None` disables
    /// hot-key mitigation for this stage.
    pub hot_key_threshold: Option<u64>,
}

/// One stage of a dataflow.
pub trait Operator: Send {
    fn name(&self) -> &str;

    /// Process one record, appending any outputs.
    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()>;

    /// Process a whole batch, draining `batch`. Must be equivalent to
    /// calling [`Operator::process`] on each record in order — the
    /// batched runtime relies on that for byte-identical results vs the
    /// per-record reference protocol. Override to amortize per-record
    /// costs.
    fn process_batch(&mut self, batch: &mut Vec<Record>, out: &mut OperatorOutput) -> Result<()> {
        for record in batch.drain(..) {
            self.process(record, out)?;
        }
        Ok(())
    }

    /// Event time advanced to `wm`; flush anything that became complete.
    fn on_watermark(&mut self, _wm: Timestamp, _out: &mut OperatorOutput) {}

    /// Serialize operator state for a checkpoint.
    fn snapshot(&self) -> Bytes {
        Bytes::new()
    }

    /// Restore from a checkpoint snapshot.
    fn restore(&mut self, _data: Bytes) -> Result<()> {
        Ok(())
    }

    /// Approximate live state size; drives the auto-scaler's
    /// CPU-bound-vs-memory-bound classification (§4.2.1).
    fn memory_bytes(&self) -> usize {
        0
    }

    fn is_stateful(&self) -> bool {
        false
    }

    /// Logical operator names executed by this stage. Fused stages report
    /// every member so per-operator observability survives chaining.
    fn operator_names(&self) -> Vec<String> {
        vec![self.name().to_string()]
    }

    /// Records dropped for arriving behind the watermark (stage total).
    fn late_dropped(&self) -> u64 {
        0
    }

    /// Declare this stage data-parallel: `Some` makes the staged runtime
    /// expand it into a router, `parallelism` shard instances built by
    /// [`Operator::make_shard`], and a deterministic merge. `None` (the
    /// default) keeps the stage serial.
    fn shard_spec(&self) -> Option<ShardSpec> {
        None
    }

    /// Build shard `index` of `of` for a sharded stage. Must return
    /// `Some` whenever [`Operator::shard_spec`] does.
    fn make_shard(&self, _index: usize, _of: usize) -> Option<Box<dyn Operator>> {
        None
    }

    /// The final-combine stage of a salted two-phase aggregation; placed
    /// by the runtime immediately downstream of the merge. `Some` only
    /// when the stage emits partial aggregates.
    fn make_combiner(&self) -> Option<Box<dyn Operator>> {
        None
    }

    /// Whether [`Operator::process`] may emit records. Operators that
    /// only emit from [`Operator::on_watermark`] (windowed aggregation)
    /// return `false`, which lets a shard run the amortized
    /// [`Operator::process_batch`] fold without per-record output
    /// attribution. An operator returning `false` must not emit from
    /// `process`/`process_batch`.
    fn emits_inline(&self) -> bool {
        true
    }
}

/// Stateless 1:1 row transform.
pub struct MapOp {
    name: String,
    f: Box<dyn FnMut(&Row) -> Row + Send>,
}

impl MapOp {
    pub fn new(name: impl Into<String>, f: impl FnMut(&Row) -> Row + Send + 'static) -> Self {
        MapOp {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for MapOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, mut record: Record, out: &mut OperatorOutput) -> Result<()> {
        record.value = (self.f)(&record.value);
        out.push(record);
        Ok(())
    }
}

/// Stateless predicate filter.
pub struct FilterOp {
    name: String,
    pred: Box<dyn FnMut(&Row) -> bool + Send>,
}

impl FilterOp {
    pub fn new(name: impl Into<String>, pred: impl FnMut(&Row) -> bool + Send + 'static) -> Self {
        FilterOp {
            name: name.into(),
            pred: Box::new(pred),
        }
    }
}

impl Operator for FilterOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        if (self.pred)(&record.value) {
            out.push(record);
        }
        Ok(())
    }
}

type FlatMapFn = Box<dyn FnMut(&Record) -> Vec<Record> + Send>;

/// Stateless 1:N transform; may re-key and re-time outputs.
pub struct FlatMapOp {
    name: String,
    f: FlatMapFn,
}

impl FlatMapOp {
    pub fn new(
        name: impl Into<String>,
        f: impl FnMut(&Record) -> Vec<Record> + Send + 'static,
    ) -> Self {
        FlatMapOp {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for FlatMapOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        out.extend((self.f)(&record));
        Ok(())
    }
}

/// Encode a grouping key from rows deterministically. This is the one
/// canonical keying function of the compute layer: operators fold by it,
/// the parallel router hashes it (FNV via [`Value::hash_of_str`]) to pick
/// a key group, and the downstream merge sorts flushed emissions by it to
/// reproduce serial emission order.
pub fn key_string(row: &Row, cols: &[String]) -> String {
    let mut s = String::new();
    for (i, c) in cols.iter().enumerate() {
        if i > 0 {
            s.push('\u{1f}');
        }
        match row.get(c) {
            Some(v) => s.push_str(&v.to_string()),
            None => s.push('\u{0}'),
        }
    }
    s
}

/// Column carrying encoded partial aggregate accumulators between the
/// shard phase and the combine phase of a salted aggregation.
pub const PARTIAL_COL: &str = "__partial";

#[derive(Debug, Clone)]
struct WindowState {
    key_row: Row,
    accs: Vec<AggAcc>,
}

type WindowKey = (String, Timestamp, Timestamp);

/// Build the final output row for a closed (key, window) — shared by the
/// serial aggregation path and [`PartialCombineOp`] so the two produce
/// byte-identical records.
fn finalize_window(
    key_cols: &[String],
    aggs: &[(String, AggFn)],
    st: &WindowState,
    start: Timestamp,
    end: Timestamp,
) -> Record {
    let mut row = st.key_row.clone();
    row.push(WINDOW_START_COL, start);
    row.push(WINDOW_END_COL, end);
    for ((name, _), acc) in aggs.iter().zip(&st.accs) {
        row.push(name.clone(), acc.result());
    }
    let key = key_cols.first().and_then(|c| st.key_row.get(c).cloned());
    let mut rec = Record::new(row, end - 1);
    rec.key = key;
    rec
}

fn encode_window_entry(
    buf: &mut BytesMut,
    key: &str,
    start: Timestamp,
    end: Timestamp,
    st: &WindowState,
) {
    buf.put_u32(key.len() as u32);
    buf.put_slice(key.as_bytes());
    buf.put_i64(start);
    buf.put_i64(end);
    let rows = encode_rows(std::slice::from_ref(&st.key_row));
    buf.put_u32(rows.len() as u32);
    buf.put_slice(&rows);
    buf.put_u32(st.accs.len() as u32);
    for a in &st.accs {
        a.encode(buf);
    }
}

fn decode_window_entry(buf: &mut Bytes) -> Result<(WindowKey, WindowState)> {
    if buf.remaining() < 4 {
        return Err(Error::Corruption("truncated window state entry".into()));
    }
    let klen = buf.get_u32() as usize;
    if buf.remaining() < klen + 16 {
        return Err(Error::Corruption("truncated window state entry".into()));
    }
    let key = String::from_utf8(buf.split_to(klen).to_vec())
        .map_err(|_| Error::Corruption("bad key".into()))?;
    let start = buf.get_i64();
    let end = buf.get_i64();
    if buf.remaining() < 4 {
        return Err(Error::Corruption("truncated window state entry".into()));
    }
    let rlen = buf.get_u32() as usize;
    if buf.remaining() < rlen {
        return Err(Error::Corruption("truncated window state entry".into()));
    }
    let rows = decode_rows(&buf.split_to(rlen))?;
    let key_row = rows.into_iter().next().unwrap_or_default();
    if buf.remaining() < 4 {
        return Err(Error::Corruption("truncated window state entry".into()));
    }
    let na = buf.get_u32() as usize;
    let mut accs = Vec::with_capacity(na.min(64));
    for _ in 0..na {
        accs.push(AggAcc::decode(buf)?);
    }
    Ok(((key, start, end), WindowState { key_row, accs }))
}

/// Snapshot a windowed state map as a key-group framed [`KeyedSnapshot`]:
/// one frame per non-empty key group, entries in map (= emission) order.
fn windowed_snapshot(
    state: &BTreeMap<WindowKey, WindowState>,
    watermark: Timestamp,
    dropped: u64,
) -> Bytes {
    let mut groups: BTreeMap<u32, (u32, BytesMut)> = BTreeMap::new();
    for ((key, start, end), st) in state {
        let g = key_group_of(Value::hash_of_str(key));
        let slot = groups.entry(g).or_default();
        slot.0 += 1;
        encode_window_entry(&mut slot.1, key, *start, *end, st);
    }
    let frames = groups
        .into_iter()
        .map(|(g, (count, body))| {
            let mut f = BytesMut::with_capacity(4 + body.len());
            f.put_u32(count);
            f.put_slice(&body);
            (g, f.freeze())
        })
        .collect();
    KeyedSnapshot {
        watermark,
        dropped,
        frames,
    }
    .encode()
}

/// Restore a windowed state map from a [`KeyedSnapshot`] stage envelope.
/// A shard instance keeps only the key groups it owns; duplicate entries
/// for the same (key, window) — salted partial state from several source
/// shards — fold together via [`AggAcc::merge`]. The stage-wide drop
/// counter is assigned to instance 0 so shard sums stay exact.
fn windowed_restore(
    data: Bytes,
    shard: Option<(usize, usize)>,
) -> Result<(Timestamp, u64, BTreeMap<WindowKey, WindowState>)> {
    let snap = KeyedSnapshot::decode(data)?;
    let mut state: BTreeMap<WindowKey, WindowState> = BTreeMap::new();
    for (group, frame) in snap.frames {
        if let Some((index, of)) = shard {
            if shard_of_group(group, of) != index {
                continue;
            }
        }
        let mut buf = frame;
        if buf.remaining() < 4 {
            return Err(Error::Corruption("truncated key-group frame".into()));
        }
        let count = buf.get_u32();
        for _ in 0..count {
            let (k, st) = decode_window_entry(&mut buf)?;
            match state.entry(k) {
                Entry::Vacant(v) => {
                    v.insert(st);
                }
                Entry::Occupied(mut o) => {
                    for (a, b) in o.get_mut().accs.iter_mut().zip(&st.accs) {
                        a.merge(b);
                    }
                }
            }
        }
    }
    let dropped = match shard {
        Some((index, _)) if index != 0 => 0,
        _ => snap.dropped,
    };
    Ok((snap.watermark, dropped, state))
}

/// Keyed event-time window aggregation.
///
/// Emits one row per (key, window) when the watermark passes
/// `window.end + allowed_lateness`. Output rows carry the key columns,
/// `window_start`, `window_end` and one column per aggregate.
pub struct WindowAggregateOp {
    name: String,
    key_cols: Vec<String>,
    assigner: WindowAssigner,
    aggs: Vec<(String, AggFn)>,
    allowed_lateness: i64,
    /// (key, window_start, window_end) -> state, ordered so that emission
    /// and snapshots are deterministic.
    state: BTreeMap<WindowKey, WindowState>,
    watermark: Timestamp,
    late_dropped: u64,
    parallelism: usize,
    hot_key_threshold: Option<u64>,
    /// Phase one of a salted aggregation: emit encoded partial
    /// accumulators ([`PARTIAL_COL`]) instead of final rows.
    emit_partials: bool,
    /// `(instance, parallelism)` when running as one shard of a sharded
    /// stage; restore then keeps only the owned key groups.
    shard: Option<(usize, usize)>,
}

impl WindowAggregateOp {
    pub fn new(
        name: impl Into<String>,
        key_cols: Vec<String>,
        assigner: WindowAssigner,
        aggs: Vec<(String, AggFn)>,
        allowed_lateness: i64,
    ) -> Self {
        WindowAggregateOp {
            name: name.into(),
            key_cols,
            assigner,
            aggs,
            allowed_lateness: allowed_lateness.max(0),
            state: BTreeMap::new(),
            watermark: Timestamp::MIN,
            late_dropped: 0,
            parallelism: 1,
            hot_key_threshold: None,
            emit_partials: false,
            shard: None,
        }
    }

    /// Run this stage as `n` parallel instances in the staged runtime
    /// (key-group sharded; output stays byte-identical to serial).
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Enable salted two-phase aggregation for keys whose estimated
    /// frequency exceeds `threshold`. Ignored for session windows, whose
    /// cross-record merges need all of a key's state in one instance.
    pub fn with_hot_key_salting(mut self, threshold: u64) -> Self {
        self.hot_key_threshold = Some(threshold.max(1));
        self
    }

    fn salted(&self) -> bool {
        self.hot_key_threshold.is_some() && !self.assigner.is_session()
    }

    /// Records dropped for arriving after `window.end + allowed_lateness`
    /// (the surge pipeline's freshness-over-completeness tradeoff, §5.1).
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    fn fold_into(&mut self, key: String, window: Window, record: &Record) {
        // session windows merge overlapping entries of the same key
        if self.assigner.is_session() {
            let mut merged = window;
            let mut absorbed: Vec<(String, Timestamp, Timestamp)> = Vec::new();
            for (k, st) in self
                .state
                .range((key.clone(), Timestamp::MIN, Timestamp::MIN)..)
            {
                if k.0 != key {
                    break;
                }
                let _ = st;
                // overlap if existing [k.1, k.2) intersects [merged.start, merged.end)
                if k.1 < merged.end && merged.start < k.2 {
                    merged.start = merged.start.min(k.1);
                    merged.end = merged.end.max(k.2);
                    absorbed.push(k.clone());
                }
            }
            let mut accs: Vec<AggAcc> = self.aggs.iter().map(|(_, f)| f.new_acc()).collect();
            let mut key_row = record
                .value
                .project(&self.key_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>());
            for k in absorbed {
                let st = self.state.remove(&k).expect("collected above");
                for (a, b) in accs.iter_mut().zip(&st.accs) {
                    a.merge(b);
                }
                key_row = st.key_row;
            }
            for (acc, (_, f)) in accs.iter_mut().zip(&self.aggs) {
                acc.add(f, &record.value);
            }
            self.state.insert(
                (key, merged.start, merged.end),
                WindowState { key_row, accs },
            );
        } else {
            let key_cols = &self.key_cols;
            let aggs = &self.aggs;
            let entry = self
                .state
                .entry((key, window.start, window.end))
                .or_insert_with(|| WindowState {
                    key_row: record
                        .value
                        .project(&key_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>()),
                    accs: aggs.iter().map(|(_, f)| f.new_acc()).collect(),
                });
            for (acc, (_, f)) in entry.accs.iter_mut().zip(aggs) {
                acc.add(f, &record.value);
            }
        }
    }
}

impl Operator for WindowAggregateOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        let _ = out;
        let key = key_string(&record.value, &self.key_cols);
        for window in self.assigner.assign(record.timestamp) {
            if window.end + self.allowed_lateness <= self.watermark {
                self.late_dropped += 1;
                continue;
            }
            self.fold_into(key.clone(), window, &record);
        }
        Ok(())
    }

    /// Batched fold: grouping keys (and their hashes) are computed once
    /// per batch in a first pass, then consecutive records hitting the
    /// same (key, window) fold into a single state entry without repeating
    /// the map lookup. Fold order is per-record order, so results are
    /// byte-identical to the per-record path.
    fn process_batch(&mut self, batch: &mut Vec<Record>, out: &mut OperatorOutput) -> Result<()> {
        let _ = out;
        if self.assigner.is_session() {
            // sessions merge state across records: per-record path
            for record in batch.drain(..) {
                self.process(record, out)?;
            }
            return Ok(());
        }
        let keys: Vec<(u64, String)> = batch
            .iter()
            .map(|r| {
                let k = key_string(&r.value, &self.key_cols);
                (Value::hash_of_str(&k), k)
            })
            .collect();
        let lateness = self.allowed_lateness;
        let wm = self.watermark;
        let n = batch.len();
        let mut i = 0;
        while i < n {
            match self.assigner.single_window(batch[i].timestamp) {
                Some(win) => {
                    if win.end + lateness <= wm {
                        self.late_dropped += 1;
                        i += 1;
                        continue;
                    }
                    let aggs = &self.aggs;
                    let key_cols = &self.key_cols;
                    let first = &batch[i];
                    let entry = self
                        .state
                        .entry((keys[i].1.clone(), win.start, win.end))
                        .or_insert_with(|| WindowState {
                            key_row: first
                                .value
                                .project(&key_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>()),
                            accs: aggs.iter().map(|(_, f)| f.new_acc()).collect(),
                        });
                    loop {
                        for (acc, (_, f)) in entry.accs.iter_mut().zip(aggs) {
                            acc.add(f, &batch[i].value);
                        }
                        i += 1;
                        if i >= n
                            || keys[i].0 != keys[i - 1].0
                            || keys[i].1 != keys[i - 1].1
                            || self.assigner.single_window(batch[i].timestamp) != Some(win)
                        {
                            break;
                        }
                    }
                }
                None => {
                    // sliding windows: fold once per assigned window with
                    // the precomputed key
                    for window in self.assigner.assign(batch[i].timestamp) {
                        if window.end + lateness <= wm {
                            self.late_dropped += 1;
                            continue;
                        }
                        let record = batch[i].clone();
                        self.fold_into(keys[i].1.clone(), window, &record);
                    }
                    i += 1;
                }
            }
        }
        batch.clear();
        Ok(())
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut OperatorOutput) {
        if wm <= self.watermark {
            return;
        }
        self.watermark = wm;
        let lateness = self.allowed_lateness;
        let ready: Vec<WindowKey> = self
            .state
            .keys()
            .filter(|(_, _, end)| end.checked_add(lateness).map(|e| e <= wm).unwrap_or(true))
            .cloned()
            .collect();
        for k in ready {
            let st = self.state.remove(&k).expect("key collected above");
            let (_, start, end) = k;
            if self.emit_partials {
                // phase one of a salted aggregation: ship the raw
                // accumulators; the combine stage folds them via merge
                let mut row = st.key_row.clone();
                row.push(WINDOW_START_COL, start);
                row.push(WINDOW_END_COL, end);
                let mut accs = BytesMut::new();
                accs.put_u32(st.accs.len() as u32);
                for a in &st.accs {
                    a.encode(&mut accs);
                }
                row.push(PARTIAL_COL, Value::Bytes(accs.to_vec()));
                let key = self
                    .key_cols
                    .first()
                    .and_then(|c| st.key_row.get(c).cloned());
                let mut rec = Record::new(row, end - 1);
                rec.key = key;
                out.push(rec);
            } else {
                out.push(finalize_window(&self.key_cols, &self.aggs, &st, start, end));
            }
        }
    }

    fn snapshot(&self) -> Bytes {
        windowed_snapshot(&self.state, self.watermark, self.late_dropped)
    }

    fn restore(&mut self, data: Bytes) -> Result<()> {
        let (watermark, dropped, state) = windowed_restore(data, self.shard)?;
        self.watermark = watermark;
        self.late_dropped = dropped;
        self.state = state;
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        self.state
            .values()
            .map(|st| {
                st.key_row.approx_bytes()
                    + st.accs.iter().map(AggAcc::memory_bytes).sum::<usize>()
                    + 48
            })
            .sum()
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    fn shard_spec(&self) -> Option<ShardSpec> {
        (self.parallelism > 1 || self.salted()).then(|| ShardSpec {
            parallelism: self.parallelism,
            key_cols: self.key_cols.clone(),
            hot_key_threshold: if self.assigner.is_session() {
                None
            } else {
                self.hot_key_threshold
            },
        })
    }

    fn make_shard(&self, index: usize, of: usize) -> Option<Box<dyn Operator>> {
        let mut op = WindowAggregateOp::new(
            self.name.clone(),
            self.key_cols.clone(),
            self.assigner,
            self.aggs.clone(),
            self.allowed_lateness,
        );
        op.emit_partials = self.salted();
        op.shard = Some((index, of));
        Some(Box::new(op))
    }

    fn make_combiner(&self) -> Option<Box<dyn Operator>> {
        self.salted().then(|| {
            Box::new(PartialCombineOp::new(
                format!("{}-combine", self.name),
                self.key_cols.clone(),
                self.aggs.clone(),
                self.allowed_lateness,
            )) as Box<dyn Operator>
        })
    }

    fn emits_inline(&self) -> bool {
        false
    }
}

/// Keyed first-occurrence filter: a record passes iff its grouping key
/// has not been seen before. The compute-layer building block behind
/// exactly-once sinks and the DR replay dedup — and, like
/// [`WindowAggregateOp`], shardable: disjoint key ranges mean the
/// per-shard seen-sets never overlap, so parallel output equals serial.
pub struct DedupOp {
    name: String,
    key_cols: Vec<String>,
    parallelism: usize,
    /// `(instance, parallelism)` when running as a shard.
    shard: Option<(usize, usize)>,
    seen: BTreeSet<String>,
}

impl DedupOp {
    pub fn new(name: impl Into<String>, key_cols: Vec<String>) -> Self {
        DedupOp {
            name: name.into(),
            key_cols,
            parallelism: 1,
            shard: None,
            seen: BTreeSet::new(),
        }
    }

    /// Run this stage as `n` parallel instances in the staged runtime.
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Distinct keys seen so far.
    pub fn seen_keys(&self) -> usize {
        self.seen.len()
    }
}

impl Operator for DedupOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        if self.seen.insert(key_string(&record.value, &self.key_cols)) {
            out.push(record);
        }
        Ok(())
    }

    fn snapshot(&self) -> Bytes {
        let mut groups: BTreeMap<u32, (u32, BytesMut)> = BTreeMap::new();
        for key in &self.seen {
            let g = key_group_of(Value::hash_of_str(key));
            let slot = groups.entry(g).or_default();
            slot.0 += 1;
            slot.1.put_u32(key.len() as u32);
            slot.1.put_slice(key.as_bytes());
        }
        let frames = groups
            .into_iter()
            .map(|(g, (count, body))| {
                let mut f = BytesMut::with_capacity(4 + body.len());
                f.put_u32(count);
                f.put_slice(&body);
                (g, f.freeze())
            })
            .collect();
        KeyedSnapshot {
            watermark: Timestamp::MIN,
            dropped: 0,
            frames,
        }
        .encode()
    }

    fn restore(&mut self, data: Bytes) -> Result<()> {
        let snap = KeyedSnapshot::decode(data)?;
        self.seen.clear();
        for (group, frame) in snap.frames {
            if let Some((index, of)) = self.shard {
                if shard_of_group(group, of) != index {
                    continue;
                }
            }
            let mut buf = frame;
            if buf.remaining() < 4 {
                return Err(Error::Corruption("truncated dedup frame".into()));
            }
            let count = buf.get_u32();
            for _ in 0..count {
                if buf.remaining() < 4 {
                    return Err(Error::Corruption("truncated dedup key".into()));
                }
                let klen = buf.get_u32() as usize;
                if buf.remaining() < klen {
                    return Err(Error::Corruption("truncated dedup key".into()));
                }
                let key = String::from_utf8(buf.split_to(klen).to_vec())
                    .map_err(|_| Error::Corruption("bad dedup key".into()))?;
                self.seen.insert(key);
            }
        }
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        self.seen.iter().map(|k| k.len() + 24).sum()
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn shard_spec(&self) -> Option<ShardSpec> {
        (self.parallelism > 1).then(|| ShardSpec {
            parallelism: self.parallelism,
            key_cols: self.key_cols.clone(),
            hot_key_threshold: None,
        })
    }

    fn make_shard(&self, index: usize, of: usize) -> Option<Box<dyn Operator>> {
        let mut op = DedupOp::new(self.name.clone(), self.key_cols.clone());
        op.shard = Some((index, of));
        Some(Box::new(op))
    }
}

/// Phase two of a salted hot-key aggregation: folds the partial
/// accumulators shipped in [`PARTIAL_COL`] rows back together per
/// (key, window) via [`AggAcc::merge`] and emits final rows with exactly
/// the shape and order of an unsalted [`WindowAggregateOp`].
pub struct PartialCombineOp {
    name: String,
    key_cols: Vec<String>,
    aggs: Vec<(String, AggFn)>,
    allowed_lateness: i64,
    state: BTreeMap<WindowKey, WindowState>,
    watermark: Timestamp,
    dropped: u64,
}

impl PartialCombineOp {
    pub fn new(
        name: impl Into<String>,
        key_cols: Vec<String>,
        aggs: Vec<(String, AggFn)>,
        allowed_lateness: i64,
    ) -> Self {
        PartialCombineOp {
            name: name.into(),
            key_cols,
            aggs,
            allowed_lateness: allowed_lateness.max(0),
            state: BTreeMap::new(),
            watermark: Timestamp::MIN,
            dropped: 0,
        }
    }
}

impl Operator for PartialCombineOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        let _ = out;
        let start = record
            .value
            .get_int(WINDOW_START_COL)
            .ok_or_else(|| Error::InvalidArgument("partial row missing window_start".into()))?;
        let end = record
            .value
            .get_int(WINDOW_END_COL)
            .ok_or_else(|| Error::InvalidArgument("partial row missing window_end".into()))?;
        let Some(Value::Bytes(payload)) = record.value.get(PARTIAL_COL) else {
            return Err(Error::InvalidArgument(
                "combine input missing __partial accumulators".into(),
            ));
        };
        let mut buf = Bytes::copy_from_slice(payload);
        if buf.remaining() < 4 {
            return Err(Error::Corruption("truncated partial accumulators".into()));
        }
        let n = buf.get_u32() as usize;
        if n != self.aggs.len() {
            return Err(Error::Corruption(format!(
                "partial row has {n} accumulators, stage has {}",
                self.aggs.len()
            )));
        }
        let mut incoming = Vec::with_capacity(n);
        for _ in 0..n {
            incoming.push(AggAcc::decode(&mut buf)?);
        }
        if end
            .checked_add(self.allowed_lateness)
            .map(|e| e <= self.watermark)
            .unwrap_or(false)
        {
            // unreachable under epoch-aligned merges; counted defensively
            self.dropped += 1;
            return Ok(());
        }
        let key = key_string(&record.value, &self.key_cols);
        match self.state.entry((key, start, end)) {
            Entry::Vacant(v) => {
                let cols: Vec<&str> = self.key_cols.iter().map(|s| s.as_str()).collect();
                v.insert(WindowState {
                    key_row: record.value.project(&cols),
                    accs: incoming,
                });
            }
            Entry::Occupied(mut o) => {
                for (a, b) in o.get_mut().accs.iter_mut().zip(&incoming) {
                    a.merge(b);
                }
            }
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut OperatorOutput) {
        if wm <= self.watermark {
            return;
        }
        self.watermark = wm;
        let lateness = self.allowed_lateness;
        let ready: Vec<WindowKey> = self
            .state
            .keys()
            .filter(|(_, _, end)| end.checked_add(lateness).map(|e| e <= wm).unwrap_or(true))
            .cloned()
            .collect();
        for k in ready {
            let st = self.state.remove(&k).expect("key collected above");
            let (_, start, end) = k;
            out.push(finalize_window(&self.key_cols, &self.aggs, &st, start, end));
        }
    }

    fn snapshot(&self) -> Bytes {
        windowed_snapshot(&self.state, self.watermark, self.dropped)
    }

    fn restore(&mut self, data: Bytes) -> Result<()> {
        let (watermark, dropped, state) = windowed_restore(data, None)?;
        self.watermark = watermark;
        self.dropped = dropped;
        self.state = state;
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        self.state
            .values()
            .map(|st| {
                st.key_row.approx_bytes()
                    + st.accs.iter().map(AggAcc::memory_bytes).sum::<usize>()
                    + 48
            })
            .sum()
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn late_dropped(&self) -> u64 {
        self.dropped
    }

    fn emits_inline(&self) -> bool {
        false
    }
}

/// A chain of operators fused into one stage — Flink's operator chaining.
///
/// Records flow member-to-member through reused scratch buffers with no
/// channel hop, no per-record `StagedMsg`, and no extra thread. Built by
/// [`fuse_stateless`]; the runtime treats it as any other operator, and
/// [`Operator::operator_names`] still reports every member for stats.
pub struct FusedOp {
    name: String,
    ops: Vec<Box<dyn Operator>>,
    /// Staging buffer for single-record `process` calls.
    single: Vec<Record>,
    /// Reused ping-pong buffer between chain members.
    scratch: Vec<Record>,
    /// Error raised while cascading a watermark (which can't return one);
    /// surfaced at the next fallible call.
    pending_error: Option<Error>,
}

impl FusedOp {
    pub fn new(ops: Vec<Box<dyn Operator>>) -> Self {
        assert!(!ops.is_empty(), "fused chain needs at least one operator");
        let name = format!(
            "fused[{}]",
            ops.iter().map(|o| o.name()).collect::<Vec<_>>().join("->")
        );
        FusedOp {
            name,
            ops,
            single: Vec::with_capacity(1),
            scratch: Vec::new(),
            pending_error: None,
        }
    }

    /// Run `batch` through every member in order; the last member writes
    /// into `out`. Buffers are recycled across calls.
    fn run_chain(&mut self, batch: &mut Vec<Record>, out: &mut OperatorOutput) -> Result<()> {
        let last = self.ops.len() - 1;
        let mut cur = std::mem::take(batch);
        let mut next = std::mem::take(&mut self.scratch);
        for (i, op) in self.ops.iter_mut().enumerate() {
            if i == last {
                op.process_batch(&mut cur, out)?;
            } else {
                next.clear();
                op.process_batch(&mut cur, &mut next)?;
                std::mem::swap(&mut cur, &mut next);
            }
        }
        *batch = cur; // drained by the first member; keep the allocation
        self.scratch = next;
        Ok(())
    }
}

impl Operator for FusedOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        if let Some(e) = self.pending_error.take() {
            return Err(e);
        }
        let mut batch = std::mem::take(&mut self.single);
        batch.push(record);
        let res = self.run_chain(&mut batch, out);
        self.single = batch;
        res
    }

    fn process_batch(&mut self, batch: &mut Vec<Record>, out: &mut OperatorOutput) -> Result<()> {
        if let Some(e) = self.pending_error.take() {
            return Err(e);
        }
        self.run_chain(batch, out)
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut OperatorOutput) {
        // anything member i emits on the watermark must pass through
        // members i+1.. before the watermark itself reaches them
        let last = self.ops.len() - 1;
        let mut pending: Vec<Record> = Vec::new();
        for i in 0..self.ops.len() {
            let mut emitted = Vec::new();
            if !pending.is_empty() {
                let dst = if i == last { &mut *out } else { &mut emitted };
                if let Err(e) = self.ops[i].process_batch(&mut pending, dst) {
                    self.pending_error.get_or_insert(e);
                    return;
                }
            }
            let dst = if i == last { &mut *out } else { &mut emitted };
            self.ops[i].on_watermark(wm, dst);
            pending = emitted;
        }
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(self.ops.len() as u32);
        for op in &self.ops {
            let s = op.snapshot();
            buf.put_u32(s.len() as u32);
            buf.put_slice(&s);
        }
        buf.freeze()
    }

    fn restore(&mut self, data: Bytes) -> Result<()> {
        let mut buf = data;
        if buf.remaining() < 4 {
            return Err(Error::Corruption("truncated fused snapshot".into()));
        }
        let n = buf.get_u32() as usize;
        if n != self.ops.len() {
            return Err(Error::Corruption(format!(
                "fused snapshot has {n} members, chain has {}",
                self.ops.len()
            )));
        }
        for op in &mut self.ops {
            if buf.remaining() < 4 {
                return Err(Error::Corruption("truncated fused snapshot".into()));
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(Error::Corruption("truncated fused snapshot".into()));
            }
            op.restore(buf.split_to(len))?;
        }
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        self.ops.iter().map(|o| o.memory_bytes()).sum()
    }

    fn is_stateful(&self) -> bool {
        self.ops.iter().any(|o| o.is_stateful())
    }

    fn operator_names(&self) -> Vec<String> {
        self.ops.iter().flat_map(|o| o.operator_names()).collect()
    }

    fn late_dropped(&self) -> u64 {
        self.ops.iter().map(|o| o.late_dropped()).sum()
    }
}

fn flush_fuse_run(out: &mut Vec<Box<dyn Operator>>, run: &mut Vec<Box<dyn Operator>>) {
    match run.len() {
        0 => {}
        1 => out.push(run.pop().expect("len checked")),
        _ => out.push(Box::new(FusedOp::new(std::mem::take(run)))),
    }
}

/// The operator-chaining pass: collapse every maximal run of two or more
/// adjacent stateless operators into a single [`FusedOp`] stage. Stateful
/// operators (windowed aggregation, joins) keep their own stage so their
/// snapshots stay addressable and their thread stays isolated; singleton
/// stateless operators pass through unchanged.
pub fn fuse_stateless(ops: Vec<Box<dyn Operator>>) -> Vec<Box<dyn Operator>> {
    let mut out: Vec<Box<dyn Operator>> = Vec::with_capacity(ops.len());
    let mut run: Vec<Box<dyn Operator>> = Vec::new();
    for op in ops {
        if op.is_stateful() {
            flush_fuse_run(&mut out, &mut run);
            out.push(op);
        } else {
            run.push(op);
        }
    }
    flush_fuse_run(&mut out, &mut run);
    out
}

/// Column that tags which input stream a record of a unioned source came
/// from (see [`crate::source::UnionSource`]).
pub const STREAM_TAG: &str = "__stream";

/// Windowed stream-stream inner join on a key column.
///
/// Inputs must carry [`STREAM_TAG`] identifying their side. Emits one
/// merged row per matching (left, right) pair within the same tumbling
/// window. This is the paper's "stream-stream join job [that] will almost
/// always be memory bound" (§4.2.1) and the core of the prediction
/// monitoring pipeline (§5.3: joining predictions to observed outcomes).
pub struct WindowJoinOp {
    name: String,
    key_col: String,
    left_tag: String,
    right_tag: String,
    window_ms: i64,
    /// (key, window_start) -> (left rows, right rows)
    state: BTreeMap<(String, Timestamp), (Vec<Row>, Vec<Row>)>,
    watermark: Timestamp,
    dropped: u64,
}

impl WindowJoinOp {
    pub fn new(
        name: impl Into<String>,
        key_col: impl Into<String>,
        left_tag: impl Into<String>,
        right_tag: impl Into<String>,
        window_ms: i64,
    ) -> Self {
        assert!(window_ms > 0);
        WindowJoinOp {
            name: name.into(),
            key_col: key_col.into(),
            left_tag: left_tag.into(),
            right_tag: right_tag.into(),
            window_ms,
            state: BTreeMap::new(),
            watermark: Timestamp::MIN,
            dropped: 0,
        }
    }

    fn merge_rows(left: &Row, right: &Row) -> Row {
        let mut out = left.clone();
        for (name, value) in right.iter() {
            if name == STREAM_TAG {
                continue;
            }
            if out.get(name).is_none() {
                out.push(name.to_string(), value.clone());
            } else if name != "window_start" {
                out.push(format!("r_{name}"), value.clone());
            }
        }
        out
    }
}

impl Operator for WindowJoinOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        let tag = record
            .value
            .get_str(STREAM_TAG)
            .ok_or_else(|| Error::InvalidArgument("join input missing __stream tag".into()))?
            .to_string();
        let win_start = record.timestamp.div_euclid(self.window_ms) * self.window_ms;
        if win_start + self.window_ms <= self.watermark {
            self.dropped += 1;
            return Ok(());
        }
        let key = key_string(&record.value, std::slice::from_ref(&self.key_col));
        let mut row = record.value.clone();
        // strip the tag from the stored row
        row.set(STREAM_TAG, Value::Null);
        let entry = self
            .state
            .entry((key, win_start))
            .or_insert_with(|| (Vec::new(), Vec::new()));
        if tag == self.left_tag {
            for r in &entry.1 {
                let mut joined = Self::merge_rows(&record.value, r);
                joined.set(STREAM_TAG, Value::Null);
                let mut rec = Record::new(joined, record.timestamp);
                rec.key = record.key.clone();
                out.push(rec);
            }
            entry.0.push(record.value);
        } else if tag == self.right_tag {
            for l in &entry.0 {
                let mut joined = Self::merge_rows(l, &record.value);
                joined.set(STREAM_TAG, Value::Null);
                let mut rec = Record::new(joined, record.timestamp);
                rec.key = record.key.clone();
                out.push(rec);
            }
            entry.1.push(record.value);
        } else {
            return Err(Error::InvalidArgument(format!(
                "unknown stream tag '{tag}' (expected '{}' or '{}')",
                self.left_tag, self.right_tag
            )));
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: Timestamp, _out: &mut OperatorOutput) {
        if wm <= self.watermark {
            return;
        }
        self.watermark = wm;
        let window = self.window_ms;
        self.state.retain(|(_, start), _| start + window > wm);
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_i64(self.watermark);
        buf.put_u64(self.dropped);
        buf.put_u32(self.state.len() as u32);
        for ((key, start), (left, right)) in &self.state {
            buf.put_u32(key.len() as u32);
            buf.put_slice(key.as_bytes());
            buf.put_i64(*start);
            let l = encode_rows(left);
            buf.put_u32(l.len() as u32);
            buf.put_slice(&l);
            let r = encode_rows(right);
            buf.put_u32(r.len() as u32);
            buf.put_slice(&r);
        }
        buf.freeze()
    }

    fn restore(&mut self, data: Bytes) -> Result<()> {
        let mut buf = data;
        if buf.remaining() < 20 {
            return Err(Error::Corruption("truncated join snapshot".into()));
        }
        self.watermark = buf.get_i64();
        self.dropped = buf.get_u64();
        let n = buf.get_u32() as usize;
        self.state.clear();
        for _ in 0..n {
            let klen = buf.get_u32() as usize;
            let key = String::from_utf8(buf.split_to(klen).to_vec())
                .map_err(|_| Error::Corruption("bad key".into()))?;
            let start = buf.get_i64();
            let llen = buf.get_u32() as usize;
            let left = decode_rows(&buf.split_to(llen))?;
            let rlen = buf.get_u32() as usize;
            let right = decode_rows(&buf.split_to(rlen))?;
            self.state.insert((key, start), (left, right));
        }
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        self.state
            .values()
            .map(|(l, r)| {
                l.iter().map(Row::approx_bytes).sum::<usize>()
                    + r.iter().map(Row::approx_bytes).sum::<usize>()
                    + 48
            })
            .sum()
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn late_dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: Timestamp, row: Row) -> Record {
        Record::new(row, ts)
    }

    fn drain(op: &mut dyn Operator, records: Vec<Record>, final_wm: Timestamp) -> Vec<Record> {
        let mut out = Vec::new();
        for r in records {
            op.process(r, &mut out).unwrap();
        }
        op.on_watermark(final_wm, &mut out);
        out
    }

    #[test]
    fn map_transforms_rows() {
        let mut op = MapOp::new("double", |r: &Row| {
            Row::new().with("x", r.get_int("x").unwrap_or(0) * 2)
        });
        let out = drain(&mut op, vec![rec(0, Row::new().with("x", 21i64))], 100);
        assert_eq!(out[0].value.get_int("x"), Some(42));
    }

    #[test]
    fn filter_drops_rows() {
        let mut op = FilterOp::new("evens", |r: &Row| r.get_int("x").unwrap_or(0) % 2 == 0);
        let records = (0..10).map(|i| rec(i, Row::new().with("x", i))).collect();
        let out = drain(&mut op, records, 100);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn flatmap_expands() {
        let mut op = FlatMapOp::new("dup", |r: &Record| vec![r.clone(), r.clone()]);
        let out = drain(&mut op, vec![rec(0, Row::new())], 100);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn window_aggregate_counts_per_key_per_window() {
        let mut op = WindowAggregateOp::new(
            "agg",
            vec!["city".into()],
            WindowAssigner::tumbling(1000),
            vec![
                ("trips".into(), AggFn::Count),
                ("total_fare".into(), AggFn::Sum("fare".into())),
            ],
            0,
        );
        let mut records = Vec::new();
        for i in 0..10 {
            records.push(rec(
                i * 300,
                Row::new()
                    .with("city", if i % 2 == 0 { "sf" } else { "la" })
                    .with("fare", 1.0),
            ));
        }
        let out = drain(&mut op, records, i64::MAX);
        // 3 windows (0-1000, 1000-2000, 2000-3000) x up to 2 keys
        let sf_first = out
            .iter()
            .find(|r| {
                r.value.get_str("city") == Some("sf") && r.value.get_int("window_start") == Some(0)
            })
            .unwrap();
        assert_eq!(sf_first.value.get_int("trips"), Some(2)); // i=0 (t 0) and i=2 (t 600)
        assert_eq!(sf_first.value.get_double("total_fare"), Some(2.0));
        let total: i64 = out.iter().map(|r| r.value.get_int("trips").unwrap()).sum();
        assert_eq!(total, 10);
        assert_eq!(op.late_dropped(), 0);
    }

    #[test]
    fn late_records_dropped_after_watermark() {
        let mut op = WindowAggregateOp::new(
            "agg",
            vec!["k".into()],
            WindowAssigner::tumbling(1000),
            vec![("n".into(), AggFn::Count)],
            0,
        );
        let mut out = Vec::new();
        op.process(rec(100, Row::new().with("k", "a")), &mut out)
            .unwrap();
        op.on_watermark(1500, &mut out); // window [0,1000) closes and emits
        assert_eq!(out.len(), 1);
        // a record for the closed window is late
        op.process(rec(200, Row::new().with("k", "a")), &mut out)
            .unwrap();
        assert_eq!(op.late_dropped(), 1);
        // with lateness allowance it would have been accepted
        let mut op2 = WindowAggregateOp::new(
            "agg",
            vec!["k".into()],
            WindowAssigner::tumbling(1000),
            vec![("n".into(), AggFn::Count)],
            1000,
        );
        let mut out2 = Vec::new();
        op2.process(rec(100, Row::new().with("k", "a")), &mut out2)
            .unwrap();
        op2.on_watermark(1500, &mut out2); // not emitted yet: lateness holds it
        assert!(out2.is_empty());
        op2.process(rec(200, Row::new().with("k", "a")), &mut out2)
            .unwrap();
        assert_eq!(op2.late_dropped(), 0);
        op2.on_watermark(2100, &mut out2);
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].value.get_int("n"), Some(2));
    }

    #[test]
    fn window_emission_timestamp_is_window_end_minus_one() {
        let mut op = WindowAggregateOp::new(
            "agg",
            vec!["k".into()],
            WindowAssigner::tumbling(1000),
            vec![("n".into(), AggFn::Count)],
            0,
        );
        let out = drain(&mut op, vec![rec(5, Row::new().with("k", "a"))], i64::MAX);
        assert_eq!(out[0].timestamp, 999);
        assert_eq!(out[0].key, Some(Value::Str("a".into())));
    }

    #[test]
    fn session_windows_merge() {
        let mut op = WindowAggregateOp::new(
            "sessions",
            vec!["user".into()],
            WindowAssigner::session(1000),
            vec![("events".into(), AggFn::Count)],
            0,
        );
        let records = vec![
            rec(0, Row::new().with("user", "u1")),
            rec(500, Row::new().with("user", "u1")), // merges with first
            rec(3000, Row::new().with("user", "u1")), // separate session
            rec(400, Row::new().with("user", "u2")),
        ];
        let out = drain(&mut op, records, i64::MAX);
        assert_eq!(out.len(), 3);
        let u1_first = out
            .iter()
            .find(|r| {
                r.value.get_str("user") == Some("u1") && r.value.get_int("window_start") == Some(0)
            })
            .unwrap();
        assert_eq!(u1_first.value.get_int("events"), Some(2));
        assert_eq!(u1_first.value.get_int("window_end"), Some(1500));
    }

    #[test]
    fn window_agg_snapshot_restore_roundtrip() {
        let mk = || {
            WindowAggregateOp::new(
                "agg",
                vec!["city".into()],
                WindowAssigner::tumbling(1000),
                vec![
                    ("n".into(), AggFn::Count),
                    ("riders".into(), AggFn::DistinctCount("rider".into())),
                ],
                0,
            )
        };
        let mut op = mk();
        let mut out = Vec::new();
        for i in 0..20 {
            op.process(
                rec(
                    i * 100,
                    Row::new()
                        .with("city", "sf")
                        .with("rider", format!("r{}", i % 5)),
                ),
                &mut out,
            )
            .unwrap();
        }
        op.on_watermark(1000, &mut out);
        let emitted_before = out.len();
        let snap = op.snapshot();
        assert!(op.memory_bytes() > 0);

        let mut restored = mk();
        restored.restore(snap).unwrap();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        op.on_watermark(i64::MAX, &mut out_a);
        restored.on_watermark(i64::MAX, &mut out_b);
        assert_eq!(out_a, out_b, "restored operator continues identically");
        assert!(emitted_before >= 1);
    }

    fn map_filter_chain() -> Vec<Box<dyn Operator>> {
        vec![
            Box::new(MapOp::new("inc", |r: &Row| {
                Row::new().with("x", r.get_int("x").unwrap_or(0) + 1)
            })),
            Box::new(FilterOp::new("evens", |r: &Row| {
                r.get_int("x").unwrap_or(0) % 2 == 0
            })),
            Box::new(FlatMapOp::new("dup", |r: &Record| {
                vec![r.clone(), r.clone()]
            })),
        ]
    }

    #[test]
    fn fused_chain_matches_sequential_execution() {
        let records: Vec<Record> = (0..20).map(|i| rec(i, Row::new().with("x", i))).collect();
        // reference: run the chain operator by operator
        let mut expected = records.clone();
        for mut op in map_filter_chain() {
            let mut next = Vec::new();
            for r in expected {
                op.process(r, &mut next).unwrap();
            }
            expected = next;
        }
        let mut fused = FusedOp::new(map_filter_chain());
        assert_eq!(fused.name(), "fused[inc->evens->dup]");
        assert_eq!(fused.operator_names(), vec!["inc", "evens", "dup"]);
        assert!(!fused.is_stateful());
        // per-record path
        let mut got = Vec::new();
        for r in records.clone() {
            fused.process(r, &mut got).unwrap();
        }
        assert_eq!(got, expected);
        // batched path
        let mut fused2 = FusedOp::new(map_filter_chain());
        let mut batch = records;
        let mut got2 = Vec::new();
        fused2.process_batch(&mut batch, &mut got2).unwrap();
        assert!(batch.is_empty());
        assert_eq!(got2, expected);
    }

    #[test]
    fn fuse_stateless_groups_maximal_runs() {
        let ops: Vec<Box<dyn Operator>> = vec![
            Box::new(MapOp::new("a", |r: &Row| r.clone())),
            Box::new(MapOp::new("b", |r: &Row| r.clone())),
            Box::new(WindowAggregateOp::new(
                "agg",
                vec!["k".into()],
                WindowAssigner::tumbling(1000),
                vec![("n".into(), AggFn::Count)],
                0,
            )),
            Box::new(MapOp::new("c", |r: &Row| r.clone())),
        ];
        let fused = fuse_stateless(ops);
        assert_eq!(fused.len(), 3);
        assert_eq!(fused[0].name(), "fused[a->b]");
        assert_eq!(fused[0].operator_names(), vec!["a", "b"]);
        assert_eq!(fused[1].name(), "agg");
        assert!(fused[1].is_stateful());
        assert_eq!(fused[2].name(), "c"); // singleton left unfused
    }

    #[test]
    fn fused_watermark_cascades_through_members() {
        // window-agg emissions on watermark must flow through the
        // downstream map before the watermark moves on
        let ops: Vec<Box<dyn Operator>> = vec![
            Box::new(WindowAggregateOp::new(
                "agg",
                vec!["k".into()],
                WindowAssigner::tumbling(1000),
                vec![("n".into(), AggFn::Count)],
                0,
            )),
            Box::new(MapOp::new("tag", |r: &Row| {
                let mut out = r.clone();
                out.push("tagged", 1i64);
                out
            })),
        ];
        let mut fused = FusedOp::new(ops);
        let mut out = Vec::new();
        fused
            .process(rec(100, Row::new().with("k", "a")), &mut out)
            .unwrap();
        fused.on_watermark(5000, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value.get_int("tagged"), Some(1));
        assert_eq!(out[0].value.get_int("n"), Some(1));
    }

    #[test]
    fn fused_snapshot_restore_roundtrip() {
        let mk = || {
            FusedOp::new(vec![
                Box::new(MapOp::new("id", |r: &Row| r.clone())) as Box<dyn Operator>,
                Box::new(WindowAggregateOp::new(
                    "agg",
                    vec!["k".into()],
                    WindowAssigner::tumbling(1000),
                    vec![("n".into(), AggFn::Count)],
                    0,
                )),
            ])
        };
        let mut op = mk();
        let mut out = Vec::new();
        for i in 0..10 {
            op.process(rec(i * 100, Row::new().with("k", "a")), &mut out)
                .unwrap();
        }
        let snap = op.snapshot();
        let mut restored = mk();
        restored.restore(snap).unwrap();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        op.on_watermark(i64::MAX, &mut out_a);
        restored.on_watermark(i64::MAX, &mut out_b);
        assert_eq!(out_a, out_b);
        assert!(!out_a.is_empty());
    }

    #[test]
    fn window_agg_batched_path_matches_per_record() {
        let mk = |assigner: WindowAssigner| {
            WindowAggregateOp::new(
                "agg",
                vec!["k".into()],
                assigner,
                vec![
                    ("n".into(), AggFn::Count),
                    ("s".into(), AggFn::Sum("v".into())),
                ],
                0,
            )
        };
        for assigner in [
            WindowAssigner::tumbling(700),
            WindowAssigner::sliding(900, 300),
        ] {
            let records: Vec<Record> = (0..60)
                .map(|i| {
                    rec(
                        (i * 137) % 2500, // out of order, with same-key runs
                        Row::new()
                            .with("k", format!("k{}", (i / 7) % 3))
                            .with("v", i as f64),
                    )
                })
                .collect();
            let mut a = mk(assigner);
            let mut b = mk(assigner);
            let mut out_a = Vec::new();
            let mut out_b = Vec::new();
            // interleave a watermark so the late path is exercised too
            for (idx, chunk) in records.chunks(20).enumerate() {
                for r in chunk {
                    a.process(r.clone(), &mut out_a).unwrap();
                }
                let mut batch = chunk.to_vec();
                b.process_batch(&mut batch, &mut out_b).unwrap();
                let wm = 600 * (idx as i64 + 1);
                a.on_watermark(wm, &mut out_a);
                b.on_watermark(wm, &mut out_b);
            }
            a.on_watermark(i64::MAX, &mut out_a);
            b.on_watermark(i64::MAX, &mut out_b);
            assert_eq!(out_a, out_b, "assigner {assigner:?}");
            assert_eq!(Operator::late_dropped(&a), Operator::late_dropped(&b));
        }
    }

    #[test]
    fn join_matches_within_window_only() {
        let mut op = WindowJoinOp::new("join", "model", "pred", "outcome", 1000);
        let mut out = Vec::new();
        let pred = |ts, model: &str, v: f64| {
            rec(
                ts,
                Row::new()
                    .with(STREAM_TAG, "pred")
                    .with("model", model)
                    .with("predicted", v),
            )
        };
        let outcome = |ts, model: &str, v: f64| {
            rec(
                ts,
                Row::new()
                    .with(STREAM_TAG, "outcome")
                    .with("model", model)
                    .with("actual", v),
            )
        };
        op.process(pred(100, "m1", 0.9), &mut out).unwrap();
        op.process(outcome(200, "m1", 1.0), &mut out).unwrap(); // same window -> join
        op.process(outcome(1500, "m1", 0.0), &mut out).unwrap(); // next window -> no match
        op.process(outcome(300, "m2", 0.5), &mut out).unwrap(); // other key -> no match
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value.get_double("predicted"), Some(0.9));
        assert_eq!(out[0].value.get_double("actual"), Some(1.0));
        assert!(op.memory_bytes() > 0);
    }

    #[test]
    fn join_state_evicted_by_watermark() {
        let mut op = WindowJoinOp::new("join", "k", "l", "r", 1000);
        let mut out = Vec::new();
        op.process(
            rec(
                100,
                Row::new()
                    .with(STREAM_TAG, "l")
                    .with("k", "a")
                    .with("x", 1i64),
            ),
            &mut out,
        )
        .unwrap();
        let before = op.memory_bytes();
        op.on_watermark(2000, &mut out);
        assert!(op.memory_bytes() < before);
        // matching record now arrives too late: dropped, no join output
        op.process(
            rec(
                150,
                Row::new()
                    .with(STREAM_TAG, "r")
                    .with("k", "a")
                    .with("y", 2i64),
            ),
            &mut out,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn join_rejects_untagged_input() {
        let mut op = WindowJoinOp::new("join", "k", "l", "r", 1000);
        let mut out = Vec::new();
        assert!(op
            .process(rec(0, Row::new().with("k", "a")), &mut out)
            .is_err());
        assert!(op
            .process(
                rec(0, Row::new().with(STREAM_TAG, "zzz").with("k", "a")),
                &mut out
            )
            .is_err());
    }

    #[test]
    fn join_snapshot_restore_roundtrip() {
        let mut op = WindowJoinOp::new("join", "k", "l", "r", 1000);
        let mut out = Vec::new();
        for i in 0..10 {
            op.process(
                rec(
                    i * 50,
                    Row::new()
                        .with(STREAM_TAG, "l")
                        .with("k", format!("k{}", i % 3))
                        .with("x", i),
                ),
                &mut out,
            )
            .unwrap();
        }
        let snap = op.snapshot();
        let mut restored = WindowJoinOp::new("join", "k", "l", "r", 1000);
        restored.restore(snap).unwrap();
        // a right-side record joins against restored left buffers
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        let right = rec(
            400,
            Row::new()
                .with(STREAM_TAG, "r")
                .with("k", "k0")
                .with("y", 7i64),
        );
        op.process(right.clone(), &mut out_a).unwrap();
        restored.process(right, &mut out_b).unwrap();
        assert_eq!(out_a.len(), out_b.len());
        assert!(!out_b.is_empty());
    }

    #[test]
    fn dedup_passes_first_occurrence_only() {
        let mut op = DedupOp::new("dedup", vec!["city".into(), "driver".into()]);
        assert!(op.is_stateful());
        let mut out = Vec::new();
        for (i, (c, d)) in [("sf", "d1"), ("sf", "d2"), ("sf", "d1"), ("la", "d1")]
            .iter()
            .enumerate()
        {
            op.process(
                rec(i as i64, Row::new().with("city", *c).with("driver", *d)),
                &mut out,
            )
            .unwrap();
        }
        assert_eq!(out.len(), 3);
        assert_eq!(op.seen_keys(), 3);
        assert!(op.memory_bytes() > 0);
    }

    #[test]
    fn dedup_snapshot_roundtrip_and_sharded_restore() {
        let mut op = DedupOp::new("dedup", vec!["k".into()]);
        let mut out = Vec::new();
        for i in 0..200 {
            op.process(rec(i, Row::new().with("k", format!("k{i}"))), &mut out)
                .unwrap();
        }
        let snap = op.snapshot();
        let mut whole = DedupOp::new("dedup", vec!["k".into()]);
        whole.restore(snap.clone()).unwrap();
        assert_eq!(whole.seen_keys(), 200);
        // sharded restore partitions the seen-set without loss or overlap
        for p in [2usize, 3, 4] {
            let template = DedupOp::new("dedup", vec!["k".into()]).with_parallelism(p);
            let mut total = 0;
            for i in 0..p {
                let mut shard = template.make_shard(i, p).unwrap();
                shard.restore(snap.clone()).unwrap();
                total += shard.memory_bytes();
            }
            assert_eq!(
                total,
                whole.memory_bytes(),
                "parallelism {p} must partition exactly"
            );
        }
    }

    #[test]
    fn window_agg_sharded_restore_partitions_state() {
        // Snapshot a serial aggregation mid-flight, restore it into N
        // shards, and check the union of shard flushes equals the serial
        // flush — the rescale redistribution property end to end.
        let mk = || {
            WindowAggregateOp::new(
                "agg",
                vec!["city".into()],
                WindowAssigner::tumbling(1000),
                vec![
                    ("n".into(), AggFn::Count),
                    ("fare".into(), AggFn::Sum("fare".into())),
                ],
                0,
            )
        };
        let mut serial = mk();
        let mut out = Vec::new();
        for i in 0..300i64 {
            serial
                .process(
                    rec(
                        (i * 37) % 5000,
                        Row::new()
                            .with("city", format!("city-{}", i % 29))
                            .with("fare", (i % 13) as f64 * 0.25),
                    ),
                    &mut out,
                )
                .unwrap();
        }
        let snap = serial.snapshot();
        let mut serial_flush = Vec::new();
        serial.on_watermark(i64::MAX, &mut serial_flush);
        for p in [2usize, 4, 8] {
            let template = mk().with_parallelism(p);
            let mut union = Vec::new();
            for i in 0..p {
                let mut shard = template.make_shard(i, p).unwrap();
                shard.restore(snap.clone()).unwrap();
                shard.on_watermark(i64::MAX, &mut union);
            }
            let sort_key = |r: &Record| {
                (
                    key_string(&r.value, &["city".to_string()]),
                    r.value.get_int(WINDOW_START_COL),
                )
            };
            union.sort_by_key(sort_key);
            let mut expected = serial_flush.clone();
            expected.sort_by_key(sort_key);
            assert_eq!(union, expected, "parallelism {p}");
        }
    }

    #[test]
    fn salted_two_phase_matches_serial() {
        let aggs = || {
            vec![
                ("n".into(), AggFn::Count),
                ("fare".into(), AggFn::Sum("fare".into())),
                ("top".into(), AggFn::Max("fare".into())),
            ]
        };
        let mk = || {
            WindowAggregateOp::new(
                "agg",
                vec!["city".into()],
                WindowAssigner::tumbling(1000),
                aggs(),
                0,
            )
        };
        // dyadic fares, so re-associated float sums stay exact
        let records: Vec<Record> = (0..400i64)
            .map(|i| {
                rec(
                    (i * 53) % 4000,
                    Row::new()
                        .with("city", if i % 3 == 0 { "hot" } else { "cold" })
                        .with("fare", (i % 17) as f64 * 0.25),
                )
            })
            .collect();
        let mut serial = mk();
        let mut expected = Vec::new();
        for r in &records {
            serial.process(r.clone(), &mut expected).unwrap();
        }
        serial.on_watermark(i64::MAX, &mut expected);

        // two shards in salted mode, records sprayed round-robin (as the
        // router does for a 100%-hot stream), then the combine stage
        let template = mk().with_hot_key_salting(1).with_parallelism(2);
        let mut shards: Vec<Box<dyn Operator>> =
            (0..2).map(|i| template.make_shard(i, 2).unwrap()).collect();
        assert!(!template.emits_inline());
        let mut combiner = template.make_combiner().unwrap();
        let mut partials = Vec::new();
        for (i, r) in records.iter().enumerate() {
            shards[i % 2].process(r.clone(), &mut partials).unwrap();
        }
        for s in &mut shards {
            s.on_watermark(i64::MAX, &mut partials);
        }
        // deterministic merge order: (key, window_start)
        partials.sort_by_key(|r| {
            (
                key_string(&r.value, &["city".to_string()]),
                r.value.get_int(WINDOW_START_COL),
            )
        });
        let mut got = Vec::new();
        for p in partials {
            combiner.process(p, &mut got).unwrap();
        }
        combiner.on_watermark(i64::MAX, &mut got);
        assert_eq!(got, expected, "salted two-phase output must be identical");
        // combiner checkpoint roundtrip keeps in-flight partials
        let snap = combiner.snapshot();
        let mut restored = PartialCombineOp::new("agg-combine", vec!["city".into()], aggs(), 0);
        restored.restore(snap).unwrap();
        assert_eq!(restored.memory_bytes(), combiner.memory_bytes());
    }

    #[test]
    fn shard_spec_declared_only_when_parallel_or_salted() {
        let serial = WindowAggregateOp::new(
            "agg",
            vec!["k".into()],
            WindowAssigner::tumbling(1000),
            vec![("n".into(), AggFn::Count)],
            0,
        );
        assert!(serial.shard_spec().is_none());
        let parallel = WindowAggregateOp::new(
            "agg",
            vec!["k".into()],
            WindowAssigner::tumbling(1000),
            vec![("n".into(), AggFn::Count)],
            0,
        )
        .with_parallelism(4);
        let spec = parallel.shard_spec().unwrap();
        assert_eq!(spec.parallelism, 4);
        assert_eq!(spec.hot_key_threshold, None);
        assert!(parallel.make_combiner().is_none());
        // sessions refuse salting (cross-record merges need one instance)
        let sessions = WindowAggregateOp::new(
            "agg",
            vec!["k".into()],
            WindowAssigner::session(500),
            vec![("n".into(), AggFn::Count)],
            0,
        )
        .with_parallelism(2)
        .with_hot_key_salting(10);
        assert_eq!(sessions.shard_spec().unwrap().hot_key_threshold, None);
        assert!(sessions.make_combiner().is_none());
    }
}
