//! Dataflow operators.
//!
//! A job is a linear chain of operators; records flow through
//! [`Operator::process`] and event-time progress flows through
//! [`Operator::on_watermark`]. Stateful operators (windowed aggregation,
//! windowed stream-stream join) expose snapshot/restore for the
//! checkpointing runtime — the Flink "state management and checkpointing
//! features for failure recovery" the paper names as the reason it chose
//! Flink (§4.2).
//!
//! The batched runtime hands operators whole record batches via
//! [`Operator::process_batch`]; keyed operators override it to amortize
//! per-record work (grouping-key construction, window assignment) across
//! the batch. [`fuse_stateless`] is the operator-chaining pass: adjacent
//! stateless operators collapse into one [`FusedOp`] stage that executes
//! in a single thread with no channel hop in between — Flink's operator
//! chaining.

use crate::window::{Window, WindowAssigner};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rtdi_common::agg::{AggAcc, AggFn};
use rtdi_common::{Error, Record, Result, Row, Timestamp, Value};
use rtdi_storage::archival::{decode_rows, encode_rows};
use std::collections::BTreeMap;

/// Convenience alias for operator emission buffers.
pub type OperatorOutput = Vec<Record>;

/// One stage of a dataflow.
pub trait Operator: Send {
    fn name(&self) -> &str;

    /// Process one record, appending any outputs.
    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()>;

    /// Process a whole batch, draining `batch`. Must be equivalent to
    /// calling [`Operator::process`] on each record in order — the
    /// batched runtime relies on that for byte-identical results vs the
    /// per-record reference protocol. Override to amortize per-record
    /// costs.
    fn process_batch(&mut self, batch: &mut Vec<Record>, out: &mut OperatorOutput) -> Result<()> {
        for record in batch.drain(..) {
            self.process(record, out)?;
        }
        Ok(())
    }

    /// Event time advanced to `wm`; flush anything that became complete.
    fn on_watermark(&mut self, _wm: Timestamp, _out: &mut OperatorOutput) {}

    /// Serialize operator state for a checkpoint.
    fn snapshot(&self) -> Bytes {
        Bytes::new()
    }

    /// Restore from a checkpoint snapshot.
    fn restore(&mut self, _data: Bytes) -> Result<()> {
        Ok(())
    }

    /// Approximate live state size; drives the auto-scaler's
    /// CPU-bound-vs-memory-bound classification (§4.2.1).
    fn memory_bytes(&self) -> usize {
        0
    }

    fn is_stateful(&self) -> bool {
        false
    }

    /// Logical operator names executed by this stage. Fused stages report
    /// every member so per-operator observability survives chaining.
    fn operator_names(&self) -> Vec<String> {
        vec![self.name().to_string()]
    }

    /// Records dropped for arriving behind the watermark (stage total).
    fn late_dropped(&self) -> u64 {
        0
    }
}

/// Stateless 1:1 row transform.
pub struct MapOp {
    name: String,
    f: Box<dyn FnMut(&Row) -> Row + Send>,
}

impl MapOp {
    pub fn new(name: impl Into<String>, f: impl FnMut(&Row) -> Row + Send + 'static) -> Self {
        MapOp {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for MapOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, mut record: Record, out: &mut OperatorOutput) -> Result<()> {
        record.value = (self.f)(&record.value);
        out.push(record);
        Ok(())
    }
}

/// Stateless predicate filter.
pub struct FilterOp {
    name: String,
    pred: Box<dyn FnMut(&Row) -> bool + Send>,
}

impl FilterOp {
    pub fn new(name: impl Into<String>, pred: impl FnMut(&Row) -> bool + Send + 'static) -> Self {
        FilterOp {
            name: name.into(),
            pred: Box::new(pred),
        }
    }
}

impl Operator for FilterOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        if (self.pred)(&record.value) {
            out.push(record);
        }
        Ok(())
    }
}

type FlatMapFn = Box<dyn FnMut(&Record) -> Vec<Record> + Send>;

/// Stateless 1:N transform; may re-key and re-time outputs.
pub struct FlatMapOp {
    name: String,
    f: FlatMapFn,
}

impl FlatMapOp {
    pub fn new(
        name: impl Into<String>,
        f: impl FnMut(&Record) -> Vec<Record> + Send + 'static,
    ) -> Self {
        FlatMapOp {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for FlatMapOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        out.extend((self.f)(&record));
        Ok(())
    }
}

/// Encode a grouping key from rows deterministically.
fn key_string(row: &Row, cols: &[String]) -> String {
    let mut s = String::new();
    for (i, c) in cols.iter().enumerate() {
        if i > 0 {
            s.push('\u{1f}');
        }
        match row.get(c) {
            Some(v) => s.push_str(&v.to_string()),
            None => s.push('\u{0}'),
        }
    }
    s
}

#[derive(Debug, Clone)]
struct WindowState {
    key_row: Row,
    accs: Vec<AggAcc>,
}

/// Keyed event-time window aggregation.
///
/// Emits one row per (key, window) when the watermark passes
/// `window.end + allowed_lateness`. Output rows carry the key columns,
/// `window_start`, `window_end` and one column per aggregate.
pub struct WindowAggregateOp {
    name: String,
    key_cols: Vec<String>,
    assigner: WindowAssigner,
    aggs: Vec<(String, AggFn)>,
    allowed_lateness: i64,
    /// (key, window_start, window_end) -> state, ordered so that emission
    /// and snapshots are deterministic.
    state: BTreeMap<(String, Timestamp, Timestamp), WindowState>,
    watermark: Timestamp,
    late_dropped: u64,
}

impl WindowAggregateOp {
    pub fn new(
        name: impl Into<String>,
        key_cols: Vec<String>,
        assigner: WindowAssigner,
        aggs: Vec<(String, AggFn)>,
        allowed_lateness: i64,
    ) -> Self {
        WindowAggregateOp {
            name: name.into(),
            key_cols,
            assigner,
            aggs,
            allowed_lateness: allowed_lateness.max(0),
            state: BTreeMap::new(),
            watermark: Timestamp::MIN,
            late_dropped: 0,
        }
    }

    /// Records dropped for arriving after `window.end + allowed_lateness`
    /// (the surge pipeline's freshness-over-completeness tradeoff, §5.1).
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    fn fold_into(&mut self, key: String, window: Window, record: &Record) {
        // session windows merge overlapping entries of the same key
        if self.assigner.is_session() {
            let mut merged = window;
            let mut absorbed: Vec<(String, Timestamp, Timestamp)> = Vec::new();
            for (k, st) in self
                .state
                .range((key.clone(), Timestamp::MIN, Timestamp::MIN)..)
            {
                if k.0 != key {
                    break;
                }
                let _ = st;
                // overlap if existing [k.1, k.2) intersects [merged.start, merged.end)
                if k.1 < merged.end && merged.start < k.2 {
                    merged.start = merged.start.min(k.1);
                    merged.end = merged.end.max(k.2);
                    absorbed.push(k.clone());
                }
            }
            let mut accs: Vec<AggAcc> = self.aggs.iter().map(|(_, f)| f.new_acc()).collect();
            let mut key_row = record
                .value
                .project(&self.key_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>());
            for k in absorbed {
                let st = self.state.remove(&k).expect("collected above");
                for (a, b) in accs.iter_mut().zip(&st.accs) {
                    a.merge(b);
                }
                key_row = st.key_row;
            }
            for (acc, (_, f)) in accs.iter_mut().zip(&self.aggs) {
                acc.add(f, &record.value);
            }
            self.state.insert(
                (key, merged.start, merged.end),
                WindowState { key_row, accs },
            );
        } else {
            let key_cols = &self.key_cols;
            let aggs = &self.aggs;
            let entry = self
                .state
                .entry((key, window.start, window.end))
                .or_insert_with(|| WindowState {
                    key_row: record
                        .value
                        .project(&key_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>()),
                    accs: aggs.iter().map(|(_, f)| f.new_acc()).collect(),
                });
            for (acc, (_, f)) in entry.accs.iter_mut().zip(aggs) {
                acc.add(f, &record.value);
            }
        }
    }
}

impl Operator for WindowAggregateOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        let _ = out;
        let key = key_string(&record.value, &self.key_cols);
        for window in self.assigner.assign(record.timestamp) {
            if window.end + self.allowed_lateness <= self.watermark {
                self.late_dropped += 1;
                continue;
            }
            self.fold_into(key.clone(), window, &record);
        }
        Ok(())
    }

    /// Batched fold: grouping keys (and their hashes) are computed once
    /// per batch in a first pass, then consecutive records hitting the
    /// same (key, window) fold into a single state entry without repeating
    /// the map lookup. Fold order is per-record order, so results are
    /// byte-identical to the per-record path.
    fn process_batch(&mut self, batch: &mut Vec<Record>, out: &mut OperatorOutput) -> Result<()> {
        let _ = out;
        if self.assigner.is_session() {
            // sessions merge state across records: per-record path
            for record in batch.drain(..) {
                self.process(record, out)?;
            }
            return Ok(());
        }
        let keys: Vec<(u64, String)> = batch
            .iter()
            .map(|r| {
                let k = key_string(&r.value, &self.key_cols);
                (Value::hash_of_str(&k), k)
            })
            .collect();
        let lateness = self.allowed_lateness;
        let wm = self.watermark;
        let n = batch.len();
        let mut i = 0;
        while i < n {
            match self.assigner.single_window(batch[i].timestamp) {
                Some(win) => {
                    if win.end + lateness <= wm {
                        self.late_dropped += 1;
                        i += 1;
                        continue;
                    }
                    let aggs = &self.aggs;
                    let key_cols = &self.key_cols;
                    let first = &batch[i];
                    let entry = self
                        .state
                        .entry((keys[i].1.clone(), win.start, win.end))
                        .or_insert_with(|| WindowState {
                            key_row: first
                                .value
                                .project(&key_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>()),
                            accs: aggs.iter().map(|(_, f)| f.new_acc()).collect(),
                        });
                    loop {
                        for (acc, (_, f)) in entry.accs.iter_mut().zip(aggs) {
                            acc.add(f, &batch[i].value);
                        }
                        i += 1;
                        if i >= n
                            || keys[i].0 != keys[i - 1].0
                            || keys[i].1 != keys[i - 1].1
                            || self.assigner.single_window(batch[i].timestamp) != Some(win)
                        {
                            break;
                        }
                    }
                }
                None => {
                    // sliding windows: fold once per assigned window with
                    // the precomputed key
                    for window in self.assigner.assign(batch[i].timestamp) {
                        if window.end + lateness <= wm {
                            self.late_dropped += 1;
                            continue;
                        }
                        let record = batch[i].clone();
                        self.fold_into(keys[i].1.clone(), window, &record);
                    }
                    i += 1;
                }
            }
        }
        batch.clear();
        Ok(())
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut OperatorOutput) {
        if wm <= self.watermark {
            return;
        }
        self.watermark = wm;
        let lateness = self.allowed_lateness;
        let ready: Vec<(String, Timestamp, Timestamp)> = self
            .state
            .keys()
            .filter(|(_, _, end)| end.checked_add(lateness).map(|e| e <= wm).unwrap_or(true))
            .cloned()
            .collect();
        for k in ready {
            let st = self.state.remove(&k).expect("key collected above");
            let (_, start, end) = k;
            let mut row = st.key_row.clone();
            row.push("window_start", start);
            row.push("window_end", end);
            for ((name, _), acc) in self.aggs.iter().zip(&st.accs) {
                row.push(name.clone(), acc.result());
            }
            let key = self
                .key_cols
                .first()
                .and_then(|c| st.key_row.get(c).cloned());
            let mut rec = Record::new(row, end - 1);
            rec.key = key;
            out.push(rec);
        }
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_i64(self.watermark);
        buf.put_u64(self.late_dropped);
        buf.put_u32(self.state.len() as u32);
        for ((key, start, end), st) in &self.state {
            buf.put_u32(key.len() as u32);
            buf.put_slice(key.as_bytes());
            buf.put_i64(*start);
            buf.put_i64(*end);
            let rows = encode_rows(std::slice::from_ref(&st.key_row));
            buf.put_u32(rows.len() as u32);
            buf.put_slice(&rows);
            buf.put_u32(st.accs.len() as u32);
            for a in &st.accs {
                a.encode(&mut buf);
            }
        }
        buf.freeze()
    }

    fn restore(&mut self, data: Bytes) -> Result<()> {
        let mut buf = data;
        if buf.remaining() < 20 {
            return Err(Error::Corruption("truncated window-agg snapshot".into()));
        }
        self.watermark = buf.get_i64();
        self.late_dropped = buf.get_u64();
        let n = buf.get_u32() as usize;
        self.state.clear();
        for _ in 0..n {
            let klen = buf.get_u32() as usize;
            let key = String::from_utf8(buf.split_to(klen).to_vec())
                .map_err(|_| Error::Corruption("bad key".into()))?;
            let start = buf.get_i64();
            let end = buf.get_i64();
            let rlen = buf.get_u32() as usize;
            let rows = decode_rows(&buf.split_to(rlen))?;
            let key_row = rows.into_iter().next().unwrap_or_default();
            let na = buf.get_u32() as usize;
            let mut accs = Vec::with_capacity(na);
            for _ in 0..na {
                accs.push(AggAcc::decode(&mut buf)?);
            }
            self.state
                .insert((key, start, end), WindowState { key_row, accs });
        }
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        self.state
            .values()
            .map(|st| {
                st.key_row.approx_bytes()
                    + st.accs.iter().map(AggAcc::memory_bytes).sum::<usize>()
                    + 48
            })
            .sum()
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn late_dropped(&self) -> u64 {
        self.late_dropped
    }
}

/// A chain of operators fused into one stage — Flink's operator chaining.
///
/// Records flow member-to-member through reused scratch buffers with no
/// channel hop, no per-record `StagedMsg`, and no extra thread. Built by
/// [`fuse_stateless`]; the runtime treats it as any other operator, and
/// [`Operator::operator_names`] still reports every member for stats.
pub struct FusedOp {
    name: String,
    ops: Vec<Box<dyn Operator>>,
    /// Staging buffer for single-record `process` calls.
    single: Vec<Record>,
    /// Reused ping-pong buffer between chain members.
    scratch: Vec<Record>,
    /// Error raised while cascading a watermark (which can't return one);
    /// surfaced at the next fallible call.
    pending_error: Option<Error>,
}

impl FusedOp {
    pub fn new(ops: Vec<Box<dyn Operator>>) -> Self {
        assert!(!ops.is_empty(), "fused chain needs at least one operator");
        let name = format!(
            "fused[{}]",
            ops.iter().map(|o| o.name()).collect::<Vec<_>>().join("->")
        );
        FusedOp {
            name,
            ops,
            single: Vec::with_capacity(1),
            scratch: Vec::new(),
            pending_error: None,
        }
    }

    /// Run `batch` through every member in order; the last member writes
    /// into `out`. Buffers are recycled across calls.
    fn run_chain(&mut self, batch: &mut Vec<Record>, out: &mut OperatorOutput) -> Result<()> {
        let last = self.ops.len() - 1;
        let mut cur = std::mem::take(batch);
        let mut next = std::mem::take(&mut self.scratch);
        for (i, op) in self.ops.iter_mut().enumerate() {
            if i == last {
                op.process_batch(&mut cur, out)?;
            } else {
                next.clear();
                op.process_batch(&mut cur, &mut next)?;
                std::mem::swap(&mut cur, &mut next);
            }
        }
        *batch = cur; // drained by the first member; keep the allocation
        self.scratch = next;
        Ok(())
    }
}

impl Operator for FusedOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        if let Some(e) = self.pending_error.take() {
            return Err(e);
        }
        let mut batch = std::mem::take(&mut self.single);
        batch.push(record);
        let res = self.run_chain(&mut batch, out);
        self.single = batch;
        res
    }

    fn process_batch(&mut self, batch: &mut Vec<Record>, out: &mut OperatorOutput) -> Result<()> {
        if let Some(e) = self.pending_error.take() {
            return Err(e);
        }
        self.run_chain(batch, out)
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut OperatorOutput) {
        // anything member i emits on the watermark must pass through
        // members i+1.. before the watermark itself reaches them
        let last = self.ops.len() - 1;
        let mut pending: Vec<Record> = Vec::new();
        for i in 0..self.ops.len() {
            let mut emitted = Vec::new();
            if !pending.is_empty() {
                let dst = if i == last { &mut *out } else { &mut emitted };
                if let Err(e) = self.ops[i].process_batch(&mut pending, dst) {
                    self.pending_error.get_or_insert(e);
                    return;
                }
            }
            let dst = if i == last { &mut *out } else { &mut emitted };
            self.ops[i].on_watermark(wm, dst);
            pending = emitted;
        }
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(self.ops.len() as u32);
        for op in &self.ops {
            let s = op.snapshot();
            buf.put_u32(s.len() as u32);
            buf.put_slice(&s);
        }
        buf.freeze()
    }

    fn restore(&mut self, data: Bytes) -> Result<()> {
        let mut buf = data;
        if buf.remaining() < 4 {
            return Err(Error::Corruption("truncated fused snapshot".into()));
        }
        let n = buf.get_u32() as usize;
        if n != self.ops.len() {
            return Err(Error::Corruption(format!(
                "fused snapshot has {n} members, chain has {}",
                self.ops.len()
            )));
        }
        for op in &mut self.ops {
            if buf.remaining() < 4 {
                return Err(Error::Corruption("truncated fused snapshot".into()));
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(Error::Corruption("truncated fused snapshot".into()));
            }
            op.restore(buf.split_to(len))?;
        }
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        self.ops.iter().map(|o| o.memory_bytes()).sum()
    }

    fn is_stateful(&self) -> bool {
        self.ops.iter().any(|o| o.is_stateful())
    }

    fn operator_names(&self) -> Vec<String> {
        self.ops.iter().flat_map(|o| o.operator_names()).collect()
    }

    fn late_dropped(&self) -> u64 {
        self.ops.iter().map(|o| o.late_dropped()).sum()
    }
}

fn flush_fuse_run(out: &mut Vec<Box<dyn Operator>>, run: &mut Vec<Box<dyn Operator>>) {
    match run.len() {
        0 => {}
        1 => out.push(run.pop().expect("len checked")),
        _ => out.push(Box::new(FusedOp::new(std::mem::take(run)))),
    }
}

/// The operator-chaining pass: collapse every maximal run of two or more
/// adjacent stateless operators into a single [`FusedOp`] stage. Stateful
/// operators (windowed aggregation, joins) keep their own stage so their
/// snapshots stay addressable and their thread stays isolated; singleton
/// stateless operators pass through unchanged.
pub fn fuse_stateless(ops: Vec<Box<dyn Operator>>) -> Vec<Box<dyn Operator>> {
    let mut out: Vec<Box<dyn Operator>> = Vec::with_capacity(ops.len());
    let mut run: Vec<Box<dyn Operator>> = Vec::new();
    for op in ops {
        if op.is_stateful() {
            flush_fuse_run(&mut out, &mut run);
            out.push(op);
        } else {
            run.push(op);
        }
    }
    flush_fuse_run(&mut out, &mut run);
    out
}

/// Column that tags which input stream a record of a unioned source came
/// from (see [`crate::source::UnionSource`]).
pub const STREAM_TAG: &str = "__stream";

/// Windowed stream-stream inner join on a key column.
///
/// Inputs must carry [`STREAM_TAG`] identifying their side. Emits one
/// merged row per matching (left, right) pair within the same tumbling
/// window. This is the paper's "stream-stream join job [that] will almost
/// always be memory bound" (§4.2.1) and the core of the prediction
/// monitoring pipeline (§5.3: joining predictions to observed outcomes).
pub struct WindowJoinOp {
    name: String,
    key_col: String,
    left_tag: String,
    right_tag: String,
    window_ms: i64,
    /// (key, window_start) -> (left rows, right rows)
    state: BTreeMap<(String, Timestamp), (Vec<Row>, Vec<Row>)>,
    watermark: Timestamp,
    dropped: u64,
}

impl WindowJoinOp {
    pub fn new(
        name: impl Into<String>,
        key_col: impl Into<String>,
        left_tag: impl Into<String>,
        right_tag: impl Into<String>,
        window_ms: i64,
    ) -> Self {
        assert!(window_ms > 0);
        WindowJoinOp {
            name: name.into(),
            key_col: key_col.into(),
            left_tag: left_tag.into(),
            right_tag: right_tag.into(),
            window_ms,
            state: BTreeMap::new(),
            watermark: Timestamp::MIN,
            dropped: 0,
        }
    }

    fn merge_rows(left: &Row, right: &Row) -> Row {
        let mut out = left.clone();
        for (name, value) in right.iter() {
            if name == STREAM_TAG {
                continue;
            }
            if out.get(name).is_none() {
                out.push(name.to_string(), value.clone());
            } else if name != "window_start" {
                out.push(format!("r_{name}"), value.clone());
            }
        }
        out
    }
}

impl Operator for WindowJoinOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        let tag = record
            .value
            .get_str(STREAM_TAG)
            .ok_or_else(|| Error::InvalidArgument("join input missing __stream tag".into()))?
            .to_string();
        let win_start = record.timestamp.div_euclid(self.window_ms) * self.window_ms;
        if win_start + self.window_ms <= self.watermark {
            self.dropped += 1;
            return Ok(());
        }
        let key = key_string(&record.value, std::slice::from_ref(&self.key_col));
        let mut row = record.value.clone();
        // strip the tag from the stored row
        row.set(STREAM_TAG, Value::Null);
        let entry = self
            .state
            .entry((key, win_start))
            .or_insert_with(|| (Vec::new(), Vec::new()));
        if tag == self.left_tag {
            for r in &entry.1 {
                let mut joined = Self::merge_rows(&record.value, r);
                joined.set(STREAM_TAG, Value::Null);
                let mut rec = Record::new(joined, record.timestamp);
                rec.key = record.key.clone();
                out.push(rec);
            }
            entry.0.push(record.value);
        } else if tag == self.right_tag {
            for l in &entry.0 {
                let mut joined = Self::merge_rows(l, &record.value);
                joined.set(STREAM_TAG, Value::Null);
                let mut rec = Record::new(joined, record.timestamp);
                rec.key = record.key.clone();
                out.push(rec);
            }
            entry.1.push(record.value);
        } else {
            return Err(Error::InvalidArgument(format!(
                "unknown stream tag '{tag}' (expected '{}' or '{}')",
                self.left_tag, self.right_tag
            )));
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: Timestamp, _out: &mut OperatorOutput) {
        if wm <= self.watermark {
            return;
        }
        self.watermark = wm;
        let window = self.window_ms;
        self.state.retain(|(_, start), _| start + window > wm);
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_i64(self.watermark);
        buf.put_u64(self.dropped);
        buf.put_u32(self.state.len() as u32);
        for ((key, start), (left, right)) in &self.state {
            buf.put_u32(key.len() as u32);
            buf.put_slice(key.as_bytes());
            buf.put_i64(*start);
            let l = encode_rows(left);
            buf.put_u32(l.len() as u32);
            buf.put_slice(&l);
            let r = encode_rows(right);
            buf.put_u32(r.len() as u32);
            buf.put_slice(&r);
        }
        buf.freeze()
    }

    fn restore(&mut self, data: Bytes) -> Result<()> {
        let mut buf = data;
        if buf.remaining() < 20 {
            return Err(Error::Corruption("truncated join snapshot".into()));
        }
        self.watermark = buf.get_i64();
        self.dropped = buf.get_u64();
        let n = buf.get_u32() as usize;
        self.state.clear();
        for _ in 0..n {
            let klen = buf.get_u32() as usize;
            let key = String::from_utf8(buf.split_to(klen).to_vec())
                .map_err(|_| Error::Corruption("bad key".into()))?;
            let start = buf.get_i64();
            let llen = buf.get_u32() as usize;
            let left = decode_rows(&buf.split_to(llen))?;
            let rlen = buf.get_u32() as usize;
            let right = decode_rows(&buf.split_to(rlen))?;
            self.state.insert((key, start), (left, right));
        }
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        self.state
            .values()
            .map(|(l, r)| {
                l.iter().map(Row::approx_bytes).sum::<usize>()
                    + r.iter().map(Row::approx_bytes).sum::<usize>()
                    + 48
            })
            .sum()
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn late_dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: Timestamp, row: Row) -> Record {
        Record::new(row, ts)
    }

    fn drain(op: &mut dyn Operator, records: Vec<Record>, final_wm: Timestamp) -> Vec<Record> {
        let mut out = Vec::new();
        for r in records {
            op.process(r, &mut out).unwrap();
        }
        op.on_watermark(final_wm, &mut out);
        out
    }

    #[test]
    fn map_transforms_rows() {
        let mut op = MapOp::new("double", |r: &Row| {
            Row::new().with("x", r.get_int("x").unwrap_or(0) * 2)
        });
        let out = drain(&mut op, vec![rec(0, Row::new().with("x", 21i64))], 100);
        assert_eq!(out[0].value.get_int("x"), Some(42));
    }

    #[test]
    fn filter_drops_rows() {
        let mut op = FilterOp::new("evens", |r: &Row| r.get_int("x").unwrap_or(0) % 2 == 0);
        let records = (0..10).map(|i| rec(i, Row::new().with("x", i))).collect();
        let out = drain(&mut op, records, 100);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn flatmap_expands() {
        let mut op = FlatMapOp::new("dup", |r: &Record| vec![r.clone(), r.clone()]);
        let out = drain(&mut op, vec![rec(0, Row::new())], 100);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn window_aggregate_counts_per_key_per_window() {
        let mut op = WindowAggregateOp::new(
            "agg",
            vec!["city".into()],
            WindowAssigner::tumbling(1000),
            vec![
                ("trips".into(), AggFn::Count),
                ("total_fare".into(), AggFn::Sum("fare".into())),
            ],
            0,
        );
        let mut records = Vec::new();
        for i in 0..10 {
            records.push(rec(
                i * 300,
                Row::new()
                    .with("city", if i % 2 == 0 { "sf" } else { "la" })
                    .with("fare", 1.0),
            ));
        }
        let out = drain(&mut op, records, i64::MAX);
        // 3 windows (0-1000, 1000-2000, 2000-3000) x up to 2 keys
        let sf_first = out
            .iter()
            .find(|r| {
                r.value.get_str("city") == Some("sf") && r.value.get_int("window_start") == Some(0)
            })
            .unwrap();
        assert_eq!(sf_first.value.get_int("trips"), Some(2)); // i=0 (t 0) and i=2 (t 600)
        assert_eq!(sf_first.value.get_double("total_fare"), Some(2.0));
        let total: i64 = out.iter().map(|r| r.value.get_int("trips").unwrap()).sum();
        assert_eq!(total, 10);
        assert_eq!(op.late_dropped(), 0);
    }

    #[test]
    fn late_records_dropped_after_watermark() {
        let mut op = WindowAggregateOp::new(
            "agg",
            vec!["k".into()],
            WindowAssigner::tumbling(1000),
            vec![("n".into(), AggFn::Count)],
            0,
        );
        let mut out = Vec::new();
        op.process(rec(100, Row::new().with("k", "a")), &mut out)
            .unwrap();
        op.on_watermark(1500, &mut out); // window [0,1000) closes and emits
        assert_eq!(out.len(), 1);
        // a record for the closed window is late
        op.process(rec(200, Row::new().with("k", "a")), &mut out)
            .unwrap();
        assert_eq!(op.late_dropped(), 1);
        // with lateness allowance it would have been accepted
        let mut op2 = WindowAggregateOp::new(
            "agg",
            vec!["k".into()],
            WindowAssigner::tumbling(1000),
            vec![("n".into(), AggFn::Count)],
            1000,
        );
        let mut out2 = Vec::new();
        op2.process(rec(100, Row::new().with("k", "a")), &mut out2)
            .unwrap();
        op2.on_watermark(1500, &mut out2); // not emitted yet: lateness holds it
        assert!(out2.is_empty());
        op2.process(rec(200, Row::new().with("k", "a")), &mut out2)
            .unwrap();
        assert_eq!(op2.late_dropped(), 0);
        op2.on_watermark(2100, &mut out2);
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].value.get_int("n"), Some(2));
    }

    #[test]
    fn window_emission_timestamp_is_window_end_minus_one() {
        let mut op = WindowAggregateOp::new(
            "agg",
            vec!["k".into()],
            WindowAssigner::tumbling(1000),
            vec![("n".into(), AggFn::Count)],
            0,
        );
        let out = drain(&mut op, vec![rec(5, Row::new().with("k", "a"))], i64::MAX);
        assert_eq!(out[0].timestamp, 999);
        assert_eq!(out[0].key, Some(Value::Str("a".into())));
    }

    #[test]
    fn session_windows_merge() {
        let mut op = WindowAggregateOp::new(
            "sessions",
            vec!["user".into()],
            WindowAssigner::session(1000),
            vec![("events".into(), AggFn::Count)],
            0,
        );
        let records = vec![
            rec(0, Row::new().with("user", "u1")),
            rec(500, Row::new().with("user", "u1")), // merges with first
            rec(3000, Row::new().with("user", "u1")), // separate session
            rec(400, Row::new().with("user", "u2")),
        ];
        let out = drain(&mut op, records, i64::MAX);
        assert_eq!(out.len(), 3);
        let u1_first = out
            .iter()
            .find(|r| {
                r.value.get_str("user") == Some("u1") && r.value.get_int("window_start") == Some(0)
            })
            .unwrap();
        assert_eq!(u1_first.value.get_int("events"), Some(2));
        assert_eq!(u1_first.value.get_int("window_end"), Some(1500));
    }

    #[test]
    fn window_agg_snapshot_restore_roundtrip() {
        let mk = || {
            WindowAggregateOp::new(
                "agg",
                vec!["city".into()],
                WindowAssigner::tumbling(1000),
                vec![
                    ("n".into(), AggFn::Count),
                    ("riders".into(), AggFn::DistinctCount("rider".into())),
                ],
                0,
            )
        };
        let mut op = mk();
        let mut out = Vec::new();
        for i in 0..20 {
            op.process(
                rec(
                    i * 100,
                    Row::new()
                        .with("city", "sf")
                        .with("rider", format!("r{}", i % 5)),
                ),
                &mut out,
            )
            .unwrap();
        }
        op.on_watermark(1000, &mut out);
        let emitted_before = out.len();
        let snap = op.snapshot();
        assert!(op.memory_bytes() > 0);

        let mut restored = mk();
        restored.restore(snap).unwrap();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        op.on_watermark(i64::MAX, &mut out_a);
        restored.on_watermark(i64::MAX, &mut out_b);
        assert_eq!(out_a, out_b, "restored operator continues identically");
        assert!(emitted_before >= 1);
    }

    fn map_filter_chain() -> Vec<Box<dyn Operator>> {
        vec![
            Box::new(MapOp::new("inc", |r: &Row| {
                Row::new().with("x", r.get_int("x").unwrap_or(0) + 1)
            })),
            Box::new(FilterOp::new("evens", |r: &Row| {
                r.get_int("x").unwrap_or(0) % 2 == 0
            })),
            Box::new(FlatMapOp::new("dup", |r: &Record| {
                vec![r.clone(), r.clone()]
            })),
        ]
    }

    #[test]
    fn fused_chain_matches_sequential_execution() {
        let records: Vec<Record> = (0..20).map(|i| rec(i, Row::new().with("x", i))).collect();
        // reference: run the chain operator by operator
        let mut expected = records.clone();
        for mut op in map_filter_chain() {
            let mut next = Vec::new();
            for r in expected {
                op.process(r, &mut next).unwrap();
            }
            expected = next;
        }
        let mut fused = FusedOp::new(map_filter_chain());
        assert_eq!(fused.name(), "fused[inc->evens->dup]");
        assert_eq!(fused.operator_names(), vec!["inc", "evens", "dup"]);
        assert!(!fused.is_stateful());
        // per-record path
        let mut got = Vec::new();
        for r in records.clone() {
            fused.process(r, &mut got).unwrap();
        }
        assert_eq!(got, expected);
        // batched path
        let mut fused2 = FusedOp::new(map_filter_chain());
        let mut batch = records;
        let mut got2 = Vec::new();
        fused2.process_batch(&mut batch, &mut got2).unwrap();
        assert!(batch.is_empty());
        assert_eq!(got2, expected);
    }

    #[test]
    fn fuse_stateless_groups_maximal_runs() {
        let ops: Vec<Box<dyn Operator>> = vec![
            Box::new(MapOp::new("a", |r: &Row| r.clone())),
            Box::new(MapOp::new("b", |r: &Row| r.clone())),
            Box::new(WindowAggregateOp::new(
                "agg",
                vec!["k".into()],
                WindowAssigner::tumbling(1000),
                vec![("n".into(), AggFn::Count)],
                0,
            )),
            Box::new(MapOp::new("c", |r: &Row| r.clone())),
        ];
        let fused = fuse_stateless(ops);
        assert_eq!(fused.len(), 3);
        assert_eq!(fused[0].name(), "fused[a->b]");
        assert_eq!(fused[0].operator_names(), vec!["a", "b"]);
        assert_eq!(fused[1].name(), "agg");
        assert!(fused[1].is_stateful());
        assert_eq!(fused[2].name(), "c"); // singleton left unfused
    }

    #[test]
    fn fused_watermark_cascades_through_members() {
        // window-agg emissions on watermark must flow through the
        // downstream map before the watermark moves on
        let ops: Vec<Box<dyn Operator>> = vec![
            Box::new(WindowAggregateOp::new(
                "agg",
                vec!["k".into()],
                WindowAssigner::tumbling(1000),
                vec![("n".into(), AggFn::Count)],
                0,
            )),
            Box::new(MapOp::new("tag", |r: &Row| {
                let mut out = r.clone();
                out.push("tagged", 1i64);
                out
            })),
        ];
        let mut fused = FusedOp::new(ops);
        let mut out = Vec::new();
        fused
            .process(rec(100, Row::new().with("k", "a")), &mut out)
            .unwrap();
        fused.on_watermark(5000, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value.get_int("tagged"), Some(1));
        assert_eq!(out[0].value.get_int("n"), Some(1));
    }

    #[test]
    fn fused_snapshot_restore_roundtrip() {
        let mk = || {
            FusedOp::new(vec![
                Box::new(MapOp::new("id", |r: &Row| r.clone())) as Box<dyn Operator>,
                Box::new(WindowAggregateOp::new(
                    "agg",
                    vec!["k".into()],
                    WindowAssigner::tumbling(1000),
                    vec![("n".into(), AggFn::Count)],
                    0,
                )),
            ])
        };
        let mut op = mk();
        let mut out = Vec::new();
        for i in 0..10 {
            op.process(rec(i * 100, Row::new().with("k", "a")), &mut out)
                .unwrap();
        }
        let snap = op.snapshot();
        let mut restored = mk();
        restored.restore(snap).unwrap();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        op.on_watermark(i64::MAX, &mut out_a);
        restored.on_watermark(i64::MAX, &mut out_b);
        assert_eq!(out_a, out_b);
        assert!(!out_a.is_empty());
    }

    #[test]
    fn window_agg_batched_path_matches_per_record() {
        let mk = |assigner: WindowAssigner| {
            WindowAggregateOp::new(
                "agg",
                vec!["k".into()],
                assigner,
                vec![
                    ("n".into(), AggFn::Count),
                    ("s".into(), AggFn::Sum("v".into())),
                ],
                0,
            )
        };
        for assigner in [
            WindowAssigner::tumbling(700),
            WindowAssigner::sliding(900, 300),
        ] {
            let records: Vec<Record> = (0..60)
                .map(|i| {
                    rec(
                        (i * 137) % 2500, // out of order, with same-key runs
                        Row::new()
                            .with("k", format!("k{}", (i / 7) % 3))
                            .with("v", i as f64),
                    )
                })
                .collect();
            let mut a = mk(assigner);
            let mut b = mk(assigner);
            let mut out_a = Vec::new();
            let mut out_b = Vec::new();
            // interleave a watermark so the late path is exercised too
            for (idx, chunk) in records.chunks(20).enumerate() {
                for r in chunk {
                    a.process(r.clone(), &mut out_a).unwrap();
                }
                let mut batch = chunk.to_vec();
                b.process_batch(&mut batch, &mut out_b).unwrap();
                let wm = 600 * (idx as i64 + 1);
                a.on_watermark(wm, &mut out_a);
                b.on_watermark(wm, &mut out_b);
            }
            a.on_watermark(i64::MAX, &mut out_a);
            b.on_watermark(i64::MAX, &mut out_b);
            assert_eq!(out_a, out_b, "assigner {assigner:?}");
            assert_eq!(Operator::late_dropped(&a), Operator::late_dropped(&b));
        }
    }

    #[test]
    fn join_matches_within_window_only() {
        let mut op = WindowJoinOp::new("join", "model", "pred", "outcome", 1000);
        let mut out = Vec::new();
        let pred = |ts, model: &str, v: f64| {
            rec(
                ts,
                Row::new()
                    .with(STREAM_TAG, "pred")
                    .with("model", model)
                    .with("predicted", v),
            )
        };
        let outcome = |ts, model: &str, v: f64| {
            rec(
                ts,
                Row::new()
                    .with(STREAM_TAG, "outcome")
                    .with("model", model)
                    .with("actual", v),
            )
        };
        op.process(pred(100, "m1", 0.9), &mut out).unwrap();
        op.process(outcome(200, "m1", 1.0), &mut out).unwrap(); // same window -> join
        op.process(outcome(1500, "m1", 0.0), &mut out).unwrap(); // next window -> no match
        op.process(outcome(300, "m2", 0.5), &mut out).unwrap(); // other key -> no match
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value.get_double("predicted"), Some(0.9));
        assert_eq!(out[0].value.get_double("actual"), Some(1.0));
        assert!(op.memory_bytes() > 0);
    }

    #[test]
    fn join_state_evicted_by_watermark() {
        let mut op = WindowJoinOp::new("join", "k", "l", "r", 1000);
        let mut out = Vec::new();
        op.process(
            rec(
                100,
                Row::new()
                    .with(STREAM_TAG, "l")
                    .with("k", "a")
                    .with("x", 1i64),
            ),
            &mut out,
        )
        .unwrap();
        let before = op.memory_bytes();
        op.on_watermark(2000, &mut out);
        assert!(op.memory_bytes() < before);
        // matching record now arrives too late: dropped, no join output
        op.process(
            rec(
                150,
                Row::new()
                    .with(STREAM_TAG, "r")
                    .with("k", "a")
                    .with("y", 2i64),
            ),
            &mut out,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn join_rejects_untagged_input() {
        let mut op = WindowJoinOp::new("join", "k", "l", "r", 1000);
        let mut out = Vec::new();
        assert!(op
            .process(rec(0, Row::new().with("k", "a")), &mut out)
            .is_err());
        assert!(op
            .process(
                rec(0, Row::new().with(STREAM_TAG, "zzz").with("k", "a")),
                &mut out
            )
            .is_err());
    }

    #[test]
    fn join_snapshot_restore_roundtrip() {
        let mut op = WindowJoinOp::new("join", "k", "l", "r", 1000);
        let mut out = Vec::new();
        for i in 0..10 {
            op.process(
                rec(
                    i * 50,
                    Row::new()
                        .with(STREAM_TAG, "l")
                        .with("k", format!("k{}", i % 3))
                        .with("x", i),
                ),
                &mut out,
            )
            .unwrap();
        }
        let snap = op.snapshot();
        let mut restored = WindowJoinOp::new("join", "k", "l", "r", 1000);
        restored.restore(snap).unwrap();
        // a right-side record joins against restored left buffers
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        let right = rec(
            400,
            Row::new()
                .with(STREAM_TAG, "r")
                .with("k", "k0")
                .with("y", 7i64),
        );
        op.process(right.clone(), &mut out_a).unwrap();
        restored.process(right, &mut out_b).unwrap();
        assert_eq!(out_a.len(), out_b.len());
        assert!(!out_b.is_empty());
    }
}
