//! Dataflow operators.
//!
//! A job is a linear chain of operators; records flow through
//! [`Operator::process`] and event-time progress flows through
//! [`Operator::on_watermark`]. Stateful operators (windowed aggregation,
//! windowed stream-stream join) expose snapshot/restore for the
//! checkpointing runtime — the Flink "state management and checkpointing
//! features for failure recovery" the paper names as the reason it chose
//! Flink (§4.2).

use crate::aggregate::{AggAcc, AggFn};
use crate::window::{Window, WindowAssigner};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rtdi_common::{Error, Record, Result, Row, Timestamp, Value};
use rtdi_storage::archival::{decode_rows, encode_rows};
use std::collections::BTreeMap;

/// Convenience alias for operator emission buffers.
pub type OperatorOutput = Vec<Record>;

/// One stage of a dataflow.
pub trait Operator: Send {
    fn name(&self) -> &str;

    /// Process one record, appending any outputs.
    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()>;

    /// Event time advanced to `wm`; flush anything that became complete.
    fn on_watermark(&mut self, _wm: Timestamp, _out: &mut OperatorOutput) {}

    /// Serialize operator state for a checkpoint.
    fn snapshot(&self) -> Bytes {
        Bytes::new()
    }

    /// Restore from a checkpoint snapshot.
    fn restore(&mut self, _data: Bytes) -> Result<()> {
        Ok(())
    }

    /// Approximate live state size; drives the auto-scaler's
    /// CPU-bound-vs-memory-bound classification (§4.2.1).
    fn memory_bytes(&self) -> usize {
        0
    }

    fn is_stateful(&self) -> bool {
        false
    }
}

/// Stateless 1:1 row transform.
pub struct MapOp {
    name: String,
    f: Box<dyn FnMut(&Row) -> Row + Send>,
}

impl MapOp {
    pub fn new(name: impl Into<String>, f: impl FnMut(&Row) -> Row + Send + 'static) -> Self {
        MapOp {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for MapOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, mut record: Record, out: &mut OperatorOutput) -> Result<()> {
        record.value = (self.f)(&record.value);
        out.push(record);
        Ok(())
    }
}

/// Stateless predicate filter.
pub struct FilterOp {
    name: String,
    pred: Box<dyn FnMut(&Row) -> bool + Send>,
}

impl FilterOp {
    pub fn new(name: impl Into<String>, pred: impl FnMut(&Row) -> bool + Send + 'static) -> Self {
        FilterOp {
            name: name.into(),
            pred: Box::new(pred),
        }
    }
}

impl Operator for FilterOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        if (self.pred)(&record.value) {
            out.push(record);
        }
        Ok(())
    }
}

type FlatMapFn = Box<dyn FnMut(&Record) -> Vec<Record> + Send>;

/// Stateless 1:N transform; may re-key and re-time outputs.
pub struct FlatMapOp {
    name: String,
    f: FlatMapFn,
}

impl FlatMapOp {
    pub fn new(
        name: impl Into<String>,
        f: impl FnMut(&Record) -> Vec<Record> + Send + 'static,
    ) -> Self {
        FlatMapOp {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for FlatMapOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        out.extend((self.f)(&record));
        Ok(())
    }
}

/// Encode a grouping key from rows deterministically.
fn key_string(row: &Row, cols: &[String]) -> String {
    let mut s = String::new();
    for (i, c) in cols.iter().enumerate() {
        if i > 0 {
            s.push('\u{1f}');
        }
        match row.get(c) {
            Some(v) => s.push_str(&v.to_string()),
            None => s.push('\u{0}'),
        }
    }
    s
}

#[derive(Debug, Clone)]
struct WindowState {
    key_row: Row,
    accs: Vec<AggAcc>,
}

/// Keyed event-time window aggregation.
///
/// Emits one row per (key, window) when the watermark passes
/// `window.end + allowed_lateness`. Output rows carry the key columns,
/// `window_start`, `window_end` and one column per aggregate.
pub struct WindowAggregateOp {
    name: String,
    key_cols: Vec<String>,
    assigner: WindowAssigner,
    aggs: Vec<(String, AggFn)>,
    allowed_lateness: i64,
    /// (key, window_start, window_end) -> state, ordered so that emission
    /// and snapshots are deterministic.
    state: BTreeMap<(String, Timestamp, Timestamp), WindowState>,
    watermark: Timestamp,
    late_dropped: u64,
}

impl WindowAggregateOp {
    pub fn new(
        name: impl Into<String>,
        key_cols: Vec<String>,
        assigner: WindowAssigner,
        aggs: Vec<(String, AggFn)>,
        allowed_lateness: i64,
    ) -> Self {
        WindowAggregateOp {
            name: name.into(),
            key_cols,
            assigner,
            aggs,
            allowed_lateness: allowed_lateness.max(0),
            state: BTreeMap::new(),
            watermark: Timestamp::MIN,
            late_dropped: 0,
        }
    }

    /// Records dropped for arriving after `window.end + allowed_lateness`
    /// (the surge pipeline's freshness-over-completeness tradeoff, §5.1).
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    fn fold_into(&mut self, key: String, window: Window, record: &Record) {
        // session windows merge overlapping entries of the same key
        if self.assigner.is_session() {
            let mut merged = window;
            let mut absorbed: Vec<(String, Timestamp, Timestamp)> = Vec::new();
            for (k, st) in self
                .state
                .range((key.clone(), Timestamp::MIN, Timestamp::MIN)..)
            {
                if k.0 != key {
                    break;
                }
                let _ = st;
                // overlap if existing [k.1, k.2) intersects [merged.start, merged.end)
                if k.1 < merged.end && merged.start < k.2 {
                    merged.start = merged.start.min(k.1);
                    merged.end = merged.end.max(k.2);
                    absorbed.push(k.clone());
                }
            }
            let mut accs: Vec<AggAcc> = self.aggs.iter().map(|(_, f)| f.new_acc()).collect();
            let mut key_row = record
                .value
                .project(&self.key_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>());
            for k in absorbed {
                let st = self.state.remove(&k).expect("collected above");
                for (a, b) in accs.iter_mut().zip(&st.accs) {
                    a.merge(b);
                }
                key_row = st.key_row;
            }
            for (acc, (_, f)) in accs.iter_mut().zip(&self.aggs) {
                acc.add(f, &record.value);
            }
            self.state.insert(
                (key, merged.start, merged.end),
                WindowState { key_row, accs },
            );
        } else {
            let key_cols = &self.key_cols;
            let aggs = &self.aggs;
            let entry = self
                .state
                .entry((key, window.start, window.end))
                .or_insert_with(|| WindowState {
                    key_row: record
                        .value
                        .project(&key_cols.iter().map(|s| s.as_str()).collect::<Vec<_>>()),
                    accs: aggs.iter().map(|(_, f)| f.new_acc()).collect(),
                });
            for (acc, (_, f)) in entry.accs.iter_mut().zip(aggs) {
                acc.add(f, &record.value);
            }
        }
    }
}

impl Operator for WindowAggregateOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        let _ = out;
        let key = key_string(&record.value, &self.key_cols);
        for window in self.assigner.assign(record.timestamp) {
            if window.end + self.allowed_lateness <= self.watermark {
                self.late_dropped += 1;
                continue;
            }
            self.fold_into(key.clone(), window, &record);
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut OperatorOutput) {
        if wm <= self.watermark {
            return;
        }
        self.watermark = wm;
        let lateness = self.allowed_lateness;
        let ready: Vec<(String, Timestamp, Timestamp)> = self
            .state
            .keys()
            .filter(|(_, _, end)| end.checked_add(lateness).map(|e| e <= wm).unwrap_or(true))
            .cloned()
            .collect();
        for k in ready {
            let st = self.state.remove(&k).expect("key collected above");
            let (_, start, end) = k;
            let mut row = st.key_row.clone();
            row.push("window_start", start);
            row.push("window_end", end);
            for ((name, _), acc) in self.aggs.iter().zip(&st.accs) {
                row.push(name.clone(), acc.result());
            }
            let key = self
                .key_cols
                .first()
                .and_then(|c| st.key_row.get(c).cloned());
            let mut rec = Record::new(row, end - 1);
            rec.key = key;
            out.push(rec);
        }
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_i64(self.watermark);
        buf.put_u64(self.late_dropped);
        buf.put_u32(self.state.len() as u32);
        for ((key, start, end), st) in &self.state {
            buf.put_u32(key.len() as u32);
            buf.put_slice(key.as_bytes());
            buf.put_i64(*start);
            buf.put_i64(*end);
            let rows = encode_rows(std::slice::from_ref(&st.key_row));
            buf.put_u32(rows.len() as u32);
            buf.put_slice(&rows);
            buf.put_u32(st.accs.len() as u32);
            for a in &st.accs {
                a.encode(&mut buf);
            }
        }
        buf.freeze()
    }

    fn restore(&mut self, data: Bytes) -> Result<()> {
        let mut buf = data;
        if buf.remaining() < 20 {
            return Err(Error::Corruption("truncated window-agg snapshot".into()));
        }
        self.watermark = buf.get_i64();
        self.late_dropped = buf.get_u64();
        let n = buf.get_u32() as usize;
        self.state.clear();
        for _ in 0..n {
            let klen = buf.get_u32() as usize;
            let key = String::from_utf8(buf.split_to(klen).to_vec())
                .map_err(|_| Error::Corruption("bad key".into()))?;
            let start = buf.get_i64();
            let end = buf.get_i64();
            let rlen = buf.get_u32() as usize;
            let rows = decode_rows(&buf.split_to(rlen))?;
            let key_row = rows.into_iter().next().unwrap_or_default();
            let na = buf.get_u32() as usize;
            let mut accs = Vec::with_capacity(na);
            for _ in 0..na {
                accs.push(AggAcc::decode(&mut buf)?);
            }
            self.state
                .insert((key, start, end), WindowState { key_row, accs });
        }
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        self.state
            .values()
            .map(|st| {
                st.key_row.approx_bytes()
                    + st.accs.iter().map(AggAcc::memory_bytes).sum::<usize>()
                    + 48
            })
            .sum()
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

/// Column that tags which input stream a record of a unioned source came
/// from (see [`crate::source::UnionSource`]).
pub const STREAM_TAG: &str = "__stream";

/// Windowed stream-stream inner join on a key column.
///
/// Inputs must carry [`STREAM_TAG`] identifying their side. Emits one
/// merged row per matching (left, right) pair within the same tumbling
/// window. This is the paper's "stream-stream join job [that] will almost
/// always be memory bound" (§4.2.1) and the core of the prediction
/// monitoring pipeline (§5.3: joining predictions to observed outcomes).
pub struct WindowJoinOp {
    name: String,
    key_col: String,
    left_tag: String,
    right_tag: String,
    window_ms: i64,
    /// (key, window_start) -> (left rows, right rows)
    state: BTreeMap<(String, Timestamp), (Vec<Row>, Vec<Row>)>,
    watermark: Timestamp,
    dropped: u64,
}

impl WindowJoinOp {
    pub fn new(
        name: impl Into<String>,
        key_col: impl Into<String>,
        left_tag: impl Into<String>,
        right_tag: impl Into<String>,
        window_ms: i64,
    ) -> Self {
        assert!(window_ms > 0);
        WindowJoinOp {
            name: name.into(),
            key_col: key_col.into(),
            left_tag: left_tag.into(),
            right_tag: right_tag.into(),
            window_ms,
            state: BTreeMap::new(),
            watermark: Timestamp::MIN,
            dropped: 0,
        }
    }

    fn merge_rows(left: &Row, right: &Row) -> Row {
        let mut out = left.clone();
        for (name, value) in right.iter() {
            if name == STREAM_TAG {
                continue;
            }
            if out.get(name).is_none() {
                out.push(name.to_string(), value.clone());
            } else if name != "window_start" {
                out.push(format!("r_{name}"), value.clone());
            }
        }
        out
    }
}

impl Operator for WindowJoinOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, record: Record, out: &mut OperatorOutput) -> Result<()> {
        let tag = record
            .value
            .get_str(STREAM_TAG)
            .ok_or_else(|| Error::InvalidArgument("join input missing __stream tag".into()))?
            .to_string();
        let win_start = record.timestamp.div_euclid(self.window_ms) * self.window_ms;
        if win_start + self.window_ms <= self.watermark {
            self.dropped += 1;
            return Ok(());
        }
        let key = key_string(&record.value, std::slice::from_ref(&self.key_col));
        let mut row = record.value.clone();
        // strip the tag from the stored row
        row.set(STREAM_TAG, Value::Null);
        let entry = self
            .state
            .entry((key, win_start))
            .or_insert_with(|| (Vec::new(), Vec::new()));
        if tag == self.left_tag {
            for r in &entry.1 {
                let mut joined = Self::merge_rows(&record.value, r);
                joined.set(STREAM_TAG, Value::Null);
                let mut rec = Record::new(joined, record.timestamp);
                rec.key = record.key.clone();
                out.push(rec);
            }
            entry.0.push(record.value);
        } else if tag == self.right_tag {
            for l in &entry.0 {
                let mut joined = Self::merge_rows(l, &record.value);
                joined.set(STREAM_TAG, Value::Null);
                let mut rec = Record::new(joined, record.timestamp);
                rec.key = record.key.clone();
                out.push(rec);
            }
            entry.1.push(record.value);
        } else {
            return Err(Error::InvalidArgument(format!(
                "unknown stream tag '{tag}' (expected '{}' or '{}')",
                self.left_tag, self.right_tag
            )));
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: Timestamp, _out: &mut OperatorOutput) {
        if wm <= self.watermark {
            return;
        }
        self.watermark = wm;
        let window = self.window_ms;
        self.state.retain(|(_, start), _| start + window > wm);
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_i64(self.watermark);
        buf.put_u64(self.dropped);
        buf.put_u32(self.state.len() as u32);
        for ((key, start), (left, right)) in &self.state {
            buf.put_u32(key.len() as u32);
            buf.put_slice(key.as_bytes());
            buf.put_i64(*start);
            let l = encode_rows(left);
            buf.put_u32(l.len() as u32);
            buf.put_slice(&l);
            let r = encode_rows(right);
            buf.put_u32(r.len() as u32);
            buf.put_slice(&r);
        }
        buf.freeze()
    }

    fn restore(&mut self, data: Bytes) -> Result<()> {
        let mut buf = data;
        if buf.remaining() < 20 {
            return Err(Error::Corruption("truncated join snapshot".into()));
        }
        self.watermark = buf.get_i64();
        self.dropped = buf.get_u64();
        let n = buf.get_u32() as usize;
        self.state.clear();
        for _ in 0..n {
            let klen = buf.get_u32() as usize;
            let key = String::from_utf8(buf.split_to(klen).to_vec())
                .map_err(|_| Error::Corruption("bad key".into()))?;
            let start = buf.get_i64();
            let llen = buf.get_u32() as usize;
            let left = decode_rows(&buf.split_to(llen))?;
            let rlen = buf.get_u32() as usize;
            let right = decode_rows(&buf.split_to(rlen))?;
            self.state.insert((key, start), (left, right));
        }
        Ok(())
    }

    fn memory_bytes(&self) -> usize {
        self.state
            .values()
            .map(|(l, r)| {
                l.iter().map(Row::approx_bytes).sum::<usize>()
                    + r.iter().map(Row::approx_bytes).sum::<usize>()
                    + 48
            })
            .sum()
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: Timestamp, row: Row) -> Record {
        Record::new(row, ts)
    }

    fn drain(op: &mut dyn Operator, records: Vec<Record>, final_wm: Timestamp) -> Vec<Record> {
        let mut out = Vec::new();
        for r in records {
            op.process(r, &mut out).unwrap();
        }
        op.on_watermark(final_wm, &mut out);
        out
    }

    #[test]
    fn map_transforms_rows() {
        let mut op = MapOp::new("double", |r: &Row| {
            Row::new().with("x", r.get_int("x").unwrap_or(0) * 2)
        });
        let out = drain(&mut op, vec![rec(0, Row::new().with("x", 21i64))], 100);
        assert_eq!(out[0].value.get_int("x"), Some(42));
    }

    #[test]
    fn filter_drops_rows() {
        let mut op = FilterOp::new("evens", |r: &Row| r.get_int("x").unwrap_or(0) % 2 == 0);
        let records = (0..10).map(|i| rec(i, Row::new().with("x", i))).collect();
        let out = drain(&mut op, records, 100);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn flatmap_expands() {
        let mut op = FlatMapOp::new("dup", |r: &Record| vec![r.clone(), r.clone()]);
        let out = drain(&mut op, vec![rec(0, Row::new())], 100);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn window_aggregate_counts_per_key_per_window() {
        let mut op = WindowAggregateOp::new(
            "agg",
            vec!["city".into()],
            WindowAssigner::tumbling(1000),
            vec![
                ("trips".into(), AggFn::Count),
                ("total_fare".into(), AggFn::Sum("fare".into())),
            ],
            0,
        );
        let mut records = Vec::new();
        for i in 0..10 {
            records.push(rec(
                i * 300,
                Row::new()
                    .with("city", if i % 2 == 0 { "sf" } else { "la" })
                    .with("fare", 1.0),
            ));
        }
        let out = drain(&mut op, records, i64::MAX);
        // 3 windows (0-1000, 1000-2000, 2000-3000) x up to 2 keys
        let sf_first = out
            .iter()
            .find(|r| {
                r.value.get_str("city") == Some("sf") && r.value.get_int("window_start") == Some(0)
            })
            .unwrap();
        assert_eq!(sf_first.value.get_int("trips"), Some(2)); // i=0 (t 0) and i=2 (t 600)
        assert_eq!(sf_first.value.get_double("total_fare"), Some(2.0));
        let total: i64 = out.iter().map(|r| r.value.get_int("trips").unwrap()).sum();
        assert_eq!(total, 10);
        assert_eq!(op.late_dropped(), 0);
    }

    #[test]
    fn late_records_dropped_after_watermark() {
        let mut op = WindowAggregateOp::new(
            "agg",
            vec!["k".into()],
            WindowAssigner::tumbling(1000),
            vec![("n".into(), AggFn::Count)],
            0,
        );
        let mut out = Vec::new();
        op.process(rec(100, Row::new().with("k", "a")), &mut out)
            .unwrap();
        op.on_watermark(1500, &mut out); // window [0,1000) closes and emits
        assert_eq!(out.len(), 1);
        // a record for the closed window is late
        op.process(rec(200, Row::new().with("k", "a")), &mut out)
            .unwrap();
        assert_eq!(op.late_dropped(), 1);
        // with lateness allowance it would have been accepted
        let mut op2 = WindowAggregateOp::new(
            "agg",
            vec!["k".into()],
            WindowAssigner::tumbling(1000),
            vec![("n".into(), AggFn::Count)],
            1000,
        );
        let mut out2 = Vec::new();
        op2.process(rec(100, Row::new().with("k", "a")), &mut out2)
            .unwrap();
        op2.on_watermark(1500, &mut out2); // not emitted yet: lateness holds it
        assert!(out2.is_empty());
        op2.process(rec(200, Row::new().with("k", "a")), &mut out2)
            .unwrap();
        assert_eq!(op2.late_dropped(), 0);
        op2.on_watermark(2100, &mut out2);
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].value.get_int("n"), Some(2));
    }

    #[test]
    fn window_emission_timestamp_is_window_end_minus_one() {
        let mut op = WindowAggregateOp::new(
            "agg",
            vec!["k".into()],
            WindowAssigner::tumbling(1000),
            vec![("n".into(), AggFn::Count)],
            0,
        );
        let out = drain(&mut op, vec![rec(5, Row::new().with("k", "a"))], i64::MAX);
        assert_eq!(out[0].timestamp, 999);
        assert_eq!(out[0].key, Some(Value::Str("a".into())));
    }

    #[test]
    fn session_windows_merge() {
        let mut op = WindowAggregateOp::new(
            "sessions",
            vec!["user".into()],
            WindowAssigner::session(1000),
            vec![("events".into(), AggFn::Count)],
            0,
        );
        let records = vec![
            rec(0, Row::new().with("user", "u1")),
            rec(500, Row::new().with("user", "u1")), // merges with first
            rec(3000, Row::new().with("user", "u1")), // separate session
            rec(400, Row::new().with("user", "u2")),
        ];
        let out = drain(&mut op, records, i64::MAX);
        assert_eq!(out.len(), 3);
        let u1_first = out
            .iter()
            .find(|r| {
                r.value.get_str("user") == Some("u1") && r.value.get_int("window_start") == Some(0)
            })
            .unwrap();
        assert_eq!(u1_first.value.get_int("events"), Some(2));
        assert_eq!(u1_first.value.get_int("window_end"), Some(1500));
    }

    #[test]
    fn window_agg_snapshot_restore_roundtrip() {
        let mk = || {
            WindowAggregateOp::new(
                "agg",
                vec!["city".into()],
                WindowAssigner::tumbling(1000),
                vec![
                    ("n".into(), AggFn::Count),
                    ("riders".into(), AggFn::DistinctCount("rider".into())),
                ],
                0,
            )
        };
        let mut op = mk();
        let mut out = Vec::new();
        for i in 0..20 {
            op.process(
                rec(
                    i * 100,
                    Row::new()
                        .with("city", "sf")
                        .with("rider", format!("r{}", i % 5)),
                ),
                &mut out,
            )
            .unwrap();
        }
        op.on_watermark(1000, &mut out);
        let emitted_before = out.len();
        let snap = op.snapshot();
        assert!(op.memory_bytes() > 0);

        let mut restored = mk();
        restored.restore(snap).unwrap();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        op.on_watermark(i64::MAX, &mut out_a);
        restored.on_watermark(i64::MAX, &mut out_b);
        assert_eq!(out_a, out_b, "restored operator continues identically");
        assert!(emitted_before >= 1);
    }

    #[test]
    fn join_matches_within_window_only() {
        let mut op = WindowJoinOp::new("join", "model", "pred", "outcome", 1000);
        let mut out = Vec::new();
        let pred = |ts, model: &str, v: f64| {
            rec(
                ts,
                Row::new()
                    .with(STREAM_TAG, "pred")
                    .with("model", model)
                    .with("predicted", v),
            )
        };
        let outcome = |ts, model: &str, v: f64| {
            rec(
                ts,
                Row::new()
                    .with(STREAM_TAG, "outcome")
                    .with("model", model)
                    .with("actual", v),
            )
        };
        op.process(pred(100, "m1", 0.9), &mut out).unwrap();
        op.process(outcome(200, "m1", 1.0), &mut out).unwrap(); // same window -> join
        op.process(outcome(1500, "m1", 0.0), &mut out).unwrap(); // next window -> no match
        op.process(outcome(300, "m2", 0.5), &mut out).unwrap(); // other key -> no match
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value.get_double("predicted"), Some(0.9));
        assert_eq!(out[0].value.get_double("actual"), Some(1.0));
        assert!(op.memory_bytes() > 0);
    }

    #[test]
    fn join_state_evicted_by_watermark() {
        let mut op = WindowJoinOp::new("join", "k", "l", "r", 1000);
        let mut out = Vec::new();
        op.process(
            rec(
                100,
                Row::new()
                    .with(STREAM_TAG, "l")
                    .with("k", "a")
                    .with("x", 1i64),
            ),
            &mut out,
        )
        .unwrap();
        let before = op.memory_bytes();
        op.on_watermark(2000, &mut out);
        assert!(op.memory_bytes() < before);
        // matching record now arrives too late: dropped, no join output
        op.process(
            rec(
                150,
                Row::new()
                    .with(STREAM_TAG, "r")
                    .with("k", "a")
                    .with("y", 2i64),
            ),
            &mut out,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn join_rejects_untagged_input() {
        let mut op = WindowJoinOp::new("join", "k", "l", "r", 1000);
        let mut out = Vec::new();
        assert!(op
            .process(rec(0, Row::new().with("k", "a")), &mut out)
            .is_err());
        assert!(op
            .process(
                rec(0, Row::new().with(STREAM_TAG, "zzz").with("k", "a")),
                &mut out
            )
            .is_err());
    }

    #[test]
    fn join_snapshot_restore_roundtrip() {
        let mut op = WindowJoinOp::new("join", "k", "l", "r", 1000);
        let mut out = Vec::new();
        for i in 0..10 {
            op.process(
                rec(
                    i * 50,
                    Row::new()
                        .with(STREAM_TAG, "l")
                        .with("k", format!("k{}", i % 3))
                        .with("x", i),
                ),
                &mut out,
            )
            .unwrap();
        }
        let snap = op.snapshot();
        let mut restored = WindowJoinOp::new("join", "k", "l", "r", 1000);
        restored.restore(snap).unwrap();
        // a right-side record joins against restored left buffers
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        let right = rec(
            400,
            Row::new()
                .with(STREAM_TAG, "r")
                .with("k", "k0")
                .with("y", 7i64),
        );
        op.process(right.clone(), &mut out_a).unwrap();
        restored.process(right, &mut out_b).unwrap();
        assert_eq!(out_a.len(), out_b.len());
        assert!(!out_b.is_empty());
    }
}
