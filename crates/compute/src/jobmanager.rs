//! Job lifecycle management (§4.2.1–4.2.2, Figure 5).
//!
//! The job-management layer "manages the Flink job's lifecycle including
//! validation, deployment, monitoring and failure recovery... a shared
//! component in the job management server continuously monitors the health
//! of all jobs and automatically recovers the jobs from the transient
//! failures." It also owns the empirical resource model ("a stateless
//! Flink job ... is CPU bound vs a stream-stream join job will almost
//! always be memory bound") and the rule-based engine that restarts or
//! rescales jobs when metrics drift from the desired state.

use crate::runtime::{
    run_staged_with, Executor, ExecutorConfig, Job, JobRunStats, RescaleHandle, StagedConfig,
    StagedRunStats,
};
use crate::source::SourceThrottle;
use parking_lot::{Mutex, RwLock};
use rtdi_common::{
    Clock, Error, MembershipEvent, MembershipListener, NodeState, PipelineTracer, Result,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

/// Broad job classification driving the resource model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobType {
    /// No windows, no joins: CPU bound.
    Stateless,
    /// Windowed aggregations: mixed.
    WindowedAggregation,
    /// Stream-stream joins: memory bound.
    StreamJoin,
}

/// A deployable job: a factory (so the manager can re-instantiate after
/// failure) plus scheduling metadata.
pub struct JobSpec {
    pub name: String,
    pub job_type: JobType,
    /// Importance tier (0 = most critical); the dispatcher uses it for
    /// placement priority.
    pub tier: u8,
    /// Expected steady-state input rate, used for resource estimation.
    pub expected_records_per_sec: u64,
    pub factory: Box<dyn Fn() -> Job + Send + Sync>,
}

/// An elastically scalable job: like [`JobSpec`] but the factory takes
/// the parallelism to build the operator chain at, so the supervisor can
/// re-instantiate the job wider or narrower across rescale restarts.
pub struct ElasticJobSpec {
    pub name: String,
    pub job_type: JobType,
    pub tier: u8,
    pub expected_records_per_sec: u64,
    pub min_parallelism: usize,
    pub max_parallelism: usize,
    pub factory: Box<dyn Fn(usize) -> Job + Send + Sync>,
}

/// Backlog-driven rescale policy: double while the watched pipeline is
/// staler than the scale-up threshold, halve when it is fresher than the
/// scale-down threshold, always clamped to the spec's bounds.
#[derive(Debug, Clone, Copy)]
pub struct RescalePolicy {
    pub scale_up_staleness_ms: i64,
    pub scale_down_staleness_ms: i64,
}

impl Default for RescalePolicy {
    fn default() -> Self {
        RescalePolicy {
            scale_up_staleness_ms: 5_000,
            scale_down_staleness_ms: 250,
        }
    }
}

impl RescalePolicy {
    /// The parallelism the policy wants given the current one and the
    /// watched staleness (pure, so tests drive it directly).
    pub fn desired(&self, current: usize, min: usize, max: usize, staleness_ms: i64) -> usize {
        let min = min.max(1);
        let max = max.max(min);
        let current = current.clamp(min, max);
        if staleness_ms > self.scale_up_staleness_ms {
            (current * 2).clamp(min, max)
        } else if staleness_ms < self.scale_down_staleness_ms {
            (current / 2).clamp(min, max)
        } else {
            current
        }
    }
}

/// One completed rescale: the job stopped at `at_checkpoint` running
/// `from` shards and restarted from that checkpoint with `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RescaleEvent {
    pub from: usize,
    pub to: usize,
    pub at_checkpoint: u64,
}

/// Outcome of an elastically supervised run.
#[derive(Debug, Clone, Default)]
pub struct ElasticRunStats {
    pub final_parallelism: usize,
    /// Failure-recovery restarts (rescale restarts are not failures).
    pub attempts: u32,
    pub rescales: Vec<RescaleEvent>,
    pub records_in: u64,
    pub records_out: u64,
    pub checkpoints_taken: u64,
}

/// Estimated resources for a job (§4.2.1 "Resource estimation").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEstimate {
    pub cpu_cores: u32,
    pub memory_mb: u64,
}

/// Point-in-time health of a running job, fed to the rule engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobHealth {
    /// Input backlog (e.g. Kafka lag).
    pub lag: u64,
    /// Live operator state bytes.
    pub state_bytes: u64,
    /// Processing rate over the last window.
    pub records_per_sec: u64,
    /// Consecutive heartbeat misses.
    pub missed_heartbeats: u32,
    /// Restarts so far.
    pub restarts: u32,
    /// p99 end-to-end freshness of the pipeline this job feeds, in ms
    /// (from the platform's `PipelineTracer`; 0 when untraced).
    pub freshness_p99_ms: u64,
}

/// What the rule engine decides to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthAction {
    None,
    Restart,
    ScaleUp,
    ScaleDown,
}

/// A monitoring rule: a named condition and the corrective action.
pub struct HealthRule {
    pub name: String,
    pub condition: Box<dyn Fn(&JobHealth) -> bool + Send + Sync>,
    pub action: HealthAction,
}

/// Lifecycle state of a managed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    Validated,
    Running,
    Finished,
    /// Failed after exhausting restarts (with the final error).
    Failed(String),
}

#[derive(Debug, Clone)]
pub struct ManagedJobInfo {
    pub status: JobStatus,
    pub restarts: u32,
    pub last_stats: Option<JobRunStats>,
    pub tier: u8,
    /// Task-manager node this job runs on (when placed).
    pub node: Option<String>,
    /// Set when the node hosting the job died; the deployment loop must
    /// re-run the job (it recovers from its last checkpoint).
    pub pending_restart: bool,
}

/// Saturation watch: the freshness tracer's backlog signal wired to a
/// source throttle, plus the staleness level at which the platform is
/// considered saturated.
struct SaturationWatch {
    tracer: PipelineTracer,
    clock: Arc<dyn Clock>,
    threshold_ms: i64,
    throttle: SourceThrottle,
    /// Per-poll cap applied to throttled sources while saturated.
    throttled_cap: usize,
}

/// The job manager: deploy, supervise, recover, rescale.
pub struct JobManager {
    executor_config: ExecutorConfig,
    max_restarts: u32,
    jobs: RwLock<BTreeMap<String, ManagedJobInfo>>,
    rules: Vec<HealthRule>,
    saturation: RwLock<Option<SaturationWatch>>,
}

impl JobManager {
    pub fn new(executor_config: ExecutorConfig, max_restarts: u32) -> Self {
        JobManager {
            executor_config,
            max_restarts,
            jobs: RwLock::new(BTreeMap::new()),
            rules: Self::default_rules(),
            saturation: RwLock::new(None),
        }
    }

    /// Wire the freshness tracer's backlog signal into the manager: while
    /// any traced pipeline is more than `threshold_ms` stale, the manager
    /// refuses new deployments and caps every source wrapped with the
    /// returned [`SourceThrottle`] at `throttled_cap` records per poll.
    pub fn watch_saturation(
        &self,
        tracer: PipelineTracer,
        clock: Arc<dyn Clock>,
        threshold_ms: i64,
        throttled_cap: usize,
    ) -> SourceThrottle {
        let throttle = SourceThrottle::new();
        *self.saturation.write() = Some(SaturationWatch {
            tracer,
            clock,
            threshold_ms,
            throttle: throttle.clone(),
            throttled_cap: throttled_cap.max(1),
        });
        throttle
    }

    /// Pipelines currently staler than the saturation threshold, with
    /// their staleness, in name order.
    pub fn saturated_pipelines(&self) -> Vec<(String, i64)> {
        let watch = self.saturation.read();
        let Some(w) = watch.as_ref() else {
            return Vec::new();
        };
        let now = w.clock.now();
        w.tracer
            .pipelines()
            .into_iter()
            .filter_map(|p| {
                let stale = w.tracer.staleness_ms(&p, now)?;
                (stale > w.threshold_ms).then_some((p, stale))
            })
            .collect()
    }

    /// Re-evaluate the backlog signal and apply/release the source
    /// throttle. Returns whether the platform is currently saturated.
    /// Called periodically by the deployment loop (tests call it
    /// directly).
    pub fn tick_saturation(&self) -> bool {
        let saturated = !self.saturated_pipelines().is_empty();
        if let Some(w) = self.saturation.read().as_ref() {
            if saturated {
                w.throttle.set_cap(w.throttled_cap);
            } else {
                w.throttle.clear();
            }
        }
        saturated
    }

    /// The default rule set the paper's description implies: restart stuck
    /// jobs, scale on sustained lag, scale down idle over-provisioned
    /// jobs.
    fn default_rules() -> Vec<HealthRule> {
        vec![
            HealthRule {
                name: "stuck-job-restart".into(),
                condition: Box::new(|h| h.missed_heartbeats >= 3),
                action: HealthAction::Restart,
            },
            HealthRule {
                // the paper's freshness SLA is "seconds, not minutes";
                // a pipeline half a minute stale is treated as wedged
                name: "stale-pipeline-restart".into(),
                condition: Box::new(|h| h.freshness_p99_ms > 30_000),
                action: HealthAction::Restart,
            },
            HealthRule {
                name: "lag-scale-up".into(),
                condition: Box::new(|h| h.lag > 1_000_000),
                action: HealthAction::ScaleUp,
            },
            HealthRule {
                name: "idle-scale-down".into(),
                condition: Box::new(|h| h.lag == 0 && h.records_per_sec < 10),
                action: HealthAction::ScaleDown,
            },
        ]
    }

    pub fn add_rule(&mut self, rule: HealthRule) {
        self.rules.push(rule);
    }

    /// Evaluate rules in order; first match wins.
    pub fn evaluate_health(&self, health: &JobHealth) -> (HealthAction, Option<&str>) {
        for rule in &self.rules {
            if (rule.condition)(health) {
                return (rule.action, Some(rule.name.as_str()));
            }
        }
        (HealthAction::None, None)
    }

    /// §4.2.1 empirical resource model.
    pub fn estimate_resources(spec: &JobSpec) -> ResourceEstimate {
        let rate = spec.expected_records_per_sec.max(1);
        match spec.job_type {
            // CPU bound: one core per ~50k rec/s, little memory
            JobType::Stateless => ResourceEstimate {
                cpu_cores: rate.div_ceil(50_000).max(1) as u32,
                memory_mb: 512,
            },
            // aggregation: moderate CPU, memory grows with rate (window
            // state is proportional to keys/sec x window length)
            JobType::WindowedAggregation => ResourceEstimate {
                cpu_cores: rate.div_ceil(30_000).max(1) as u32,
                memory_mb: 1024 + rate / 100,
            },
            // memory bound: buffers hold the full join window on both sides
            JobType::StreamJoin => ResourceEstimate {
                cpu_cores: rate.div_ceil(40_000).max(1) as u32,
                memory_mb: 4096 + rate / 20,
            },
        }
    }

    /// Validate a spec before deployment (the "validation" step of the job
    /// management layer).
    pub fn validate(&self, spec: &JobSpec) -> Result<()> {
        if spec.name.is_empty() {
            return Err(Error::InvalidArgument("job name must not be empty".into()));
        }
        if self.jobs.read().contains_key(&spec.name) {
            return Err(Error::AlreadyExists(format!("job '{}'", spec.name)));
        }
        // overload protection: a saturated platform takes no new work —
        // deploying into a backlog only deepens it (retryable, so the
        // deployment loop tries again once the pipelines catch up)
        if let Some((pipeline, stale)) = self.saturated_pipelines().into_iter().next() {
            return Err(Error::Overloaded(format!(
                "deployment of '{}' refused: pipeline '{pipeline}' is {stale}ms stale",
                spec.name
            )));
        }
        // instantiate once to catch construction panics/config errors early
        let job = (spec.factory)();
        if job.operators.is_empty() {
            return Err(Error::InvalidArgument(
                "job must have at least one operator".into(),
            ));
        }
        self.jobs.write().insert(
            spec.name.clone(),
            ManagedJobInfo {
                status: JobStatus::Validated,
                restarts: 0,
                last_stats: None,
                tier: spec.tier,
                node: None,
                pending_restart: false,
            },
        );
        Ok(())
    }

    /// Record which task-manager node a job was placed on, so node-level
    /// failure detection can find its victims.
    pub fn assign_node(&self, job: &str, node: &str) -> Result<()> {
        let mut jobs = self.jobs.write();
        let info = jobs
            .get_mut(job)
            .ok_or_else(|| Error::NotFound(format!("job '{job}'")))?;
        info.node = Some(node.to_string());
        Ok(())
    }

    /// Jobs currently placed on a node, in name order.
    pub fn jobs_on(&self, node: &str) -> Vec<String> {
        self.jobs
            .read()
            .iter()
            .filter(|(_, i)| i.node.as_deref() == Some(node))
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// React to a task-manager node death (§4.2.1 failure recovery):
    /// every job placed on it is marked `pending_restart` and unplaced.
    /// Returns the affected job names, in name order.
    pub fn on_node_dead(&self, node: &str) -> Vec<String> {
        let mut affected = Vec::new();
        let mut jobs = self.jobs.write();
        for (name, info) in jobs.iter_mut() {
            if info.node.as_deref() == Some(node)
                && !matches!(info.status, JobStatus::Finished | JobStatus::Failed(_))
            {
                info.pending_restart = true;
                info.node = None;
                affected.push(name.clone());
            }
        }
        affected
    }

    /// Region-scale failure: every job placed on a node of the dead
    /// region (nodes are named `{region}-...`) is marked for restart and
    /// unplaced, so the deployment loop can redeploy it into a surviving
    /// region restoring from the cross-region-replicated checkpoint
    /// store. Returns the affected job names.
    pub fn on_region_dead(&self, region: &str) -> Vec<String> {
        let prefix = format!("{region}-");
        let mut affected = Vec::new();
        let mut jobs = self.jobs.write();
        for (name, info) in jobs.iter_mut() {
            let on_region = info
                .node
                .as_deref()
                .is_some_and(|n| n.starts_with(&prefix) || n == region);
            if on_region && !matches!(info.status, JobStatus::Finished | JobStatus::Failed(_)) {
                info.pending_restart = true;
                info.node = None;
                affected.push(name.clone());
            }
        }
        affected
    }

    /// Drain the set of jobs needing a restart after node failures; the
    /// deployment loop re-runs each via [`JobManager::supervise`].
    pub fn take_pending_restarts(&self) -> Vec<String> {
        let mut jobs = self.jobs.write();
        let mut pending = Vec::new();
        for (name, info) in jobs.iter_mut() {
            if info.pending_restart {
                info.pending_restart = false;
                pending.push(name.clone());
            }
        }
        pending
    }

    /// A membership listener that fans node deaths into
    /// [`JobManager::on_node_dead`]. Subscribe it to the shared
    /// membership view; it holds a weak ref so the manager can be
    /// dropped freely.
    pub fn node_listener(self: &Arc<Self>) -> Arc<dyn MembershipListener> {
        Arc::new(NodeFailureListener {
            manager: Arc::downgrade(self),
        })
    }

    /// Run a job under supervision: on failure, re-instantiate from the
    /// factory (which recovers from the last checkpoint via the executor)
    /// and retry, up to `max_restarts` times.
    pub fn supervise(&self, spec: &JobSpec) -> Result<JobRunStats> {
        if !self.jobs.read().contains_key(&spec.name) {
            self.validate(spec)?;
        }
        self.set_status(&spec.name, JobStatus::Running);
        let executor = Executor::new(self.executor_config.clone());
        let mut attempt = 0;
        loop {
            let mut job = (spec.factory)();
            match executor.run(&mut job) {
                Ok(stats) => {
                    let mut jobs = self.jobs.write();
                    let info = jobs.get_mut(&spec.name).expect("registered");
                    info.status = JobStatus::Finished;
                    info.last_stats = Some(stats.clone());
                    return Ok(stats);
                }
                Err(e) if attempt < self.max_restarts => {
                    attempt += 1;
                    let mut jobs = self.jobs.write();
                    let info = jobs.get_mut(&spec.name).expect("registered");
                    info.restarts = attempt;
                    drop(jobs);
                    let _ = e; // transient: retry from checkpoint
                }
                Err(e) => {
                    self.set_status(&spec.name, JobStatus::Failed(e.to_string()));
                    return Err(e);
                }
            }
        }
    }

    /// [`JobManager::supervise`] over the staged multi-threaded runtime:
    /// same restart-from-checkpoint loop, but each attempt runs the
    /// micro-batched, operator-chained dataflow of [`run_staged_with`].
    pub fn supervise_staged(
        &self,
        spec: &JobSpec,
        config: &StagedConfig,
    ) -> Result<StagedRunStats> {
        if !self.jobs.read().contains_key(&spec.name) {
            self.validate(spec)?;
        }
        self.set_status(&spec.name, JobStatus::Running);
        let mut attempt = 0;
        loop {
            let job = (spec.factory)();
            match run_staged_with(job, config) {
                Ok(stats) => {
                    let mut jobs = self.jobs.write();
                    let info = jobs.get_mut(&spec.name).expect("registered");
                    info.status = JobStatus::Finished;
                    info.last_stats = Some(JobRunStats {
                        records_in: stats.records_in,
                        records_out: stats.records_out,
                        checkpoints_taken: stats.checkpoints_taken,
                        restored_from_checkpoint: stats.restored_from_checkpoint,
                        peak_state_bytes: 0,
                    });
                    return Ok(stats);
                }
                Err(e) if attempt < self.max_restarts => {
                    attempt += 1;
                    let mut jobs = self.jobs.write();
                    let info = jobs.get_mut(&spec.name).expect("registered");
                    info.restarts = attempt;
                    drop(jobs);
                    let _ = e; // transient: retry from checkpoint
                }
                Err(e) => {
                    self.set_status(&spec.name, JobStatus::Failed(e.to_string()));
                    return Err(e);
                }
            }
        }
    }

    /// Worst staleness across every watched pipeline right now (`None`
    /// when no saturation watch is wired or nothing is traced yet). This
    /// is the backlog signal the elastic supervisor scales on.
    pub fn max_watched_staleness(&self) -> Option<i64> {
        let watch = self.saturation.read();
        let w = watch.as_ref()?;
        let now = w.clock.now();
        w.tracer
            .pipelines()
            .into_iter()
            .filter_map(|p| w.tracer.staleness_ms(&p, now))
            .max()
    }

    /// Supervise a job with backlog-driven elastic rescale: a monitor
    /// thread watches the freshness tracer (wired via
    /// [`JobManager::watch_saturation`]) and, whenever `policy` wants a
    /// different parallelism, asks the running job to stop at its next
    /// checkpoint barrier; the job is then re-instantiated at the new
    /// parallelism and resumes from that checkpoint — key-group framed
    /// state redistributes across the new shard count without rehashing.
    /// Requires checkpointing in `config`; without it the rescale flag is
    /// never acted on and the job simply runs to completion. Failures
    /// still retry from the last checkpoint, up to `max_restarts`.
    pub fn supervise_elastic(
        &self,
        spec: &ElasticJobSpec,
        config: &StagedConfig,
        policy: &RescalePolicy,
        initial_parallelism: usize,
    ) -> Result<ElasticRunStats> {
        let min = spec.min_parallelism.max(1);
        let max = spec.max_parallelism.max(min);
        let mut p = initial_parallelism.clamp(min, max);
        if !self.jobs.read().contains_key(&spec.name) {
            self.jobs.write().insert(
                spec.name.clone(),
                ManagedJobInfo {
                    status: JobStatus::Running,
                    restarts: 0,
                    last_stats: None,
                    tier: spec.tier,
                    node: None,
                    pending_restart: false,
                },
            );
        } else {
            self.set_status(&spec.name, JobStatus::Running);
        }

        let mut out = ElasticRunStats {
            final_parallelism: p,
            ..ElasticRunStats::default()
        };
        let mut attempt = 0u32;
        loop {
            let handle = RescaleHandle::new();
            let mut cfg = config.clone();
            cfg.rescale = Some(handle.clone());
            let job = (spec.factory)(p);
            // the monitor stores the parallelism it decided on when it
            // raised the flag, so the restart uses exactly that decision
            let target: Mutex<Option<usize>> = Mutex::new(None);
            let stop = AtomicBool::new(false);
            let result = std::thread::scope(|scope| {
                let monitor_handle = handle.clone();
                let monitor = scope.spawn(|| {
                    let handle = monitor_handle;
                    while !stop.load(Ordering::SeqCst) {
                        if !handle.is_requested() {
                            if let Some(stale) = self.max_watched_staleness() {
                                let want = policy.desired(p, min, max, stale);
                                if want != p {
                                    *target.lock() = Some(want);
                                    handle.request();
                                }
                            }
                        }
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                });
                let res = run_staged_with(job, &cfg);
                stop.store(true, Ordering::SeqCst);
                let _ = monitor.join();
                res
            });
            match result {
                Ok(stats) => {
                    out.records_in = stats.records_in;
                    out.records_out += stats.records_out;
                    out.checkpoints_taken += stats.checkpoints_taken;
                    if let Some(ckpt) = stats.stopped_at_checkpoint {
                        let to = target.lock().take().unwrap_or(p);
                        if to != p {
                            out.rescales.push(RescaleEvent {
                                from: p,
                                to,
                                at_checkpoint: ckpt,
                            });
                            p = to;
                            out.final_parallelism = p;
                        }
                        continue; // restart from the checkpoint, rescaled
                    }
                    out.attempts = attempt;
                    let mut jobs = self.jobs.write();
                    let info = jobs.get_mut(&spec.name).expect("registered");
                    info.status = JobStatus::Finished;
                    info.last_stats = Some(JobRunStats {
                        records_in: stats.records_in,
                        records_out: stats.records_out,
                        checkpoints_taken: out.checkpoints_taken,
                        restored_from_checkpoint: stats.restored_from_checkpoint,
                        peak_state_bytes: 0,
                    });
                    return Ok(out);
                }
                Err(e) if attempt < self.max_restarts => {
                    attempt += 1;
                    let mut jobs = self.jobs.write();
                    let info = jobs.get_mut(&spec.name).expect("registered");
                    info.restarts = attempt;
                    drop(jobs);
                    let _ = e; // transient: retry from checkpoint
                }
                Err(e) => {
                    self.set_status(&spec.name, JobStatus::Failed(e.to_string()));
                    return Err(e);
                }
            }
        }
    }

    fn set_status(&self, name: &str, status: JobStatus) {
        if let Some(info) = self.jobs.write().get_mut(name) {
            info.status = status;
        }
    }

    pub fn status(&self, name: &str) -> Option<ManagedJobInfo> {
        self.jobs.read().get(name).cloned()
    }

    /// List jobs sorted by tier then name — the dispatch order of the
    /// proxy layer in Figure 5.
    pub fn list(&self) -> Vec<(String, ManagedJobInfo)> {
        let mut jobs: Vec<(String, ManagedJobInfo)> = self
            .jobs
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        jobs.sort_by(|a, b| a.1.tier.cmp(&b.1.tier).then(a.0.cmp(&b.0)));
        jobs
    }

    /// Remove a finished/failed job from the registry.
    pub fn forget(&self, name: &str) -> Result<()> {
        self.jobs
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::NotFound(format!("job '{name}'")))
    }
}

/// Routes `Dead` membership transitions to the job manager.
struct NodeFailureListener {
    manager: Weak<JobManager>,
}

impl MembershipListener for NodeFailureListener {
    fn on_membership_event(&self, event: &MembershipEvent) {
        if event.to == NodeState::Dead {
            if let Some(manager) = self.manager.upgrade() {
                manager.on_node_dead(&event.node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{MapOp, Operator};
    use crate::runtime::CheckpointStore;
    use crate::sink::CollectSink;
    use crate::source::VecSource;
    use parking_lot::Mutex;
    use rtdi_common::{Record, Row};
    use rtdi_storage::object::InMemoryStore;
    use std::sync::Arc;

    fn simple_spec(name: &str, sink: CollectSink) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            job_type: JobType::Stateless,
            tier: 1,
            expected_records_per_sec: 1000,
            factory: Box::new(move || {
                Job::new(
                    "inner",
                    Box::new(VecSource::from_rows(
                        (0..10).map(|i| (i, Row::new().with("i", i))).collect(),
                    )),
                    vec![Box::new(MapOp::new("id", |r: &Row| r.clone()))],
                    Box::new(sink.clone()),
                )
            }),
        }
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let jm = JobManager::new(ExecutorConfig::default(), 3);
        let sink = CollectSink::new();
        let spec = simple_spec("good", sink.clone());
        jm.validate(&spec).unwrap();
        assert!(matches!(
            jm.validate(&simple_spec("good", sink.clone())),
            Err(Error::AlreadyExists(_))
        ));
        let empty_ops = JobSpec {
            name: "no-ops".into(),
            job_type: JobType::Stateless,
            tier: 0,
            expected_records_per_sec: 1,
            factory: Box::new(|| {
                Job::new(
                    "x",
                    Box::new(VecSource::new(vec![])),
                    vec![],
                    Box::new(CollectSink::new()),
                )
            }),
        };
        assert!(jm.validate(&empty_ops).is_err());
    }

    #[test]
    fn supervise_runs_to_completion() {
        let jm = JobManager::new(ExecutorConfig::default(), 3);
        let sink = CollectSink::new();
        let spec = simple_spec("run", sink.clone());
        let stats = jm.supervise(&spec).unwrap();
        assert_eq!(stats.records_in, 10);
        assert_eq!(sink.len(), 10);
        let info = jm.status("run").unwrap();
        assert_eq!(info.status, JobStatus::Finished);
        assert_eq!(info.restarts, 0);
    }

    /// Operator that fails a fixed number of times across instantiations
    /// (shared counter), then succeeds — a transient failure.
    struct TransientFail {
        budget: Arc<Mutex<u32>>,
    }
    impl Operator for TransientFail {
        fn name(&self) -> &str {
            "transient"
        }
        fn process(&mut self, r: Record, out: &mut Vec<Record>) -> Result<()> {
            let mut b = self.budget.lock();
            if *b > 0 {
                *b -= 1;
                return Err(Error::Unavailable("downstream flake".into()));
            }
            out.push(r);
            Ok(())
        }
    }

    fn flaky_spec(
        name: &str,
        budget: Arc<Mutex<u32>>,
        sink: CollectSink,
        store: Arc<InMemoryStore>,
    ) -> (JobSpec, ExecutorConfig) {
        let config = ExecutorConfig {
            batch_size: 4,
            checkpoint_interval: 4,
            checkpoint_store: Some(CheckpointStore::new(store)),
            trace: None,
        };
        let job_name = name.to_string();
        let spec = JobSpec {
            name: name.to_string(),
            job_type: JobType::Stateless,
            tier: 0,
            expected_records_per_sec: 100,
            factory: Box::new(move || {
                Job::new(
                    job_name.clone(),
                    Box::new(VecSource::from_rows(
                        (0..20).map(|i| (i, Row::new().with("i", i))).collect(),
                    )),
                    vec![Box::new(TransientFail {
                        budget: budget.clone(),
                    })],
                    Box::new(sink.clone()),
                )
            }),
        };
        (spec, config)
    }

    #[test]
    fn transient_failures_recover_automatically() {
        let budget = Arc::new(Mutex::new(2u32)); // fails twice then healthy
        let sink = CollectSink::new();
        let store = Arc::new(InMemoryStore::new());
        let (spec, config) = flaky_spec("flaky", budget, sink.clone(), store);
        let jm = JobManager::new(config, 5);
        let stats = jm.supervise(&spec).unwrap();
        let info = jm.status("flaky").unwrap();
        assert_eq!(info.status, JobStatus::Finished);
        assert_eq!(info.restarts, 2);
        // all records eventually delivered (at-least-once: duplicates from
        // replay are possible but every input must appear)
        let mut ids: Vec<i64> = sink
            .rows()
            .iter()
            .map(|r| r.get_int("i").unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
        assert!(stats.records_in >= 20);
    }

    #[test]
    fn supervise_staged_recovers_with_batched_runtime() {
        let budget = Arc::new(Mutex::new(2u32)); // fails twice then healthy
        let sink = CollectSink::new();
        let store = Arc::new(InMemoryStore::new());
        let jm = JobManager::new(ExecutorConfig::default(), 5);
        let job_name = "staged-flaky".to_string();
        let b = budget.clone();
        let s = sink.clone();
        let spec = JobSpec {
            name: job_name.clone(),
            job_type: JobType::Stateless,
            tier: 0,
            expected_records_per_sec: 100,
            factory: Box::new(move || {
                Job::new(
                    job_name.clone(),
                    Box::new(VecSource::from_rows(
                        (0..20).map(|i| (i, Row::new().with("i", i))).collect(),
                    )),
                    vec![
                        Box::new(MapOp::new("id", |r: &Row| r.clone())),
                        Box::new(TransientFail { budget: b.clone() }),
                    ],
                    Box::new(s.clone()),
                )
            }),
        };
        let cfg = StagedConfig {
            channel_capacity: 4,
            batch_size: 8,
            fuse_operators: true,
            checkpoint_interval: 5,
            checkpoint_store: Some(CheckpointStore::new(store)),
            trace: None,
            rescale: None,
        };
        let stats = jm.supervise_staged(&spec, &cfg).unwrap();
        let info = jm.status("staged-flaky").unwrap();
        assert_eq!(info.status, JobStatus::Finished);
        assert_eq!(info.restarts, 2);
        assert_eq!(stats.checkpoints_taken, 4, "barrier every 5 of 20 records");
        let mut ids: Vec<i64> = sink
            .rows()
            .iter()
            .map(|r| r.get_int("i").unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20, "every input delivered at least once");
        assert!(stats.records_in >= 20);
    }

    #[test]
    fn permanent_failure_exhausts_restarts() {
        let budget = Arc::new(Mutex::new(u32::MAX)); // never heals
        let sink = CollectSink::new();
        let store = Arc::new(InMemoryStore::new());
        let (spec, config) = flaky_spec("doomed", budget, sink, store);
        let jm = JobManager::new(config, 2);
        assert!(jm.supervise(&spec).is_err());
        let info = jm.status("doomed").unwrap();
        assert!(matches!(info.status, JobStatus::Failed(_)));
    }

    #[test]
    fn resource_model_matches_paper_observations() {
        let mk = |jt| JobSpec {
            name: "r".into(),
            job_type: jt,
            tier: 0,
            expected_records_per_sec: 100_000,
            factory: Box::new(|| {
                Job::new(
                    "x",
                    Box::new(VecSource::new(vec![])),
                    vec![],
                    Box::new(CollectSink::new()),
                )
            }),
        };
        let stateless = JobManager::estimate_resources(&mk(JobType::Stateless));
        let join = JobManager::estimate_resources(&mk(JobType::StreamJoin));
        // stateless: CPU-heavy relative to memory; join: memory-heavy
        assert!(join.memory_mb > 5 * stateless.memory_mb);
        assert!(stateless.cpu_cores >= 2);
    }

    #[test]
    fn rule_engine_matches_in_order() {
        let jm = JobManager::new(ExecutorConfig::default(), 0);
        let stuck = JobHealth {
            missed_heartbeats: 5,
            ..Default::default()
        };
        assert_eq!(jm.evaluate_health(&stuck).0, HealthAction::Restart);
        let lagging = JobHealth {
            lag: 5_000_000,
            records_per_sec: 100_000,
            ..Default::default()
        };
        assert_eq!(jm.evaluate_health(&lagging).0, HealthAction::ScaleUp);
        let idle = JobHealth {
            lag: 0,
            records_per_sec: 1,
            ..Default::default()
        };
        assert_eq!(jm.evaluate_health(&idle).0, HealthAction::ScaleDown);
        let healthy = JobHealth {
            lag: 100,
            records_per_sec: 50_000,
            ..Default::default()
        };
        assert_eq!(jm.evaluate_health(&healthy).0, HealthAction::None);
    }

    #[test]
    fn stale_pipeline_triggers_restart() {
        let jm = JobManager::new(ExecutorConfig::default(), 0);
        let stale = JobHealth {
            freshness_p99_ms: 45_000,
            records_per_sec: 50_000,
            lag: 100,
            ..Default::default()
        };
        let (action, rule) = jm.evaluate_health(&stale);
        assert_eq!(action, HealthAction::Restart);
        assert_eq!(rule, Some("stale-pipeline-restart"));
        // within the "seconds, not minutes" SLA: no action
        let fresh = JobHealth {
            freshness_p99_ms: 2_000,
            records_per_sec: 50_000,
            lag: 100,
            ..Default::default()
        };
        assert_eq!(jm.evaluate_health(&fresh).0, HealthAction::None);
    }

    #[test]
    fn node_death_marks_placed_jobs_for_restart() {
        use rtdi_common::{Membership, MembershipConfig, SimClock};
        let jm = Arc::new(JobManager::new(ExecutorConfig::default(), 3));
        let sink = CollectSink::new();
        jm.validate(&simple_spec("surge", sink.clone())).unwrap();
        jm.validate(&simple_spec("eats-etl", sink.clone())).unwrap();
        jm.validate(&simple_spec("idle", sink)).unwrap();
        jm.assign_node("surge", "tm-0").unwrap();
        jm.assign_node("eats-etl", "tm-0").unwrap();
        jm.assign_node("idle", "tm-1").unwrap();
        // wire the manager to a membership view and let the failure
        // detector declare tm-0 dead
        let clock = Arc::new(SimClock::new(0));
        let m = Membership::new(clock.clone(), MembershipConfig::default());
        m.register("tm-0");
        m.register("tm-1");
        m.subscribe(jm.node_listener());
        clock.advance(20_000);
        m.heartbeat("tm-1");
        m.tick();
        // both tm-0 jobs marked, the tm-1 job untouched
        let pending = jm.take_pending_restarts();
        assert_eq!(pending, vec!["eats-etl".to_string(), "surge".to_string()]);
        assert!(jm.status("idle").unwrap().node.is_some());
        assert!(jm.status("surge").unwrap().node.is_none(), "unplaced");
        assert!(jm.take_pending_restarts().is_empty(), "drained");
        // re-running the job completes it
        let sink2 = CollectSink::new();
        let spec = simple_spec("surge2", sink2);
        jm.supervise(&spec).unwrap();
        assert_eq!(jm.status("surge2").unwrap().status, JobStatus::Finished);
    }

    #[test]
    fn saturation_refuses_deployments_and_throttles_sources() {
        use crate::source::{Source, ThrottledSource};
        use rtdi_common::SimClock;

        let jm = JobManager::new(ExecutorConfig::default(), 3);
        let tracer = PipelineTracer::new();
        let clock = Arc::new(SimClock::new(0));
        let throttle = jm.watch_saturation(tracer.clone(), clock.clone(), 10_000, 2);

        // trace a hop so the pipeline has an origin timestamp
        let mut rec = Record::new(Row::new().with("i", 1i64), 0);
        PipelineTracer::stamp(&mut rec, 0);
        tracer.observe_hop("surge", "ingest", &mut rec, 0);

        // fresh: deployments admitted, sources unthrottled
        assert!(!jm.tick_saturation());
        let sink = CollectSink::new();
        jm.validate(&simple_spec("fresh-ok", sink.clone())).unwrap();
        assert_eq!(throttle.cap(), None);

        // backlog grows past the threshold: refuse and throttle
        clock.advance(30_000);
        assert!(jm.tick_saturation());
        let refused = jm.validate(&simple_spec("too-late", sink.clone()));
        assert!(matches!(refused, Err(Error::Overloaded(_))), "{refused:?}");
        assert!(
            refused.unwrap_err().is_retryable(),
            "deployment loop may retry once drained"
        );
        assert_eq!(throttle.cap(), Some(2));
        let mut src = ThrottledSource::new(
            Box::new(VecSource::from_rows(
                (0..10).map(|i| (i, Row::new().with("i", i))).collect(),
            )),
            throttle.clone(),
        );
        assert_eq!(src.poll_batch(100).unwrap().len(), 2, "cap applied");

        // pipeline catches up: throttle released, deployments admitted
        let mut rec = Record::new(Row::new().with("i", 2i64), 30_000);
        PipelineTracer::stamp(&mut rec, 30_000);
        tracer.observe_hop("surge", "ingest", &mut rec, 30_000);
        assert!(!jm.tick_saturation());
        assert_eq!(throttle.cap(), None);
        assert_eq!(src.poll_batch(100).unwrap().len(), 8, "uncapped again");
        jm.validate(&simple_spec("recovered", sink)).unwrap();
    }

    #[test]
    fn finished_jobs_ignore_node_death() {
        let jm = JobManager::new(ExecutorConfig::default(), 3);
        let sink = CollectSink::new();
        let spec = simple_spec("done", sink);
        jm.supervise(&spec).unwrap();
        jm.assign_node("done", "tm-9").unwrap();
        assert!(jm.on_node_dead("tm-9").is_empty());
        assert!(jm.take_pending_restarts().is_empty());
    }

    #[test]
    fn region_death_marks_jobs_on_regional_nodes() {
        let jm = JobManager::new(ExecutorConfig::default(), 3);
        let sink = CollectSink::new();
        jm.validate(&simple_spec("surge", sink.clone())).unwrap();
        jm.validate(&simple_spec("eats-etl", sink.clone())).unwrap();
        jm.validate(&simple_spec("idle", sink)).unwrap();
        jm.assign_node("surge", "west-tm-0").unwrap();
        jm.assign_node("eats-etl", "west-tm-1").unwrap();
        jm.assign_node("idle", "east-tm-0").unwrap();
        let displaced = jm.on_region_dead("west");
        assert_eq!(displaced, vec!["eats-etl".to_string(), "surge".to_string()]);
        assert!(jm.status("surge").unwrap().node.is_none(), "unplaced");
        assert!(jm.status("idle").unwrap().node.is_some(), "east untouched");
        assert_eq!(jm.take_pending_restarts(), displaced);
        assert!(jm.on_region_dead("west").is_empty(), "already displaced");
    }

    #[test]
    fn rescale_policy_doubles_and_halves_within_bounds() {
        let pol = RescalePolicy::default();
        // stale: double, clamped at max
        assert_eq!(pol.desired(1, 1, 8, 60_000), 2);
        assert_eq!(pol.desired(4, 1, 8, 60_000), 8);
        assert_eq!(pol.desired(8, 1, 8, 60_000), 8);
        // fresh: halve, clamped at min
        assert_eq!(pol.desired(8, 2, 8, 0), 4);
        assert_eq!(pol.desired(2, 2, 8, 0), 2);
        // in between: hold
        assert_eq!(pol.desired(4, 1, 8, 1_000), 4);
        // degenerate bounds clamp sanely
        assert_eq!(pol.desired(0, 0, 0, 60_000), 1);
    }

    #[test]
    fn supervise_elastic_scales_up_on_stale_pipeline_and_stays_exact() {
        use crate::operator::WindowAggregateOp;
        use crate::runtime::run_staged_with;
        use crate::window::WindowAssigner;
        use rtdi_common::{AggFn, SimClock, Timestamp};

        let rows: Vec<(Timestamp, Row)> = (0..20_000)
            .map(|i| {
                (
                    (i as i64) * 10,
                    Row::new()
                        .with("city", format!("city-{:02}", i % 7))
                        .with("fare", 5.0 + (i % 13) as f64),
                )
            })
            .collect();
        let make_job = |name: &str, rows: Vec<(Timestamp, Row)>, sink: CollectSink, p: usize| {
            Job::new(
                name,
                Box::new(VecSource::from_rows(rows)),
                vec![Box::new(
                    WindowAggregateOp::new(
                        "agg",
                        vec!["city".into()],
                        WindowAssigner::tumbling(1000),
                        vec![
                            ("trips".into(), AggFn::Count),
                            ("total".into(), AggFn::Sum("fare".into())),
                        ],
                        0,
                    )
                    .with_parallelism(p),
                )],
                Box::new(sink),
            )
        };

        // baseline: uninterrupted serial run
        let base_sink = CollectSink::new();
        run_staged_with(
            make_job("base", rows.clone(), base_sink.clone(), 1),
            &StagedConfig::batched(16, 64),
        )
        .unwrap();

        // a pipeline that is permanently 60s stale: the tracer saw one
        // record at t=0 and the (simulated) clock is pinned at 60s
        let jm = JobManager::new(ExecutorConfig::default(), 2);
        let tracer = PipelineTracer::new();
        let mut rec = Record::new(Row::new().with("i", 1i64), 0);
        PipelineTracer::stamp(&mut rec, 0);
        tracer.observe_hop("trips", "ingest", &mut rec, 0);
        let clock = Arc::new(SimClock::new(60_000));
        jm.watch_saturation(tracer, clock, 1_000_000, usize::MAX);
        assert_eq!(jm.max_watched_staleness(), Some(60_000));

        let sink = CollectSink::new();
        let job_rows = rows.clone();
        let job_sink = sink.clone();
        let spec = ElasticJobSpec {
            name: "elastic".into(),
            job_type: JobType::WindowedAggregation,
            tier: 0,
            expected_records_per_sec: 10_000,
            min_parallelism: 1,
            max_parallelism: 4,
            factory: Box::new(move |p| make_job("elastic", job_rows.clone(), job_sink.clone(), p)),
        };
        let mut cfg = StagedConfig::batched(16, 64);
        cfg.checkpoint_interval = 2_000;
        cfg.checkpoint_store = Some(CheckpointStore::new(Arc::new(InMemoryStore::new())));
        let stats = jm
            .supervise_elastic(&spec, &cfg, &RescalePolicy::default(), 1)
            .unwrap();

        // the permanently stale signal must have forced at least one
        // doubling; with 10 checkpoint boundaries available it reaches max
        assert!(!stats.rescales.is_empty(), "no rescale happened: {stats:?}");
        assert!(stats.final_parallelism > 1);
        for ev in &stats.rescales {
            assert_eq!(ev.to, (ev.from * 2).min(4), "doubling steps: {ev:?}");
        }
        assert_eq!(stats.records_in, 20_000);
        assert_eq!(jm.status("elastic").unwrap().status, JobStatus::Finished);

        // exactly-once across every rescale restart: sorted, NOT deduped
        let canon = |mut rows: Vec<Row>| {
            rows.sort_by_key(|r| {
                (
                    r.get_str("city").unwrap().to_string(),
                    r.get_int("window_start").unwrap(),
                )
            });
            rows
        };
        assert_eq!(canon(base_sink.rows()), canon(sink.rows()));
    }

    #[test]
    fn list_orders_by_tier() {
        let jm = JobManager::new(ExecutorConfig::default(), 0);
        let mk = |name: &str, tier| JobSpec {
            name: name.to_string(),
            job_type: JobType::Stateless,
            tier,
            expected_records_per_sec: 1,
            factory: Box::new(|| {
                Job::new(
                    "x",
                    Box::new(VecSource::new(vec![])),
                    vec![Box::new(MapOp::new("id", |r: &Row| r.clone()))],
                    Box::new(CollectSink::new()),
                )
            }),
        };
        jm.validate(&mk("zeta-critical", 0)).unwrap();
        jm.validate(&mk("alpha-batchy", 2)).unwrap();
        let names: Vec<String> = jm.list().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["zeta-critical", "alpha-batchy"]);
        jm.forget("alpha-batchy").unwrap();
        assert!(jm.forget("alpha-batchy").is_err());
    }
}
