//! Aggregate functions (re-exported from `rtdi-common`).
//!
//! The accumulator vocabulary is shared between the compute layer
//! (windowed aggregation), the OLAP layer (segment aggregation, star-tree
//! pre-aggregation) and the SQL layer (federated merge), so it lives in
//! `rtdi_common::agg`.

pub use rtdi_common::agg::{AggAcc, AggFn};
