//! Event-time window assignment.
//!
//! The FlinkSQL layer compiles `GROUP BY TUMBLE(...)` / `HOP(...)` /
//! `SESSION(...)` into these assigners; the surge pipeline (§5.1) uses a
//! tumbling window per pricing cycle.

use rtdi_common::Timestamp;

/// Output column carrying a window result's inclusive start timestamp.
pub const WINDOW_START_COL: &str = "window_start";

/// Output column carrying a window result's exclusive end timestamp.
pub const WINDOW_END_COL: &str = "window_end";

/// A window is identified by its start; the assigner knows its length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    pub start: Timestamp,
    pub end: Timestamp,
}

/// How event timestamps map to windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowAssigner {
    /// Fixed, non-overlapping windows of `size_ms`.
    Tumbling { size_ms: i64 },
    /// Overlapping windows of `size_ms` starting every `slide_ms`.
    Sliding { size_ms: i64, slide_ms: i64 },
    /// Gap-based session windows (assignment returns a provisional window
    /// `[ts, ts + gap)`; the aggregation operator merges overlaps).
    Session { gap_ms: i64 },
}

impl WindowAssigner {
    pub fn tumbling(size_ms: i64) -> Self {
        assert!(size_ms > 0, "window size must be positive");
        WindowAssigner::Tumbling { size_ms }
    }

    pub fn sliding(size_ms: i64, slide_ms: i64) -> Self {
        assert!(size_ms > 0 && slide_ms > 0, "sizes must be positive");
        assert!(slide_ms <= size_ms, "slide must not exceed size");
        WindowAssigner::Sliding { size_ms, slide_ms }
    }

    pub fn session(gap_ms: i64) -> Self {
        assert!(gap_ms > 0, "gap must be positive");
        WindowAssigner::Session { gap_ms }
    }

    /// Windows an event at `ts` belongs to.
    pub fn assign(&self, ts: Timestamp) -> Vec<Window> {
        match *self {
            WindowAssigner::Tumbling { size_ms } => {
                let start = ts.div_euclid(size_ms) * size_ms;
                vec![Window {
                    start,
                    end: start + size_ms,
                }]
            }
            WindowAssigner::Sliding { size_ms, slide_ms } => {
                // last window starting at or before ts
                let last_start = ts.div_euclid(slide_ms) * slide_ms;
                let mut out = Vec::new();
                let mut start = last_start;
                while start > ts - size_ms {
                    out.push(Window {
                        start,
                        end: start + size_ms,
                    });
                    start -= slide_ms;
                }
                out.reverse();
                out
            }
            WindowAssigner::Session { gap_ms } => vec![Window {
                start: ts,
                end: ts + gap_ms,
            }],
        }
    }

    /// The unique window for `ts` when assignment is 1:1 (tumbling).
    /// Returns `None` for sliding/session assigners, whose events map to
    /// several (or merged) windows. The batched aggregation path uses this
    /// to detect runs of same-window records without allocating a `Vec`
    /// per record.
    pub fn single_window(&self, ts: Timestamp) -> Option<Window> {
        match *self {
            WindowAssigner::Tumbling { size_ms } => {
                let start = ts.div_euclid(size_ms) * size_ms;
                Some(Window {
                    start,
                    end: start + size_ms,
                })
            }
            _ => None,
        }
    }

    /// Whether the assigner produces session windows needing merge logic.
    pub fn is_session(&self) -> bool {
        matches!(self, WindowAssigner::Session { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_assigns_single_aligned_window() {
        let w = WindowAssigner::tumbling(1000);
        assert_eq!(
            w.assign(1500),
            vec![Window {
                start: 1000,
                end: 2000
            }]
        );
        assert_eq!(w.assign(0)[0].start, 0);
        assert_eq!(w.assign(999)[0].start, 0);
        assert_eq!(w.assign(1000)[0].start, 1000);
        // negative event times still align
        assert_eq!(w.assign(-1)[0].start, -1000);
    }

    #[test]
    fn sliding_assigns_overlapping_windows() {
        let w = WindowAssigner::sliding(1000, 250);
        let windows = w.assign(1000);
        assert_eq!(windows.len(), 4);
        assert_eq!(windows.first().unwrap().start, 250);
        assert_eq!(windows.last().unwrap().start, 1000);
        for win in &windows {
            assert!(win.start <= 1000 && 1000 < win.end);
        }
    }

    #[test]
    fn sliding_equal_to_size_degenerates_to_tumbling() {
        let s = WindowAssigner::sliding(1000, 1000);
        let t = WindowAssigner::tumbling(1000);
        for ts in [0i64, 1, 999, 1000, 12345] {
            assert_eq!(s.assign(ts), t.assign(ts));
        }
    }

    #[test]
    fn session_provisional_window() {
        let w = WindowAssigner::session(5000);
        assert_eq!(
            w.assign(42),
            vec![Window {
                start: 42,
                end: 5042
            }]
        );
        assert!(w.is_session());
    }

    #[test]
    fn single_window_agrees_with_assign() {
        let t = WindowAssigner::tumbling(1000);
        for ts in [-1500i64, -1, 0, 1, 999, 1000, 12345] {
            assert_eq!(t.single_window(ts), Some(t.assign(ts)[0]));
        }
        assert_eq!(WindowAssigner::sliding(1000, 250).single_window(5), None);
        assert_eq!(WindowAssigner::session(100).single_window(5), None);
    }

    #[test]
    #[should_panic]
    fn zero_size_rejected() {
        WindowAssigner::tumbling(0);
    }

    #[test]
    #[should_panic]
    fn slide_larger_than_size_rejected() {
        WindowAssigner::sliding(100, 200);
    }
}
