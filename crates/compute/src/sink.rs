//! Sinks: where jobs write their results.
//!
//! The paper's pipelines sink into Kafka topics (for downstream
//! subscribers and Pinot ingestion), key-value stores (surge, §5.1) and
//! collection endpoints. The Pinot sink adapter lives in `rtdi-flinksql`
//! to keep this crate independent of the OLAP layer.

use parking_lot::Mutex;
use rtdi_common::{Clock, PipelineTracer, Record, Result, Row, Timestamp};
use rtdi_stream::topic::Topic;
use std::sync::Arc;

/// A record sink.
pub trait Sink: Send {
    fn write(&mut self, record: Record) -> Result<()>;

    /// Write a whole batch. Equivalent to writing each record in order;
    /// sinks with per-call overhead (locks, appends) override to amortize
    /// it across the batch.
    fn write_batch(&mut self, records: Vec<Record>) -> Result<()> {
        for record in records {
            self.write(record)?;
        }
        Ok(())
    }

    /// Called when a bounded run completes or at a checkpoint boundary.
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Collects results into a shared vector (tests, examples, dashboards).
#[derive(Clone, Default)]
pub struct CollectSink {
    rows: Arc<Mutex<Vec<Record>>>,
}

impl CollectSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn records(&self) -> Vec<Record> {
        self.rows.lock().clone()
    }

    pub fn rows(&self) -> Vec<Row> {
        self.rows.lock().iter().map(|r| r.value.clone()).collect()
    }

    pub fn len(&self) -> usize {
        self.rows.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.lock().is_empty()
    }

    pub fn clear(&self) {
        self.rows.lock().clear();
    }
}

impl Sink for CollectSink {
    fn write(&mut self, record: Record) -> Result<()> {
        self.rows.lock().push(record);
        Ok(())
    }

    fn write_batch(&mut self, records: Vec<Record>) -> Result<()> {
        self.rows.lock().extend(records);
        Ok(())
    }
}

/// Produces results into a stream topic.
pub struct TopicSink {
    topic: Arc<Topic>,
    now: Box<dyn Fn() -> Timestamp + Send>,
}

impl TopicSink {
    pub fn new(topic: Arc<Topic>, now: impl Fn() -> Timestamp + Send + 'static) -> Self {
        TopicSink {
            topic,
            now: Box::new(now),
        }
    }
}

impl Sink for TopicSink {
    fn write(&mut self, record: Record) -> Result<()> {
        self.topic.append(record, (self.now)())?;
        Ok(())
    }
}

/// Decorator that records each written record's event-time lag (and the
/// end-to-end freshness rollup) before forwarding to the inner sink —
/// the point where a job's output becomes visible to consumers.
pub struct TracingSink {
    inner: Box<dyn Sink>,
    tracer: PipelineTracer,
    pipeline: String,
    clock: Arc<dyn Clock>,
}

impl TracingSink {
    pub fn new(
        inner: Box<dyn Sink>,
        tracer: PipelineTracer,
        pipeline: impl Into<String>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        TracingSink {
            inner,
            tracer,
            pipeline: pipeline.into(),
            clock,
        }
    }
}

impl Sink for TracingSink {
    fn write(&mut self, mut record: Record) -> Result<()> {
        let now = self.clock.now();
        self.tracer
            .observe_hop(&self.pipeline, "sink", &mut record, now);
        self.tracer.record_total(&self.pipeline, &record, now);
        self.inner.write(record)
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }
}

/// Closure adaptor.
pub struct FnSink<F: FnMut(Record) -> Result<()> + Send> {
    f: F,
}

impl<F: FnMut(Record) -> Result<()> + Send> FnSink<F> {
    pub fn new(f: F) -> Self {
        FnSink { f }
    }
}

impl<F: FnMut(Record) -> Result<()> + Send> Sink for FnSink<F> {
    fn write(&mut self, record: Record) -> Result<()> {
        (self.f)(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_stream::topic::TopicConfig;

    #[test]
    fn collect_sink_accumulates() {
        let mut sink = CollectSink::new();
        let view = sink.clone();
        sink.write(Record::new(Row::new().with("a", 1i64), 0))
            .unwrap();
        sink.write(Record::new(Row::new().with("a", 2i64), 1))
            .unwrap();
        assert_eq!(view.len(), 2);
        assert_eq!(view.rows()[1].get_int("a"), Some(2));
        view.clear();
        assert!(view.is_empty());
    }

    #[test]
    fn topic_sink_produces() {
        let t = Arc::new(Topic::new("out", TopicConfig::default().with_partitions(1)).unwrap());
        let mut sink = TopicSink::new(t.clone(), || 42);
        sink.write(Record::new(Row::new().with("x", 1i64), 7))
            .unwrap();
        assert_eq!(t.total_records(), 1);
    }

    #[test]
    fn tracing_sink_records_event_time_lag() {
        use rtdi_common::{trace::END_TO_END, SimClock};
        let tracer = PipelineTracer::new();
        let collect = CollectSink::new();
        let view = collect.clone();
        let mut sink = TracingSink::new(
            Box::new(collect),
            tracer.clone(),
            "p",
            Arc::new(SimClock::new(1_400)),
        );
        let mut rec = Record::new(Row::new(), 1_000);
        PipelineTracer::stamp(&mut rec, 1_000);
        sink.write(rec).unwrap();
        let report = tracer.report();
        assert_eq!(report.stage("p", "sink").unwrap().max_ms, 400);
        assert_eq!(report.stage("p", END_TO_END).unwrap().max_ms, 400);
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn fn_sink_invokes_closure() {
        let mut n = 0;
        {
            let mut sink = FnSink::new(|_r| {
                n += 1;
                Ok(())
            });
            sink.write(Record::new(Row::new(), 0)).unwrap();
            sink.write(Record::new(Row::new(), 0)).unwrap();
            sink.flush().unwrap();
        }
        assert_eq!(n, 2);
    }
}
