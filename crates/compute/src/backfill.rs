//! Kappa+ backfill (§7).
//!
//! "The Kappa+ architecture is able to reuse the stream processing logic
//! just like Kappa architecture but it can directly read archived data
//! from offline datasets such as Hive. The Kappa+ architecture addressed
//! several issues on processing the batch datasets with streaming logic,
//! such as identifying the start/end boundary of the bounded input,
//! handling the higher throughput from the historic data with throttling,
//! fine tuning job memory as the offline data could be out of order and
//! therefore demand larger window for buffering."
//!
//! [`kappa_plus_job`] takes the *same operator chain* a streaming job uses
//! and wires it to a bounded, throttled [`HiveSource`] over the archive —
//! "the same code with minor config changes on both streaming or batch
//! data sources".
//!
//! The alternative the paper rules out — Kappa (replaying Kafka itself) —
//! is modelled by [`kafka_replay_job`], which fails when the requested
//! range has been retention-trimmed, exactly the constraint that pushed
//! Uber to Kappa+ ("we limit Kafka retention to only a few days").

use crate::runtime::Job;
use crate::sink::Sink;
use crate::source::{HiveSource, TopicSource};
use crate::Operator;
use rtdi_common::{Error, Result, Timestamp};
use rtdi_storage::hive::HiveTable;
use rtdi_stream::topic::Topic;
use std::sync::Arc;

/// Backfill tuning.
#[derive(Debug, Clone)]
pub struct BackfillConfig {
    /// Bounded input range (event time).
    pub from: Timestamp,
    pub to: Timestamp,
    /// Records per source poll — the historic-throughput throttle.
    pub throttle_per_poll: usize,
    /// Enlarged out-of-orderness buffer for archival data.
    pub max_out_of_orderness: i64,
}

impl Default for BackfillConfig {
    fn default() -> Self {
        BackfillConfig {
            from: 0,
            to: Timestamp::MAX,
            throttle_per_poll: 4096,
            max_out_of_orderness: 60_000,
        }
    }
}

/// Build a Kappa+ job: the streaming operator chain over archived data.
pub fn kappa_plus_job(
    name: impl Into<String>,
    table: &HiveTable,
    operators: Vec<Box<dyn Operator>>,
    sink: Box<dyn Sink>,
    config: &BackfillConfig,
) -> Result<Job> {
    if config.to <= config.from {
        return Err(Error::InvalidArgument(
            "backfill range must be non-empty".into(),
        ));
    }
    let source = HiveSource::new(table, config.from, config.to, config.throttle_per_poll)?;
    Ok(Job::new(name, Box::new(source), operators, sink)
        .with_out_of_orderness(config.max_out_of_orderness))
}

/// Kappa-style backfill: replay the Kafka topic itself. Fails with
/// `OffsetOutOfRange`-derived unavailability when retention has trimmed
/// the requested range — demonstrating why the paper could not adopt
/// Kappa at Uber's retention settings.
pub fn kafka_replay_job(
    name: impl Into<String>,
    topic: Arc<Topic>,
    from: Timestamp,
    operators: Vec<Box<dyn Operator>>,
    sink: Box<dyn Sink>,
) -> Result<Job> {
    // verify the requested range is still retained: the earliest retained
    // record in each partition must be no newer than `from`
    for p in 0..topic.num_partitions() {
        let log = topic
            .partition(p)
            .ok_or_else(|| Error::NotFound(format!("topic '{}' partition {p}", topic.name())))?;
        let start = log.log_start_offset();
        if let Ok(fetch) = log.fetch(start, 1) {
            if let Some(first) = fetch.records.first() {
                if first.record.timestamp > from {
                    return Err(Error::OffsetOutOfRange {
                        requested: 0,
                        low: start,
                        high: log.high_watermark(),
                    });
                }
            }
        }
    }
    let source = TopicSource::bounded(topic)?;
    Ok(Job::new(name, Box::new(source), operators, sink))
}

/// Report whether a topic still retains data back to `from` — the check
/// a backfill planner runs to choose between Kappa (cheap, if retained)
/// and Kappa+ (always possible).
pub fn kafka_retains(topic: &Topic, from: Timestamp) -> bool {
    (0..topic.num_partitions()).all(|p| {
        // a missing partition means the range cannot be replayed — answer
        // "not retained" instead of panicking
        let Some(log) = topic.partition(p) else {
            return false;
        };
        match log.fetch(log.log_start_offset(), 1) {
            Ok(f) => f
                .records
                .first()
                .map(|r| r.record.timestamp <= from)
                .unwrap_or(true),
            Err(_) => false,
        }
    })
}

/// The boundary detection the paper mentions: given a table and a
/// requested range, clamp to what the archive actually has.
pub fn detect_bounds(
    table: &HiveTable,
    from: Timestamp,
    to: Timestamp,
) -> Result<(Timestamp, Timestamp)> {
    let rows = table.scan_range(from, to)?;
    let mut lo = Timestamp::MAX;
    let mut hi = Timestamp::MIN;
    for r in &rows {
        if let Some(ts) = r.get_int("__ts") {
            lo = lo.min(ts);
            hi = hi.max(ts);
        }
    }
    if rows.is_empty() {
        return Err(Error::NotFound(format!(
            "no archived data in [{from}, {to})"
        )));
    }
    Ok((lo, hi + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::WindowAggregateOp;
    use crate::runtime::{Executor, ExecutorConfig};
    use crate::sink::CollectSink;
    use crate::source::VecSource;
    use crate::window::WindowAssigner;
    use rtdi_common::AggFn;
    use rtdi_common::{Record, Row, Schema};
    use rtdi_storage::hive::HiveCatalog;
    use rtdi_storage::object::InMemoryStore;
    use rtdi_stream::topic::TopicConfig;

    fn agg_chain() -> Vec<Box<dyn Operator>> {
        vec![Box::new(WindowAggregateOp::new(
            "agg",
            vec!["city".into()],
            WindowAssigner::tumbling(1000),
            vec![("trips".into(), AggFn::Count)],
            0,
        ))]
    }

    fn trip_row(i: i64) -> Row {
        Row::new()
            .with("city", if i % 2 == 0 { "sf" } else { "la" })
            .with("__ts", i * 100)
    }

    fn archived_table() -> (HiveCatalog, HiveTable) {
        let store = Arc::new(InMemoryStore::new());
        let catalog = HiveCatalog::new(store);
        let schema = Schema::of(
            "trips",
            &[
                ("city", rtdi_common::FieldType::Str),
                ("__ts", rtdi_common::FieldType::Timestamp),
            ],
        );
        let table = catalog.create_table("trips", schema).unwrap();
        // archive 100 trips, deliberately out of order within the file
        let mut rows: Vec<Row> = (0..100).map(trip_row).collect();
        rows.swap(3, 50);
        rows.swap(20, 80);
        catalog.write_rows("trips", "d000000", &rows).unwrap();
        (catalog, table)
    }

    #[test]
    fn kappa_plus_matches_streaming_results() {
        let (_, table) = archived_table();
        // streaming reference: same operators over the live (ordered) stream
        let stream_sink = CollectSink::new();
        let mut stream_job = Job::new(
            "stream",
            Box::new(VecSource::from_rows(
                (0..100).map(|i| (i * 100, trip_row(i))).collect(),
            )),
            agg_chain(),
            Box::new(stream_sink.clone()),
        );
        Executor::new(ExecutorConfig::default())
            .run(&mut stream_job)
            .unwrap();

        // Kappa+ over the archive
        let bf_sink = CollectSink::new();
        let mut bf_job = kappa_plus_job(
            "backfill",
            &table,
            agg_chain(),
            Box::new(bf_sink.clone()),
            &BackfillConfig::default(),
        )
        .unwrap();
        Executor::new(ExecutorConfig::default())
            .run(&mut bf_job)
            .unwrap();

        let canon = |mut rows: Vec<Row>| {
            rows.sort_by_key(|r| {
                (
                    r.get_str("city").unwrap().to_string(),
                    r.get_int("window_start").unwrap(),
                )
            });
            rows.into_iter()
                .map(|r| {
                    (
                        r.get_str("city").unwrap().to_string(),
                        r.get_int("window_start").unwrap(),
                        r.get_int("trips").unwrap(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(canon(stream_sink.rows()), canon(bf_sink.rows()));
    }

    #[test]
    fn kappa_plus_respects_time_bounds() {
        let (_, table) = archived_table();
        let sink = CollectSink::new();
        let mut job = kappa_plus_job(
            "bounded",
            &table,
            agg_chain(),
            Box::new(sink.clone()),
            &BackfillConfig {
                from: 2000,
                to: 5000,
                ..Default::default()
            },
        )
        .unwrap();
        Executor::new(ExecutorConfig::default())
            .run(&mut job)
            .unwrap();
        let total: i64 = sink
            .rows()
            .iter()
            .map(|r| r.get_int("trips").unwrap())
            .sum();
        assert_eq!(total, 30); // records 20..50 at 100ms spacing
                               // inverted range rejected
        assert!(kappa_plus_job(
            "bad",
            &table,
            agg_chain(),
            Box::new(CollectSink::new()),
            &BackfillConfig {
                from: 10,
                to: 5,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn kafka_replay_fails_when_retention_trimmed() {
        // tiny retention: only the newest records survive
        let topic = Arc::new(
            Topic::new(
                "trips",
                TopicConfig {
                    partitions: 1,
                    retention_ms: 1_000,
                    retention_bytes: 0,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        for i in 0..100i64 {
            // append time tracks event time so retention trims old events
            topic
                .append(Record::new(trip_row(i), i * 100).with_key("k"), i * 100)
                .unwrap();
        }
        assert!(!kafka_retains(&topic, 0));
        let err = kafka_replay_job(
            "kappa",
            topic.clone(),
            0,
            agg_chain(),
            Box::new(CollectSink::new()),
        );
        assert!(matches!(err, Err(Error::OffsetOutOfRange { .. })));
        // recent range still works
        assert!(kafka_retains(&topic, 9_500));
        assert!(kafka_replay_job(
            "kappa-recent",
            topic,
            9_500,
            agg_chain(),
            Box::new(CollectSink::new())
        )
        .is_ok());
    }

    #[test]
    fn detect_bounds_clamps_to_archive() {
        let (_, table) = archived_table();
        let (lo, hi) = detect_bounds(&table, 0, i64::MAX).unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 9901);
        assert!(detect_bounds(&table, 1_000_000, 2_000_000).is_err());
    }
}
