//! Sources: where jobs read records from.
//!
//! - [`VecSource`]: bounded in-memory source for tests and examples;
//! - [`TopicSource`]: the Kafka source — reads a topic's partitions with
//!   checkpointable positions; bounded ("read to current end", used by
//!   catch-up runs) or unbounded;
//! - [`UnionSource`]: merges several sources, tagging each record with its
//!   stream name — the input shape [`crate::operator::WindowJoinOp`]
//!   expects;
//! - [`HiveSource`]: the Kappa+ (§7) read path — streams archived rows of
//!   a warehouse table in event-time order as if they were live, with a
//!   throughput throttle ("handling the higher throughput from the
//!   historic data with throttling").

use crate::operator::STREAM_TAG;
use rtdi_common::{Error, Record, Result, Row, Timestamp};
use rtdi_storage::hive::HiveTable;
use rtdi_stream::topic::Topic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A record source with checkpointable progress.
pub trait Source: Send {
    /// Pull up to `max` records. An empty result from a bounded source
    /// means exhaustion; from an unbounded source it means "nothing right
    /// now".
    fn poll_batch(&mut self, max: usize) -> Result<Vec<Record>>;

    /// Batched zero-copy variant for the staged runtime: pull up to `max`
    /// records as shared handles. Sources backed by `Arc`-retaining
    /// storage (the stream log, in-memory vectors) override this to hand
    /// out reference bumps instead of deep clones.
    fn poll_batch_shared(&mut self, max: usize) -> Result<Vec<Arc<Record>>> {
        Ok(self.poll_batch(max)?.into_iter().map(Arc::new).collect())
    }

    /// Bounded sources report completion.
    fn is_exhausted(&self) -> bool;

    /// Progress vector for checkpoints (per-partition offsets, or a single
    /// cursor).
    fn position(&self) -> Vec<u64>;

    /// Rewind to a checkpointed position.
    fn seek(&mut self, position: &[u64]) -> Result<()>;
}

/// Bounded source over an in-memory vector. Records are held behind
/// `Arc` so the batched runtime's shared poll is a reference bump.
pub struct VecSource {
    records: Vec<Arc<Record>>,
    cursor: usize,
}

impl VecSource {
    pub fn new(records: Vec<Record>) -> Self {
        VecSource {
            records: records.into_iter().map(Arc::new).collect(),
            cursor: 0,
        }
    }

    /// Convenience: rows with explicit timestamps.
    pub fn from_rows(rows: Vec<(Timestamp, Row)>) -> Self {
        VecSource::new(
            rows.into_iter()
                .map(|(ts, row)| Record::new(row, ts))
                .collect(),
        )
    }
}

impl Source for VecSource {
    fn poll_batch(&mut self, max: usize) -> Result<Vec<Record>> {
        let end = (self.cursor + max).min(self.records.len());
        let batch = self.records[self.cursor..end]
            .iter()
            .map(|r| (**r).clone())
            .collect();
        self.cursor = end;
        Ok(batch)
    }

    fn poll_batch_shared(&mut self, max: usize) -> Result<Vec<Arc<Record>>> {
        let end = (self.cursor + max).min(self.records.len());
        let batch = self.records[self.cursor..end].to_vec();
        self.cursor = end;
        Ok(batch)
    }

    fn is_exhausted(&self) -> bool {
        self.cursor >= self.records.len()
    }

    fn position(&self) -> Vec<u64> {
        vec![self.cursor as u64]
    }

    fn seek(&mut self, position: &[u64]) -> Result<()> {
        self.cursor = position.first().copied().unwrap_or(0) as usize;
        Ok(())
    }
}

/// Source over a stream topic with per-partition positions.
pub struct TopicSource {
    topic: Arc<Topic>,
    positions: Vec<u64>,
    /// For bounded mode: stop at these high watermarks (captured at
    /// construction). `None` = unbounded.
    end_offsets: Option<Vec<u64>>,
    next_partition: usize,
}

impl TopicSource {
    /// Unbounded: keeps returning new records as they are produced.
    pub fn unbounded(topic: Arc<Topic>) -> Self {
        let n = topic.num_partitions();
        TopicSource {
            topic,
            positions: vec![0; n],
            end_offsets: None,
            next_partition: 0,
        }
    }

    /// Bounded: reads from the current log start to the current end.
    /// Errors (rather than panicking) if the topic's partition map is
    /// inconsistent — e.g. a partition dropped between the watermark
    /// snapshot and here.
    pub fn bounded(topic: Arc<Topic>) -> Result<Self> {
        let ends = topic.high_watermarks();
        let n = topic.num_partitions();
        let starts = (0..n)
            .map(|p| {
                topic
                    .partition(p)
                    .map(|part| part.log_start_offset())
                    .ok_or_else(|| {
                        Error::NotFound(format!("topic '{}' partition {p}", topic.name()))
                    })
            })
            .collect::<Result<Vec<u64>>>()?;
        Ok(TopicSource {
            topic,
            positions: starts,
            end_offsets: Some(ends),
            next_partition: 0,
        })
    }
}

impl Source for TopicSource {
    /// Fetches an even share from *every* partition and emits the combined
    /// batch in event-time order. Draining partitions one at a time would
    /// manufacture cross-partition out-of-orderness and make watermarks
    /// drop perfectly-good records as late — Flink's Kafka source solves
    /// the same problem with per-partition watermark alignment.
    fn poll_batch(&mut self, max: usize) -> Result<Vec<Record>> {
        Ok(self
            .poll_batch_shared(max)?
            .into_iter()
            .map(|r| Arc::try_unwrap(r).unwrap_or_else(|a| (*a).clone()))
            .collect())
    }

    /// Zero-copy fetch: the log already stores `Arc<Record>` entries
    /// (PR 2's `append_batch`/`into_record` path), so the combined batch
    /// shares them instead of deep-cloning each record out of the log.
    fn poll_batch_shared(&mut self, max: usize) -> Result<Vec<Arc<Record>>> {
        let n = self.topic.num_partitions();
        let per_partition = (max / n).max(1);
        let mut out: Vec<Arc<Record>> = Vec::new();
        for _ in 0..n {
            let p = self.next_partition;
            self.next_partition = (self.next_partition + 1) % n;
            let limit = match &self.end_offsets {
                Some(ends) => {
                    if self.positions[p] >= ends[p] {
                        continue;
                    }
                    ((ends[p] - self.positions[p]) as usize).min(per_partition)
                }
                None => per_partition,
            };
            if limit == 0 || out.len() >= max {
                continue;
            }
            let fetch = match self.topic.fetch(p, self.positions[p], limit) {
                Ok(f) => f,
                Err(rtdi_common::Error::OffsetOutOfRange { low, .. }) => {
                    self.positions[p] = low;
                    self.topic.fetch(p, low, limit)?
                }
                Err(e) => return Err(e),
            };
            if let Some(last) = fetch.records.last() {
                self.positions[p] = last.offset + 1;
            }
            out.extend(fetch.records.into_iter().map(|r| r.record));
        }
        out.sort_by_key(|r| r.timestamp);
        Ok(out)
    }

    fn is_exhausted(&self) -> bool {
        match &self.end_offsets {
            Some(ends) => self.positions.iter().zip(ends).all(|(pos, end)| pos >= end),
            None => false,
        }
    }

    fn position(&self) -> Vec<u64> {
        self.positions.clone()
    }

    fn seek(&mut self, position: &[u64]) -> Result<()> {
        if position.len() != self.positions.len() {
            return Err(rtdi_common::Error::InvalidArgument(
                "position vector length mismatch".into(),
            ));
        }
        self.positions = position.to_vec();
        Ok(())
    }
}

/// Merges multiple named sources, tagging records with their origin.
pub struct UnionSource {
    sources: Vec<(String, Box<dyn Source>)>,
    next: usize,
}

impl UnionSource {
    pub fn new(sources: Vec<(String, Box<dyn Source>)>) -> Self {
        UnionSource { sources, next: 0 }
    }
}

impl Source for UnionSource {
    fn poll_batch(&mut self, max: usize) -> Result<Vec<Record>> {
        let n = self.sources.len();
        let mut out = Vec::new();
        for _ in 0..n {
            let i = self.next;
            self.next = (self.next + 1) % n;
            let (tag, src) = &mut self.sources[i];
            let batch = src.poll_batch(max.saturating_sub(out.len()).max(1))?;
            for mut rec in batch {
                rec.value.set(STREAM_TAG, tag.as_str());
                out.push(rec);
            }
            if out.len() >= max {
                break;
            }
        }
        Ok(out)
    }

    fn is_exhausted(&self) -> bool {
        self.sources.iter().all(|(_, s)| s.is_exhausted())
    }

    fn position(&self) -> Vec<u64> {
        // concatenated with per-source length prefix
        let mut out = Vec::new();
        for (_, s) in &self.sources {
            let pos = s.position();
            out.push(pos.len() as u64);
            out.extend(pos);
        }
        out
    }

    fn seek(&mut self, position: &[u64]) -> Result<()> {
        let mut idx = 0;
        for (_, s) in &mut self.sources {
            let len = *position
                .get(idx)
                .ok_or_else(|| rtdi_common::Error::InvalidArgument("short union position".into()))?
                as usize;
            idx += 1;
            let slice = position.get(idx..idx + len).ok_or_else(|| {
                rtdi_common::Error::InvalidArgument("short union position".into())
            })?;
            s.seek(slice)?;
            idx += len;
        }
        Ok(())
    }
}

/// Kappa+ source: replays archived rows of a Hive table, in event-time
/// order, at a bounded records-per-poll rate.
pub struct HiveSource {
    rows: Vec<Arc<Record>>,
    cursor: usize,
    /// Max records handed out per poll regardless of the requested batch —
    /// the Kappa+ throttle that protects downstream operators from
    /// full-speed historic reads.
    throttle_per_poll: usize,
}

impl HiveSource {
    /// Load the `[from, to)` event-time range of the table. The `__ts`
    /// column (added by the archival compactor) provides event time.
    pub fn new(
        table: &HiveTable,
        from: Timestamp,
        to: Timestamp,
        throttle_per_poll: usize,
    ) -> Result<Self> {
        let mut rows = table.scan_range(from, to)?;
        // archived data "could be out of order": restore event-time order
        // here so the pipeline's lateness buffer needs stay bounded
        rows.sort_by_key(|r| r.get_int("__ts").unwrap_or(0));
        let records = rows
            .into_iter()
            .map(|row| {
                let ts = row.get_int("__ts").unwrap_or(0);
                Arc::new(Record::new(row, ts))
            })
            .collect();
        Ok(HiveSource {
            rows: records,
            cursor: 0,
            throttle_per_poll: throttle_per_poll.max(1),
        })
    }
}

impl Source for HiveSource {
    fn poll_batch(&mut self, max: usize) -> Result<Vec<Record>> {
        let take = max.min(self.throttle_per_poll);
        let end = (self.cursor + take).min(self.rows.len());
        let batch = self.rows[self.cursor..end]
            .iter()
            .map(|r| (**r).clone())
            .collect();
        self.cursor = end;
        Ok(batch)
    }

    fn poll_batch_shared(&mut self, max: usize) -> Result<Vec<Arc<Record>>> {
        let take = max.min(self.throttle_per_poll);
        let end = (self.cursor + take).min(self.rows.len());
        let batch = self.rows[self.cursor..end].to_vec();
        self.cursor = end;
        Ok(batch)
    }

    fn is_exhausted(&self) -> bool {
        self.cursor >= self.rows.len()
    }

    fn position(&self) -> Vec<u64> {
        vec![self.cursor as u64]
    }

    fn seek(&mut self, position: &[u64]) -> Result<()> {
        self.cursor = position.first().copied().unwrap_or(0) as usize;
        Ok(())
    }
}

/// A shared per-poll cap the job manager tightens when the platform is
/// saturated (backlog growing faster than it drains) and clears once the
/// pipeline catches up. Cheap to clone; 0 means unthrottled.
#[derive(Clone, Debug, Default)]
pub struct SourceThrottle {
    cap: Arc<AtomicUsize>,
}

impl SourceThrottle {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap every throttled source at `records_per_poll` (min 1).
    pub fn set_cap(&self, records_per_poll: usize) {
        self.cap.store(records_per_poll.max(1), Ordering::Relaxed);
    }

    /// Remove the cap.
    pub fn clear(&self) {
        self.cap.store(0, Ordering::Relaxed);
    }

    pub fn cap(&self) -> Option<usize> {
        match self.cap.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    fn limit(&self, max: usize) -> usize {
        self.cap().map_or(max, |c| max.min(c))
    }
}

/// Wraps any source with a [`SourceThrottle`]: the saturation-reaction
/// path of the job manager — back-pressure applied at the intake instead
/// of letting an overloaded pipeline build unbounded in-flight state.
pub struct ThrottledSource {
    inner: Box<dyn Source>,
    throttle: SourceThrottle,
}

impl ThrottledSource {
    pub fn new(inner: Box<dyn Source>, throttle: SourceThrottle) -> Self {
        ThrottledSource { inner, throttle }
    }
}

impl Source for ThrottledSource {
    fn poll_batch(&mut self, max: usize) -> Result<Vec<Record>> {
        self.inner.poll_batch(self.throttle.limit(max))
    }

    fn poll_batch_shared(&mut self, max: usize) -> Result<Vec<Arc<Record>>> {
        self.inner.poll_batch_shared(self.throttle.limit(max))
    }

    fn is_exhausted(&self) -> bool {
        self.inner.is_exhausted()
    }

    fn position(&self) -> Vec<u64> {
        self.inner.position()
    }

    fn seek(&mut self, position: &[u64]) -> Result<()> {
        self.inner.seek(position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_stream::topic::TopicConfig;

    fn topic(partitions: usize, records: usize) -> Arc<Topic> {
        let t =
            Arc::new(Topic::new("t", TopicConfig::default().with_partitions(partitions)).unwrap());
        for i in 0..records {
            t.append(
                Record::new(Row::new().with("i", i as i64), i as i64).with_key(format!("k{i}")),
                0,
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn vec_source_drains_and_seeks() {
        let mut s = VecSource::from_rows((0..10).map(|i| (i, Row::new().with("i", i))).collect());
        assert_eq!(s.poll_batch(4).unwrap().len(), 4);
        assert_eq!(s.position(), vec![4]);
        s.seek(&[8]).unwrap();
        assert_eq!(s.poll_batch(10).unwrap().len(), 2);
        assert!(s.is_exhausted());
        assert!(s.poll_batch(10).unwrap().is_empty());
    }

    #[test]
    fn shared_poll_is_reference_bump_and_matches_owned_poll() {
        let mut s = VecSource::from_rows((0..6).map(|i| (i, Row::new().with("i", i))).collect());
        let shared = s.poll_batch_shared(4).unwrap();
        assert_eq!(shared.len(), 4);
        // the source still holds its own Arc: sharing, not deep copies
        assert!(Arc::strong_count(&shared[0]) >= 2);
        assert_eq!(s.position(), vec![4]);
        // topic source: shared poll matches the owned poll record-for-record
        let t = topic(2, 10);
        let mut a = TopicSource::bounded(t.clone()).unwrap();
        let mut b = TopicSource::bounded(t).unwrap();
        let owned = a.poll_batch(10).unwrap();
        let shared: Vec<Record> = b
            .poll_batch_shared(10)
            .unwrap()
            .iter()
            .map(|r| (**r).clone())
            .collect();
        assert_eq!(owned, shared);
        assert_eq!(a.position(), b.position());
    }

    #[test]
    fn bounded_topic_source_reads_to_snapshot_end() {
        let t = topic(3, 30);
        let mut s = TopicSource::bounded(t.clone()).unwrap();
        // records appended after construction are not part of this run
        t.append(
            Record::new(Row::new().with("i", 999i64), 0).with_key("late"),
            0,
        )
        .unwrap();
        let mut total = 0;
        while !s.is_exhausted() {
            let batch = s.poll_batch(7).unwrap();
            total += batch.len();
            assert!(batch.iter().all(|r| r.value.get_int("i") != Some(999)));
        }
        assert_eq!(total, 30);
    }

    #[test]
    fn unbounded_topic_source_sees_new_records() {
        let t = topic(2, 4);
        let mut s = TopicSource::unbounded(t.clone());
        assert_eq!(s.poll_batch(100).unwrap().len(), 4);
        assert!(!s.is_exhausted());
        assert!(s.poll_batch(100).unwrap().is_empty());
        t.append(Record::new(Row::new().with("i", 5i64), 0).with_key("x"), 0)
            .unwrap();
        assert_eq!(s.poll_batch(100).unwrap().len(), 1);
    }

    #[test]
    fn topic_source_checkpoint_roundtrip() {
        let t = topic(2, 20);
        let mut s = TopicSource::bounded(t.clone()).unwrap();
        s.poll_batch(6).unwrap();
        let pos = s.position();
        let consumed_after: usize = {
            let mut s2 = TopicSource::bounded(t).unwrap();
            s2.seek(&pos).unwrap();
            let mut n = 0;
            while !s2.is_exhausted() {
                n += s2.poll_batch(100).unwrap().len();
            }
            n
        };
        assert_eq!(consumed_after, 14);
        assert!(s.seek(&[0]).is_err(), "length mismatch rejected");
    }

    #[test]
    fn union_source_tags_streams() {
        let a = VecSource::from_rows(vec![(0, Row::new().with("x", 1i64))]);
        let b = VecSource::from_rows(vec![(1, Row::new().with("y", 2i64))]);
        let mut u = UnionSource::new(vec![
            ("left".into(), Box::new(a)),
            ("right".into(), Box::new(b)),
        ]);
        let mut all = Vec::new();
        while !u.is_exhausted() {
            all.extend(u.poll_batch(10).unwrap());
        }
        assert_eq!(all.len(), 2);
        let tags: Vec<&str> = all
            .iter()
            .map(|r| r.value.get_str(STREAM_TAG).unwrap())
            .collect();
        assert!(tags.contains(&"left") && tags.contains(&"right"));
    }

    #[test]
    fn union_position_roundtrip() {
        let mk = || {
            UnionSource::new(vec![
                (
                    "a".into(),
                    Box::new(VecSource::from_rows(
                        (0..5).map(|i| (i, Row::new().with("i", i))).collect(),
                    )) as Box<dyn Source>,
                ),
                (
                    "b".into(),
                    Box::new(VecSource::from_rows(
                        (0..5).map(|i| (i, Row::new().with("i", i))).collect(),
                    )) as Box<dyn Source>,
                ),
            ])
        };
        let mut u = mk();
        u.poll_batch(3).unwrap();
        let pos = u.position();
        let mut u2 = mk();
        u2.seek(&pos).unwrap();
        let mut rest = 0;
        while !u2.is_exhausted() {
            rest += u2.poll_batch(100).unwrap().len();
        }
        assert_eq!(rest, 7);
    }

    #[test]
    fn hive_source_orders_and_throttles() {
        use rtdi_storage::hive::HiveCatalog;
        use rtdi_storage::object::InMemoryStore;
        let store = Arc::new(InMemoryStore::new());
        let catalog = HiveCatalog::new(store);
        let schema = rtdi_common::Schema::of(
            "t",
            &[
                ("v", rtdi_common::FieldType::Int),
                ("__ts", rtdi_common::FieldType::Timestamp),
            ],
        );
        let table = catalog.create_table("t", schema).unwrap();
        // write out of order
        let rows: Vec<Row> = [5i64, 1, 9, 3, 7]
            .iter()
            .map(|&ts| Row::new().with("v", ts).with("__ts", ts))
            .collect();
        catalog.write_rows("t", "d000000", &rows).unwrap();
        let mut s = HiveSource::new(&table, 0, 100, 2).unwrap();
        let b1 = s.poll_batch(100).unwrap();
        assert_eq!(b1.len(), 2, "throttle caps the batch");
        assert_eq!(b1[0].timestamp, 1, "event-time order restored");
        assert_eq!(b1[1].timestamp, 3);
        let mut rest = Vec::new();
        while !s.is_exhausted() {
            rest.extend(s.poll_batch(100).unwrap());
        }
        assert_eq!(rest.len(), 3);
        assert_eq!(rest.last().unwrap().timestamp, 9);
    }
}
