//! # rtdi-compute
//!
//! The stream-processing layer — the Apache Flink stand-in of §4.2 — with
//! the platform features Uber built around it:
//!
//! - [`window`], [`watermark`], [`aggregate`]: event-time tumbling /
//!   sliding / session windows, bounded-out-of-orderness watermarks and the
//!   aggregate functions used by FlinkSQL;
//! - [`operator`]: the dataflow operators (map / filter / flat-map / keyed
//!   window aggregation / windowed stream-stream join) with snapshotable
//!   state;
//! - [`source`], [`sink`]: bounded & unbounded sources over topics,
//!   in-memory vectors and archived Hive tables (the Kappa+ read path);
//! - [`runtime`]: the single-job executor with barrier-equivalent
//!   checkpoints persisted to the object store and exact state recovery;
//!   plus a staged multi-threaded runtime with bounded channels whose
//!   natural backpressure reproduces Flink's backlog behaviour;
//! - [`jobmanager`] (§4.2.2, Figure 5): job lifecycle management,
//!   rule-based health monitoring, automatic failure recovery and
//!   CPU-vs-memory-bound auto-scaling;
//! - [`backfill`] (§7): the Kappa+ architecture — the same operator chain
//!   replayed over archived data with throttling and enlarged buffers;
//! - [`baselines`]: the Storm-like ack-based engine and the Spark-like
//!   micro-batch engine used by the §4.2 comparison experiments (E6, E7).

pub mod aggregate;
pub mod backfill;
pub mod baselines;
pub mod jobmanager;
pub mod operator;
pub mod runtime;
pub mod sink;
pub mod source;
pub mod watermark;
pub mod window;

pub use aggregate::{AggAcc, AggFn};
pub use jobmanager::{JobManager, JobSpec, JobStatus};
pub use operator::{
    FilterOp, FlatMapOp, MapOp, Operator, OperatorOutput, WindowAggregateOp, WindowJoinOp,
};
pub use runtime::{CheckpointStore, Executor, ExecutorConfig, Job, JobRunStats};
pub use sink::{CollectSink, FnSink, Sink, TopicSink};
pub use source::{HiveSource, Source, TopicSource, UnionSource, VecSource};
pub use watermark::WatermarkGenerator;
pub use window::WindowAssigner;
