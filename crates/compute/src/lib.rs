//! # rtdi-compute
//!
//! The stream-processing layer — the Apache Flink stand-in of §4.2 — with
//! the platform features Uber built around it:
//!
//! - [`window`], [`watermark`]: event-time tumbling / sliding / session
//!   windows and bounded-out-of-orderness watermarks (the aggregate
//!   functions live in `rtdi_common::agg`, re-exported here);
//! - [`operator`]: the dataflow operators (map / filter / flat-map / keyed
//!   window aggregation / windowed stream-stream join) with snapshotable
//!   state, plus the operator-chaining pass that fuses adjacent stateless
//!   operators into one stage;
//! - [`source`], [`sink`]: bounded & unbounded sources over topics,
//!   in-memory vectors and archived Hive tables (the Kappa+ read path),
//!   all batch-aware (`poll_batch_shared` / `write_batch`);
//! - [`runtime`]: the single-job executor with barrier-equivalent
//!   checkpoints persisted to the object store and exact state recovery;
//!   plus a staged multi-threaded runtime with bounded channels whose
//!   natural backpressure reproduces Flink's backlog behaviour, moving
//!   micro-batches (`Vec<Arc<Record>>`) per hop with aligned checkpoint
//!   barriers;
//! - [`jobmanager`] (§4.2.2, Figure 5): job lifecycle management,
//!   rule-based health monitoring, automatic failure recovery and
//!   CPU-vs-memory-bound auto-scaling;
//! - [`backfill`] (§7): the Kappa+ architecture — the same operator chain
//!   replayed over archived data with throttling and enlarged buffers;
//! - [`baselines`]: the Storm-like ack-based engine and the Spark-like
//!   micro-batch engine used by the §4.2 comparison experiments (E6, E7).

pub mod backfill;
pub mod baselines;
pub mod jobmanager;
pub mod operator;
pub mod runtime;
pub mod sink;
pub mod source;
pub mod watermark;
pub mod window;

pub use jobmanager::{
    ElasticJobSpec, ElasticRunStats, JobManager, JobSpec, JobStatus, RescaleEvent, RescalePolicy,
};
pub use operator::{
    fuse_stateless, key_string, DedupOp, FilterOp, FlatMapOp, FusedOp, MapOp, Operator,
    OperatorOutput, PartialCombineOp, ShardSpec, WindowAggregateOp, WindowJoinOp, PARTIAL_COL,
};
pub use rtdi_common::agg::{AggAcc, AggFn};
pub use runtime::{
    run_staged, run_staged_with, CheckpointStore, Executor, ExecutorConfig, Job, JobRunStats,
    RescaleHandle, ShardStats, StageStats, StagedConfig, StagedRunStats,
};
pub use sink::{CollectSink, FnSink, Sink, TopicSink};
pub use source::{HiveSource, Source, TopicSource, UnionSource, VecSource};
pub use watermark::WatermarkGenerator;
pub use window::{WindowAssigner, WINDOW_END_COL, WINDOW_START_COL};
