//! Comparison baselines from the paper's 2016 engine evaluation (§4.2).
//!
//! - "Storm performed poorly in handling back pressure when faced with a
//!   massive input backlog of millions of messages, taking several hours
//!   to recover whereas Flink only took 20 minutes."
//!   [`simulate_recovery`] reproduces that comparison as a discrete-time
//!   simulation: the Flink-like engine uses credit-based flow control (the
//!   spout only emits when buffer space exists), the Storm-like engine
//!   uses unbounded emission with ack timeouts, whose replays collapse
//!   goodput under backlog.
//!
//! - "Spark jobs consumed 5-10 times more memory than a corresponding
//!   Flink job for the same workload."
//!   [`MicroBatchEngine`] materializes whole batches and per-key groups in
//!   memory the way a micro-batch engine does; comparing its peak bytes
//!   with the incremental-accumulator streaming engine reproduces the
//!   footprint gap (experiment E7).

use rtdi_common::agg::{AggAcc, AggFn};
use rtdi_common::{Record, Row, Timestamp};
use std::collections::{BTreeMap, VecDeque};

/// Which engine model to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineModel {
    /// Credit-based flow control: bounded in-flight buffer, no timeouts.
    FlinkLike { buffer_capacity: u64 },
    /// No flow control: eager emission, per-tuple ack timeout with replay.
    /// The spout reacts to failures the way Storm topologies did in
    /// practice — crude multiplicative backoff when acks start timing out,
    /// slow additive recovery afterwards — which produces the sawtooth of
    /// overload / timeout-storm / backoff the paper's "several hours to
    /// recover" describes, instead of either clean recovery or permanent
    /// congestion collapse.
    StormLike {
        /// Ack timeout; tuples processed later than this after emission
        /// count as failed and are replayed from the spout.
        ack_timeout_ms: i64,
        /// Initial emission rate multiple of processing capacity (Storm
        /// spouts push as fast as they can read).
        emit_multiplier: f64,
    },
}

/// Result of a backlog-recovery simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryResult {
    /// Virtual time until the backlog (and replay debt) fully drained.
    pub recovery_ms: i64,
    /// Tuples processed whose ack arrived too late (wasted work).
    pub wasted_replays: u64,
    /// True if the simulation hit the horizon before recovering.
    pub timed_out: bool,
}

/// Simulate draining `backlog` messages while `input_rate_per_sec` new
/// messages keep arriving, with `capacity_per_sec` total processing
/// capacity. Returns when the engine has caught up (in-flight + backlog
/// below one second of input).
pub fn simulate_recovery(
    model: EngineModel,
    backlog: u64,
    capacity_per_sec: u64,
    input_rate_per_sec: u64,
    horizon_ms: i64,
) -> RecoveryResult {
    assert!(
        capacity_per_sec > input_rate_per_sec,
        "engine must have headroom to ever recover"
    );
    let dt_ms: i64 = 100;
    let mut backlog = backlog as f64;
    let mut wasted = 0u64;
    let mut t = 0i64;
    // in-flight queue of (emit_time, count) cohorts
    let mut queue: VecDeque<(i64, f64)> = VecDeque::new();
    let mut queued: f64 = 0.0;
    let caught_up_threshold = input_rate_per_sec as f64; // < 1s of input
                                                         // Storm spout AIMD state
    let mut spout_factor = match model {
        EngineModel::StormLike {
            emit_multiplier, ..
        } => emit_multiplier,
        _ => 1.0,
    };

    while t < horizon_ms {
        t += dt_ms;
        let input_step = input_rate_per_sec as f64 * dt_ms as f64 / 1000.0;
        backlog += input_step;

        // emission
        let emit = match model {
            EngineModel::FlinkLike { buffer_capacity } => {
                // credit-based: fill the buffer only up to capacity
                (buffer_capacity as f64 - queued).max(0.0).min(backlog)
            }
            EngineModel::StormLike { .. } => {
                // eager, modulated by the failure-reactive spout factor
                (capacity_per_sec as f64 * spout_factor * dt_ms as f64 / 1000.0).min(backlog)
            }
        };
        if emit > 0.0 {
            backlog -= emit;
            queue.push_back((t, emit));
            queued += emit;
        }

        // processing
        let mut budget = capacity_per_sec as f64 * dt_ms as f64 / 1000.0;
        let mut saw_timeout = false;
        while budget > 0.0 {
            let Some(front) = queue.front_mut() else {
                break;
            };
            let (emit_time, ref mut count) = *front;
            let take = budget.min(*count);
            *count -= take;
            queued -= take;
            budget -= take;
            let late = match model {
                EngineModel::StormLike { ack_timeout_ms, .. } => t - emit_time > ack_timeout_ms,
                EngineModel::FlinkLike { .. } => false,
            };
            if late {
                // ack arrives too late: Storm replays the tuple's whole
                // processing tree from the spout, so one timeout re-costs
                // several tuples' worth of work (tree-replay amplification)
                const TREE_REPLAY_FACTOR: f64 = 4.0;
                wasted += (take * TREE_REPLAY_FACTOR) as u64;
                backlog += take * TREE_REPLAY_FACTOR;
                saw_timeout = true;
            }
            if *count <= 0.0001 {
                queue.pop_front();
            }
        }
        if let EngineModel::StormLike {
            emit_multiplier, ..
        } = model
        {
            if saw_timeout {
                // multiplicative backoff when acks time out, but never so
                // far that the spout starves the workers
                spout_factor = (spout_factor * 0.5).max(0.35);
            } else {
                // additive probe back toward full speed
                spout_factor = (spout_factor + 0.002).min(emit_multiplier);
            }
        }
        // Storm also times tuples out *in* the queue: the spout replays
        // them even though they are still waiting (duplicate work stays in
        // the queue; we model the replay by re-adding to backlog while the
        // stale copy still consumes processing when it reaches the head —
        // already covered by the `late` branch above).

        if backlog + queued <= caught_up_threshold {
            return RecoveryResult {
                recovery_ms: t,
                wasted_replays: wasted,
                timed_out: false,
            };
        }
    }
    RecoveryResult {
        recovery_ms: horizon_ms,
        wasted_replays: wasted,
        timed_out: true,
    }
}

/// Results plus peak memory of a micro-batch run.
#[derive(Debug, Clone)]
pub struct MicroBatchResult {
    pub rows: Vec<Row>,
    pub peak_bytes: usize,
}

/// A Spark-Streaming-like micro-batch engine: buffers `batch_ms` of input,
/// materializes per-key groups, aggregates, emits.
pub struct MicroBatchEngine {
    pub batch_ms: i64,
}

impl MicroBatchEngine {
    pub fn new(batch_ms: i64) -> Self {
        assert!(batch_ms > 0);
        MicroBatchEngine { batch_ms }
    }

    /// Windowed group-by aggregation where the window equals the batch
    /// interval (the classic DStream reduceByWindow shape). Input must be
    /// in event-time order (micro-batching assumes arrival order).
    pub fn run_windowed_agg(
        &self,
        records: &[Record],
        key_col: &str,
        aggs: &[(String, AggFn)],
    ) -> MicroBatchResult {
        let mut out = Vec::new();
        let mut peak = 0usize;
        let mut batch: Vec<Record> = Vec::new();
        let mut batch_bytes = 0usize;
        let mut batch_start: Option<Timestamp> = None;

        let flush = |batch: &mut Vec<Record>,
                     batch_bytes: &mut usize,
                     start: Timestamp,
                     out: &mut Vec<Row>,
                     peak: &mut usize| {
            if batch.is_empty() {
                return;
            }
            // shuffle phase: materialize per-key row groups (the extra copy
            // that makes micro-batch memory-hungry)
            let mut groups: BTreeMap<String, Vec<Row>> = BTreeMap::new();
            let mut group_bytes = 0usize;
            for rec in batch.iter() {
                let key = rec
                    .value
                    .get(key_col)
                    .map(|v| v.to_string())
                    .unwrap_or_default();
                group_bytes += rec.value.approx_bytes();
                groups.entry(key).or_default().push(rec.value.clone());
            }
            *peak = (*peak).max(*batch_bytes + group_bytes);
            for (key, rows) in groups {
                let mut accs: Vec<AggAcc> = aggs.iter().map(|(_, f)| f.new_acc()).collect();
                for row in &rows {
                    for (acc, (_, f)) in accs.iter_mut().zip(aggs) {
                        acc.add(f, row);
                    }
                }
                let mut row = Row::new()
                    .with(key_col, key)
                    .with("window_start", start)
                    .with("window_end", start + self.batch_ms);
                for ((name, _), acc) in aggs.iter().zip(&accs) {
                    row.push(name.clone(), acc.result());
                }
                out.push(row);
            }
            batch.clear();
            *batch_bytes = 0;
        };

        for rec in records {
            let start = rec.timestamp.div_euclid(self.batch_ms) * self.batch_ms;
            match batch_start {
                Some(s) if s == start => {}
                Some(s) => {
                    flush(&mut batch, &mut batch_bytes, s, &mut out, &mut peak);
                    batch_start = Some(start);
                }
                None => batch_start = Some(start),
            }
            batch_bytes += rec.value.approx_bytes();
            batch.push(rec.clone());
            peak = peak.max(batch_bytes);
        }
        if let Some(s) = batch_start {
            flush(&mut batch, &mut batch_bytes, s, &mut out, &mut peak);
        }
        MicroBatchResult {
            rows: out,
            peak_bytes: peak,
        }
    }
}

/// Exchange-buffer allowance charged to the pipelined engine: even a
/// record-at-a-time engine holds bounded credit-based network buffers
/// between operators (Flink defaults to a pair of 32 KiB buffers per
/// channel; we charge a conservative 16 KiB for this single-channel job).
/// Without this the streaming side's footprint would be just a few
/// accumulators and the micro-batch ratio would overstate the paper's
/// empirically-measured 5-10x.
pub const STREAMING_EXCHANGE_BUFFER_BYTES: usize = 16 * 1024;

/// Streaming-engine counterpart: run the same aggregation through the
/// incremental window operator, tracking peak state bytes (plus the
/// exchange-buffer allowance above). Returns `(rows, peak_bytes)`.
pub fn streaming_windowed_agg(
    records: &[Record],
    key_col: &str,
    aggs: &[(String, AggFn)],
    window_ms: i64,
) -> (Vec<Row>, usize) {
    use crate::operator::{Operator, WindowAggregateOp};
    use crate::window::WindowAssigner;
    let mut op = WindowAggregateOp::new(
        "agg",
        vec![key_col.to_string()],
        WindowAssigner::tumbling(window_ms),
        aggs.to_vec(),
        0,
    );
    let mut out = Vec::new();
    let mut peak = 0usize;
    let mut max_ts = Timestamp::MIN;
    for rec in records {
        max_ts = max_ts.max(rec.timestamp);
        op.process(rec.clone(), &mut out).unwrap();
        // in-order input: watermark chases event time directly
        op.on_watermark(max_ts, &mut out);
        peak = peak.max(op.memory_bytes() + rec.value.approx_bytes());
    }
    op.on_watermark(Timestamp::MAX, &mut out);
    (
        out.into_iter().map(|r| r.value).collect(),
        peak + STREAMING_EXCHANGE_BUFFER_BYTES,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flink_recovery_time_matches_analytic_bound() {
        // 5M backlog, 5k/s capacity, 1k/s input -> ~1250s analytic
        let r = simulate_recovery(
            EngineModel::FlinkLike {
                buffer_capacity: 10_000,
            },
            5_000_000,
            5_000,
            1_000,
            10_000_000,
        );
        assert!(!r.timed_out);
        let analytic_ms = 5_000_000.0 / (5_000.0 - 1_000.0) * 1000.0;
        let ratio = r.recovery_ms as f64 / analytic_ms;
        assert!(
            (0.9..1.2).contains(&ratio),
            "recovery {}ms vs analytic {}ms",
            r.recovery_ms,
            analytic_ms
        );
        assert_eq!(r.wasted_replays, 0);
    }

    #[test]
    fn storm_like_recovery_is_order_of_magnitude_slower() {
        let backlog = 5_000_000;
        let flink = simulate_recovery(
            EngineModel::FlinkLike {
                buffer_capacity: 10_000,
            },
            backlog,
            5_000,
            1_000,
            100_000_000,
        );
        let storm = simulate_recovery(
            EngineModel::StormLike {
                ack_timeout_ms: 60_000,
                emit_multiplier: 1.2,
            },
            backlog,
            5_000,
            1_000,
            100_000_000,
        );
        assert!(!flink.timed_out);
        assert!(
            storm.recovery_ms > 5 * flink.recovery_ms,
            "storm {}ms vs flink {}ms",
            storm.recovery_ms,
            flink.recovery_ms
        );
        assert!(storm.wasted_replays > 0);
    }

    #[test]
    fn storm_without_backlog_behaves_fine() {
        // small backlog: queue never exceeds the ack timeout, no replays
        let r = simulate_recovery(
            EngineModel::StormLike {
                ack_timeout_ms: 30_000,
                emit_multiplier: 2.0,
            },
            10_000,
            5_000,
            1_000,
            10_000_000,
        );
        assert!(!r.timed_out);
        assert_eq!(r.wasted_replays, 0);
    }

    fn sample_records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::new(
                    Row::new()
                        .with("city", format!("c{}", i % 8))
                        .with("fare", 1.0 + (i % 10) as f64),
                    (i as i64) * 10,
                )
            })
            .collect()
    }

    #[test]
    fn microbatch_and_streaming_agree_on_results() {
        let records = sample_records(2000);
        let aggs = vec![
            ("n".to_string(), AggFn::Count),
            ("sum_fare".to_string(), AggFn::Sum("fare".into())),
        ];
        let mb = MicroBatchEngine::new(1000).run_windowed_agg(&records, "city", &aggs);
        let (st, _) = streaming_windowed_agg(&records, "city", &aggs, 1000);
        let canon = |mut rows: Vec<Row>| {
            rows.sort_by_key(|r| {
                (
                    r.get_str("city").unwrap().to_string(),
                    r.get_int("window_start").unwrap(),
                )
            });
            rows.into_iter()
                .map(|r| {
                    (
                        r.get_str("city").unwrap().to_string(),
                        r.get_int("window_start").unwrap(),
                        r.get_int("n").unwrap(),
                        r.get_double("sum_fare").unwrap(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(canon(mb.rows), canon(st));
    }

    #[test]
    fn microbatch_uses_multiples_more_memory() {
        let records = sample_records(20_000);
        let aggs = vec![
            ("n".to_string(), AggFn::Count),
            ("sum_fare".to_string(), AggFn::Sum("fare".into())),
        ];
        let mb = MicroBatchEngine::new(10_000).run_windowed_agg(&records, "city", &aggs);
        let (_, streaming_peak) = streaming_windowed_agg(&records, "city", &aggs, 10_000);
        let ratio = mb.peak_bytes as f64 / streaming_peak as f64;
        assert!(
            ratio >= 5.0,
            "expected >=5x memory gap (paper: 5-10x), got {ratio:.1}x \
             (micro-batch {} vs streaming {})",
            mb.peak_bytes,
            streaming_peak
        );
    }
}
