//! Watermarks: event-time progress tracking.
//!
//! The runtime generates bounded-out-of-orderness watermarks: after seeing
//! an event at time `t`, it promises no event older than
//! `t - max_out_of_orderness` will matter — older events are "late" and
//! the surge pipeline (§5.1) explicitly drops them ("the late-arriving
//! messages do not contribute to the surge computation").
//!
//! The Kappa+ backfill (§7) runs the same pipelines with a much larger
//! bound because archived data "could be out of order and therefore demand
//! larger window for buffering".

use rtdi_common::Timestamp;

/// Bounded-out-of-orderness watermark generator.
#[derive(Debug, Clone)]
pub struct WatermarkGenerator {
    max_out_of_orderness: i64,
    max_seen: Timestamp,
}

impl WatermarkGenerator {
    pub fn new(max_out_of_orderness: i64) -> Self {
        WatermarkGenerator {
            max_out_of_orderness: max_out_of_orderness.max(0),
            max_seen: Timestamp::MIN,
        }
    }

    /// Observe an event timestamp.
    pub fn observe(&mut self, ts: Timestamp) {
        if ts > self.max_seen {
            self.max_seen = ts;
        }
    }

    /// Current watermark: no event with `ts <= watermark` is expected
    /// anymore (Flink semantics: watermark t means no more elements with
    /// timestamp <= t).
    pub fn current(&self) -> Timestamp {
        if self.max_seen == Timestamp::MIN {
            Timestamp::MIN
        } else {
            self.max_seen.saturating_sub(self.max_out_of_orderness + 1)
        }
    }

    pub fn max_out_of_orderness(&self) -> i64 {
        self.max_out_of_orderness
    }

    /// The highest event time observed.
    pub fn max_seen(&self) -> Timestamp {
        self.max_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_trails_max_by_bound() {
        let mut g = WatermarkGenerator::new(100);
        assert_eq!(g.current(), Timestamp::MIN);
        g.observe(1000);
        assert_eq!(g.current(), 899);
        g.observe(500); // out-of-order event does not regress the watermark
        assert_eq!(g.current(), 899);
        g.observe(2000);
        assert_eq!(g.current(), 1899);
    }

    #[test]
    fn zero_bound_means_strictly_ordered() {
        let mut g = WatermarkGenerator::new(0);
        g.observe(10);
        assert_eq!(g.current(), 9);
    }

    #[test]
    fn negative_bound_clamped() {
        let mut g = WatermarkGenerator::new(-5);
        g.observe(10);
        assert_eq!(g.current(), 9);
        assert_eq!(g.max_out_of_orderness(), 0);
    }
}
