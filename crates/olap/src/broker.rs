//! Broker: scatter-gather-merge across server nodes.
//!
//! §4.3: "the query is first decomposed into sub-plans which execute on
//! the distributed segments in parallel, and then the plan results are
//! aggregated and merged into a final one." §4.3.1 adds the upsert
//! routing constraint: "we introduced a new routing strategy that
//! dispatches subqueries over the segments of the same partition to the
//! same node to ensure the integrity of the query result."

use crate::query::{sort_and_limit, PartialAgg, PartialResult, Query, QueryResult};
use crate::scatter::scatter;
use crate::segment::Segment;
use parking_lot::RwLock;
use rtdi_common::{chaos, fault_point};
use rtdi_common::{AdmissionController, Error, FaultPoint, Permit, Priority, Result};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// One server node hosting segment replicas.
pub struct ServerNode {
    id: usize,
    /// Membership/chaos identity: a node downed by name in the chaos
    /// registry (`FaultRegistry::kill_node`) reports itself down here too.
    name: String,
    down: AtomicBool,
    segments: RwLock<HashMap<String, Arc<Segment>>>,
}

impl ServerNode {
    pub fn new(id: usize) -> Arc<Self> {
        Self::named(id, format!("olap-server-{id}"))
    }

    /// A server with an explicit membership name (so heartbeat/chaos
    /// infrastructure can address it).
    pub fn named(id: usize, name: impl Into<String>) -> Arc<Self> {
        Arc::new(ServerNode {
            id,
            name: name.into(),
            down: AtomicBool::new(false),
            segments: RwLock::new(HashMap::new()),
        })
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst) || chaos::registry().node_is_down(&self.name)
    }

    pub fn host(&self, segment: Arc<Segment>) {
        self.segments
            .write()
            .insert(segment.name().to_string(), segment);
    }

    pub fn drop_segment(&self, name: &str) -> Option<Arc<Segment>> {
        self.segments.write().remove(name)
    }

    pub fn hosted(&self) -> Vec<String> {
        self.segments.read().keys().cloned().collect()
    }

    /// Serve a peer-recovery fetch (§4.3.4: "server replicas can serve the
    /// archived segments in case of failures").
    pub fn fetch_segment(&self, name: &str) -> Result<Arc<Segment>> {
        fault_point!(FaultPoint::OlapSegmentServe);
        if self.is_down() {
            return Err(Error::Unavailable(format!("server {} down", self.id)));
        }
        self.segments
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("segment '{name}' on server {}", self.id)))
    }

    fn execute_partial(&self, name: &str, query: &Query) -> Result<PartialAgg> {
        let seg = self.fetch_segment(name)?;
        seg.execute_partial(query, None)
    }

    fn execute_select(&self, name: &str, query: &Query) -> Result<QueryResult> {
        let seg = self.fetch_segment(name)?;
        seg.execute(query, None)
    }
}

/// Placement of one segment: which partition it belongs to (upsert
/// routing) and which servers hold replicas.
#[derive(Debug, Clone)]
pub struct SegmentPlacement {
    pub segment: String,
    pub partition: Option<usize>,
    pub replicas: Vec<usize>,
}

/// The query broker.
/// Per-segment scatter assignments: `(segment name, candidate servers
/// in preference order)`.
type ScatterPlan = Vec<(String, Vec<usize>)>;

pub struct Broker {
    servers: Vec<Arc<ServerNode>>,
    /// table -> placements
    routing: RwLock<BTreeMap<String, Vec<SegmentPlacement>>>,
    /// partition-aware tables (upsert): all segments of one partition must
    /// route to one server
    partition_aware: RwLock<BTreeMap<String, bool>>,
    /// Scatter-phase worker threads (0 = one per available core).
    parallelism: AtomicUsize,
    /// Optional admission gate in front of the scatter: per-table tenant
    /// quotas, concurrency permits and queue watermarks; shed queries
    /// surface `Error::Overloaded` before touching any server.
    admission: RwLock<Option<Arc<AdmissionController>>>,
}

impl Broker {
    pub fn new(servers: Vec<Arc<ServerNode>>) -> Self {
        Broker {
            servers,
            routing: RwLock::new(BTreeMap::new()),
            partition_aware: RwLock::new(BTreeMap::new()),
            parallelism: AtomicUsize::new(0),
            admission: RwLock::new(None),
        }
    }

    /// Builder-style scatter parallelism (0 = one worker per core).
    pub fn with_parallelism(self, threads: usize) -> Self {
        self.set_parallelism(threads);
        self
    }

    pub fn set_parallelism(&self, threads: usize) {
        self.parallelism.store(threads, Ordering::Relaxed);
    }

    /// Gate queries behind an admission controller (tenant = table name,
    /// lane = the query's priority).
    pub fn set_admission(&self, admission: Arc<AdmissionController>) {
        *self.admission.write() = Some(admission);
    }

    /// Admit a query (or refuse it with `Error::Overloaded`). The permit
    /// holds one broker concurrency slot for the query's lifetime.
    fn admit<'a>(
        &self,
        query: &Query,
        ac: &'a Option<Arc<AdmissionController>>,
    ) -> Result<Option<Permit<'a>>> {
        match ac {
            Some(ac) => Ok(Some(ac.admit(&query.table, query.priority)?)),
            None => Ok(None),
        }
    }

    /// Scatter parallelism for a query: the backfill lane runs on a
    /// single worker so batch scans never crowd interactive capacity.
    fn lane_parallelism(&self, query: &Query) -> usize {
        match query.priority {
            Priority::Backfill => 1,
            Priority::Interactive => self.parallelism.load(Ordering::Relaxed),
        }
    }

    pub fn servers(&self) -> &[Arc<ServerNode>] {
        &self.servers
    }

    pub fn register_table(&self, table: &str, partition_aware: bool) {
        self.routing.write().entry(table.to_string()).or_default();
        self.partition_aware
            .write()
            .insert(table.to_string(), partition_aware);
    }

    /// Place a segment on `replication` servers (round-robin by segment
    /// count, partition-pinned for partition-aware tables).
    pub fn place_segment(
        &self,
        table: &str,
        segment: Arc<Segment>,
        partition: Option<usize>,
        replication: usize,
    ) -> Result<()> {
        let n = self.servers.len();
        if n == 0 {
            return Err(Error::Unavailable("no servers".into()));
        }
        let aware = *self
            .partition_aware
            .read()
            .get(table)
            .ok_or_else(|| Error::NotFound(format!("table '{table}'")))?;
        let mut routing = self.routing.write();
        let placements = routing.entry(table.to_string()).or_default();
        let base = match (aware, partition) {
            // partition-aware: pin by partition id so all segments of a
            // partition share servers
            (true, Some(p)) => p,
            _ => placements.len(),
        };
        let replicas: Vec<usize> = (0..replication.max(1).min(n))
            .map(|r| (base + r) % n)
            .collect();
        for &s in &replicas {
            self.servers[s].host(segment.clone());
        }
        placements.push(SegmentPlacement {
            segment: segment.name().to_string(),
            partition,
            replicas,
        });
        Ok(())
    }

    /// Choose live candidate servers per segment (in preference order),
    /// respecting partition affinity. A segment with no live replica gets
    /// an empty candidate list — the query layer degrades to a partial
    /// response instead of failing outright. Segments whose partition the
    /// query's partition hint excludes are skipped entirely (pruned, not
    /// unavailable) and counted in the second return value.
    fn plan(&self, query: &Query) -> Result<(ScatterPlan, u64)> {
        let table = query.table.as_str();
        let routing = self.routing.read();
        let placements = routing
            .get(table)
            .ok_or_else(|| Error::NotFound(format!("table '{table}'")))?;
        let aware = *self.partition_aware.read().get(table).unwrap_or(&false);
        // partition -> chosen server, so all of a partition goes together
        let mut chosen_by_partition: HashMap<usize, usize> = HashMap::new();
        let mut pruned = 0u64;
        let mut plan = Vec::with_capacity(placements.len());
        for pl in placements {
            if !query.admits_partition(pl.partition) {
                pruned += 1;
                continue;
            }
            let live: Vec<usize> = pl
                .replicas
                .iter()
                .copied()
                .filter(|&s| !self.servers[s].is_down())
                .collect();
            let candidates = match (aware, pl.partition) {
                (true, Some(p)) => {
                    // prefer the server already chosen for this partition;
                    // the rest stay as mid-scatter fallbacks
                    let preferred = match chosen_by_partition.get(&p).copied() {
                        Some(s) if !self.servers[s].is_down() => Some(s),
                        _ => live.first().copied(),
                    };
                    match preferred {
                        Some(s) => {
                            chosen_by_partition.insert(p, s);
                            let mut c = vec![s];
                            c.extend(live.iter().copied().filter(|&x| x != s));
                            c
                        }
                        None => Vec::new(),
                    }
                }
                _ => live,
            };
            plan.push((pl.segment.clone(), candidates));
        }
        Ok((plan, pruned))
    }

    /// Try each candidate server for a segment in order, routing around
    /// servers that die mid scatter-gather; availability errors only
    /// surface when every replica fails.
    fn serve_with_failover<T>(
        &self,
        segment: &str,
        candidates: &[usize],
        f: impl Fn(&ServerNode, &str) -> Result<T>,
    ) -> Result<T> {
        let mut last: Option<Error> = None;
        for &s in candidates {
            match f(&self.servers[s], segment) {
                Ok(v) => return Ok(v),
                Err(e) if matches!(e, Error::Unavailable(_) | Error::Timeout(_)) => {
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            Error::Unavailable(format!("segment '{segment}' has no live replica"))
        }))
    }

    /// Execute a query: scatter sub-queries to the chosen servers across
    /// the worker pool, gather in plan order, merge.
    ///
    /// Graceful degradation (Pinot partial-response semantics): segments
    /// with no live replica, or whose serve fails with an availability
    /// error mid scatter-gather, are skipped and counted in
    /// `segments_unavailable` with `partial: true`. Only a total outage
    /// (no segment servable at all) is an `Err`.
    pub fn query(&self, query: &Query) -> Result<QueryResult> {
        if query.is_aggregation() {
            return Ok(self.query_partial(query)?.finalize(query));
        }
        let ac = self.admission.read().clone();
        let _permit = self.admit(query, &ac)?;
        let (plan, segments_pruned) = self.plan(query)?;
        let threads = self.lane_parallelism(query);
        let total_segments = plan.len();
        let mut segments_unavailable = plan.iter().filter(|(_, c)| c.is_empty()).count() as u64;
        let live: Vec<(String, Vec<usize>)> =
            plan.into_iter().filter(|(_, c)| !c.is_empty()).collect();
        let mut segments_queried = 0;
        let mut docs_scanned = 0;
        // availability failures degrade the response; anything else (a
        // malformed query, a corrupt segment) still fails the query
        let degradable = |e: &Error| matches!(e, Error::Unavailable(_) | Error::Timeout(_));
        let partials = scatter(live.len(), threads, |i| {
            let (segment, candidates) = &live[i];
            // servers check the deadline between segments: an expired
            // budget sheds the remaining segments instead of serving them
            if let Some(d) = &query.deadline {
                d.check(segment)?;
            }
            self.serve_with_failover(segment, candidates, |srv, seg| {
                srv.execute_select(seg, query)
            })
        });
        let mut rows = Vec::new();
        let mut segments_shed = 0u64;
        let mut deadline_exceeded = false;
        for r in partials {
            match r {
                Ok(r) => {
                    segments_queried += 1;
                    docs_scanned += r.docs_scanned;
                    rows.extend(r.rows);
                }
                Err(Error::DeadlineExceeded(_)) => {
                    segments_shed += 1;
                    deadline_exceeded = true;
                }
                Err(e) if degradable(&e) => segments_unavailable += 1,
                Err(e) => return Err(e),
            }
        }
        if total_segments > 0 && segments_queried == 0 {
            if deadline_exceeded {
                return Err(Error::DeadlineExceeded(format!(
                    "table '{}': deadline expired before any segment was served",
                    query.table
                )));
            }
            return Err(Error::Unavailable(format!(
                "table '{}' fully unavailable: 0/{total_segments} segments served",
                query.table
            )));
        }
        sort_and_limit(&mut rows, &query.order_by, query.limit);
        Ok(QueryResult {
            rows,
            docs_scanned,
            segments_queried,
            partial: segments_unavailable > 0 || deadline_exceeded,
            segments_unavailable,
            segments_pruned,
            deadline_exceeded,
            segments_shed,
            ..Default::default()
        })
    }

    /// Aggregation scatter-gather that stops before the merge-finalize
    /// step, returning mergeable per-group accumulators — the unit the
    /// SQL federation layer unions with offline segment partials across
    /// the realtime/offline time boundary.
    pub fn query_partial(&self, query: &Query) -> Result<PartialResult> {
        let ac = self.admission.read().clone();
        let _permit = self.admit(query, &ac)?;
        let (plan, segments_pruned) = self.plan(query)?;
        let threads = self.lane_parallelism(query);
        let total_segments = plan.len();
        let mut segments_unavailable = plan.iter().filter(|(_, c)| c.is_empty()).count() as u64;
        let live: Vec<(String, Vec<usize>)> =
            plan.into_iter().filter(|(_, c)| !c.is_empty()).collect();
        let mut segments_queried = 0;
        let mut docs_scanned = 0;
        let degradable = |e: &Error| matches!(e, Error::Unavailable(_) | Error::Timeout(_));
        let parts = scatter(live.len(), threads, |i| {
            let (segment, candidates) = &live[i];
            if let Some(d) = &query.deadline {
                d.check(segment)?;
            }
            self.serve_with_failover(segment, candidates, |srv, seg| {
                srv.execute_partial(seg, query)
            })
        });
        let mut merged = PartialAgg::default();
        let mut segments_shed = 0u64;
        let mut deadline_exceeded = false;
        for part in parts {
            match part {
                Ok(part) => {
                    segments_queried += 1;
                    docs_scanned += part.docs_scanned;
                    merged.merge(part, query);
                }
                Err(Error::DeadlineExceeded(_)) => {
                    segments_shed += 1;
                    deadline_exceeded = true;
                }
                Err(e) if degradable(&e) => segments_unavailable += 1,
                Err(e) => return Err(e),
            }
        }
        if total_segments > 0 && segments_queried == 0 {
            if deadline_exceeded {
                return Err(Error::DeadlineExceeded(format!(
                    "table '{}': deadline expired before any segment was served",
                    query.table
                )));
            }
            return Err(Error::Unavailable(format!(
                "table '{}' fully unavailable: 0/{total_segments} segments served",
                query.table
            )));
        }
        Ok(PartialResult {
            agg: merged,
            docs_scanned,
            segments_queried,
            segments_pruned,
            partial: segments_unavailable > 0 || deadline_exceeded,
            segments_unavailable,
            deadline_exceeded,
            segments_shed,
        })
    }

    /// Registered table names, in order.
    pub fn tables(&self) -> Vec<String> {
        self.routing.read().keys().cloned().collect()
    }

    /// Current placements of a table's segments.
    pub fn placements(&self, table: &str) -> Vec<SegmentPlacement> {
        self.routing.read().get(table).cloned().unwrap_or_default()
    }

    /// Index of the server with the given membership name.
    pub fn server_by_name(&self, name: &str) -> Option<usize> {
        self.servers.iter().position(|s| s.name() == name)
    }

    /// Move one replica of a segment from a dead server to a new host:
    /// the recovered segment is hosted on `to` and the routing entry
    /// updated. Used by the rebalancer (§4.3.4 self-healing).
    pub fn rehost_replica(
        &self,
        table: &str,
        segment: &str,
        from: usize,
        to: usize,
        seg: Arc<Segment>,
    ) -> Result<()> {
        if to >= self.servers.len() {
            return Err(Error::InvalidArgument(format!("no server {to}")));
        }
        let mut routing = self.routing.write();
        let placements = routing
            .get_mut(table)
            .ok_or_else(|| Error::NotFound(format!("table '{table}'")))?;
        let pl = placements
            .iter_mut()
            .find(|p| p.segment == segment)
            .ok_or_else(|| Error::NotFound(format!("segment '{segment}'")))?;
        let slot = pl.replicas.iter().position(|&r| r == from).ok_or_else(|| {
            Error::NotFound(format!(
                "segment '{segment}' has no replica on server {from}"
            ))
        })?;
        if pl.replicas.contains(&to) {
            return Err(Error::AlreadyExists(format!(
                "segment '{segment}' already on server {to}"
            )));
        }
        pl.replicas[slot] = to;
        self.servers[to].host(seg);
        self.servers[from].drop_segment(segment);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::IndexSpec;
    use rtdi_common::{AggFn, FieldType, Row, Schema};

    fn schema() -> Schema {
        Schema::of(
            "t",
            &[("city", FieldType::Str), ("fare", FieldType::Double)],
        )
    }

    fn seg(name: &str, offset: usize, n: usize) -> Arc<Segment> {
        let rows: Vec<Row> = (offset..offset + n)
            .map(|i| {
                Row::new()
                    .with("city", ["sf", "la"][i % 2])
                    .with("fare", i as f64)
            })
            .collect();
        Arc::new(Segment::build(name, &schema(), rows, &IndexSpec::none()).unwrap())
    }

    fn setup() -> Broker {
        let servers: Vec<Arc<ServerNode>> = (0..3).map(ServerNode::new).collect();
        let broker = Broker::new(servers);
        broker.register_table("t", false);
        for i in 0..6 {
            broker
                .place_segment("t", seg(&format!("s{i}"), i * 100, 100), None, 2)
                .unwrap();
        }
        broker
    }

    #[test]
    fn scatter_gather_merges_aggregations() {
        let broker = setup();
        let q = Query::select_all("t")
            .aggregate("n", AggFn::Count)
            .aggregate("avg_fare", AggFn::Avg("fare".into()))
            .group(&["city"]);
        let res = broker.query(&q).unwrap();
        assert_eq!(res.segments_queried, 6);
        let total: i64 = res.rows.iter().map(|r| r.get_int("n").unwrap()).sum();
        assert_eq!(total, 600);
        // avg must be the true global average, not an average of averages
        let sf = res
            .rows
            .iter()
            .find(|r| r.get_str("city") == Some("sf"))
            .unwrap();
        let expected: f64 = (0..600)
            .filter(|i| i % 2 == 0)
            .map(|i| i as f64)
            .sum::<f64>()
            / 300.0;
        assert!((sf.get_double("avg_fare").unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn parallel_scatter_matches_serial() {
        let broker = setup();
        let queries = vec![
            Query::select_all("t")
                .aggregate("n", AggFn::Count)
                .aggregate("avg_fare", AggFn::Avg("fare".into()))
                .group(&["city"]),
            Query::select_all("t")
                .columns(&["fare"])
                .order("fare", crate::query::SortOrder::Desc)
                .limit(7),
        ];
        for q in queries {
            broker.set_parallelism(1);
            let serial = broker.query(&q).unwrap();
            broker.set_parallelism(4);
            let parallel = broker.query(&q).unwrap();
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn failover_to_replicas() {
        let broker = setup();
        let q = Query::select_all("t").aggregate("n", AggFn::Count);
        broker.servers()[0].set_down(true);
        let res = broker.query(&q).unwrap();
        assert_eq!(res.rows[0].get_int("n"), Some(600));
        assert!(!res.partial, "replicas cover one lost server fully");
        // two servers down with replication 2 -> some segments unreachable,
        // but the query degrades to a partial answer instead of failing
        broker.servers()[1].set_down(true);
        let res = broker.query(&q).unwrap();
        assert!(res.partial);
        assert!(res.segments_unavailable > 0);
        assert!(res.segments_queried > 0);
        let n = res.rows[0].get_int("n").unwrap();
        assert!(
            n > 0 && n < 600,
            "partial count covers a strict subset: {n}"
        );
        // total outage is still an error
        broker.servers()[2].set_down(true);
        assert!(matches!(broker.query(&q), Err(Error::Unavailable(_))));
    }

    #[test]
    fn selection_scatter_respects_order_limit() {
        let broker = setup();
        let q = Query::select_all("t")
            .columns(&["fare"])
            .order("fare", crate::query::SortOrder::Desc)
            .limit(3);
        let res = broker.query(&q).unwrap();
        let fares: Vec<f64> = res
            .rows
            .iter()
            .map(|r| r.get_double("fare").unwrap())
            .collect();
        assert_eq!(fares, vec![599.0, 598.0, 597.0]);
    }

    #[test]
    fn partition_aware_routing_keeps_partition_on_one_server() {
        let servers: Vec<Arc<ServerNode>> = (0..4).map(ServerNode::new).collect();
        let broker = Broker::new(servers);
        broker.register_table("u", true);
        // two segments per partition, 3 partitions
        for p in 0..3usize {
            for s in 0..2usize {
                broker
                    .place_segment("u", seg(&format!("p{p}s{s}"), 0, 10), Some(p), 2)
                    .unwrap();
            }
        }
        let (plan, pruned) = broker.plan(&Query::select_all("u")).unwrap();
        assert_eq!(pruned, 0);
        let mut by_partition: HashMap<usize, Vec<usize>> = HashMap::new();
        for (name, candidates) in plan {
            let p: usize = name[1..2].parse().unwrap();
            by_partition
                .entry(p)
                .or_default()
                .push(*candidates.first().expect("all servers live"));
        }
        for (p, servers) in by_partition {
            assert!(
                servers.windows(2).all(|w| w[0] == w[1]),
                "partition {p} split across servers: {servers:?}"
            );
        }
    }

    #[test]
    fn unknown_table_rejected() {
        let broker = setup();
        let q = Query::select_all("ghost").aggregate("n", AggFn::Count);
        assert!(matches!(broker.query(&q), Err(Error::NotFound(_))));
        assert!(broker
            .place_segment("ghost", seg("x", 0, 1), None, 1)
            .is_err());
    }

    #[test]
    fn peer_fetch_for_recovery() {
        let broker = setup();
        // segment s0 hosted on servers 0 and 1; fetch from a peer
        let from_peer = broker.servers()[1]
            .fetch_segment("s0")
            .or_else(|_| broker.servers()[0].fetch_segment("s0"));
        assert!(from_peer.is_ok());
        assert!(broker.servers()[2].fetch_segment("zzz").is_err());
    }

    /// A clock that advances a fixed step on every read, so a deadline can
    /// expire mid-scatter without real sleeps.
    struct TickClock {
        now: std::sync::atomic::AtomicI64,
        step: i64,
    }

    impl rtdi_common::Clock for TickClock {
        fn now(&self) -> rtdi_common::Timestamp {
            self.now
                .fetch_add(self.step, std::sync::atomic::Ordering::SeqCst)
                + self.step
        }
    }

    #[test]
    fn expired_deadline_sheds_remaining_segments_as_partial() {
        let broker = setup();
        broker.set_parallelism(1);
        let clock = Arc::new(TickClock {
            now: std::sync::atomic::AtomicI64::new(0),
            step: 10,
        });
        // budget covers two per-segment checks (t=10, t=20) and expires
        // before the third (t=30): the rest of the scatter is shed
        let q = Query::select_all("t")
            .aggregate("n", AggFn::Count)
            .with_deadline(rtdi_common::Deadline::at(clock, 25));
        let res = broker.query(&q).unwrap();
        assert_eq!(res.segments_queried, 2);
        assert_eq!(res.segments_shed, 4);
        assert!(res.deadline_exceeded);
        assert!(res.partial);
        assert_eq!(res.rows[0].get_int("n"), Some(200));
        // a deadline that is already spent before the first segment is a
        // hard error, not an empty partial answer
        let clock = Arc::new(TickClock {
            now: std::sync::atomic::AtomicI64::new(0),
            step: 10,
        });
        let q = Query::select_all("t")
            .aggregate("n", AggFn::Count)
            .with_deadline(rtdi_common::Deadline::at(clock, 5));
        assert!(matches!(broker.query(&q), Err(Error::DeadlineExceeded(_))));
    }

    #[test]
    fn admission_control_sheds_when_saturated() {
        use rtdi_common::{AdmissionConfig, SimClock};
        let broker = setup();
        let clock = Arc::new(SimClock::new(0));
        let ac = Arc::new(AdmissionController::new(
            clock,
            AdmissionConfig {
                queue_high_watermark: 8,
                queue_low_watermark: 4,
                ..Default::default()
            },
        ));
        broker.set_admission(ac.clone());
        let q = Query::select_all("t").aggregate("n", AggFn::Count);
        assert!(broker.query(&q).is_ok());
        // queue depth over the high watermark trips shedding for all lanes
        ac.set_queue_depth(9);
        assert!(matches!(broker.query(&q), Err(Error::Overloaded(_))));
        // hysteresis: recovery requires dropping below the low watermark
        ac.set_queue_depth(6);
        assert!(matches!(broker.query(&q), Err(Error::Overloaded(_))));
        ac.set_queue_depth(3);
        let res = broker.query(&q).unwrap();
        assert_eq!(res.rows[0].get_int("n"), Some(600));
        let stats = ac.stats();
        assert_eq!(stats.offered, stats.admitted + stats.shed_total());
    }

    #[test]
    fn backfill_lane_runs_serial_and_sheds_first() {
        use rtdi_common::{AdmissionConfig, SimClock};
        let broker = setup();
        broker.set_parallelism(4);
        let q = Query::select_all("t")
            .aggregate("n", AggFn::Count)
            .lane(Priority::Backfill);
        assert_eq!(broker.lane_parallelism(&q), 1);
        let interactive = Query::select_all("t").aggregate("n", AggFn::Count);
        assert_eq!(broker.lane_parallelism(&interactive), 4);
        // between the watermarks only the backfill lane is refused
        let ac = Arc::new(AdmissionController::new(
            Arc::new(SimClock::new(0)),
            AdmissionConfig {
                queue_high_watermark: 8,
                queue_low_watermark: 4,
                ..Default::default()
            },
        ));
        broker.set_admission(ac.clone());
        ac.set_queue_depth(6);
        assert!(matches!(broker.query(&q), Err(Error::Overloaded(_))));
        assert!(broker.query(&interactive).is_ok());
    }
}
