//! Immutable columnar segments with index-accelerated execution.
//!
//! §4.3: "As a column store, Pinot supports a number of fast indexing
//! techniques, such as inverted, range, sorted and startree index, to
//! answer the low-latency OLAP queries" and "has incorporated optimized
//! data structures such as bit compressed forward indices, for lowering
//! the data footprint."
//!
//! A [`Segment`] holds dictionary-encoded typed columns plus whichever
//! indices the [`IndexSpec`] requested. Per-segment query execution picks
//! the cheapest access path per predicate: sorted-column binary search,
//! inverted-index bitmap, range-index buckets, or a columnar scan.

use crate::bitmap::Bitmap;
use crate::query::{sort_and_limit, PartialAgg, Predicate, PredicateOp, Query, QueryResult};
use crate::startree::{StarTree, StarTreeSpec};
use bytes::Bytes;
use rtdi_common::{AggAcc, Error, FieldType, Result, Row, Schema, Timestamp, Value};
use rtdi_storage::segfile;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

/// Which indices to build for a segment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexSpec {
    /// Columns with inverted (posting-list) indices.
    pub inverted: Vec<String>,
    /// Physically sort the segment by this column; equality/range
    /// predicates on it become binary searches.
    pub sorted: Option<String>,
    /// Numeric columns with bucketed range indices.
    pub range: Vec<String>,
    /// Star-tree pre-aggregation.
    pub startree: Option<StarTreeSpec>,
}

impl IndexSpec {
    pub fn none() -> Self {
        Self::default()
    }

    pub fn with_inverted(mut self, cols: &[&str]) -> Self {
        self.inverted = cols.iter().map(|c| c.to_string()).collect();
        self
    }

    pub fn with_sorted(mut self, col: &str) -> Self {
        self.sorted = Some(col.to_string());
        self
    }

    pub fn with_range(mut self, cols: &[&str]) -> Self {
        self.range = cols.iter().map(|c| c.to_string()).collect();
        self
    }

    pub fn with_startree(mut self, spec: StarTreeSpec) -> Self {
        self.startree = Some(spec);
        self
    }
}

/// Typed columnar storage.
#[derive(Debug, Clone)]
pub(crate) enum ColumnData {
    Int {
        values: Vec<i64>,
        nulls: Bitmap,
    },
    Double {
        values: Vec<f64>,
        nulls: Bitmap,
    },
    Bool {
        values: Bitmap,
        nulls: Bitmap,
    },
    /// Dictionary-encoded strings; the dictionary is sorted so dict-id
    /// order equals lexicographic order.
    Str {
        dict: Vec<String>,
        ids: Vec<u32>,
        nulls: Bitmap,
    },
}

impl ColumnData {
    fn value_at(&self, doc: usize) -> Value {
        match self {
            ColumnData::Int { values, nulls } => {
                if nulls.get(doc) {
                    Value::Null
                } else {
                    Value::Int(values[doc])
                }
            }
            ColumnData::Double { values, nulls } => {
                if nulls.get(doc) {
                    Value::Null
                } else {
                    Value::Double(values[doc])
                }
            }
            ColumnData::Bool { values, nulls } => {
                if nulls.get(doc) {
                    Value::Null
                } else {
                    Value::Bool(values.get(doc))
                }
            }
            ColumnData::Str { dict, ids, nulls } => {
                if nulls.get(doc) {
                    Value::Null
                } else {
                    Value::Str(dict[ids[doc] as usize].clone())
                }
            }
        }
    }

    /// Numeric read without constructing a [`Value`]; `None` for nulls and
    /// non-numeric columns (mirrors `Row::get_double` semantics).
    #[inline]
    fn double_at(&self, doc: usize) -> Option<f64> {
        match self {
            ColumnData::Int { values, nulls } => {
                if nulls.get(doc) {
                    None
                } else {
                    Some(values[doc] as f64)
                }
            }
            ColumnData::Double { values, nulls } => {
                if nulls.get(doc) {
                    None
                } else {
                    Some(values[doc])
                }
            }
            _ => None,
        }
    }

    /// Partition-hash of the value at `doc` without cloning strings; the
    /// hash is identical to `value_at(doc).partition_hash()` so distinct
    /// sets merge correctly with other segments.
    #[inline]
    fn hash_at(&self, doc: usize) -> Option<u64> {
        match self {
            ColumnData::Int { values, nulls } => {
                if nulls.get(doc) {
                    None
                } else {
                    Some(Value::hash_of_int(values[doc]))
                }
            }
            ColumnData::Double { values, nulls } => {
                if nulls.get(doc) {
                    None
                } else {
                    Some(Value::hash_of_double(values[doc]))
                }
            }
            ColumnData::Bool { values, nulls } => {
                if nulls.get(doc) {
                    None
                } else {
                    Some(Value::Bool(values.get(doc)).partition_hash())
                }
            }
            ColumnData::Str { dict, ids, nulls } => {
                if nulls.get(doc) {
                    None
                } else {
                    Some(Value::hash_of_str(&dict[ids[doc] as usize]))
                }
            }
        }
    }

    #[inline]
    fn nulls(&self) -> &Bitmap {
        match self {
            ColumnData::Int { nulls, .. }
            | ColumnData::Double { nulls, .. }
            | ColumnData::Bool { nulls, .. }
            | ColumnData::Str { nulls, .. } => nulls,
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            ColumnData::Int { values, nulls } => values.len() * 8 + nulls.memory_bytes(),
            ColumnData::Double { values, nulls } => values.len() * 8 + nulls.memory_bytes(),
            ColumnData::Bool { values, nulls } => values.memory_bytes() + nulls.memory_bytes(),
            ColumnData::Str { dict, ids, nulls } => {
                dict.iter().map(|s| s.len() + 24).sum::<usize>()
                    + ids.len() * 4
                    + nulls.memory_bytes()
            }
        }
    }
}

/// A predicate lowered onto a column's physical representation: the batch
/// kernels compare raw `i64`/`f64`/dictionary-id values and never build a
/// [`Value`] per document. String predicates become integer comparisons
/// against the needle's position in the sorted dictionary; cross-type
/// predicates collapse to a constant (mirroring `Value::total_cmp`'s
/// type-rank fallback).
enum CompiledPred<'a> {
    /// No non-null document can match.
    ConstFalse,
    /// Every non-null document matches.
    AllNonNull { nulls: &'a Bitmap },
    Int {
        values: &'a [i64],
        nulls: &'a Bitmap,
        op: PredicateOp,
        rhs: i64,
    },
    /// Int column compared against a Double literal — each value widens,
    /// matching `Value::total_cmp`'s `(a as f64).total_cmp(b)` exactly.
    IntAsDouble {
        values: &'a [i64],
        nulls: &'a Bitmap,
        op: PredicateOp,
        rhs: f64,
    },
    Double {
        values: &'a [f64],
        nulls: &'a Bitmap,
        op: PredicateOp,
        rhs: f64,
    },
    Bool {
        values: &'a Bitmap,
        nulls: &'a Bitmap,
        op: PredicateOp,
        rhs: bool,
    },
    /// Dictionary-id comparison: `lo` is the first dict id >= the needle,
    /// `hi` the first id > it (so `lo..hi` is the needle's id if present).
    StrId {
        ids: &'a [u32],
        nulls: &'a Bitmap,
        op: PredicateOp,
        lo: u32,
        hi: u32,
    },
}

/// Does `op` accept this `lhs.cmp(rhs)` outcome?
#[inline]
fn op_accepts(op: PredicateOp, ord: Ordering) -> bool {
    match op {
        PredicateOp::Eq => ord == Ordering::Equal,
        PredicateOp::Ne => ord != Ordering::Equal,
        PredicateOp::Lt => ord == Ordering::Less,
        PredicateOp::Le => ord != Ordering::Greater,
        PredicateOp::Gt => ord == Ordering::Greater,
        PredicateOp::Ge => ord != Ordering::Less,
    }
}

impl<'a> CompiledPred<'a> {
    fn compile(col: &'a ColumnData, pred: &Predicate) -> CompiledPred<'a> {
        match (col, &pred.value) {
            (ColumnData::Int { values, nulls }, Value::Int(rhs)) => CompiledPred::Int {
                values,
                nulls,
                op: pred.op,
                rhs: *rhs,
            },
            (ColumnData::Int { values, nulls }, Value::Double(rhs)) => CompiledPred::IntAsDouble {
                values,
                nulls,
                op: pred.op,
                rhs: *rhs,
            },
            (ColumnData::Double { values, nulls }, Value::Int(rhs)) => CompiledPred::Double {
                values,
                nulls,
                op: pred.op,
                rhs: *rhs as f64,
            },
            (ColumnData::Double { values, nulls }, Value::Double(rhs)) => CompiledPred::Double {
                values,
                nulls,
                op: pred.op,
                rhs: *rhs,
            },
            (ColumnData::Bool { values, nulls }, Value::Bool(rhs)) => CompiledPred::Bool {
                values,
                nulls,
                op: pred.op,
                rhs: *rhs,
            },
            (ColumnData::Str { dict, ids, nulls }, Value::Str(s)) => {
                let lo = dict.partition_point(|d| d.as_str() < s.as_str()) as u32;
                let hi = dict.partition_point(|d| d.as_str() <= s.as_str()) as u32;
                CompiledPred::StrId {
                    ids,
                    nulls,
                    op: pred.op,
                    lo,
                    hi,
                }
            }
            _ => {
                // cross-type comparison: `Value::total_cmp` falls back to
                // type ranks, so the ordering is the same for every
                // non-null document (stored types never share a rank with
                // an uncovered literal type)
                let col_rank: u8 = match col {
                    ColumnData::Bool { .. } => 1,
                    ColumnData::Int { .. } | ColumnData::Double { .. } => 2,
                    ColumnData::Str { .. } => 3,
                };
                let rhs_rank: u8 = match &pred.value {
                    Value::Null => 0,
                    Value::Bool(_) => 1,
                    Value::Int(_) | Value::Double(_) => 2,
                    Value::Str(_) => 3,
                    Value::Bytes(_) => 4,
                    Value::Json(_) => 5,
                };
                if op_accepts(pred.op, col_rank.cmp(&rhs_rank)) {
                    CompiledPred::AllNonNull { nulls: col.nulls() }
                } else {
                    CompiledPred::ConstFalse
                }
            }
        }
    }

    /// Exact per-document check (used to verify range-index candidates).
    #[inline]
    fn holds(&self, doc: usize) -> bool {
        match self {
            CompiledPred::ConstFalse => false,
            CompiledPred::AllNonNull { nulls } => !nulls.get(doc),
            CompiledPred::Int {
                values,
                nulls,
                op,
                rhs,
            } => !nulls.get(doc) && op_accepts(*op, values[doc].cmp(rhs)),
            CompiledPred::IntAsDouble {
                values,
                nulls,
                op,
                rhs,
            } => !nulls.get(doc) && op_accepts(*op, (values[doc] as f64).total_cmp(rhs)),
            CompiledPred::Double {
                values,
                nulls,
                op,
                rhs,
            } => !nulls.get(doc) && op_accepts(*op, values[doc].total_cmp(rhs)),
            CompiledPred::Bool {
                values,
                nulls,
                op,
                rhs,
            } => !nulls.get(doc) && op_accepts(*op, values.get(doc).cmp(rhs)),
            CompiledPred::StrId {
                ids,
                nulls,
                op,
                lo,
                hi,
            } => {
                if nulls.get(doc) {
                    return false;
                }
                let id = ids[doc];
                match op {
                    PredicateOp::Eq => *lo <= id && id < *hi,
                    PredicateOp::Ne => id < *lo || id >= *hi,
                    PredicateOp::Lt => id < *lo,
                    PredicateOp::Le => id < *hi,
                    PredicateOp::Gt => id >= *hi,
                    PredicateOp::Ge => id >= *lo,
                }
            }
        }
    }

    /// Set the bit for every matching doc in `[from, to)`. The per-variant
    /// dispatch is loop-invariant, so each run evaluates as a tight typed
    /// loop over raw column values.
    fn eval_range(&self, from: usize, to: usize, out: &mut Bitmap) {
        if matches!(self, CompiledPred::ConstFalse) {
            return;
        }
        for doc in from..to {
            if self.holds(doc) {
                out.set(doc);
            }
        }
    }
}

enum InvertedIndex {
    /// Posting list per dictionary id.
    Str(Vec<Bitmap>),
    Int(HashMap<i64, Bitmap>),
}

impl InvertedIndex {
    fn memory_bytes(&self) -> usize {
        match self {
            InvertedIndex::Str(v) => v.iter().map(Bitmap::memory_bytes).sum(),
            InvertedIndex::Int(m) => {
                m.values().map(Bitmap::memory_bytes).sum::<usize>() + m.len() * 8
            }
        }
    }
}

/// Bucketed numeric range index: each bucket holds candidate docs.
struct RangeIndex {
    min: f64,
    max: f64,
    buckets: Vec<Bitmap>,
}

impl RangeIndex {
    const BUCKETS: usize = 64;

    fn bucket_of(&self, v: f64) -> usize {
        if self.max <= self.min {
            return 0;
        }
        let frac = (v - self.min) / (self.max - self.min);
        ((frac * Self::BUCKETS as f64) as usize).min(Self::BUCKETS - 1)
    }

    /// Candidate docs for `op value` (superset; exact check follows).
    fn candidates(&self, op: PredicateOp, v: f64, len: usize) -> Bitmap {
        let mut out = Bitmap::new(len);
        let b = self.bucket_of(v.clamp(self.min, self.max));
        let range: std::ops::RangeInclusive<usize> = match op {
            PredicateOp::Eq => b..=b,
            PredicateOp::Lt | PredicateOp::Le => 0..=b,
            PredicateOp::Gt | PredicateOp::Ge => b..=Self::BUCKETS - 1,
            PredicateOp::Ne => 0..=Self::BUCKETS - 1,
        };
        // predicates entirely outside the value domain
        if (matches!(op, PredicateOp::Lt | PredicateOp::Le) && v < self.min)
            || (matches!(op, PredicateOp::Gt | PredicateOp::Ge) && v > self.max)
        {
            return out;
        }
        for i in range {
            if let Some(bm) = self.buckets.get(i) {
                out.or_with(bm);
            }
        }
        out
    }

    fn memory_bytes(&self) -> usize {
        self.buckets.iter().map(Bitmap::memory_bytes).sum::<usize>() + 16
    }
}

/// An immutable, index-equipped columnar segment.
pub struct Segment {
    name: String,
    schema: Schema,
    /// Columns are shared (`Arc`) so a [`LazySegment`] view and a fully
    /// materialized segment can reference the same decoded data.
    columns: BTreeMap<String, Arc<ColumnData>>,
    /// Schema field names interned once at build; every materialized row
    /// shares these instead of cloning a `String` per cell.
    field_names: Vec<Arc<str>>,
    doc_count: usize,
    inverted: HashMap<String, InvertedIndex>,
    range_idx: HashMap<String, RangeIndex>,
    sorted_col: Option<String>,
    startree: Option<StarTree>,
}

impl Segment {
    /// Build a segment from rows, constructing the requested indices.
    pub fn build(
        name: impl Into<String>,
        schema: &Schema,
        mut rows: Vec<Row>,
        spec: &IndexSpec,
    ) -> Result<Segment> {
        if let Some(col) = &spec.sorted {
            rows.sort_by(|a, b| {
                let va = a.get(col).unwrap_or(&Value::Null);
                let vb = b.get(col).unwrap_or(&Value::Null);
                va.total_cmp(vb)
            });
        }
        let n = rows.len();
        let mut columns = BTreeMap::new();
        for field in &schema.fields {
            columns.insert(field.name.clone(), Arc::new(build_column(field, &rows)?));
        }
        // columns present in rows but absent from the schema are dropped —
        // the schema is the contract

        let mut inverted = HashMap::new();
        for col in &spec.inverted {
            let data = columns.get(col).ok_or_else(|| {
                Error::Schema(format!("inverted index on unknown column '{col}'"))
            })?;
            inverted.insert(col.clone(), build_inverted(data, n)?);
        }
        let mut range_idx = HashMap::new();
        for col in &spec.range {
            let data = columns
                .get(col)
                .ok_or_else(|| Error::Schema(format!("range index on unknown column '{col}'")))?;
            range_idx.insert(col.clone(), build_range(data, n)?);
        }
        let startree = match &spec.startree {
            Some(st_spec) => Some(StarTree::build(&rows, st_spec)?),
            None => None,
        };
        let field_names = schema
            .fields
            .iter()
            .map(|f| Arc::from(f.name.as_str()))
            .collect();
        Ok(Segment {
            name: name.into(),
            schema: schema.clone(),
            columns,
            field_names,
            doc_count: n,
            inverted,
            range_idx,
            sorted_col: spec.sorted.clone(),
            startree,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    pub fn has_startree(&self) -> bool {
        self.startree.is_some()
    }

    /// In-memory footprint, indices included.
    pub fn memory_bytes(&self) -> usize {
        let cols: usize = self.columns.values().map(|c| c.memory_bytes()).sum();
        let inv: usize = self
            .inverted
            .values()
            .map(InvertedIndex::memory_bytes)
            .sum();
        let rng: usize = self.range_idx.values().map(RangeIndex::memory_bytes).sum();
        let st = self
            .startree
            .as_ref()
            .map(StarTree::memory_bytes)
            .unwrap_or(0);
        cols + inv + rng + st
    }

    /// Value of a column at a document.
    pub fn value_at(&self, column: &str, doc: usize) -> Value {
        self.columns
            .get(column)
            .map(|c| c.value_at(doc))
            .unwrap_or(Value::Null)
    }

    /// Materialize one document.
    pub fn row_at(&self, doc: usize) -> Row {
        let mut row = Row::with_capacity(self.field_names.len());
        for name in &self.field_names {
            row.push(Arc::clone(name), self.value_at(name, doc));
        }
        row
    }

    /// Materialize every document (used for deep-store encode and tests).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.doc_count).map(|i| self.row_at(i)).collect()
    }

    /// Min/max of an integer column (time pruning).
    pub fn int_range(&self, column: &str) -> Option<(Timestamp, Timestamp)> {
        match self.columns.get(column)?.as_ref() {
            ColumnData::Int { values, .. } => {
                let min = *values.iter().min()?;
                let max = *values.iter().max()?;
                Some((min, max))
            }
            _ => None,
        }
    }

    /// Evaluate the conjunction of predicates, returning the matching doc
    /// bitmap and how many docs had to be individually inspected.
    pub fn filter_docs(&self, predicates: &[Predicate]) -> Result<(Bitmap, u64)> {
        let mut selected = Bitmap::full(self.doc_count);
        let mut scanned = 0u64;
        for pred in predicates {
            let (bm, cost) = self.eval_predicate(pred, &selected)?;
            selected.and_with(&bm);
            scanned += cost;
            if selected.count() == 0 {
                break;
            }
        }
        Ok((selected, scanned))
    }

    fn eval_predicate(&self, pred: &Predicate, current: &Bitmap) -> Result<(Bitmap, u64)> {
        let col: &ColumnData = self
            .columns
            .get(&pred.column)
            .ok_or_else(|| Error::Schema(format!("unknown column '{}'", pred.column)))?;

        // 1. sorted column: binary search to a contiguous doc range
        if self.sorted_col.as_deref() == Some(pred.column.as_str()) {
            if let Some(bm) = self.eval_sorted(col, pred) {
                return Ok((bm, 0));
            }
        }
        // 2. inverted index for equality
        if matches!(pred.op, PredicateOp::Eq | PredicateOp::Ne) {
            if let Some(idx) = self.inverted.get(&pred.column) {
                if let Some(mut bm) = eval_inverted(idx, col, pred, self.doc_count) {
                    if pred.op == PredicateOp::Ne {
                        bm.not_inplace();
                        // Ne must still exclude nulls
                        exclude_nulls(col, &mut bm);
                    }
                    return Ok((bm, 0));
                }
            }
        }
        let compiled = CompiledPred::compile(col, pred);
        // 3. range index for numeric comparisons: candidates + verify
        if let Some(idx) = self.range_idx.get(&pred.column) {
            if let Some(v) = pred.value.as_double() {
                let mut candidates = idx.candidates(pred.op, v, self.doc_count);
                candidates.and_with(current);
                let cost = candidates.count() as u64;
                let mut exact = Bitmap::new(self.doc_count);
                for doc in candidates.iter() {
                    if compiled.holds(doc) {
                        exact.set(doc);
                    }
                }
                return Ok((exact, cost));
            }
        }
        // 4. batch columnar scan over runs of currently-selected docs
        let mut bm = Bitmap::new(self.doc_count);
        let mut cost = 0u64;
        current.for_each_run(|from, to| {
            cost += (to - from) as u64;
            compiled.eval_range(from, to, &mut bm);
        });
        Ok((bm, cost))
    }

    fn eval_sorted(&self, col: &ColumnData, pred: &Predicate) -> Option<Bitmap> {
        let n = self.doc_count;
        // binary search over the sorted column for the boundary positions
        let cmp_at =
            |doc: usize| -> std::cmp::Ordering { col.value_at(doc).total_cmp(&pred.value) };
        let lower = partition_point(n, |d| cmp_at(d) == std::cmp::Ordering::Less);
        let upper = partition_point(n, |d| cmp_at(d) != std::cmp::Ordering::Greater);
        let mut bm = Bitmap::new(n);
        match pred.op {
            PredicateOp::Eq => bm.set_range(lower, upper),
            PredicateOp::Ne => {
                bm.set_range(0, lower);
                bm.set_range(upper, n);
                exclude_nulls(col, &mut bm);
            }
            PredicateOp::Lt => bm.set_range(0, lower),
            PredicateOp::Le => bm.set_range(0, upper),
            PredicateOp::Gt => bm.set_range(upper, n),
            PredicateOp::Ge => bm.set_range(lower, n),
        }
        // nulls sort first (Null type-rank lowest): exclude them from
        // range results
        exclude_nulls(col, &mut bm);
        Some(bm)
    }

    /// Execute a query against this segment. `valid_docs` restricts to
    /// currently-valid documents (upsert tables).
    pub fn execute(&self, query: &Query, valid_docs: Option<&Bitmap>) -> Result<QueryResult> {
        if query.is_aggregation() {
            let partial = self.execute_partial(query, valid_docs)?;
            let docs_scanned = partial.docs_scanned;
            let used_startree = partial.used_startree;
            return Ok(QueryResult {
                rows: partial.finalize(query),
                docs_scanned,
                segments_queried: 1,
                used_startree,
                ..Default::default()
            });
        }

        let (mut selected, scanned) = self.filter_docs(&query.predicates)?;
        if let Some(valid) = valid_docs {
            selected.and_with(valid);
        }
        let mut docs: Vec<u32> = Vec::new();
        selected.collect_into(&mut docs);
        // late materialization: resolve projected columns and interned
        // names once, then emit rows only for the selected docs
        let select_names: Vec<Arc<str>>;
        let names: &[Arc<str>] = if query.select.is_empty() {
            &self.field_names
        } else {
            select_names = query.select.iter().map(|s| Arc::from(s.as_str())).collect();
            &select_names
        };
        let cols: Vec<Option<&ColumnData>> = names
            .iter()
            .map(|n| self.columns.get(n.as_ref()).map(|c| c.as_ref()))
            .collect();
        let mut result = QueryResult {
            rows: Vec::with_capacity(docs.len()),
            docs_scanned: scanned + docs.len() as u64,
            segments_queried: 1,
            used_startree: false,
            ..Default::default()
        };
        for &d in &docs {
            let doc = d as usize;
            let mut row = Row::with_capacity(names.len());
            for (name, col) in names.iter().zip(&cols) {
                row.push(
                    Arc::clone(name),
                    col.map_or(Value::Null, |c| c.value_at(doc)),
                );
            }
            result.rows.push(row);
        }
        sort_and_limit(&mut result.rows, &query.order_by, query.limit);
        Ok(result)
    }

    /// Aggregation execution that returns mergeable per-group accumulators
    /// — the scatter-phase unit of the broker's scatter-gather-merge.
    pub fn execute_partial(
        &self,
        query: &Query,
        valid_docs: Option<&Bitmap>,
    ) -> Result<crate::query::PartialAgg> {
        // star-tree fast path: aggregations with eq-only predicates over
        // tree dimensions (not usable under upsert filtering)
        if valid_docs.is_none() {
            if let Some(st) = &self.startree {
                if let Some(groups) = st.try_execute_partial(query)? {
                    return Ok(crate::query::PartialAgg {
                        groups,
                        docs_scanned: 0,
                        used_startree: true,
                    });
                }
            }
        }
        let (mut selected, scanned) = self.filter_docs(&query.predicates)?;
        if let Some(valid) = valid_docs {
            selected.and_with(valid);
        }
        let mut docs: Vec<u32> = Vec::new();
        selected.collect_into(&mut docs);
        let mut partial = crate::query::PartialAgg {
            docs_scanned: scanned + docs.len() as u64,
            ..Default::default()
        };
        // resolve each aggregation to a direct columnar fold — Pinot-style
        // tight loops instead of per-document row materialization
        let resolved: Vec<ResolvedAgg<'_>> = query
            .aggregations
            .iter()
            .map(|(_, f)| self.resolve_agg(f))
            .collect();
        let num_slots = resolved.len();

        if query.group_by.is_empty() {
            if !docs.is_empty() {
                let mut accs: Vec<AggAcc> = query
                    .aggregations
                    .iter()
                    .map(|(_, f)| f.new_acc())
                    .collect();
                for (r, acc) in resolved.iter().zip(&mut accs) {
                    fold_column(r, &docs, acc);
                }
                partial.groups.insert(Vec::new(), accs);
            }
            return Ok(partial);
        }

        // fast group path: every group column is dictionary-encoded, so
        // group ids are interned from packed dict ids (u32::MAX = NULL) and
        // key strings are only materialized once per group at the end; the
        // accumulators live in one flat `[group * num_slots + slot]` vector
        // so the per-slot folds stream through a contiguous buffer
        let dict_cols: Option<Vec<&ColumnData>> = query
            .group_by
            .iter()
            .map(|c| match self.columns.get(c).map(|a| a.as_ref()) {
                Some(col @ ColumnData::Str { .. }) => Some(col),
                _ => None,
            })
            .collect();
        if let (Some(cols), true) = (&dict_cols, query.group_by.len() <= 4) {
            let new_group = |group_keys: &mut Vec<u128>, accs: &mut Vec<AggAcc>, key: u128| {
                let gid = group_keys.len() as u32;
                group_keys.push(key);
                accs.extend(query.aggregations.iter().map(|(_, f)| f.new_acc()));
                gid
            };
            let mut group_keys: Vec<u128> = Vec::new();
            let mut accs: Vec<AggAcc> = Vec::new();
            // per-doc dense group id, parallel to `docs`
            let mut gids: Vec<u32> = Vec::with_capacity(docs.len());
            if let [ColumnData::Str {
                dict, ids, nulls, ..
            }] = cols.as_slice()
            {
                // single column: a direct dict-id -> group-id table replaces
                // hashing entirely (slot dict.len() holds NULL)
                let mut gid_of: Vec<u32> = vec![u32::MAX; dict.len() + 1];
                for &d in &docs {
                    let doc = d as usize;
                    let id = if nulls.get(doc) {
                        dict.len()
                    } else {
                        ids[doc] as usize
                    };
                    let gid = if gid_of[id] == u32::MAX {
                        let key = if id == dict.len() {
                            u32::MAX
                        } else {
                            id as u32
                        };
                        let gid = new_group(&mut group_keys, &mut accs, key as u128);
                        gid_of[id] = gid;
                        gid
                    } else {
                        gid_of[id]
                    };
                    gids.push(gid);
                }
            } else {
                // multi-column: intern the packed key through an FNV map
                // (integer keys; SipHash would dominate the loop)
                let mut intern: HashMap<u128, u32, FnvBuildHasher> = HashMap::default();
                for &d in &docs {
                    let doc = d as usize;
                    let mut key: u128 = 0;
                    for col in cols {
                        let id = match col {
                            ColumnData::Str { ids, nulls, .. } => {
                                if nulls.get(doc) {
                                    u32::MAX
                                } else {
                                    ids[doc]
                                }
                            }
                            _ => unreachable!("checked above"),
                        };
                        key = (key << 32) | id as u128;
                    }
                    let gid = *intern
                        .entry(key)
                        .or_insert_with(|| new_group(&mut group_keys, &mut accs, key));
                    gids.push(gid);
                }
            }
            for (slot, r) in resolved.iter().enumerate() {
                fold_column_grouped(r, &docs, &gids, num_slots, slot, &mut accs);
            }
            let mut acc_iter = accs.into_iter();
            for key in group_keys {
                let mut parts = Vec::with_capacity(cols.len());
                for (i, col) in cols.iter().enumerate() {
                    let shift = 32 * (cols.len() - 1 - i);
                    let id = ((key >> shift) & 0xFFFF_FFFF) as u32;
                    let part = if id == u32::MAX {
                        None
                    } else if let ColumnData::Str { dict, .. } = col {
                        Some(dict[id as usize].clone())
                    } else {
                        unreachable!("checked above")
                    };
                    parts.push(part);
                }
                partial
                    .groups
                    .insert(parts, acc_iter.by_ref().take(num_slots).collect());
            }
            return Ok(partial);
        }

        // general path: stringified group keys (None for NULL values)
        for &d in &docs {
            let doc = d as usize;
            let key: crate::query::GroupKey = query
                .group_by
                .iter()
                .map(|c| {
                    let v = self.value_at(c, doc);
                    if v.is_null() {
                        None
                    } else {
                        Some(v.to_string())
                    }
                })
                .collect();
            let accs = partial.groups.entry(key).or_insert_with(|| {
                query
                    .aggregations
                    .iter()
                    .map(|(_, f)| f.new_acc())
                    .collect()
            });
            fold_resolved(&resolved, doc, accs);
        }
        Ok(partial)
    }

    fn resolve_agg<'a>(&'a self, f: &rtdi_common::AggFn) -> ResolvedAgg<'a> {
        use rtdi_common::AggFn;
        match f {
            AggFn::Count => ResolvedAgg::CountAll,
            AggFn::Sum(c) | AggFn::Avg(c) | AggFn::Min(c) | AggFn::Max(c) => {
                match self.columns.get(c) {
                    Some(col) => ResolvedAgg::Num(col.as_ref()),
                    None => ResolvedAgg::Missing,
                }
            }
            AggFn::DistinctCount(c) => match self.columns.get(c) {
                Some(col) => ResolvedAgg::Distinct(col.as_ref()),
                None => ResolvedAgg::Missing,
            },
        }
    }

    /// Serialize into the on-disk segment format of
    /// [`rtdi_storage::segfile`]: per-column dictionary/bit-packed/RLE
    /// blocks, null bitmaps, zone maps, and a CRC32-checked footer whose
    /// index map makes every column's byte range independently
    /// addressable. Round-trips through [`Segment::load_lazy`].
    pub fn persist(&self) -> Result<Bytes> {
        let meta = segfile::SegmentMeta {
            name: self.name.clone(),
            table: self.schema.name.clone(),
            sorted_col: self.sorted_col.clone(),
            nrows: self.doc_count as u64,
        };
        let mut cols = Vec::with_capacity(self.schema.fields.len());
        for field in &self.schema.fields {
            let data = self.columns.get(&field.name).ok_or_else(|| {
                Error::Internal(format!("column '{}' missing at persist", field.name))
            })?;
            cols.push(to_segfile_column(field.field_type, data, self.doc_count));
        }
        segfile::encode_segment(&meta, &self.schema.fields, &cols)
    }

    /// Open persisted segment bytes without decoding any column: only the
    /// header, index map and CRC-checked footer are parsed. Columns
    /// decode on first touch (and zone maps can answer some queries
    /// without any column load at all).
    pub fn load_lazy(data: Bytes) -> Result<LazySegment> {
        let file = segfile::SegmentFile::open(data)?;
        let schema = file.schema();
        let field_names = schema
            .fields
            .iter()
            .map(|f| Arc::from(f.name.as_str()))
            .collect();
        let cols = (0..file.entries().len()).map(|_| OnceLock::new()).collect();
        Ok(LazySegment {
            file,
            schema,
            field_names,
            cols,
        })
    }
}

/// A persisted segment opened lazily: header and index map parsed, column
/// bytes untouched until a query needs them. Zone maps are consulted
/// before any column load, so a pruned segment costs header bytes only.
pub struct LazySegment {
    file: segfile::SegmentFile,
    schema: Schema,
    field_names: Vec<Arc<str>>,
    /// Decoded columns, parallel to `file.entries()`; each decodes at
    /// most once and is shared with materialized views.
    cols: Vec<OnceLock<Arc<ColumnData>>>,
}

impl LazySegment {
    pub fn name(&self) -> &str {
        &self.file.meta().name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn doc_count(&self) -> usize {
        self.file.nrows()
    }

    /// Per-column index-map entries (byte ranges + zone maps).
    pub fn entries(&self) -> &[segfile::ColumnEntry] {
        self.file.entries()
    }

    /// Bytes parsed at open time (header + index map + footer) — the full
    /// cost of a zone-map-pruned query.
    pub fn header_bytes(&self) -> usize {
        self.file.header_bytes()
    }

    pub fn file_bytes(&self) -> usize {
        self.file.file_bytes()
    }

    /// How many columns have been decoded so far.
    pub fn columns_loaded(&self) -> usize {
        self.cols.iter().filter(|c| c.get().is_some()).count()
    }

    /// File bytes touched so far: the header plus every decoded column's
    /// block.
    pub fn bytes_loaded(&self) -> usize {
        let cols: usize = self
            .file
            .entries()
            .iter()
            .zip(&self.cols)
            .filter(|(_, c)| c.get().is_some())
            .map(|(e, _)| e.len as usize)
            .sum();
        self.file.header_bytes() + cols
    }

    fn column(&self, idx: usize) -> Result<Arc<ColumnData>> {
        if let Some(c) = self.cols[idx].get() {
            return Ok(Arc::clone(c));
        }
        let col = self.file.column_at(idx)?;
        let data = Arc::new(from_segfile_column(col, self.file.nrows()));
        Ok(Arc::clone(self.cols[idx].get_or_init(|| data)))
    }

    /// Columns this query touches: predicate, group-by and aggregation
    /// inputs, plus the projection (every field for a bare `SELECT *`).
    fn touched_columns(&self, query: &Query) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        let mut add = |n: &str| {
            if !names.iter().any(|x| x == n) {
                names.push(n.to_string());
            }
        };
        for p in query.predicates.iter() {
            add(&p.column);
        }
        for c in query.group_by.iter() {
            add(c);
        }
        for (_, f) in query.aggregations.iter() {
            use rtdi_common::AggFn;
            match f {
                AggFn::Count => {}
                AggFn::Sum(c)
                | AggFn::Avg(c)
                | AggFn::Min(c)
                | AggFn::Max(c)
                | AggFn::DistinctCount(c) => add(c),
            }
        }
        if !query.is_aggregation() {
            if query.select.is_empty() {
                for f in &self.schema.fields {
                    add(&f.name);
                }
            } else {
                for c in query.select.iter() {
                    add(c);
                }
            }
        }
        names
    }

    /// Can any document in this segment satisfy every predicate, judging
    /// by per-column zone maps alone? Public so a federation planner can
    /// prune segments before scheduling scatter work (a pruned segment
    /// costs header bytes only).
    pub fn zones_may_match(&self, query: &Query) -> bool {
        let nrows = self.file.nrows() as u64;
        query.predicates.iter().all(|p| {
            self.file
                .entry(&p.column)
                .is_none_or(|e| zone_may_match(&e.zone, p, nrows))
        })
    }

    /// Min/max of an integer/timestamp column straight from the zone map —
    /// no column bytes are read. This is how the federation catalog learns
    /// each archival segment's time range.
    pub fn int_range(&self, column: &str) -> Option<(i64, i64)> {
        self.file.entry(column).and_then(|e| e.zone.int_bounds())
    }

    /// Execute a query, decoding only the columns it touches. When the
    /// zone maps prove no document can match, nothing is decoded and the
    /// result reports `segments_pruned = 1`.
    pub fn execute(&self, query: &Query) -> Result<QueryResult> {
        if !query.predicates.is_empty() && !self.zones_may_match(query) {
            let rows = if query.is_aggregation() {
                PartialAgg::default().finalize(query)
            } else {
                Vec::new()
            };
            return Ok(QueryResult {
                rows,
                segments_pruned: 1,
                ..Default::default()
            });
        }
        self.as_view(query)?.execute(query, None)
    }

    /// Aggregation execution returning mergeable per-group accumulators —
    /// the offline-side scatter unit of hybrid-table federation. The
    /// caller is expected to have consulted [`Self::zones_may_match`]
    /// first; an unprunable query decodes only the touched columns.
    pub fn execute_partial(&self, query: &Query) -> Result<PartialAgg> {
        self.as_view(query)?.execute_partial(query, None)
    }

    /// Materialize an index-free [`Segment`] view holding only the columns
    /// `query` touches (shared `Arc`s; each column decodes at most once).
    fn as_view(&self, query: &Query) -> Result<Segment> {
        let mut columns = BTreeMap::new();
        for name in self.touched_columns(query) {
            if let Some(idx) = self.file.entries().iter().position(|e| e.name == name) {
                columns.insert(name, self.column(idx)?);
            }
        }
        Ok(Segment {
            name: self.name().to_string(),
            schema: self.schema.clone(),
            columns,
            field_names: self.field_names.clone(),
            doc_count: self.file.nrows(),
            inverted: HashMap::new(),
            range_idx: HashMap::new(),
            sorted_col: self.file.meta().sorted_col.clone(),
            startree: None,
        })
    }

    /// Fully materialize into an indexed [`Segment`] (the recovery path:
    /// deep-store bytes back to a servable segment). Index construction
    /// reuses the decoded columns; a spec that re-sorts or builds a
    /// star-tree falls back to row materialization.
    pub fn into_segment(&self, spec: &IndexSpec) -> Result<Segment> {
        let resort = spec.sorted.is_some() && spec.sorted != self.file.meta().sorted_col;
        if resort || spec.startree.is_some() {
            let (schema, rows) = self.file.read_rows()?;
            return Segment::build(self.name(), &schema, rows, spec);
        }
        let n = self.file.nrows();
        let mut columns = BTreeMap::new();
        for (idx, e) in self.file.entries().iter().enumerate() {
            columns.insert(e.name.clone(), self.column(idx)?);
        }
        let mut inverted = HashMap::new();
        for col in &spec.inverted {
            let data = columns.get(col).ok_or_else(|| {
                Error::Schema(format!("inverted index on unknown column '{col}'"))
            })?;
            inverted.insert(col.clone(), build_inverted(data, n)?);
        }
        let mut range_idx = HashMap::new();
        for col in &spec.range {
            let data = columns
                .get(col)
                .ok_or_else(|| Error::Schema(format!("range index on unknown column '{col}'")))?;
            range_idx.insert(col.clone(), build_range(data, n)?);
        }
        Ok(Segment {
            name: self.name().to_string(),
            schema: self.schema.clone(),
            columns,
            field_names: self.field_names.clone(),
            doc_count: n,
            inverted,
            range_idx,
            sorted_col: spec.sorted.clone(),
            startree: None,
        })
    }
}

/// Lower a [`ColumnData`] onto the on-disk column model. The values
/// variant must agree with the field's type tag: Int/Timestamp store
/// `Int`, Str/Json store the dictionary form, and Bytes fields (held in
/// string form in memory) store var-byte rows.
fn to_segfile_column(ftype: FieldType, data: &ColumnData, nrows: usize) -> segfile::Column {
    let mask_of = |nulls: &Bitmap| {
        segfile::NullMask::from_bits(nulls.to_bytes(), nrows)
            .expect("Bitmap::to_bytes emits ceil(n/8) bytes")
    };
    match data {
        ColumnData::Int { values, nulls } => segfile::Column {
            values: segfile::ColumnValues::Int(values.clone()),
            nulls: mask_of(nulls),
        },
        ColumnData::Double { values, nulls } => segfile::Column {
            values: segfile::ColumnValues::Double(values.clone()),
            nulls: mask_of(nulls),
        },
        ColumnData::Bool { values, nulls } => segfile::Column {
            values: segfile::ColumnValues::Bool((0..nrows).map(|i| values.get(i)).collect()),
            nulls: mask_of(nulls),
        },
        ColumnData::Str { dict, ids, nulls } => {
            let values = if ftype == FieldType::Bytes {
                segfile::ColumnValues::Bytes(
                    (0..nrows)
                        .map(|i| {
                            if nulls.get(i) {
                                Vec::new()
                            } else {
                                dict[ids[i] as usize].clone().into_bytes()
                            }
                        })
                        .collect(),
                )
            } else if dict.is_empty() && nrows > 0 {
                // all-null column: the format requires a non-empty
                // dictionary whenever rows exist
                segfile::ColumnValues::Str {
                    dict: vec![String::new()],
                    ids: vec![0; nrows],
                }
            } else {
                segfile::ColumnValues::Str {
                    dict: dict.clone(),
                    ids: ids.clone(),
                }
            };
            segfile::Column {
                values,
                nulls: mask_of(nulls),
            }
        }
    }
}

/// Inverse of [`to_segfile_column`]: a decoded on-disk column back into
/// the in-memory representation. Lengths were already validated by the
/// segment decoder.
fn from_segfile_column(col: segfile::Column, nrows: usize) -> ColumnData {
    let nulls = Bitmap::from_bytes(col.nulls.bits(), nrows);
    match col.values {
        segfile::ColumnValues::Int(values) => ColumnData::Int { values, nulls },
        segfile::ColumnValues::Double(values) => ColumnData::Double { values, nulls },
        segfile::ColumnValues::Bool(vals) => {
            let mut values = Bitmap::new(nrows);
            for (i, b) in vals.into_iter().enumerate() {
                if b {
                    values.set(i);
                }
            }
            ColumnData::Bool { values, nulls }
        }
        segfile::ColumnValues::Str { dict, ids } => ColumnData::Str { dict, ids, nulls },
        segfile::ColumnValues::Bytes(rows) => {
            // bytes columns live in string form in memory (see
            // `build_column`): rebuild the sorted dictionary
            let strs: Vec<Option<String>> = rows
                .into_iter()
                .enumerate()
                .map(|(i, b)| {
                    if nulls.get(i) {
                        None
                    } else {
                        Some(String::from_utf8_lossy(&b).into_owned())
                    }
                })
                .collect();
            let mut dict: Vec<String> = strs.iter().flatten().cloned().collect();
            dict.sort_unstable();
            dict.dedup();
            let ids = strs
                .iter()
                .map(|s| match s {
                    Some(s) => dict.binary_search(s).unwrap_or(0) as u32,
                    None => 0,
                })
                .collect();
            ColumnData::Str { dict, ids, nulls }
        }
    }
}

/// With the column's non-null values confined to `[lo, hi]`, can
/// `op rhs` accept anything? `lo_cmp`/`hi_cmp` are `lo.cmp(rhs)` and
/// `hi.cmp(rhs)`.
fn range_overlaps(op: PredicateOp, lo_cmp: Ordering, hi_cmp: Ordering) -> bool {
    match op {
        PredicateOp::Eq => lo_cmp != Ordering::Greater && hi_cmp != Ordering::Less,
        PredicateOp::Ne => !(lo_cmp == Ordering::Equal && hi_cmp == Ordering::Equal),
        PredicateOp::Lt => lo_cmp == Ordering::Less,
        PredicateOp::Le => lo_cmp != Ordering::Greater,
        PredicateOp::Gt => hi_cmp == Ordering::Greater,
        PredicateOp::Ge => hi_cmp != Ordering::Less,
    }
}

/// Zone-map admission test: `false` only when no document in the segment
/// can satisfy `pred` (so pruning never changes results). Numeric bounds
/// compare in `f64` exactly like the execution kernels; cross-type
/// predicates are never pruned on.
pub(crate) fn zone_may_match(zone: &segfile::ZoneMap, pred: &Predicate, nrows: u64) -> bool {
    if nrows == 0 || zone.null_count >= nrows {
        // empty segment or all-null column: predicates never match NULL
        return false;
    }
    let (Some(min), Some(max)) = (&zone.min, &zone.max) else {
        // unordered statistics (raw bytes): cannot prune
        return true;
    };
    use segfile::ZoneValue as Z;
    let num = |z: &Z| match z {
        Z::Int(v) => Some(*v as f64),
        Z::Double(v) => Some(*v),
        _ => None,
    };
    let rhs_num = match &pred.value {
        Value::Int(v) => Some(*v as f64),
        Value::Double(v) => Some(*v),
        _ => None,
    };
    if let (Some(lo), Some(hi), Some(v)) = (num(min), num(max), rhs_num) {
        return range_overlaps(pred.op, lo.total_cmp(&v), hi.total_cmp(&v));
    }
    match (min, max, &pred.value) {
        (Z::Str(lo), Z::Str(hi), Value::Str(v)) => {
            range_overlaps(pred.op, lo.as_str().cmp(v), hi.as_str().cmp(v))
        }
        (Z::Bool(lo), Z::Bool(hi), Value::Bool(v)) => range_overlaps(pred.op, lo.cmp(v), hi.cmp(v)),
        _ => true,
    }
}

/// A pre-resolved aggregation input: the per-document fold never looks up
/// columns by name.
enum ResolvedAgg<'a> {
    CountAll,
    Num(&'a ColumnData),
    Distinct(&'a ColumnData),
    /// Aggregation over a column this segment does not have: folds nothing
    /// (matches the row-based semantics for absent fields).
    Missing,
}

#[inline]
fn fold_resolved(resolved: &[ResolvedAgg<'_>], doc: usize, accs: &mut [AggAcc]) {
    for (acc, r) in accs.iter_mut().zip(resolved) {
        match r {
            ResolvedAgg::CountAll => acc.add_one(),
            ResolvedAgg::Num(col) => {
                if let Some(v) = col.double_at(doc) {
                    acc.add_num(v);
                }
            }
            ResolvedAgg::Distinct(col) => {
                if let Some(h) = col.hash_at(doc) {
                    acc.add_hash(h);
                }
            }
            ResolvedAgg::Missing => {}
        }
    }
}

/// Fold one aggregation slot over all selected docs (global aggregation):
/// the variant dispatch happens once per slot, not once per document.
fn fold_column(r: &ResolvedAgg<'_>, docs: &[u32], acc: &mut AggAcc) {
    match r {
        ResolvedAgg::CountAll => {
            if let AggAcc::Count(n) = acc {
                *n += docs.len() as u64;
            } else {
                for _ in docs {
                    acc.add_one();
                }
            }
        }
        ResolvedAgg::Num(col) => match col {
            ColumnData::Int { values, nulls } => {
                for &d in docs {
                    let doc = d as usize;
                    if !nulls.get(doc) {
                        acc.add_num(values[doc] as f64);
                    }
                }
            }
            ColumnData::Double { values, nulls } => {
                for &d in docs {
                    let doc = d as usize;
                    if !nulls.get(doc) {
                        acc.add_num(values[doc]);
                    }
                }
            }
            _ => {
                for &d in docs {
                    if let Some(v) = col.double_at(d as usize) {
                        acc.add_num(v);
                    }
                }
            }
        },
        ResolvedAgg::Distinct(col) => match col {
            ColumnData::Str { dict, ids, nulls } => {
                // hash each dictionary entry once, not once per document
                let hashes: Vec<u64> = dict.iter().map(|s| Value::hash_of_str(s)).collect();
                for &d in docs {
                    let doc = d as usize;
                    if !nulls.get(doc) {
                        acc.add_hash(hashes[ids[doc] as usize]);
                    }
                }
            }
            _ => {
                for &d in docs {
                    if let Some(h) = col.hash_at(d as usize) {
                        acc.add_hash(h);
                    }
                }
            }
        },
        ResolvedAgg::Missing => {}
    }
}

/// Grouped variant of [`fold_column`]: `gids[i]` is the dense group id of
/// `docs[i]`, and the accumulator for (group, slot) lives at
/// `accs[group * num_slots + slot]`.
fn fold_column_grouped(
    r: &ResolvedAgg<'_>,
    docs: &[u32],
    gids: &[u32],
    num_slots: usize,
    slot: usize,
    accs: &mut [AggAcc],
) {
    match r {
        ResolvedAgg::CountAll => {
            for &g in gids {
                accs[g as usize * num_slots + slot].add_one();
            }
        }
        ResolvedAgg::Num(col) => match col {
            ColumnData::Int { values, nulls } => {
                for (&d, &g) in docs.iter().zip(gids) {
                    let doc = d as usize;
                    if !nulls.get(doc) {
                        accs[g as usize * num_slots + slot].add_num(values[doc] as f64);
                    }
                }
            }
            ColumnData::Double { values, nulls } => {
                for (&d, &g) in docs.iter().zip(gids) {
                    let doc = d as usize;
                    if !nulls.get(doc) {
                        accs[g as usize * num_slots + slot].add_num(values[doc]);
                    }
                }
            }
            _ => {
                for (&d, &g) in docs.iter().zip(gids) {
                    if let Some(v) = col.double_at(d as usize) {
                        accs[g as usize * num_slots + slot].add_num(v);
                    }
                }
            }
        },
        ResolvedAgg::Distinct(col) => match col {
            ColumnData::Str { dict, ids, nulls } => {
                let hashes: Vec<u64> = dict.iter().map(|s| Value::hash_of_str(s)).collect();
                for (&d, &g) in docs.iter().zip(gids) {
                    let doc = d as usize;
                    if !nulls.get(doc) {
                        accs[g as usize * num_slots + slot].add_hash(hashes[ids[doc] as usize]);
                    }
                }
            }
            _ => {
                for (&d, &g) in docs.iter().zip(gids) {
                    if let Some(h) = col.hash_at(d as usize) {
                        accs[g as usize * num_slots + slot].add_hash(h);
                    }
                }
            }
        },
        ResolvedAgg::Missing => {}
    }
}

/// FNV-1a over the packed group key — the interning map sits in the
/// hottest group-by loop and SipHash costs more than the fold itself.
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

type FnvBuildHasher = std::hash::BuildHasherDefault<FnvHasher>;

fn partition_point(n: usize, mut pred: impl FnMut(usize) -> bool) -> usize {
    let mut lo = 0;
    let mut hi = n;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn exclude_nulls(col: &ColumnData, bm: &mut Bitmap) {
    let nulls = match col {
        ColumnData::Int { nulls, .. }
        | ColumnData::Double { nulls, .. }
        | ColumnData::Bool { nulls, .. }
        | ColumnData::Str { nulls, .. } => nulls,
    };
    let mut inv = nulls.clone();
    inv.not_inplace();
    bm.and_with(&inv);
}

fn build_column(field: &rtdi_common::Field, rows: &[Row]) -> Result<ColumnData> {
    use rtdi_common::FieldType;
    let n = rows.len();
    let mut nulls = Bitmap::new(n);
    match field.field_type {
        FieldType::Int | FieldType::Timestamp => {
            let mut values = Vec::with_capacity(n);
            for (i, row) in rows.iter().enumerate() {
                match row.get(&field.name).and_then(Value::as_int) {
                    Some(v) => values.push(v),
                    None => {
                        nulls.set(i);
                        values.push(0);
                    }
                }
            }
            Ok(ColumnData::Int { values, nulls })
        }
        FieldType::Double => {
            let mut values = Vec::with_capacity(n);
            for (i, row) in rows.iter().enumerate() {
                match row.get(&field.name).and_then(Value::as_double) {
                    Some(v) => values.push(v),
                    None => {
                        nulls.set(i);
                        values.push(0.0);
                    }
                }
            }
            Ok(ColumnData::Double { values, nulls })
        }
        FieldType::Bool => {
            let mut values = Bitmap::new(n);
            for (i, row) in rows.iter().enumerate() {
                match row.get(&field.name).and_then(Value::as_bool) {
                    Some(true) => values.set(i),
                    Some(false) => {}
                    None => nulls.set(i),
                }
            }
            Ok(ColumnData::Bool { values, nulls })
        }
        FieldType::Str | FieldType::Json | FieldType::Bytes => {
            // strings (JSON/bytes stored as their string form)
            let mut raw: Vec<Option<String>> = Vec::with_capacity(n);
            for row in rows {
                let s = match row.get(&field.name) {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(v.to_string()),
                };
                raw.push(s);
            }
            let mut dict: Vec<String> = raw.iter().flatten().cloned().collect();
            dict.sort_unstable();
            dict.dedup();
            let index: HashMap<&str, u32> = dict
                .iter()
                .enumerate()
                .map(|(i, s)| (s.as_str(), i as u32))
                .collect();
            let mut ids = Vec::with_capacity(n);
            for (i, s) in raw.iter().enumerate() {
                match s {
                    Some(s) => ids.push(index[s.as_str()]),
                    None => {
                        nulls.set(i);
                        ids.push(0);
                    }
                }
            }
            Ok(ColumnData::Str { dict, ids, nulls })
        }
    }
}

fn build_inverted(col: &ColumnData, n: usize) -> Result<InvertedIndex> {
    match col {
        ColumnData::Str { dict, ids, nulls } => {
            let mut postings = vec![Bitmap::new(n); dict.len()];
            for (doc, id) in ids.iter().enumerate() {
                if !nulls.get(doc) {
                    postings[*id as usize].set(doc);
                }
            }
            Ok(InvertedIndex::Str(postings))
        }
        ColumnData::Int { values, nulls } => {
            let mut map: HashMap<i64, Bitmap> = HashMap::new();
            for (doc, v) in values.iter().enumerate() {
                if !nulls.get(doc) {
                    map.entry(*v).or_insert_with(|| Bitmap::new(n)).set(doc);
                }
            }
            Ok(InvertedIndex::Int(map))
        }
        _ => Err(Error::Schema(
            "inverted index requires a string or int column".into(),
        )),
    }
}

fn eval_inverted(
    idx: &InvertedIndex,
    col: &ColumnData,
    pred: &Predicate,
    n: usize,
) -> Option<Bitmap> {
    match (idx, col) {
        (InvertedIndex::Str(postings), ColumnData::Str { dict, .. }) => {
            let needle = pred.value.as_str()?;
            match dict.binary_search_by(|d| d.as_str().cmp(needle)) {
                Ok(id) => Some(postings[id].clone()),
                Err(_) => Some(Bitmap::new(n)),
            }
        }
        (InvertedIndex::Int(map), ColumnData::Int { .. }) => {
            let v = pred.value.as_int()?;
            Some(map.get(&v).cloned().unwrap_or_else(|| Bitmap::new(n)))
        }
        _ => None,
    }
}

fn build_range(col: &ColumnData, n: usize) -> Result<RangeIndex> {
    let values: Vec<Option<f64>> = match col {
        ColumnData::Int { values, nulls } => values
            .iter()
            .enumerate()
            .map(|(i, v)| if nulls.get(i) { None } else { Some(*v as f64) })
            .collect(),
        ColumnData::Double { values, nulls } => values
            .iter()
            .enumerate()
            .map(|(i, v)| if nulls.get(i) { None } else { Some(*v) })
            .collect(),
        _ => {
            return Err(Error::Schema(
                "range index requires a numeric column".into(),
            ))
        }
    };
    let present: Vec<f64> = values.iter().flatten().copied().collect();
    let min = present.iter().copied().fold(f64::INFINITY, f64::min);
    let max = present.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let (min, max) = if present.is_empty() {
        (0.0, 0.0)
    } else {
        (min, max)
    };
    let mut idx = RangeIndex {
        min,
        max,
        buckets: vec![Bitmap::new(n); RangeIndex::BUCKETS],
    };
    for (doc, v) in values.iter().enumerate() {
        if let Some(v) = v {
            let b = idx.bucket_of(*v);
            idx.buckets[b].set(doc);
        }
    }
    Ok(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::{AggFn, FieldType};

    fn orders_schema() -> Schema {
        Schema::of(
            "orders",
            &[
                ("restaurant", FieldType::Str),
                ("city", FieldType::Str),
                ("total", FieldType::Double),
                ("items", FieldType::Int),
                ("delivered", FieldType::Bool),
                ("ts", FieldType::Timestamp),
            ],
        )
    }

    fn orders(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new()
                    .with("restaurant", format!("rest-{:03}", i % 50))
                    .with("city", ["sf", "la", "nyc", "chi"][i % 4])
                    .with("total", 5.0 + (i % 100) as f64)
                    .with("items", (i % 7) as i64 + 1)
                    .with("delivered", i % 3 == 0)
                    .with("ts", 1_000_000 + (i as i64) * 10)
            })
            .collect()
    }

    fn full_spec() -> IndexSpec {
        IndexSpec::none()
            .with_inverted(&["restaurant", "city"])
            .with_sorted("ts")
            .with_range(&["total"])
    }

    #[test]
    fn build_and_materialize_roundtrip() {
        let rows = orders(100);
        let seg = Segment::build("s0", &orders_schema(), rows.clone(), &IndexSpec::none()).unwrap();
        assert_eq!(seg.doc_count(), 100);
        // unsorted build preserves order
        for (i, row) in rows.iter().enumerate() {
            let got = seg.row_at(i);
            assert_eq!(got.get_str("restaurant"), row.get_str("restaurant"));
            assert_eq!(got.get_double("total"), row.get_double("total"));
            assert_eq!(got.get("delivered"), row.get("delivered"));
        }
    }

    #[test]
    fn equality_via_inverted_index_scans_nothing() {
        let seg = Segment::build("s", &orders_schema(), orders(1000), &full_spec()).unwrap();
        let q = Query::select_all("orders")
            .filter(Predicate::eq("city", "sf"))
            .aggregate("n", AggFn::Count);
        let res = seg.execute(&q, None).unwrap();
        assert_eq!(res.rows[0].get_int("n"), Some(250));
        // only the 250 matched docs were folded; predicate cost was 0
        assert_eq!(res.docs_scanned, 250);
    }

    #[test]
    fn full_scan_costs_every_doc() {
        let seg = Segment::build("s", &orders_schema(), orders(1000), &IndexSpec::none()).unwrap();
        let q = Query::select_all("orders")
            .filter(Predicate::eq("city", "sf"))
            .aggregate("n", AggFn::Count);
        let res = seg.execute(&q, None).unwrap();
        assert_eq!(res.rows[0].get_int("n"), Some(250));
        assert!(res.docs_scanned >= 1000, "scan cost {}", res.docs_scanned);
    }

    #[test]
    fn sorted_column_range_query() {
        let seg = Segment::build("s", &orders_schema(), orders(1000), &full_spec()).unwrap();
        let q = Query::select_all("orders")
            .filter(Predicate::new("ts", PredicateOp::Ge, 1_002_000i64))
            .filter(Predicate::new("ts", PredicateOp::Lt, 1_003_000i64))
            .aggregate("n", AggFn::Count);
        let res = seg.execute(&q, None).unwrap();
        assert_eq!(res.rows[0].get_int("n"), Some(100));
        // sorted access is free
        assert_eq!(res.docs_scanned, 100);
    }

    #[test]
    fn range_index_candidates_verified() {
        let spec = IndexSpec::none().with_range(&["total"]);
        let seg = Segment::build("s", &orders_schema(), orders(1000), &spec).unwrap();
        let q = Query::select_all("orders")
            .filter(Predicate::new("total", PredicateOp::Gt, 95.0))
            .aggregate("n", AggFn::Count);
        let res = seg.execute(&q, None).unwrap();
        // totals cycle 5..104; > 95 means 96..104 -> 9 of 100 values
        assert_eq!(res.rows[0].get_int("n"), Some(90));
        // candidate verification touched far fewer than all docs
        assert!(
            res.docs_scanned < 500,
            "range index should prune, scanned {}",
            res.docs_scanned
        );
    }

    #[test]
    fn index_and_scan_paths_agree() {
        // equivalence: every predicate type over indexed and unindexed builds
        let rows = orders(500);
        let indexed = Segment::build("a", &orders_schema(), rows.clone(), &full_spec()).unwrap();
        let plain = Segment::build("b", &orders_schema(), rows, &IndexSpec::none()).unwrap();
        let preds = vec![
            Predicate::eq("city", "la"),
            Predicate::new("city", PredicateOp::Ne, "la"),
            Predicate::new("total", PredicateOp::Le, 50.0),
            Predicate::new("total", PredicateOp::Gt, 80.0),
            Predicate::new("ts", PredicateOp::Lt, 1_001_000i64),
            Predicate::new("items", PredicateOp::Ge, 4i64),
            Predicate::eq("delivered", true),
        ];
        for pred in preds {
            let q = Query::select_all("orders")
                .filter(pred.clone())
                .aggregate("n", AggFn::Count);
            let a = indexed.execute(&q, None).unwrap().rows[0]
                .get_int("n")
                .unwrap();
            let b = plain.execute(&q, None).unwrap().rows[0]
                .get_int("n")
                .unwrap();
            assert_eq!(a, b, "mismatch for {pred:?}");
        }
    }

    #[test]
    fn group_by_and_order_by() {
        let seg = Segment::build("s", &orders_schema(), orders(400), &full_spec()).unwrap();
        let q = Query::select_all("orders")
            .aggregate("n", AggFn::Count)
            .aggregate("revenue", AggFn::Sum("total".into()))
            .group(&["city"]);
        let res = seg.execute(&q, None).unwrap();
        assert_eq!(res.rows.len(), 4);
        let total: i64 = res.rows.iter().map(|r| r.get_int("n").unwrap()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn selection_with_projection_order_limit() {
        let seg = Segment::build("s", &orders_schema(), orders(100), &full_spec()).unwrap();
        let q = Query::select_all("orders")
            .columns(&["restaurant", "total"])
            .filter(Predicate::eq("city", "sf"))
            .order("total", crate::query::SortOrder::Desc)
            .limit(5);
        let res = seg.execute(&q, None).unwrap();
        assert_eq!(res.rows.len(), 5);
        assert_eq!(res.rows[0].len(), 2);
        let totals: Vec<f64> = res
            .rows
            .iter()
            .map(|r| r.get_double("total").unwrap())
            .collect();
        let mut sorted = totals.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(totals, sorted);
    }

    #[test]
    fn valid_docs_filter_applies() {
        let seg = Segment::build("s", &orders_schema(), orders(10), &IndexSpec::none()).unwrap();
        let mut valid = Bitmap::full(10);
        valid.unset(0);
        valid.unset(5);
        let q = Query::select_all("orders").aggregate("n", AggFn::Count);
        let res = seg.execute(&q, Some(&valid)).unwrap();
        assert_eq!(res.rows[0].get_int("n"), Some(8));
    }

    #[test]
    fn nulls_excluded_from_all_predicates() {
        let schema = Schema::of("t", &[("x", FieldType::Int), ("s", FieldType::Str)]);
        let rows = vec![
            Row::new().with("x", 1i64).with("s", "a"),
            Row::new(), // both null
            Row::new().with("x", 3i64).with("s", "b"),
        ];
        for spec in [
            IndexSpec::none(),
            IndexSpec::none().with_inverted(&["s"]).with_sorted("x"),
        ] {
            let seg = Segment::build("s", &schema, rows.clone(), &spec).unwrap();
            let ne = Query::select_all("t")
                .filter(Predicate::new("s", PredicateOp::Ne, "a"))
                .aggregate("n", AggFn::Count);
            assert_eq!(
                seg.execute(&ne, None).unwrap().rows[0].get_int("n"),
                Some(1),
                "null must not match Ne (spec {spec:?})"
            );
            let ge = Query::select_all("t")
                .filter(Predicate::new("x", PredicateOp::Ge, 0i64))
                .aggregate("n", AggFn::Count);
            assert_eq!(
                seg.execute(&ge, None).unwrap().rows[0].get_int("n"),
                Some(2)
            );
        }
    }

    #[test]
    fn unknown_column_predicate_errors() {
        let seg = Segment::build("s", &orders_schema(), orders(10), &IndexSpec::none()).unwrap();
        let q = Query::select_all("orders").filter(Predicate::eq("ghost", 1i64));
        assert!(seg.execute(&q, None).is_err());
    }

    #[test]
    fn indexes_on_unknown_columns_rejected() {
        assert!(Segment::build(
            "s",
            &orders_schema(),
            orders(10),
            &IndexSpec::none().with_inverted(&["ghost"])
        )
        .is_err());
        assert!(Segment::build(
            "s",
            &orders_schema(),
            orders(10),
            &IndexSpec::none().with_range(&["city"]) // non-numeric
        )
        .is_err());
    }

    #[test]
    fn empty_segment_queries_cleanly() {
        let seg = Segment::build("s", &orders_schema(), vec![], &full_spec()).unwrap();
        let q = Query::select_all("orders")
            .filter(Predicate::eq("city", "sf"))
            .aggregate("n", AggFn::Count);
        let res = seg.execute(&q, None).unwrap();
        assert_eq!(res.rows[0].get_int("n"), Some(0));
    }

    #[test]
    fn memory_accounting_grows_with_indices() {
        let rows = orders(1000);
        let plain =
            Segment::build("a", &orders_schema(), rows.clone(), &IndexSpec::none()).unwrap();
        let indexed = Segment::build("b", &orders_schema(), rows, &full_spec()).unwrap();
        assert!(indexed.memory_bytes() > plain.memory_bytes());
        assert!(plain.memory_bytes() > 0);
    }

    #[test]
    fn persist_load_lazy_roundtrip_matches_original() {
        let rows = orders(200);
        let seg = Segment::build("s0", &orders_schema(), rows, &full_spec()).unwrap();
        let bytes = seg.persist().unwrap();
        let lazy = Segment::load_lazy(bytes).unwrap();
        assert_eq!(lazy.name(), "s0");
        assert_eq!(lazy.doc_count(), 200);
        assert_eq!(lazy.schema().fields.len(), 6);
        // full materialization (with indices rebuilt) restores every row
        let back = lazy.into_segment(&full_spec()).unwrap();
        assert_eq!(back.doc_count(), 200);
        for i in 0..200 {
            assert_eq!(back.row_at(i), seg.row_at(i), "row {i} differs");
        }
    }

    #[test]
    fn lazy_execution_decodes_only_touched_columns() {
        let seg = Segment::build("s", &orders_schema(), orders(1000), &IndexSpec::none()).unwrap();
        let lazy = Segment::load_lazy(seg.persist().unwrap()).unwrap();
        assert_eq!(lazy.columns_loaded(), 0);
        let q = Query::select_all("orders")
            .filter(Predicate::eq("city", "sf"))
            .aggregate("n", AggFn::Count);
        let res = lazy.execute(&q).unwrap();
        assert_eq!(res.rows[0].get_int("n"), Some(250));
        // a count over one predicate touches exactly one of six columns
        assert_eq!(lazy.columns_loaded(), 1);
        assert!(
            lazy.bytes_loaded() < lazy.file_bytes() / 2,
            "lazy read {} of {} bytes",
            lazy.bytes_loaded(),
            lazy.file_bytes()
        );
    }

    #[test]
    fn zone_map_pruning_reads_header_only() {
        let seg = Segment::build("s", &orders_schema(), orders(1000), &IndexSpec::none()).unwrap();
        let lazy = Segment::load_lazy(seg.persist().unwrap()).unwrap();
        // ts spans 1_000_000..1_009_990: a disjoint range prunes via the
        // zone map before any column bytes are read
        let q = Query::select_all("orders")
            .filter(Predicate::new("ts", PredicateOp::Gt, 99_999_999i64))
            .aggregate("n", AggFn::Count);
        let res = lazy.execute(&q).unwrap();
        assert_eq!(res.segments_pruned, 1);
        assert_eq!(lazy.columns_loaded(), 0, "pruned query decoded a column");
        assert_eq!(lazy.bytes_loaded(), lazy.header_bytes());
        // the pruned result is identical to actually executing
        let full = seg.execute(&q, None).unwrap();
        assert_eq!(res.rows, full.rows);
        assert_eq!(res.rows[0].get_int("n"), Some(0));
        // selections prune to empty row sets
        let sel = Query::select_all("orders").filter(Predicate::new("ts", PredicateOp::Lt, 5i64));
        let res = lazy.execute(&sel).unwrap();
        assert_eq!(res.segments_pruned, 1);
        assert!(res.rows.is_empty());
        assert_eq!(lazy.columns_loaded(), 0);
    }

    #[test]
    fn lazy_and_eager_execution_agree() {
        let rows = orders(500);
        let seg = Segment::build("s", &orders_schema(), rows, &full_spec()).unwrap();
        let lazy = Segment::load_lazy(seg.persist().unwrap()).unwrap();
        let queries = vec![
            Query::select_all("orders")
                .filter(Predicate::eq("city", "la"))
                .aggregate("n", AggFn::Count)
                .aggregate("rev", AggFn::Sum("total".into())),
            Query::select_all("orders")
                .filter(Predicate::new("city", PredicateOp::Ne, "la"))
                .aggregate("n", AggFn::Count),
            Query::select_all("orders")
                .filter(Predicate::new("total", PredicateOp::Gt, 80.0))
                .aggregate("d", AggFn::DistinctCount("restaurant".into()))
                .group(&["city"]),
            Query::select_all("orders")
                .columns(&["restaurant", "total"])
                .filter(Predicate::new("ts", PredicateOp::Lt, 1_002_000i64))
                .order("total", crate::query::SortOrder::Desc)
                .limit(7),
            Query::select_all("orders").filter(Predicate::eq("delivered", true)),
        ];
        for q in queries {
            let eager = seg.execute(&q, None).unwrap();
            let lazy_res = lazy.execute(&q).unwrap();
            assert_eq!(eager.rows, lazy_res.rows, "mismatch for {q:?}");
        }
    }

    #[test]
    fn zone_admission_logic_is_exact_on_bounds() {
        use rtdi_storage::segfile::{ZoneMap, ZoneValue};
        let zone = ZoneMap {
            min: Some(ZoneValue::Int(10)),
            max: Some(ZoneValue::Int(20)),
            null_count: 0,
        };
        let cases = [
            (PredicateOp::Eq, 9i64, false),
            (PredicateOp::Eq, 10, true),
            (PredicateOp::Eq, 21, false),
            (PredicateOp::Lt, 10, false),
            (PredicateOp::Lt, 11, true),
            (PredicateOp::Le, 9, false),
            (PredicateOp::Le, 10, true),
            (PredicateOp::Gt, 20, false),
            (PredicateOp::Gt, 19, true),
            (PredicateOp::Ge, 21, false),
            (PredicateOp::Ge, 20, true),
            (PredicateOp::Ne, 15, true),
        ];
        for (op, v, expect) in cases {
            let p = Predicate::new("x", op, v);
            assert_eq!(zone_may_match(&zone, &p, 100), expect, "{op:?} {v}");
        }
        // constant column: Ne against that constant prunes
        let constant = ZoneMap {
            min: Some(ZoneValue::Int(7)),
            max: Some(ZoneValue::Int(7)),
            null_count: 0,
        };
        assert!(!zone_may_match(
            &constant,
            &Predicate::new("x", PredicateOp::Ne, 7i64),
            100
        ));
        // all-null column never matches any predicate
        let all_null = ZoneMap {
            min: None,
            max: None,
            null_count: 100,
        };
        assert!(!zone_may_match(&all_null, &Predicate::eq("x", 1i64), 100));
        // cross-type predicates are never pruned on
        assert!(zone_may_match(
            &zone,
            &Predicate::eq("x", "not a number"),
            100
        ));
    }

    #[test]
    fn all_null_column_persists_and_reloads() {
        let schema = Schema::of("t", &[("x", FieldType::Int), ("s", FieldType::Str)]);
        let rows: Vec<Row> = (0..10).map(|i| Row::new().with("x", i as i64)).collect();
        let seg = Segment::build("s", &schema, rows, &IndexSpec::none()).unwrap();
        let lazy = Segment::load_lazy(seg.persist().unwrap()).unwrap();
        let back = lazy.into_segment(&IndexSpec::none()).unwrap();
        for i in 0..10 {
            assert_eq!(back.value_at("s", i), Value::Null);
            assert_eq!(back.value_at("x", i), Value::Int(i as i64));
        }
    }

    #[test]
    fn lazy_load_rejects_corrupt_bytes() {
        let seg = Segment::build("s", &orders_schema(), orders(50), &IndexSpec::none()).unwrap();
        let bytes = seg.persist().unwrap();
        let mut broken = bytes.as_slice().to_vec();
        let mid = broken.len() / 2;
        broken[mid] ^= 0x40;
        match Segment::load_lazy(Bytes::from(broken)) {
            Err(Error::Corruption(_)) => {}
            Err(other) => panic!("expected Corruption, got {other}"),
            Ok(_) => panic!("corrupt segment bytes decoded"),
        }
    }

    #[test]
    fn int_range_reports_time_bounds() {
        let seg = Segment::build("s", &orders_schema(), orders(100), &IndexSpec::none()).unwrap();
        let (lo, hi) = seg.int_range("ts").unwrap();
        assert_eq!(lo, 1_000_000);
        assert_eq!(hi, 1_000_990);
        assert!(seg.int_range("city").is_none());
    }
}
