//! Star-tree pre-aggregation index.
//!
//! §4.3: Pinot "uses specialized indices for faster query execution such
//! as Startree, sorted and range indices, which could result in order of
//! magnitude difference of query latency" — the experiment E11 ablation
//! measures exactly that.
//!
//! A star tree splits documents by dimension values in a fixed dimension
//! order; every node stores pre-aggregated metrics for its subtree, and
//! every interior node has an extra *star* child representing "any value"
//! of that dimension. A group-by/filter query whose dimensions are a
//! subset of the tree's dimensions is answered by tree traversal without
//! touching raw documents.

use crate::query::{PredicateOp, Query};
use rtdi_common::{AggAcc, AggFn, Error, Result, Row};
use std::collections::BTreeMap;

/// Build parameters for a star tree.
#[derive(Debug, Clone, PartialEq)]
pub struct StarTreeSpec {
    /// Dimension columns in split order (put high-query-frequency, low
    /// cardinality dimensions first, as Pinot docs recommend).
    pub dimensions: Vec<String>,
    /// Pre-aggregated metrics.
    pub metrics: Vec<AggFn>,
    /// Stop splitting when a node covers at most this many documents.
    pub max_leaf_records: usize,
}

impl StarTreeSpec {
    pub fn new(dimensions: &[&str], metrics: Vec<AggFn>) -> Self {
        StarTreeSpec {
            dimensions: dimensions.iter().map(|d| d.to_string()).collect(),
            metrics,
            max_leaf_records: 1,
        }
    }
}

struct Node {
    /// value -> child (`None` = the dimension is NULL/absent); the star
    /// child is stored separately.
    children: BTreeMap<Option<String>, Node>,
    star: Option<Box<Node>>,
    metrics: Vec<AggAcc>,
    docs: usize,
}

/// The built index.
pub struct StarTree {
    spec: StarTreeSpec,
    root: Node,
    node_count: usize,
}

impl StarTree {
    pub fn build(rows: &[Row], spec: &StarTreeSpec) -> Result<StarTree> {
        if spec.dimensions.is_empty() {
            return Err(Error::InvalidArgument(
                "star tree needs at least one dimension".into(),
            ));
        }
        for m in &spec.metrics {
            if matches!(m, AggFn::DistinctCount(_) | AggFn::Avg(_)) {
                // DistinctCount sets can be pre-aggregated too (we store
                // accs), Avg as well; allow everything except nothing —
                // keep permissive: all AggFns pre-aggregate losslessly with
                // our accumulator representation.
            }
        }
        let doc_ids: Vec<usize> = (0..rows.len()).collect();
        let mut node_count = 0;
        let root = build_node(rows, &doc_ids, spec, 0, &mut node_count);
        Ok(StarTree {
            spec: spec.clone(),
            root,
            node_count,
        })
    }

    pub fn node_count(&self) -> usize {
        self.node_count
    }

    pub fn memory_bytes(&self) -> usize {
        // rough: accs + map overhead per node
        self.node_count * (self.spec.metrics.len() * 24 + 64)
    }

    /// Try answering a query from the tree. Returns `None` when the query
    /// shape is not covered (caller falls back to raw execution):
    /// - predicates must be equality on tree dimensions;
    /// - group-by columns must be tree dimensions;
    /// - every aggregation must match a pre-aggregated metric.
    pub fn try_execute(&self, query: &Query) -> Result<Option<Vec<Row>>> {
        match self.try_execute_partial(query)? {
            None => Ok(None),
            Some(groups) => {
                let partial = crate::query::PartialAgg {
                    groups,
                    docs_scanned: 0,
                    used_startree: true,
                };
                Ok(Some(partial.finalize(query)))
            }
        }
    }

    /// Like [`StarTree::try_execute`] but returns mergeable per-group
    /// accumulators keyed in `query.group_by` order, for cross-segment
    /// merging by the broker.
    pub fn try_execute_partial(
        &self,
        query: &Query,
    ) -> Result<Option<BTreeMap<crate::query::GroupKey, Vec<AggAcc>>>> {
        // map each aggregation to a metric index
        let mut metric_idx = Vec::with_capacity(query.aggregations.len());
        for (_, f) in query.aggregations.iter() {
            match self.spec.metrics.iter().position(|m| m == f) {
                Some(i) => metric_idx.push(i),
                None => return Ok(None),
            }
        }
        for p in query.predicates.iter() {
            if p.op != PredicateOp::Eq || !self.spec.dimensions.contains(&p.column) {
                return Ok(None);
            }
        }
        for g in query.group_by.iter() {
            if !self.spec.dimensions.contains(g) {
                return Ok(None);
            }
        }
        // traverse
        let mut results: Vec<(GroupKey, &Node)> = Vec::new();
        let mut incomplete = false;
        collect(
            &self.root,
            &self.spec.dimensions,
            0,
            query,
            Vec::new(),
            &mut results,
            &mut incomplete,
        );
        if incomplete {
            return Ok(None);
        }
        // merge nodes with the same group key (can happen when group-by
        // dims are not a prefix of the dimension order), re-keying into
        // query.group_by order and projecting to the queried metrics
        let mut groups: BTreeMap<crate::query::GroupKey, Vec<AggAcc>> = BTreeMap::new();
        for (key, node) in results {
            let group_key: crate::query::GroupKey = query
                .group_by
                .iter()
                .map(|g| {
                    key.iter()
                        .find(|(d, _)| d == g)
                        .map(|(_, v)| v.clone())
                        .unwrap_or_default()
                })
                .collect();
            let entry = groups.entry(group_key).or_insert_with(|| {
                query
                    .aggregations
                    .iter()
                    .map(|(_, f)| f.new_acc())
                    .collect()
            });
            for (slot, mi) in entry.iter_mut().zip(&metric_idx) {
                slot.merge(&node.metrics[*mi]);
            }
        }
        Ok(Some(groups))
    }
}

fn build_node(
    rows: &[Row],
    docs: &[usize],
    spec: &StarTreeSpec,
    depth: usize,
    node_count: &mut usize,
) -> Node {
    *node_count += 1;
    let mut metrics: Vec<AggAcc> = spec.metrics.iter().map(|m| m.new_acc()).collect();
    for &d in docs {
        for (acc, m) in metrics.iter_mut().zip(&spec.metrics) {
            acc.add(m, &rows[d]);
        }
    }
    let mut node = Node {
        children: BTreeMap::new(),
        star: None,
        metrics,
        docs: docs.len(),
    };
    if depth >= spec.dimensions.len() || docs.len() <= spec.max_leaf_records {
        return node;
    }
    let dim = &spec.dimensions[depth];
    let mut partitions: BTreeMap<Option<String>, Vec<usize>> = BTreeMap::new();
    for &d in docs {
        let key = rows[d]
            .get(dim)
            .filter(|v| !v.is_null())
            .map(|v| v.to_string());
        partitions.entry(key).or_default().push(d);
    }
    for (value, part) in partitions {
        node.children
            .insert(value, build_node(rows, &part, spec, depth + 1, node_count));
    }
    // star child: all docs, next dimension
    node.star = Some(Box::new(build_node(
        rows,
        docs,
        spec,
        depth + 1,
        node_count,
    )));
    node
}

/// Dimension values accumulated along a traversal path; `None` marks the
/// star (aggregated-over) branch.
type GroupKey = Vec<(String, Option<String>)>;

/// Walk the tree, respecting predicates (descend matching child) and
/// group-by (fan out over children); descend star otherwise.
fn collect<'a>(
    node: &'a Node,
    dims: &[String],
    depth: usize,
    query: &Query,
    key: GroupKey,
    out: &mut Vec<(GroupKey, &'a Node)>,
    incomplete: &mut bool,
) {
    // stop early when no remaining dimension is referenced by the query:
    // this node's subtree totals are exactly the answer (this is what makes
    // max_leaf_records-truncated trees still answer coarse aggregates)
    let references_rest = dims[depth..]
        .iter()
        .any(|d| query.predicates.iter().any(|p| &p.column == d) || query.group_by.contains(d));
    if depth == dims.len() || !references_rest {
        out.push((key, node));
        return;
    }
    let dim = &dims[depth];
    let pred = query
        .predicates
        .iter()
        .find(|p| &p.column == dim)
        .map(|p| p.value.to_string());
    let grouped = query.group_by.contains(dim);

    match (pred, grouped) {
        (Some(v), _) => {
            // children may be absent if the build stopped at
            // max_leaf_records before this depth
            if node.children.is_empty() && node.star.is_none() && node.docs > 0 {
                *incomplete = true;
                return;
            }
            if let Some(child) = node.children.get(&Some(v.clone())) {
                let mut key = key;
                if grouped {
                    key.push((dim.clone(), Some(v)));
                }
                collect(child, dims, depth + 1, query, key, out, incomplete);
            }
            // no child with that value = zero matching docs: emit nothing
        }
        (None, true) => {
            if node.children.is_empty() && node.docs > 0 {
                *incomplete = true;
                return;
            }
            for (v, child) in &node.children {
                let mut k = key.clone();
                k.push((dim.clone(), v.clone()));
                collect(child, dims, depth + 1, query, k, out, incomplete);
            }
        }
        (None, false) => match &node.star {
            Some(star) => collect(star, dims, depth + 1, query, key, out, incomplete),
            None => {
                if node.docs > 0 {
                    *incomplete = true;
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;

    fn rows() -> Vec<Row> {
        let mut out = Vec::new();
        for i in 0..240usize {
            out.push(
                Row::new()
                    .with("city", ["sf", "la", "nyc"][i % 3])
                    .with("product", ["rides", "eats"][i % 2])
                    .with("fare", (i % 10) as f64),
            );
        }
        out
    }

    fn spec() -> StarTreeSpec {
        StarTreeSpec::new(
            &["city", "product"],
            vec![AggFn::Count, AggFn::Sum("fare".into())],
        )
    }

    fn exact(query: &Query, rows: &[Row]) -> BTreeMap<String, (i64, f64)> {
        let mut groups: BTreeMap<String, (i64, f64)> = BTreeMap::new();
        for r in rows {
            if !query.predicates.iter().all(|p| p.matches(r)) {
                continue;
            }
            let key = query
                .group_by
                .iter()
                .map(|g| r.get_str(g).unwrap().to_string())
                .collect::<Vec<_>>()
                .join("|");
            let e = groups.entry(key).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += r.get_double("fare").unwrap();
        }
        groups
    }

    fn tree_result_map(rows_out: Vec<Row>, group_by: &[&str]) -> BTreeMap<String, (i64, f64)> {
        rows_out
            .into_iter()
            .map(|r| {
                let key = group_by
                    .iter()
                    .map(|g| r.get_str(g).unwrap().to_string())
                    .collect::<Vec<_>>()
                    .join("|");
                (
                    key,
                    (r.get_int("n").unwrap(), r.get_double("sum_fare").unwrap()),
                )
            })
            .collect()
    }

    #[test]
    fn global_aggregate_matches_exact() {
        let rows = rows();
        let st = StarTree::build(&rows, &spec()).unwrap();
        let q = Query::select_all("t")
            .aggregate("n", AggFn::Count)
            .aggregate("sum_fare", AggFn::Sum("fare".into()));
        let out = st.try_execute(&q).unwrap().unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get_int("n"), Some(240));
        let expected: f64 = rows.iter().map(|r| r.get_double("fare").unwrap()).sum();
        assert_eq!(out[0].get_double("sum_fare"), Some(expected));
    }

    #[test]
    fn group_by_prefix_dimension() {
        let rows = rows();
        let st = StarTree::build(&rows, &spec()).unwrap();
        let q = Query::select_all("t")
            .aggregate("n", AggFn::Count)
            .aggregate("sum_fare", AggFn::Sum("fare".into()))
            .group(&["city"]);
        let out = st.try_execute(&q).unwrap().unwrap();
        assert_eq!(tree_result_map(out, &["city"]), exact(&q, &rows));
    }

    #[test]
    fn group_by_non_prefix_dimension_merges_across_branches() {
        let rows = rows();
        let st = StarTree::build(&rows, &spec()).unwrap();
        // group by 'product' which is the SECOND dimension: traversal must
        // go through the star child of 'city' — no merge duplication
        let q = Query::select_all("t")
            .aggregate("n", AggFn::Count)
            .aggregate("sum_fare", AggFn::Sum("fare".into()))
            .group(&["product"]);
        let out = st.try_execute(&q).unwrap().unwrap();
        assert_eq!(tree_result_map(out, &["product"]), exact(&q, &rows));
    }

    #[test]
    fn filtered_group_by() {
        let rows = rows();
        let st = StarTree::build(&rows, &spec()).unwrap();
        let q = Query::select_all("t")
            .filter(Predicate::eq("city", "sf"))
            .aggregate("n", AggFn::Count)
            .aggregate("sum_fare", AggFn::Sum("fare".into()))
            .group(&["product"]);
        let out = st.try_execute(&q).unwrap().unwrap();
        assert_eq!(tree_result_map(out, &["product"]), exact(&q, &rows));
    }

    #[test]
    fn unsupported_shapes_fall_back() {
        let rows = rows();
        let st = StarTree::build(&rows, &spec()).unwrap();
        // non-eq predicate on a dimension
        let q = Query::select_all("t")
            .filter(Predicate::new("city", PredicateOp::Ne, "sf"))
            .aggregate("n", AggFn::Count);
        assert!(st.try_execute(&q).unwrap().is_none());
        // predicate on a non-dimension
        let q = Query::select_all("t")
            .filter(Predicate::eq("fare", 3.0))
            .aggregate("n", AggFn::Count);
        assert!(st.try_execute(&q).unwrap().is_none());
        // unknown aggregation metric
        let q = Query::select_all("t").aggregate("m", AggFn::Max("fare".into()));
        assert!(st.try_execute(&q).unwrap().is_none());
        // group by non-dimension
        let q = Query::select_all("t")
            .aggregate("n", AggFn::Count)
            .group(&["fare"]);
        assert!(st.try_execute(&q).unwrap().is_none());
    }

    #[test]
    fn missing_filter_value_returns_zero_row() {
        let rows = rows();
        let st = StarTree::build(&rows, &spec()).unwrap();
        let q = Query::select_all("t")
            .filter(Predicate::eq("city", "tokyo"))
            .aggregate("n", AggFn::Count)
            .aggregate("sum_fare", AggFn::Sum("fare".into()));
        let out = st.try_execute(&q).unwrap().unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get_int("n"), Some(0));
    }

    #[test]
    fn leaf_threshold_triggers_fallback_when_tree_too_shallow() {
        let rows = rows();
        let mut sp = spec();
        sp.max_leaf_records = 10_000; // root is already a leaf
        let st = StarTree::build(&rows, &sp).unwrap();
        // global aggregate still answerable from the root
        let q = Query::select_all("t").aggregate("n", AggFn::Count);
        assert_eq!(
            st.try_execute(&q).unwrap().unwrap()[0].get_int("n"),
            Some(240)
        );
        // but group-by needs children that were never built
        let q = Query::select_all("t")
            .aggregate("n", AggFn::Count)
            .group(&["city"]);
        assert!(st.try_execute(&q).unwrap().is_none());
    }

    #[test]
    fn distinct_count_preaggregates_correctly() {
        let rows = rows();
        let sp = StarTreeSpec::new(&["city"], vec![AggFn::DistinctCount("product".into())]);
        let st = StarTree::build(&rows, &sp).unwrap();
        let q = Query::select_all("t")
            .aggregate("products", AggFn::DistinctCount("product".into()))
            .group(&["city"]);
        let out = st.try_execute(&q).unwrap().unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.get_int("products") == Some(2)));
    }

    #[test]
    fn empty_dimensions_rejected() {
        assert!(StarTree::build(&rows(), &StarTreeSpec::new(&[], vec![AggFn::Count])).is_err());
    }

    #[test]
    fn node_count_reported() {
        let st = StarTree::build(&rows(), &spec()).unwrap();
        // root + (3 cities + star) + 4 x (2 products + star) = 1 + 4 + 12
        assert_eq!(st.node_count(), 17);
        assert!(st.memory_bytes() > 0);
    }
}
