//! Upsert support (§4.3.1).
//!
//! "The key technical challenge for upsert is tracking the locations of
//! the records with the same primary key. In a real-time system, it's very
//! complicated and inefficient to keep track of these locations in a
//! centralized manner... we organize the input stream into multiple
//! partitions by the primary key, and distribute each partition to a node
//! for processing. As a result, all the records with the same primary key
//! are assigned to the same node... a shared-nothing solution."
//!
//! One [`PrimaryKeyIndex`] exists *per partition*; because the stream is
//! partitioned by primary key, no cross-partition coordination is ever
//! needed. Each index maps primary key -> current (segment, doc) location
//! and maintains per-segment valid-doc bitmaps that query execution
//! intersects with its filter results.

use crate::bitmap::Bitmap;
use rtdi_common::Value;
use std::collections::HashMap;

/// Location of the current version of a primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordLocation {
    pub segment: String,
    pub doc_id: usize,
}

/// Per-partition primary-key -> location tracking with valid-doc bitmaps.
#[derive(Debug, Default)]
pub struct PrimaryKeyIndex {
    locations: HashMap<String, RecordLocation>,
    /// segment name -> valid docs bitmap
    valid: HashMap<String, Bitmap>,
}

impl PrimaryKeyIndex {
    pub fn new() -> Self {
        Self::default()
    }

    fn key_string(key: &Value) -> String {
        key.to_string()
    }

    /// Record that `key`'s newest version now lives at (segment, doc_id).
    /// Any previous location is invalidated. Returns the displaced
    /// location, if any.
    pub fn upsert(&mut self, key: &Value, segment: &str, doc_id: usize) -> Option<RecordLocation> {
        let ks = Self::key_string(key);
        let new_loc = RecordLocation {
            segment: segment.to_string(),
            doc_id,
        };
        let old = self.locations.insert(ks, new_loc);
        if let Some(prev) = &old {
            if let Some(bm) = self.valid.get_mut(&prev.segment) {
                bm.unset(prev.doc_id);
            }
        }
        let bm = self
            .valid
            .entry(segment.to_string())
            .or_insert_with(|| Bitmap::new(0));
        if doc_id >= bm.len() {
            bm.resize(doc_id + 1);
        }
        bm.set(doc_id);
        old
    }

    /// Current location of a key.
    pub fn location(&self, key: &Value) -> Option<&RecordLocation> {
        self.locations.get(&Self::key_string(key))
    }

    /// Valid-doc bitmap for a segment (None = segment unknown, treat all
    /// docs valid — non-upsert segments).
    pub fn valid_docs(&self, segment: &str) -> Option<&Bitmap> {
        self.valid.get(segment)
    }

    /// Number of live primary keys.
    pub fn key_count(&self) -> usize {
        self.locations.len()
    }

    pub fn memory_bytes(&self) -> usize {
        let keys: usize = self
            .locations
            .iter()
            .map(|(k, l)| k.len() + l.segment.len() + 32)
            .sum();
        let bitmaps: usize = self.valid.values().map(Bitmap::memory_bytes).sum();
        keys + bitmaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_tracks_latest_location() {
        let mut idx = PrimaryKeyIndex::new();
        assert!(idx
            .upsert(&Value::Str("trip-1".into()), "seg-a", 0)
            .is_none());
        assert!(idx
            .upsert(&Value::Str("trip-2".into()), "seg-a", 1)
            .is_none());
        // update trip-1 in a newer segment
        let displaced = idx
            .upsert(&Value::Str("trip-1".into()), "seg-b", 0)
            .unwrap();
        assert_eq!(displaced.segment, "seg-a");
        assert_eq!(displaced.doc_id, 0);
        assert_eq!(
            idx.location(&Value::Str("trip-1".into())).unwrap().segment,
            "seg-b"
        );
        assert_eq!(idx.key_count(), 2);
    }

    #[test]
    fn valid_bitmaps_reflect_displacement() {
        let mut idx = PrimaryKeyIndex::new();
        idx.upsert(&Value::Str("k1".into()), "seg-a", 0);
        idx.upsert(&Value::Str("k2".into()), "seg-a", 1);
        idx.upsert(&Value::Str("k3".into()), "seg-a", 2);
        let bm = idx.valid_docs("seg-a").unwrap();
        assert_eq!(bm.count(), 3);
        // k2 updated within the same segment
        idx.upsert(&Value::Str("k2".into()), "seg-a", 3);
        let bm = idx.valid_docs("seg-a").unwrap();
        assert!(bm.get(0) && !bm.get(1) && bm.get(2) && bm.get(3));
        // k1 moves to another segment
        idx.upsert(&Value::Str("k1".into()), "seg-b", 0);
        assert!(!idx.valid_docs("seg-a").unwrap().get(0));
        assert!(idx.valid_docs("seg-b").unwrap().get(0));
        assert!(idx.valid_docs("never-seen").is_none());
    }

    #[test]
    fn memory_grows_with_keys() {
        let mut idx = PrimaryKeyIndex::new();
        let before = idx.memory_bytes();
        for i in 0..1000 {
            idx.upsert(&Value::Str(format!("key-{i}")), "seg", i);
        }
        assert!(idx.memory_bytes() > before + 1000 * 8);
    }
}
