//! Parallel scatter execution for segment fan-out.
//!
//! §4.3: "the query is first decomposed into sub-plans which execute on
//! the distributed segments in parallel". The broker and the embedded
//! table both fan per-segment sub-queries across a scoped worker pool;
//! workers pull task indices from a shared atomic cursor so uneven
//! segment sizes balance automatically.

use rtdi_common::Result;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a configured thread count: `0` means one worker per available
/// core, and the pool never exceeds the task count.
pub fn effective_threads(configured: usize, tasks: usize) -> usize {
    let t = if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    };
    t.min(tasks).max(1)
}

/// Run `f(i)` for every task in `0..tasks` on up to `threads` scoped
/// workers and return the results in task order (so merge order — and
/// therefore floating-point aggregation — is deterministic regardless of
/// which worker ran which task). Falls back to a plain loop when one
/// worker suffices.
pub fn scatter<T, F>(tasks: usize, threads: usize, f: F) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let threads = effective_threads(threads, tasks);
    if threads <= 1 || tasks <= 1 {
        return (0..tasks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<Result<T>>> = (0..tasks).map(|_| None).collect();
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        for w in workers {
            for (i, r) in w.join().expect("scatter worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("every task index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashSet;

    #[test]
    fn results_arrive_in_task_order() {
        for threads in [1, 2, 4] {
            let out = scatter(17, threads, |i| Ok(i * 2));
            let vals: Vec<usize> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(vals, (0..17).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn errors_surface_per_task() {
        let out = scatter(4, 2, |i| {
            if i == 2 {
                Err(rtdi_common::Error::Unavailable("boom".into()))
            } else {
                Ok(i)
            }
        });
        assert!(out[2].is_err());
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 3);
    }

    #[test]
    fn multiple_workers_participate() {
        // structural check (host may be single-core): with 2 configured
        // workers and enough tasks, at least 2 distinct threads run tasks
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let out = scatter(64, 2, |i| {
            seen.lock().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_micros(200));
            Ok(i)
        });
        assert_eq!(out.len(), 64);
        assert!(
            seen.lock().len() >= 2,
            "expected at least 2 worker threads, saw {}",
            seen.lock().len()
        );
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(4, 0), 1);
    }
}
