//! Dense bitset over document ids.
//!
//! The workhorse of index evaluation: inverted-index posting lists, range
//! buckets, upsert valid-doc sets and filter intersection all operate on
//! these. A simple `Vec<u64>` block representation is plenty for
//! segment-sized doc counts (Pinot uses roaring bitmaps for the same
//! role).

/// A fixed-capacity dense bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    blocks: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap for `len` documents.
    pub fn new(len: usize) -> Self {
        Bitmap {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones bitmap for `len` documents.
    pub fn full(len: usize) -> Self {
        let mut bm = Bitmap {
            blocks: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.clear_tail();
        bm
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.blocks[i / 64] |= 1 << (i % 64);
    }

    pub fn unset(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.blocks[i / 64] &= !(1 << (i % 64));
    }

    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.blocks[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// In-place intersection.
    pub fn and_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place union.
    pub fn or_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place complement.
    pub fn not_inplace(&mut self) {
        for b in &mut self.blocks {
            *b = !*b;
        }
        self.clear_tail();
    }

    /// Grow capacity to `len` (new bits zero).
    pub fn resize(&mut self, len: usize) {
        self.len = len;
        self.blocks.resize(len.div_ceil(64), 0);
        self.clear_tail();
    }

    /// Iterate over set bit positions.
    pub fn iter(&self) -> BitmapIter<'_> {
        BitmapIter {
            bitmap: self,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Set bits in `[from, to)`.
    pub fn set_range(&mut self, from: usize, to: usize) {
        for i in from..to.min(self.len) {
            self.set(i);
        }
    }

    pub fn memory_bytes(&self) -> usize {
        self.blocks.len() * 8 + 16
    }
}

pub struct BitmapIter<'a> {
    bitmap: &'a Bitmap,
    block_idx: usize,
    current: u64,
}

impl Iterator for BitmapIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.block_idx * 64 + bit);
            }
            self.block_idx += 1;
            if self.block_idx >= self.bitmap.blocks.len() {
                return None;
            }
            self.current = self.bitmap.blocks[self.block_idx];
        }
    }
}

impl FromIterator<usize> for Bitmap {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map(|m| m + 1).unwrap_or(0);
        let mut bm = Bitmap::new(len);
        for i in items {
            bm.set(i);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut bm = Bitmap::new(130);
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1) && !bm.get(128));
        assert!(!bm.get(10_000)); // out of range is false, not panic
        assert_eq!(bm.count(), 3);
        bm.unset(64);
        assert_eq!(bm.count(), 2);
    }

    #[test]
    fn full_and_not_respect_length() {
        let mut bm = Bitmap::full(70);
        assert_eq!(bm.count(), 70);
        bm.not_inplace();
        assert_eq!(bm.count(), 0);
        bm.not_inplace();
        assert_eq!(bm.count(), 70);
    }

    #[test]
    fn boolean_algebra() {
        let mut a = Bitmap::new(100);
        let mut b = Bitmap::new(100);
        a.set_range(0, 50);
        b.set_range(25, 75);
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.count(), 25);
        let mut or = a.clone();
        or.or_with(&b);
        assert_eq!(or.count(), 75);
    }

    #[test]
    fn iterator_yields_sorted_positions() {
        let bm: Bitmap = [5usize, 0, 99, 64, 63].into_iter().collect();
        let out: Vec<usize> = bm.iter().collect();
        assert_eq!(out, vec![0, 5, 63, 64, 99]);
        let empty = Bitmap::new(0);
        assert_eq!(empty.iter().count(), 0);
    }

    #[test]
    fn resize_preserves_bits() {
        let mut bm = Bitmap::new(10);
        bm.set(3);
        bm.resize(1000);
        assert!(bm.get(3));
        assert_eq!(bm.count(), 1);
        bm.set(999);
        assert_eq!(bm.count(), 2);
    }
}
