//! Dense bitset over document ids.
//!
//! The workhorse of index evaluation: inverted-index posting lists, range
//! buckets, upsert valid-doc sets and filter intersection all operate on
//! these. A simple `Vec<u64>` block representation is plenty for
//! segment-sized doc counts (Pinot uses roaring bitmaps for the same
//! role).

/// A fixed-capacity dense bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    blocks: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zeros bitmap for `len` documents.
    pub fn new(len: usize) -> Self {
        Bitmap {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones bitmap for `len` documents.
    pub fn full(len: usize) -> Self {
        let mut bm = Bitmap {
            blocks: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.clear_tail();
        bm
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.blocks[i / 64] |= 1 << (i % 64);
    }

    pub fn unset(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.blocks[i / 64] &= !(1 << (i % 64));
    }

    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.blocks[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// In-place intersection.
    pub fn and_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place union.
    pub fn or_with(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place difference: clear every bit that is set in `other`.
    pub fn and_not(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Visit every maximal run of consecutive set bits as `(start, end)`
    /// half-open doc-id ranges. Batch kernels iterate runs instead of
    /// individual bits so dense selections cost one callback per run, not
    /// one branch per document.
    pub fn for_each_run(&self, mut f: impl FnMut(usize, usize)) {
        let mut run_start: Option<usize> = None;
        for (bi, &block) in self.blocks.iter().enumerate() {
            if block == u64::MAX {
                if run_start.is_none() {
                    run_start = Some(bi * 64);
                }
                continue;
            }
            let base = bi * 64;
            let mut pos = 0usize;
            while pos < 64 {
                let chunk = block >> pos;
                if run_start.is_some() {
                    // inside a run: find the next zero bit
                    let zeros = (!chunk).trailing_zeros() as usize;
                    if zeros + pos >= 64 {
                        break; // run continues into the next block
                    }
                    pos += zeros;
                    f(run_start.take().expect("inside run"), base + pos);
                } else {
                    if chunk == 0 {
                        break;
                    }
                    pos += chunk.trailing_zeros() as usize;
                    run_start = Some(base + pos);
                }
            }
        }
        if let Some(start) = run_start {
            f(start, self.len);
        }
    }

    /// Append the ids of all set bits to `out` (ascending). The caller
    /// reuses `out` across segments to avoid reallocating per scan.
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        out.reserve(self.count());
        for (bi, &block) in self.blocks.iter().enumerate() {
            let mut word = block;
            let base = (bi * 64) as u32;
            while word != 0 {
                out.push(base + word.trailing_zeros());
                word &= word - 1;
            }
        }
    }

    /// In-place complement.
    pub fn not_inplace(&mut self) {
        for b in &mut self.blocks {
            *b = !*b;
        }
        self.clear_tail();
    }

    /// Grow capacity to `len` (new bits zero).
    pub fn resize(&mut self, len: usize) {
        self.len = len;
        self.blocks.resize(len.div_ceil(64), 0);
        self.clear_tail();
    }

    /// Iterate over set bit positions.
    pub fn iter(&self) -> BitmapIter<'_> {
        BitmapIter {
            bitmap: self,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Set bits in `[from, to)`.
    pub fn set_range(&mut self, from: usize, to: usize) {
        for i in from..to.min(self.len) {
            self.set(i);
        }
    }

    pub fn memory_bytes(&self) -> usize {
        self.blocks.len() * 8 + 16
    }

    /// Serialize to LSB-first bytes (`ceil(len/8)` of them) — the on-disk
    /// null-bitmap layout of `rtdi_storage::segfile`. Little-endian block
    /// bytes give exactly that bit order, so this is a flat copy.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out: Vec<u8> = self.blocks.iter().flat_map(|b| b.to_le_bytes()).collect();
        out.truncate(self.len.div_ceil(8));
        out
    }

    /// Rebuild from LSB-first bytes produced by [`Bitmap::to_bytes`] (or a
    /// segment file's null bitmap). Bytes beyond `len` bits are ignored;
    /// missing bytes read as zero.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Bitmap {
        let mut blocks = vec![0u64; len.div_ceil(64)];
        for (i, &b) in bytes.iter().enumerate().take(len.div_ceil(8)) {
            blocks[i / 8] |= (b as u64) << ((i % 8) * 8);
        }
        let mut bm = Bitmap { blocks, len };
        bm.clear_tail();
        bm
    }
}

pub struct BitmapIter<'a> {
    bitmap: &'a Bitmap,
    block_idx: usize,
    current: u64,
}

impl Iterator for BitmapIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.block_idx * 64 + bit);
            }
            self.block_idx += 1;
            if self.block_idx >= self.bitmap.blocks.len() {
                return None;
            }
            self.current = self.bitmap.blocks[self.block_idx];
        }
    }
}

impl FromIterator<usize> for Bitmap {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map(|m| m + 1).unwrap_or(0);
        let mut bm = Bitmap::new(len);
        for i in items {
            bm.set(i);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut bm = Bitmap::new(130);
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1) && !bm.get(128));
        assert!(!bm.get(10_000)); // out of range is false, not panic
        assert_eq!(bm.count(), 3);
        bm.unset(64);
        assert_eq!(bm.count(), 2);
    }

    #[test]
    fn full_and_not_respect_length() {
        let mut bm = Bitmap::full(70);
        assert_eq!(bm.count(), 70);
        bm.not_inplace();
        assert_eq!(bm.count(), 0);
        bm.not_inplace();
        assert_eq!(bm.count(), 70);
    }

    #[test]
    fn boolean_algebra() {
        let mut a = Bitmap::new(100);
        let mut b = Bitmap::new(100);
        a.set_range(0, 50);
        b.set_range(25, 75);
        let mut and = a.clone();
        and.and_with(&b);
        assert_eq!(and.count(), 25);
        let mut or = a.clone();
        or.or_with(&b);
        assert_eq!(or.count(), 75);
    }

    #[test]
    fn iterator_yields_sorted_positions() {
        let bm: Bitmap = [5usize, 0, 99, 64, 63].into_iter().collect();
        let out: Vec<usize> = bm.iter().collect();
        assert_eq!(out, vec![0, 5, 63, 64, 99]);
        let empty = Bitmap::new(0);
        assert_eq!(empty.iter().count(), 0);
    }

    #[test]
    fn and_not_clears_other_bits() {
        let mut a = Bitmap::new(100);
        let mut b = Bitmap::new(100);
        a.set_range(0, 50);
        b.set_range(25, 75);
        a.and_not(&b);
        assert_eq!(a.count(), 25);
        assert!(a.get(24) && !a.get(25));
    }

    #[test]
    fn runs_cover_exactly_the_set_bits() {
        // exercise: run at start, isolated bit, block-spanning run, run to end
        let mut bm = Bitmap::new(300);
        bm.set_range(0, 3);
        bm.set(10);
        bm.set_range(60, 130); // spans two block boundaries
        bm.set_range(290, 300); // runs to the end
        let mut runs = Vec::new();
        bm.for_each_run(|s, e| runs.push((s, e)));
        assert_eq!(runs, vec![(0, 3), (10, 11), (60, 130), (290, 300)]);
        // reconstructed bits match the iterator
        let from_runs: Vec<usize> = runs.iter().flat_map(|&(s, e)| s..e).collect();
        assert_eq!(from_runs, bm.iter().collect::<Vec<_>>());
        // full bitmap is one run; empty bitmap none
        let mut one = Vec::new();
        Bitmap::full(128).for_each_run(|s, e| one.push((s, e)));
        assert_eq!(one, vec![(0, 128)]);
        Bitmap::new(128).for_each_run(|_, _| panic!("no runs expected"));
    }

    #[test]
    fn collect_into_matches_iterator() {
        let bm: Bitmap = [5usize, 0, 99, 64, 63].into_iter().collect();
        let mut out = vec![42u32]; // appends, does not clear
        bm.collect_into(&mut out);
        assert_eq!(out, vec![42, 0, 5, 63, 64, 99]);
    }

    #[test]
    fn byte_roundtrip_preserves_bits() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 130, 300] {
            let mut bm = Bitmap::new(len);
            for i in (0..len).step_by(3) {
                bm.set(i);
            }
            let bytes = bm.to_bytes();
            assert_eq!(bytes.len(), len.div_ceil(8));
            assert_eq!(Bitmap::from_bytes(&bytes, len), bm);
        }
        // trailing garbage bits beyond len are masked off
        let bm = Bitmap::from_bytes(&[0xFF], 3);
        assert_eq!(bm.count(), 3);
        assert!(!bm.get(3));
        // short input reads as zeros
        let bm = Bitmap::from_bytes(&[0x01], 100);
        assert_eq!(bm.count(), 1);
    }

    #[test]
    fn resize_preserves_bits() {
        let mut bm = Bitmap::new(10);
        bm.set(3);
        bm.resize(1000);
        assert!(bm.get(3));
        assert_eq!(bm.count(), 1);
        bm.set(999);
        assert_eq!(bm.count(), 2);
    }
}
