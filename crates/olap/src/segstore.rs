//! Segment archival: centralized controller vs peer-to-peer (§4.3.4).
//!
//! "The original design of Apache Pinot introduced a strict dependency on
//! an external archival or 'segment store'... completed segments had to be
//! synchronously backed up to this segment store to recover from any
//! subsequent failures. In addition, this backup was done through one
//! single controller. Needless to say, this was a huge scalability
//! bottleneck and caused data freshness violation... Our team designed and
//! implemented an asynchronous solution wherein server replicas can serve
//! the archived segments in case of failures."
//!
//! [`SegmentStoreMode::Centralized`] reproduces the original design:
//! sealed segments block ingestion while a single controller uploads them.
//! [`SegmentStoreMode::PeerToPeer`] reproduces Uber's scheme: sealing
//! returns immediately, uploads happen asynchronously, and recovery
//! prefers fetching from a peer replica over the deep store.

use crate::segment::{IndexSpec, Segment};
use parking_lot::Mutex;
use rtdi_common::{Error, Result, RetryPolicy};
use rtdi_storage::object::ObjectStore;
use rtdi_storage::{colfile, segfile};
use std::sync::Arc;

/// Backup strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentStoreMode {
    /// Synchronous upload through a single controller (the bottleneck).
    Centralized,
    /// Asynchronous upload; replicas serve recovery in the meantime.
    PeerToPeer,
}

/// Deep store for sealed segments.
pub struct SegmentStore {
    store: Arc<dyn ObjectStore>,
    mode: SegmentStoreMode,
    /// The single-controller lock of the centralized scheme.
    controller: Mutex<()>,
    /// Pending async uploads (peer-to-peer mode).
    pending: Mutex<Vec<(String, Arc<Segment>)>>,
    /// Index spec to rebuild indices on recovery from the deep store.
    index_spec: IndexSpec,
}

impl SegmentStore {
    pub fn new(store: Arc<dyn ObjectStore>, mode: SegmentStoreMode, index_spec: IndexSpec) -> Self {
        SegmentStore {
            store,
            mode,
            controller: Mutex::new(()),
            pending: Mutex::new(Vec::new()),
            index_spec,
        }
    }

    pub fn mode(&self) -> SegmentStoreMode {
        self.mode
    }

    fn key(table: &str, segment: &str) -> String {
        format!("segments/{table}/{segment}")
    }

    fn upload(&self, table: &str, segment: &Segment) -> Result<()> {
        // real on-disk segment bytes: dictionary/bit-packed columns, zone
        // maps and a CRC-checked footer (not a row-oriented stand-in)
        let data = segment.persist()?;
        let key = Self::key(table, segment.name());
        // same-key overwrite: retrying a flaky archive put is idempotent
        RetryPolicy::new(4)
            .with_backoff_us(50, 2_000)
            .run(|_| self.store.put(&key, data.clone()))
    }

    /// Back up a sealed segment.
    ///
    /// Centralized: blocks on the controller lock until the upload
    /// completes — the caller (ingestion) stalls, hurting freshness.
    /// Peer-to-peer: enqueue and return immediately.
    pub fn backup(&self, table: &str, segment: Arc<Segment>) -> Result<()> {
        match self.mode {
            SegmentStoreMode::Centralized => {
                let _controller = self.controller.lock();
                self.upload(table, &segment)
            }
            SegmentStoreMode::PeerToPeer => {
                self.pending.lock().push((table.to_string(), segment));
                Ok(())
            }
        }
    }

    /// Complete queued async uploads (a background thread in production;
    /// explicit here for determinism). Returns how many uploaded.
    pub fn flush_pending(&self) -> Result<usize> {
        let drained: Vec<(String, Arc<Segment>)> = self.pending.lock().drain(..).collect();
        let n = drained.len();
        for (table, seg) in drained {
            self.upload(&table, &seg)?;
        }
        Ok(n)
    }

    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    /// Is a segment present in the deep store?
    pub fn contains(&self, table: &str, segment: &str) -> bool {
        self.store
            .exists(&Self::key(table, segment))
            .unwrap_or(false)
    }

    /// Recover a segment after a replica failure.
    ///
    /// Peer-to-peer mode tries the provided peers first ("server replicas
    /// can serve the archived segments"); both modes fall back to the deep
    /// store, rebuilding indices from the archived data.
    pub fn recover(
        &self,
        table: &str,
        segment: &str,
        peers: &[Arc<crate::broker::ServerNode>],
    ) -> Result<Arc<Segment>> {
        if self.mode == SegmentStoreMode::PeerToPeer {
            for peer in peers {
                if let Ok(seg) = peer.fetch_segment(segment) {
                    return Ok(seg);
                }
            }
        }
        // transiently flaky deep store is retried before the segment is
        // declared unrecoverable
        let key = Self::key(table, segment);
        let data = RetryPolicy::new(3)
            .with_backoff_us(50, 2_000)
            .run(|_| self.store.get(&key))
            .map_err(|_| Error::NotFound(format!("segment '{segment}' unrecoverable")))?;
        // damaged objects surface as Error::Corruption (CRC/bounds checks
        // in the decoder) — never a panic, and never masked as NotFound
        if segfile::is_segment_file(&data) {
            let lazy = Segment::load_lazy(data)?;
            return Ok(Arc::new(lazy.into_segment(&self.index_spec)?));
        }
        // legacy colfile objects written before the format switch
        let (schema, rows) = colfile::decode_columnar(&data)?;
        Ok(Arc::new(Segment::build(
            segment,
            &schema,
            rows,
            &self.index_spec,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::ServerNode;
    use crate::query::Query;
    use rtdi_common::{AggFn, FieldType, Row, Schema};
    use rtdi_storage::object::{FaultyStore, InMemoryStore};

    fn schema() -> Schema {
        Schema::of("t", &[("city", FieldType::Str), ("v", FieldType::Int)])
    }

    fn seg(name: &str, n: usize) -> Arc<Segment> {
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new()
                    .with("city", ["sf", "la"][i % 2])
                    .with("v", i as i64)
            })
            .collect();
        Arc::new(Segment::build(name, &schema(), rows, &IndexSpec::none()).unwrap())
    }

    #[test]
    fn centralized_backup_is_synchronous() {
        let ss = SegmentStore::new(
            Arc::new(InMemoryStore::new()),
            SegmentStoreMode::Centralized,
            IndexSpec::none(),
        );
        ss.backup("t", seg("s1", 10)).unwrap();
        assert!(ss.contains("t", "s1"));
        assert_eq!(ss.pending_count(), 0);
    }

    #[test]
    fn p2p_backup_is_asynchronous() {
        let ss = SegmentStore::new(
            Arc::new(InMemoryStore::new()),
            SegmentStoreMode::PeerToPeer,
            IndexSpec::none(),
        );
        ss.backup("t", seg("s1", 10)).unwrap();
        assert!(!ss.contains("t", "s1"), "upload deferred");
        assert_eq!(ss.pending_count(), 1);
        assert_eq!(ss.flush_pending().unwrap(), 1);
        assert!(ss.contains("t", "s1"));
    }

    #[test]
    fn recovery_from_deep_store_rebuilds_indices() {
        let ss = SegmentStore::new(
            Arc::new(InMemoryStore::new()),
            SegmentStoreMode::Centralized,
            IndexSpec::none().with_inverted(&["city"]),
        );
        let original = seg("s1", 100);
        ss.backup("t", original.clone()).unwrap();
        let recovered = ss.recover("t", "s1", &[]).unwrap();
        assert_eq!(recovered.doc_count(), 100);
        let q = Query::select_all("t")
            .filter(crate::query::Predicate::eq("city", "sf"))
            .aggregate("n", AggFn::Count);
        assert_eq!(
            recovered.execute(&q, None).unwrap().rows[0].get_int("n"),
            original.execute(&q, None).unwrap().rows[0].get_int("n"),
        );
    }

    #[test]
    fn p2p_recovery_prefers_live_peer() {
        // deep store is down; a peer replica still serves the segment
        let faulty = FaultyStore::new(InMemoryStore::new());
        faulty.set_down(true);
        let ss = SegmentStore::new(
            Arc::new(faulty),
            SegmentStoreMode::PeerToPeer,
            IndexSpec::none(),
        );
        let peer = ServerNode::new(0);
        peer.host(seg("s1", 50));
        let recovered = ss.recover("t", "s1", &[peer]).unwrap();
        assert_eq!(recovered.doc_count(), 50);
        // centralized mode cannot use peers: unrecoverable
        let faulty2 = FaultyStore::new(InMemoryStore::new());
        faulty2.set_down(true);
        let ss2 = SegmentStore::new(
            Arc::new(faulty2),
            SegmentStoreMode::Centralized,
            IndexSpec::none(),
        );
        let peer2 = ServerNode::new(0);
        peer2.host(seg("s1", 50));
        assert!(ss2.recover("t", "s1", &[peer2]).is_err());
    }

    #[test]
    fn backup_writes_real_segment_bytes() {
        let object_store = Arc::new(InMemoryStore::new());
        let ss = SegmentStore::new(
            object_store.clone(),
            SegmentStoreMode::Centralized,
            IndexSpec::none(),
        );
        ss.backup("t", seg("s1", 100)).unwrap();
        let data = object_store.get("segments/t/s1").unwrap();
        assert!(
            segfile::is_segment_file(&data),
            "deep-store object is not in the on-disk segment format"
        );
    }

    #[test]
    fn corrupt_deep_store_object_errors_cleanly() {
        let object_store = Arc::new(InMemoryStore::new());
        let ss = SegmentStore::new(
            object_store.clone(),
            SegmentStoreMode::Centralized,
            IndexSpec::none().with_inverted(&["city"]),
        );
        ss.backup("t", seg("s1", 100)).unwrap();
        let pristine = object_store.get("segments/t/s1").unwrap().to_vec();
        // single-byte flips anywhere must surface as Error::Corruption —
        // never a panic, and never masked as NotFound
        for pos in [0usize, 4, 11, pristine.len() / 2, pristine.len() - 5] {
            let mut broken = pristine.clone();
            broken[pos] ^= 0xFF;
            object_store.put("segments/t/s1", broken.into()).unwrap();
            match ss.recover("t", "s1", &[]) {
                Err(Error::Corruption(_)) => {}
                Err(other) => panic!("flip at {pos}: expected Corruption, got {other}"),
                Ok(_) => panic!("flip at {pos}: corrupt object decoded"),
            }
        }
        // truncations too
        for cut in [0usize, 3, 7, pristine.len() / 3, pristine.len() - 1] {
            object_store
                .put("segments/t/s1", pristine[..cut].to_vec().into())
                .unwrap();
            match ss.recover("t", "s1", &[]) {
                Err(Error::Corruption(_)) => {}
                Err(other) => panic!("cut at {cut}: expected Corruption, got {other}"),
                Ok(_) => panic!("cut at {cut}: truncated object decoded"),
            }
        }
        // the intact object still recovers
        object_store.put("segments/t/s1", pristine.into()).unwrap();
        assert_eq!(ss.recover("t", "s1", &[]).unwrap().doc_count(), 100);
    }

    #[test]
    fn legacy_colfile_objects_remain_recoverable() {
        let object_store = Arc::new(InMemoryStore::new());
        let ss = SegmentStore::new(
            object_store.clone(),
            SegmentStoreMode::Centralized,
            IndexSpec::none(),
        );
        let original = seg("s1", 50);
        let data = colfile::encode_columnar(original.schema(), &original.to_rows()).unwrap();
        object_store.put("segments/t/s1", data).unwrap();
        let recovered = ss.recover("t", "s1", &[]).unwrap();
        assert_eq!(recovered.doc_count(), 50);
    }

    #[test]
    fn p2p_recovery_falls_back_to_deep_store_when_no_peer() {
        let ss = SegmentStore::new(
            Arc::new(InMemoryStore::new()),
            SegmentStoreMode::PeerToPeer,
            IndexSpec::none(),
        );
        ss.backup("t", seg("s1", 20)).unwrap();
        ss.flush_pending().unwrap();
        let dead_peer = ServerNode::new(0);
        dead_peer.set_down(true);
        let recovered = ss.recover("t", "s1", &[dead_peer]).unwrap();
        assert_eq!(recovered.doc_count(), 20);
        assert!(ss.recover("t", "ghost", &[]).is_err());
    }
}
