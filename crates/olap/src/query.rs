//! The OLAP query model.
//!
//! §3: the OLAP layer "provides a limited SQL capability ... optimized for
//! serving analytical queries including filtering, aggregations with group
//! by, order by in a high throughput, low latency manner." Joins and
//! subqueries deliberately do not exist here — they live in the full SQL
//! layer (`rtdi-sql`), which pushes what it can down to this model.

use rtdi_common::{AggFn, Deadline, Priority, Row, Value};
use std::sync::Arc;

/// Comparison operators supported by predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// One column predicate. Conjunctions only (Pinot-style WHERE a AND b).
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    pub column: String,
    pub op: PredicateOp,
    pub value: Value,
}

impl Predicate {
    pub fn new(column: impl Into<String>, op: PredicateOp, value: impl Into<Value>) -> Self {
        Predicate {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Self::new(column, PredicateOp::Eq, value)
    }

    /// Evaluate against a materialized row (the fallback path; segments
    /// normally evaluate via indices or columnar scans).
    pub fn matches(&self, row: &Row) -> bool {
        let Some(v) = row.get(&self.column) else {
            return false;
        };
        if v.is_null() {
            return false;
        }
        let ord = v.total_cmp(&self.value);
        match self.op {
            PredicateOp::Eq => ord == std::cmp::Ordering::Equal,
            PredicateOp::Ne => ord != std::cmp::Ordering::Equal,
            PredicateOp::Lt => ord == std::cmp::Ordering::Less,
            PredicateOp::Le => ord != std::cmp::Ordering::Greater,
            PredicateOp::Gt => ord == std::cmp::Ordering::Greater,
            PredicateOp::Ge => ord != std::cmp::Ordering::Less,
        }
    }
}

/// Sort direction for ORDER BY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    Asc,
    Desc,
}

/// An OLAP query: either a selection (projected columns) or an aggregation
/// (aggs + optional group-by).
///
/// The shape fields (`predicates`, `select`, `aggregations`, `group_by`)
/// are `Arc`-shared so a planner can stamp out per-scan queries from a
/// cached pushdown with reference bumps instead of deep clones — the SQL
/// connector reuses one parsed pushdown across every dashboard refresh.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub table: String,
    pub predicates: Arc<Vec<Predicate>>,
    /// Selection columns (empty + empty aggs = select all columns).
    pub select: Arc<Vec<String>>,
    /// Aggregations, each with an output name.
    pub aggregations: Arc<Vec<(String, AggFn)>>,
    pub group_by: Arc<Vec<String>>,
    pub order_by: Vec<(String, SortOrder)>,
    pub limit: Option<usize>,
    /// Partition-pruned scatter: when set, only segments/servers hosting
    /// one of these partition ids are consulted (derived by the SQL
    /// optimizer from partition-key equality predicates).
    pub partitions: Option<Arc<Vec<usize>>>,
    /// Abort-by deadline: servers check it between segments and return a
    /// partial result covering whatever they finished (degraded serving,
    /// not an error). `None` = unbounded.
    pub deadline: Option<Deadline>,
    /// Scheduling lane; brokers with admission control shed the backfill
    /// lane first under pressure.
    pub priority: Priority,
}

impl Query {
    pub fn select_all(table: impl Into<String>) -> Self {
        Query {
            table: table.into(),
            predicates: Arc::new(Vec::new()),
            select: Arc::new(Vec::new()),
            aggregations: Arc::new(Vec::new()),
            group_by: Arc::new(Vec::new()),
            order_by: Vec::new(),
            limit: None,
            partitions: None,
            deadline: None,
            priority: Priority::default(),
        }
    }

    pub fn filter(mut self, p: Predicate) -> Self {
        Arc::make_mut(&mut self.predicates).push(p);
        self
    }

    pub fn columns(mut self, cols: &[&str]) -> Self {
        self.select = Arc::new(cols.iter().map(|c| c.to_string()).collect());
        self
    }

    pub fn aggregate(mut self, name: impl Into<String>, f: AggFn) -> Self {
        Arc::make_mut(&mut self.aggregations).push((name.into(), f));
        self
    }

    pub fn group(mut self, cols: &[&str]) -> Self {
        self.group_by = Arc::new(cols.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Restrict the scatter to the given partition ids.
    pub fn partitions(mut self, parts: &[usize]) -> Self {
        self.partitions = Some(Arc::new(parts.to_vec()));
        self
    }

    /// Does the partition hint (if any) admit partition `p`? Segments with
    /// an unknown partition are always admitted.
    pub fn admits_partition(&self, p: Option<usize>) -> bool {
        match (&self.partitions, p) {
            (Some(allowed), Some(p)) => allowed.contains(&p),
            _ => true,
        }
    }

    pub fn order(mut self, col: impl Into<String>, order: SortOrder) -> Self {
        self.order_by.push((col.into(), order));
        self
    }

    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Attach an abort-by deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Route the query onto a scheduling lane.
    pub fn lane(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The same query with deadline/priority stripped — the canonical
    /// shape used for result-cache keys, so two identical queries issued
    /// at different times (hence different absolute deadlines) share a
    /// cache entry.
    pub fn cache_shape(&self) -> Query {
        let mut q = self.clone();
        q.deadline = None;
        q.priority = Priority::default();
        q
    }

    pub fn is_aggregation(&self) -> bool {
        !self.aggregations.is_empty()
    }
}

/// A query result: rows plus execution statistics for the experiments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    pub rows: Vec<Row>,
    /// Documents actually visited (index efficiency measure; the star-tree
    /// path reports pre-aggregated node visits instead).
    pub docs_scanned: u64,
    /// Segments consulted after pruning.
    pub segments_queried: u64,
    /// True when a star-tree answered the aggregation without touching
    /// raw documents.
    pub used_startree: bool,
    /// True when one or more segments could not be served and the result
    /// covers only the available ones (Pinot partial-response semantics).
    pub partial: bool,
    /// Segments skipped because no live replica could serve them.
    pub segments_unavailable: u64,
    /// Segments skipped because time-range or zone-map statistics proved
    /// no document could match (lazy segments skip column reads
    /// entirely).
    pub segments_pruned: u64,
    /// True when the query's deadline expired mid-scan and the result
    /// covers only the segments finished in time.
    pub deadline_exceeded: bool,
    /// Segments shed because the deadline expired before they were
    /// served (disjoint from `segments_unavailable`).
    pub segments_shed: u64,
}

/// A partially-executed aggregation query plus its execution statistics —
/// what [`crate::table::OlapTable::query_partial`] and
/// [`crate::broker::Broker::query_partial`] hand to a federation layer
/// that must union this store's slice with another store's slice *before*
/// finalizing (keeping AVG / DISTINCTCOUNT exact across the realtime /
/// offline time boundary).
#[derive(Debug, Clone, Default)]
pub struct PartialResult {
    pub agg: PartialAgg,
    pub docs_scanned: u64,
    pub segments_queried: u64,
    pub segments_pruned: u64,
    pub partial: bool,
    pub segments_unavailable: u64,
    pub deadline_exceeded: bool,
    pub segments_shed: u64,
}

impl PartialResult {
    /// Fold another store's partial result into this one.
    pub fn merge(&mut self, other: PartialResult, query: &Query) {
        self.docs_scanned += other.docs_scanned;
        self.segments_queried += other.segments_queried;
        self.segments_pruned += other.segments_pruned;
        self.partial |= other.partial;
        self.segments_unavailable += other.segments_unavailable;
        self.deadline_exceeded |= other.deadline_exceeded;
        self.segments_shed += other.segments_shed;
        self.agg.merge(other.agg, query);
    }

    /// Finalize into a [`QueryResult`].
    pub fn finalize(self, query: &Query) -> QueryResult {
        let used_startree = self.agg.used_startree;
        QueryResult {
            rows: self.agg.finalize(query),
            docs_scanned: self.docs_scanned,
            segments_queried: self.segments_queried,
            used_startree,
            partial: self.partial,
            segments_unavailable: self.segments_unavailable,
            segments_pruned: self.segments_pruned,
            deadline_exceeded: self.deadline_exceeded,
            segments_shed: self.segments_shed,
        }
    }
}

/// Group key: the group-by column values (in `group_by` order) rendered to
/// strings, with `None` for a NULL (or absent) value so a NULL key can
/// never collide with a literal `"NULL"` string. A global aggregation uses
/// the empty key.
pub type GroupKey = Vec<Option<String>>;

/// Partially-aggregated per-group accumulators — the unit shipped from
/// segments/servers to the broker for the "merge" step of
/// scatter-gather-merge. Shipping accumulators (not finalized values)
/// keeps AVG and DISTINCTCOUNT correct across segments.
#[derive(Debug, Clone, Default)]
pub struct PartialAgg {
    pub groups: std::collections::BTreeMap<GroupKey, Vec<rtdi_common::AggAcc>>,
    pub docs_scanned: u64,
    pub used_startree: bool,
}

impl PartialAgg {
    /// Merge another partial in.
    pub fn merge(&mut self, other: PartialAgg, query: &Query) {
        self.docs_scanned += other.docs_scanned;
        self.used_startree |= other.used_startree;
        for (key, accs) in other.groups {
            match self.groups.get_mut(&key) {
                Some(mine) => {
                    for (a, b) in mine.iter_mut().zip(&accs) {
                        a.merge(b);
                    }
                }
                None => {
                    self.groups.insert(key, accs);
                }
            }
        }
        let _ = query;
    }

    /// Finalize into result rows (applying ORDER BY / LIMIT).
    pub fn finalize(mut self, query: &Query) -> Vec<Row> {
        if self.groups.is_empty() && query.group_by.is_empty() {
            // empty input still yields the zero row for global aggregates
            self.groups.insert(
                Vec::new(),
                query
                    .aggregations
                    .iter()
                    .map(|(_, f)| f.new_acc())
                    .collect(),
            );
        }
        // intern output column names once; every result row shares them
        let group_names: Vec<std::sync::Arc<str>> = query
            .group_by
            .iter()
            .map(|c| std::sync::Arc::from(c.as_str()))
            .collect();
        let agg_names: Vec<std::sync::Arc<str>> = query
            .aggregations
            .iter()
            .map(|(n, _)| std::sync::Arc::from(n.as_str()))
            .collect();
        let mut rows = Vec::with_capacity(self.groups.len());
        for (key, accs) in self.groups {
            let mut row = Row::with_capacity(key.len() + accs.len());
            for (col, k) in group_names.iter().zip(key) {
                row.push(
                    std::sync::Arc::clone(col),
                    k.map(Value::Str).unwrap_or(Value::Null),
                );
            }
            for (name, acc) in agg_names.iter().zip(&accs) {
                row.push(std::sync::Arc::clone(name), acc.result());
            }
            rows.push(row);
        }
        sort_and_limit(&mut rows, &query.order_by, query.limit);
        rows
    }
}

/// Sort + limit helper shared by segment execution and broker merging.
pub fn sort_and_limit(rows: &mut Vec<Row>, order_by: &[(String, SortOrder)], limit: Option<usize>) {
    if !order_by.is_empty() {
        rows.sort_by(|a, b| {
            for (col, dir) in order_by {
                let va = a.get(col).unwrap_or(&Value::Null);
                let vb = b.get(col).unwrap_or(&Value::Null);
                let ord = va.total_cmp(vb);
                let ord = match dir {
                    SortOrder::Asc => ord,
                    SortOrder::Desc => ord.reverse(),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = limit {
        rows.truncate(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_matching() {
        let row = Row::new().with("city", "sf").with("fare", 12.5);
        assert!(Predicate::eq("city", "sf").matches(&row));
        assert!(!Predicate::eq("city", "la").matches(&row));
        assert!(Predicate::new("fare", PredicateOp::Gt, 10.0).matches(&row));
        assert!(Predicate::new("fare", PredicateOp::Le, 12.5).matches(&row));
        assert!(!Predicate::new("fare", PredicateOp::Lt, 12.5).matches(&row));
        assert!(Predicate::new("fare", PredicateOp::Ne, 0.0).matches(&row));
        // missing column or null never matches
        assert!(!Predicate::eq("ghost", 1i64).matches(&row));
        let with_null = Row::new().with("x", Value::Null);
        assert!(!Predicate::eq("x", 1i64).matches(&with_null));
    }

    #[test]
    fn int_double_cross_type_predicates() {
        let row = Row::new().with("n", 5i64);
        assert!(Predicate::new("n", PredicateOp::Lt, 5.5).matches(&row));
        assert!(Predicate::new("n", PredicateOp::Eq, 5.0).matches(&row));
    }

    #[test]
    fn builder_composes() {
        let q = Query::select_all("orders")
            .filter(Predicate::eq("city", "sf"))
            .aggregate("n", AggFn::Count)
            .group(&["restaurant"])
            .order("n", SortOrder::Desc)
            .limit(10);
        assert!(q.is_aggregation());
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(*q.group_by, vec!["restaurant"]);
        assert_eq!(q.limit, Some(10));
        // shape clones are reference bumps, not deep copies
        let stamped = q.clone();
        assert!(Arc::ptr_eq(&q.predicates, &stamped.predicates));
        assert!(Arc::ptr_eq(&q.aggregations, &stamped.aggregations));
    }

    #[test]
    fn sort_and_limit_orders_with_nulls_last_asc() {
        let mut rows = vec![
            Row::new().with("x", 3i64),
            Row::new().with("x", Value::Null),
            Row::new().with("x", 1i64),
            Row::new().with("x", 2i64),
        ];
        sort_and_limit(&mut rows, &[("x".into(), SortOrder::Asc)], Some(3));
        let vals: Vec<Option<i64>> = rows.iter().map(|r| r.get_int("x")).collect();
        // Null ranks lowest in total_cmp -> first in Asc
        assert_eq!(vals, vec![None, Some(1), Some(2)]);
    }

    #[test]
    fn multi_key_sort() {
        let mut rows = vec![
            Row::new().with("a", 1i64).with("b", 2i64),
            Row::new().with("a", 1i64).with("b", 1i64),
            Row::new().with("a", 0i64).with("b", 9i64),
        ];
        sort_and_limit(
            &mut rows,
            &[("a".into(), SortOrder::Asc), ("b".into(), SortOrder::Desc)],
            None,
        );
        assert_eq!(rows[0].get_int("b"), Some(9));
        assert_eq!(rows[1].get_int("b"), Some(2));
        assert_eq!(rows[2].get_int("b"), Some(1));
    }
}
