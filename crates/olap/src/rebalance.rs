//! Self-healing segment placement (§4.3.4).
//!
//! When an OLAP server dies, every segment it hosted drops to fewer live
//! replicas than its placement calls for. The paper's peer-to-peer
//! archival scheme makes recovery cheap: "server replicas can serve the
//! archived segments in case of failures", with the deep store as the
//! fallback. The [`Rebalancer`] closes the loop: it scans the broker's
//! routing table for under-replicated placements, recovers each affected
//! segment (live peer first, then deep storage) and re-hosts it on the
//! least-loaded live server — so a query that degraded to
//! `partial=true` right after the failure returns to full coverage once
//! the rebalance completes.
//!
//! The rebalancer is also a [`MembershipListener`]: subscribed to the
//! shared heartbeat membership view, it reacts to a `Dead` transition of
//! any node named like one of its servers by running a rebalance pass
//! immediately.

use crate::broker::Broker;
use crate::segstore::SegmentStore;
use parking_lot::Mutex;
use rtdi_common::{MembershipEvent, MembershipListener, NodeState, Result};
use std::sync::Arc;

/// One replica move performed by a rebalance pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaMove {
    pub table: String,
    pub segment: String,
    pub from_server: usize,
    pub to_server: usize,
    /// Whether the segment came from a live peer (vs the deep store).
    pub from_peer: bool,
}

impl ReplicaMove {
    /// Stable one-line rendering for the deterministic rebalance log.
    pub fn line(&self) -> String {
        format!(
            "table={} segment={} {}->{} source={}",
            self.table,
            self.segment,
            self.from_server,
            self.to_server,
            if self.from_peer { "peer" } else { "deepstore" }
        )
    }
}

/// Outcome of one rebalance pass.
#[derive(Debug, Clone, Default)]
pub struct RebalanceReport {
    pub segments_checked: usize,
    pub moves: Vec<ReplicaMove>,
    /// Segments that stayed under-replicated (no live target or the
    /// segment was unrecoverable from peers and deep store alike).
    pub unrecovered: Vec<String>,
}

/// Watches segment placements and re-hosts replicas lost to server death.
pub struct Rebalancer {
    broker: Arc<Broker>,
    store: Arc<SegmentStore>,
    /// Accumulated moves across passes, for the deterministic log.
    history: Mutex<Vec<ReplicaMove>>,
}

impl Rebalancer {
    pub fn new(broker: Arc<Broker>, store: Arc<SegmentStore>) -> Arc<Self> {
        Arc::new(Rebalancer {
            broker,
            store,
            history: Mutex::new(Vec::new()),
        })
    }

    /// Subscribe this rebalancer to a membership view so server deaths
    /// trigger rebalances without polling.
    pub fn watch(self: &Arc<Self>, membership: &Arc<rtdi_common::Membership>) {
        membership.subscribe(Arc::clone(self) as Arc<dyn MembershipListener>);
    }

    /// One pass: find placements whose replicas include a dead server,
    /// recover each affected segment and re-host it on the least-loaded
    /// live server that doesn't already hold it. Deterministic: tables
    /// and placements are visited in routing order, targets tie-break by
    /// server id.
    pub fn rebalance(&self) -> Result<RebalanceReport> {
        let servers = self.broker.servers();
        let mut report = RebalanceReport::default();
        // live-server load (hosted segment count), updated as we move
        let mut load: Vec<usize> = servers.iter().map(|s| s.hosted().len()).collect();
        for table in self.broker.tables() {
            for pl in self.broker.placements(&table) {
                report.segments_checked += 1;
                let dead: Vec<usize> = pl
                    .replicas
                    .iter()
                    .copied()
                    .filter(|&r| servers[r].is_down())
                    .collect();
                if dead.is_empty() {
                    continue;
                }
                let live_peers: Vec<_> = pl
                    .replicas
                    .iter()
                    .copied()
                    .filter(|&r| !servers[r].is_down())
                    .map(|r| Arc::clone(&servers[r]))
                    .collect();
                for from in dead {
                    // least-loaded live server not already in the replica set
                    let target = (0..servers.len())
                        .filter(|&s| !servers[s].is_down() && !pl.replicas.contains(&s))
                        .min_by_key(|&s| (load[s], s));
                    let Some(to) = target else {
                        report.unrecovered.push(pl.segment.clone());
                        continue;
                    };
                    let from_peer = !live_peers.is_empty()
                        && live_peers
                            .iter()
                            .any(|p| p.fetch_segment(&pl.segment).is_ok());
                    match self.store.recover(&table, &pl.segment, &live_peers) {
                        Ok(seg) => {
                            self.broker
                                .rehost_replica(&table, &pl.segment, from, to, seg)?;
                            load[to] += 1;
                            report.moves.push(ReplicaMove {
                                table: table.clone(),
                                segment: pl.segment.clone(),
                                from_server: from,
                                to_server: to,
                                from_peer,
                            });
                        }
                        Err(_) => report.unrecovered.push(pl.segment.clone()),
                    }
                }
            }
        }
        self.history.lock().extend(report.moves.iter().cloned());
        Ok(report)
    }

    /// Every replica move ever performed, one line each — byte-identical
    /// across runs with the same kill/heal schedule.
    pub fn move_log(&self) -> String {
        let mut out = String::new();
        for mv in self.history.lock().iter() {
            out.push_str(&mv.line());
            out.push('\n');
        }
        out
    }
}

impl MembershipListener for Rebalancer {
    fn on_membership_event(&self, event: &MembershipEvent) {
        if event.to == NodeState::Dead && self.broker.server_by_name(&event.node).is_some() {
            // a server we route to died: heal placements now
            let _ = self.rebalance();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::ServerNode;
    use crate::query::Query;
    use crate::segment::{IndexSpec, Segment};
    use crate::segstore::SegmentStoreMode;
    use rtdi_common::{AggFn, FieldType, Row, Schema};
    use rtdi_storage::object::{InMemoryStore, ObjectStore};

    fn schema() -> Schema {
        Schema::of(
            "t",
            &[("city", FieldType::Str), ("fare", FieldType::Double)],
        )
    }

    fn seg(name: &str, offset: usize, n: usize) -> Arc<Segment> {
        let rows: Vec<Row> = (offset..offset + n)
            .map(|i| {
                Row::new()
                    .with("city", ["sf", "la"][i % 2])
                    .with("fare", i as f64)
            })
            .collect();
        Arc::new(Segment::build(name, &schema(), rows, &IndexSpec::none()).unwrap())
    }

    fn setup(
        servers: usize,
        segments: usize,
        replication: usize,
    ) -> (Arc<Broker>, Arc<Rebalancer>) {
        let nodes: Vec<Arc<ServerNode>> = (0..servers).map(ServerNode::new).collect();
        let broker = Arc::new(Broker::new(nodes));
        broker.register_table("t", false);
        let store = Arc::new(SegmentStore::new(
            Arc::new(InMemoryStore::new()),
            SegmentStoreMode::PeerToPeer,
            IndexSpec::none(),
        ));
        for i in 0..segments {
            let s = seg(&format!("s{i}"), i * 100, 100);
            store.backup("t", s.clone()).unwrap();
            broker.place_segment("t", s, None, replication).unwrap();
        }
        store.flush_pending().unwrap();
        let rb = Rebalancer::new(broker.clone(), store);
        (broker, rb)
    }

    #[test]
    fn rebalance_restores_full_coverage_after_server_death() {
        let (broker, rb) = setup(4, 8, 2);
        let q = Query::select_all("t").aggregate("n", AggFn::Count);
        broker.servers()[0].set_down(true);
        broker.servers()[1].set_down(true);
        // with replication 2 some segments now have 0 live replicas
        let degraded = broker.query(&q).unwrap();
        assert!(degraded.partial);
        let report = rb.rebalance().unwrap();
        assert!(!report.moves.is_empty());
        assert!(report.unrecovered.is_empty());
        let healed = broker.query(&q).unwrap();
        assert!(!healed.partial, "rebalance restored every segment");
        assert_eq!(healed.rows[0].get_int("n"), Some(800));
        // routing no longer references the dead servers
        for pl in broker.placements("t") {
            for r in pl.replicas {
                assert!(!broker.servers()[r].is_down());
            }
        }
    }

    #[test]
    fn rebalance_recovers_from_deep_store_when_no_peer_survives() {
        let (broker, rb) = setup(3, 3, 1);
        // replication 1: killing a host leaves no live peer
        let victim = broker.placements("t")[0].replicas[0];
        broker.servers()[victim].set_down(true);
        let report = rb.rebalance().unwrap();
        assert!(report.moves.iter().all(|m| !m.from_peer));
        assert!(report.unrecovered.is_empty());
        let q = Query::select_all("t").aggregate("n", AggFn::Count);
        let res = broker.query(&q).unwrap();
        assert!(!res.partial);
        assert_eq!(res.rows[0].get_int("n"), Some(300));
    }

    #[test]
    fn corrupt_deep_store_object_reports_unrecovered_without_panic() {
        // replication 1 and a dead host: recovery must go to the deep
        // store, where the archived object has been damaged
        let nodes: Vec<Arc<ServerNode>> = (0..3).map(ServerNode::new).collect();
        let broker = Arc::new(Broker::new(nodes));
        broker.register_table("t", false);
        let object_store = Arc::new(InMemoryStore::new());
        let store = Arc::new(SegmentStore::new(
            object_store.clone(),
            SegmentStoreMode::PeerToPeer,
            IndexSpec::none(),
        ));
        let s = seg("s0", 0, 100);
        store.backup("t", s.clone()).unwrap();
        broker.place_segment("t", s, None, 1).unwrap();
        store.flush_pending().unwrap();
        let mut broken = object_store.get("segments/t/s0").unwrap().to_vec();
        let mid = broken.len() / 2;
        broken[mid] ^= 0xFF;
        object_store.put("segments/t/s0", broken.into()).unwrap();
        let victim = broker.placements("t")[0].replicas[0];
        broker.servers()[victim].set_down(true);
        let rb = Rebalancer::new(broker.clone(), store);
        // decoder rejects the damaged bytes with Error::Corruption; the
        // rebalancer records the segment instead of crashing
        let report = rb.rebalance().unwrap();
        assert!(report.moves.is_empty());
        assert_eq!(report.unrecovered, vec!["s0".to_string()]);
    }

    #[test]
    fn rebalance_reports_unrecovered_when_no_target_exists() {
        let (broker, rb) = setup(2, 2, 2);
        // both replicas of every segment are on the only two servers;
        // killing one leaves no server outside the replica set to host
        broker.servers()[0].set_down(true);
        let report = rb.rebalance().unwrap();
        assert!(report.moves.is_empty());
        assert_eq!(report.unrecovered.len(), 2);
    }

    #[test]
    fn move_log_is_deterministic() {
        let run = || {
            let (broker, rb) = setup(4, 6, 2);
            broker.servers()[2].set_down(true);
            rb.rebalance().unwrap();
            rb.move_log()
        };
        let first = run();
        assert!(!first.is_empty());
        assert_eq!(first, run());
    }
}
