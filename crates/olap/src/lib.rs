//! # rtdi-olap
//!
//! The real-time OLAP layer — the Apache Pinot stand-in of §4.3 — with
//! every Uber enhancement the paper describes:
//!
//! - [`bitmap`], [`segment`]: dictionary-encoded, bit-packed columnar
//!   segments with inverted, sorted and range indices, persisted to the
//!   real on-disk format of `rtdi_storage::segfile` and re-opened lazily
//!   (zone maps first, per-column decode on demand);
//! - [`startree`]: the star-tree pre-aggregation index Pinot credits for
//!   order-of-magnitude group-by speedups;
//! - [`query`]: the "limited SQL" query model (filters, aggregations,
//!   group-by/order-by, limits) executed per segment with automatic index
//!   selection;
//! - [`realtime`], [`ingestion`]: consuming (mutable) segments fed from
//!   stream topics, sealed into immutable segments at size thresholds;
//! - [`upsert`] (§4.3.1): partitioned primary-key tracking with
//!   shared-nothing, per-partition ownership and valid-doc filtering;
//! - [`table`], [`broker`]: hybrid realtime+offline tables behind a
//!   scatter-gather-merge broker with partition-aware routing;
//! - [`segstore`] (§4.3.4): segment archival with a centralized
//!   controller-mediated scheme and the peer-to-peer replica recovery
//!   scheme that replaced it;
//! - [`rebalance`] (§4.3.4): the self-healing placement loop that
//!   re-hosts under-replicated segments after server death, wired to the
//!   shared heartbeat membership view;
//! - [`baselines`]: the Elasticsearch-like heap/row store used by the §4.3
//!   footprint and latency comparison (E10).

pub mod baselines;
pub mod bitmap;
pub mod broker;
pub mod ingestion;
pub mod query;
pub mod realtime;
pub mod rebalance;
pub mod scatter;
pub mod segment;
pub mod segstore;
pub mod startree;
pub mod table;
pub mod upsert;

pub use bitmap::Bitmap;
pub use broker::{Broker, ServerNode};
pub use ingestion::{IngestionConfig, RealtimeIngester};
pub use query::{Predicate, PredicateOp, Query, QueryResult};
pub use realtime::MutableSegment;
pub use rebalance::{RebalanceReport, Rebalancer, ReplicaMove};
pub use segment::{IndexSpec, LazySegment, Segment};
pub use segstore::{SegmentStore, SegmentStoreMode};
pub use startree::{StarTree, StarTreeSpec};
pub use table::{OlapTable, TableConfig};
pub use upsert::PrimaryKeyIndex;
