//! OLAP comparison baseline: an Elasticsearch-like heap/row store.
//!
//! §4.3: "With the same amount of data ingested into Elasticsearch and
//! Pinot, Elasticsearch's memory usage was 4x higher and disk usage was 8x
//! higher than Pinot. In addition, Elasticsearch's query latency was
//! 2x-4x higher than Pinot."
//!
//! [`HeapStore`] reproduces the architectural sources of that gap rather
//! than caricaturing them:
//! - every document is stored as an owned row (the `_source` document ES
//!   keeps), not columnar/dictionary-encoded;
//! - every field of every document is indexed into per-value posting
//!   lists keyed by stringified values (ES indexes all fields by
//!   default) — large heap;
//! - "disk" is the JSON rendering of each document (no dictionary or
//!   bit-packing, field names repeated per document);
//! - aggregations walk materialized rows with by-name field lookups
//!   (fielddata-style access) instead of tight columnar loops.

use crate::query::{sort_and_limit, PartialAgg, PredicateOp, Query, QueryResult};
use rtdi_common::{AggAcc, Result, Row};
use std::collections::HashMap;

/// Row-store with all-fields inverted indexing.
#[derive(Default)]
pub struct HeapStore {
    docs: Vec<Row>,
    /// (field, rendered value) -> posting list of doc ids
    postings: HashMap<(String, String), Vec<usize>>,
    doc_bytes: usize,
}

impl HeapStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn index(&mut self, row: Row) {
        let id = self.docs.len();
        for (field, value) in row.iter() {
            if value.is_null() {
                continue;
            }
            self.postings
                .entry((field.to_string(), value.to_string()))
                .or_default()
                .push(id);
        }
        self.doc_bytes += row.approx_bytes();
        self.docs.push(row);
    }

    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Heap footprint: stored docs (`_source`), posting lists (terms +
    /// postings), and the uncompressed per-field doc-values columns ES
    /// keeps for sorting/aggregations.
    pub fn memory_bytes(&self) -> usize {
        let postings: usize = self
            .postings
            .iter()
            .map(|((f, v), ids)| f.len() + v.len() + 48 + ids.len() * 8)
            .sum();
        // doc_values: one 8-byte cell per field per document (no dictionary
        // bit-packing in this model)
        let fields: std::collections::HashSet<&str> =
            self.docs.iter().flat_map(|d| d.column_names()).collect();
        let doc_values = self.docs.len() * fields.len() * 8;
        self.doc_bytes + postings + doc_values
    }

    /// "Disk" footprint: JSON-ish rendering of every document.
    pub fn disk_bytes(&self) -> usize {
        self.docs
            .iter()
            .map(|row| {
                2 + row
                    .iter()
                    .map(|(k, v)| k.len() + format!("{v}").len() + 6)
                    .sum::<usize>()
            })
            .sum()
    }

    fn matching_docs(&self, query: &Query) -> Vec<usize> {
        // use a posting list for the first equality predicate, then verify
        // the rest by document inspection (ES-style filter execution)
        let seed: Option<Vec<usize>> = query
            .predicates
            .iter()
            .find(|p| p.op == PredicateOp::Eq)
            .and_then(|p| {
                self.postings
                    .get(&(p.column.clone(), p.value.to_string()))
                    .cloned()
                    .or(Some(Vec::new()))
            });
        let candidates: Vec<usize> = match seed {
            Some(ids) => ids,
            None => (0..self.docs.len()).collect(),
        };
        candidates
            .into_iter()
            .filter(|&id| {
                let doc = &self.docs[id];
                query.predicates.iter().all(|p| p.matches(doc))
            })
            .collect()
    }

    pub fn execute(&self, query: &Query) -> Result<QueryResult> {
        let ids = self.matching_docs(query);
        let docs_scanned = ids.len() as u64;
        if query.is_aggregation() {
            let mut partial = PartialAgg {
                docs_scanned,
                ..Default::default()
            };
            for id in ids {
                let doc = &self.docs[id];
                let key: crate::query::GroupKey = query
                    .group_by
                    .iter()
                    .map(|c| doc.get(c).filter(|v| !v.is_null()).map(|v| v.to_string()))
                    .collect();
                let accs: &mut Vec<AggAcc> = partial.groups.entry(key).or_insert_with(|| {
                    query
                        .aggregations
                        .iter()
                        .map(|(_, f)| f.new_acc())
                        .collect()
                });
                for (acc, (_, f)) in accs.iter_mut().zip(query.aggregations.iter()) {
                    acc.add(f, doc);
                }
            }
            return Ok(QueryResult {
                rows: partial.finalize(query),
                docs_scanned,
                segments_queried: 1,
                used_startree: false,
                ..Default::default()
            });
        }
        let mut rows: Vec<Row> = ids
            .into_iter()
            .map(|id| {
                let doc = &self.docs[id];
                if query.select.is_empty() {
                    doc.clone()
                } else {
                    doc.project(&query.select.iter().map(|s| s.as_str()).collect::<Vec<_>>())
                }
            })
            .collect();
        sort_and_limit(&mut rows, &query.order_by, query.limit);
        Ok(QueryResult {
            rows,
            docs_scanned,
            segments_queried: 1,
            used_startree: false,
            ..Default::default()
        })
    }
}

/// A "Druid-like" configuration helper for the index-ablation experiment
/// (E11): same columnar engine, but without the startree/sorted/range
/// indices Pinot adds. Returns the reduced index spec.
pub fn druid_like_spec(full: &crate::segment::IndexSpec) -> crate::segment::IndexSpec {
    crate::segment::IndexSpec {
        inverted: full.inverted.clone(),
        sorted: None,
        range: Vec::new(),
        startree: None,
    }
}

/// Helper used by E10: group-by distribution shared by both engines.
pub fn comparison_rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new()
                .with("restaurant", format!("rest-{:04}", i % 500))
                .with("city", ["sf", "la", "nyc", "chi", "sea", "mia"][i % 6])
                .with("total", 4.0 + (i % 120) as f64 * 0.5)
                .with("items", (i % 9) as i64 + 1)
                .with("ts", 1_600_000_000_000i64 + (i as i64) * 250)
        })
        .collect()
}

/// Schema for [`comparison_rows`].
pub fn comparison_schema() -> rtdi_common::Schema {
    rtdi_common::Schema::of(
        "orders",
        &[
            ("restaurant", rtdi_common::FieldType::Str),
            ("city", rtdi_common::FieldType::Str),
            ("total", rtdi_common::FieldType::Double),
            ("items", rtdi_common::FieldType::Int),
            ("ts", rtdi_common::FieldType::Timestamp),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::segment::{IndexSpec, Segment};
    use rtdi_common::AggFn;
    use rtdi_storage::colfile;

    fn filled(n: usize) -> HeapStore {
        let mut hs = HeapStore::new();
        for row in comparison_rows(n) {
            hs.index(row);
        }
        hs
    }

    #[test]
    fn heapstore_agrees_with_columnar_results() {
        let rows = comparison_rows(2000);
        let hs = filled(2000);
        let seg = Segment::build(
            "s",
            &comparison_schema(),
            rows,
            &IndexSpec::none().with_inverted(&["city", "restaurant"]),
        )
        .unwrap();
        let queries = vec![
            Query::select_all("orders")
                .filter(Predicate::eq("city", "sf"))
                .aggregate("n", AggFn::Count)
                .aggregate("rev", AggFn::Sum("total".into())),
            Query::select_all("orders")
                .filter(Predicate::new("total", PredicateOp::Gt, 40.0))
                .aggregate("n", AggFn::Count)
                .group(&["city"]),
            Query::select_all("orders")
                .filter(Predicate::eq("restaurant", "rest-0007"))
                .aggregate("avg", AggFn::Avg("total".into())),
        ];
        for q in queries {
            let a = hs.execute(&q).unwrap().rows;
            let b = seg.execute(&q, None).unwrap().rows;
            assert_eq!(a, b, "mismatch for {q:?}");
        }
    }

    #[test]
    fn memory_gap_matches_paper_band() {
        let n = 20_000;
        let hs = filled(n);
        let seg = Segment::build(
            "s",
            &comparison_schema(),
            comparison_rows(n),
            &IndexSpec::none()
                .with_inverted(&["city", "restaurant"])
                .with_sorted("ts")
                .with_range(&["total"]),
        )
        .unwrap();
        let ratio = hs.memory_bytes() as f64 / seg.memory_bytes() as f64;
        assert!(
            ratio >= 3.0,
            "expected ES-like memory ~4x columnar, got {ratio:.1}x"
        );
    }

    #[test]
    fn disk_gap_matches_paper_band() {
        let n = 20_000;
        let hs = filled(n);
        let data = colfile::encode_columnar(&comparison_schema(), &comparison_rows(n)).unwrap();
        let ratio = hs.disk_bytes() as f64 / data.len() as f64;
        assert!(
            ratio >= 6.0,
            "expected ES-like disk ~8x columnar file, got {ratio:.1}x"
        );
    }

    #[test]
    fn druid_like_spec_strips_pinot_specials() {
        let full = IndexSpec::none()
            .with_inverted(&["city"])
            .with_sorted("ts")
            .with_range(&["total"])
            .with_startree(crate::startree::StarTreeSpec::new(
                &["city"],
                vec![AggFn::Count],
            ));
        let druid = druid_like_spec(&full);
        assert_eq!(druid.inverted, vec!["city"]);
        assert!(druid.sorted.is_none());
        assert!(druid.range.is_empty());
        assert!(druid.startree.is_none());
    }
}
