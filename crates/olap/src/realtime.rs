//! Consuming (mutable) segments.
//!
//! Real-time ingestion appends rows to a mutable segment that serves
//! queries immediately — the seconds-level data freshness of §4.3 — and is
//! sealed into an immutable, fully-indexed [`crate::segment::Segment`]
//! once it reaches its row threshold.

use crate::bitmap::Bitmap;
use crate::query::{sort_and_limit, PartialAgg, Query, QueryResult};
use crate::segment::{IndexSpec, Segment};
use rtdi_common::{AggAcc, Result, Row, Schema};

/// An append-only, immediately-queryable segment.
pub struct MutableSegment {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    bytes: usize,
}

impl MutableSegment {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        MutableSegment {
            name: name.into(),
            schema,
            rows: Vec::new(),
            bytes: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a row; returns its doc id within this segment.
    pub fn append(&mut self, row: Row) -> Result<usize> {
        self.schema.validate(&row)?;
        self.bytes += row.approx_bytes();
        self.rows.push(row);
        Ok(self.rows.len() - 1)
    }

    pub fn doc_count(&self) -> usize {
        self.rows.len()
    }

    pub fn memory_bytes(&self) -> usize {
        self.bytes
    }

    pub fn row_at(&self, doc: usize) -> Option<&Row> {
        self.rows.get(doc)
    }

    /// Seal into an immutable, indexed segment. The mutable segment's doc
    /// ids are preserved only when the index spec does not re-sort
    /// (`spec.sorted == None`) — upsert tables rely on that, so
    /// [`crate::table::OlapTable`] strips `sorted` from specs of upsert
    /// tables.
    pub fn seal(&self, spec: &IndexSpec) -> Result<Segment> {
        Segment::build(self.name.clone(), &self.schema, self.rows.clone(), spec)
    }

    /// Query execution by row scan (mutable segments have no indices).
    pub fn execute(&self, query: &Query, valid_docs: Option<&Bitmap>) -> Result<QueryResult> {
        if query.is_aggregation() {
            let partial = self.execute_partial(query, valid_docs)?;
            let docs_scanned = partial.docs_scanned;
            return Ok(QueryResult {
                rows: partial.finalize(query),
                docs_scanned,
                segments_queried: 1,
                used_startree: false,
                ..Default::default()
            });
        }
        let mut result = QueryResult {
            segments_queried: 1,
            ..Default::default()
        };
        // intern the projection names once; every emitted row shares them.
        // Empty select projects onto the schema (missing fields become
        // NULL) so consuming-segment rows are shaped exactly like sealed
        // segment rows.
        let names: Vec<std::sync::Arc<str>> = if query.select.is_empty() {
            self.schema
                .field_names()
                .map(std::sync::Arc::from)
                .collect()
        } else {
            query
                .select
                .iter()
                .map(|s| std::sync::Arc::from(s.as_str()))
                .collect()
        };
        for (doc, row) in self.rows.iter().enumerate() {
            result.docs_scanned += 1;
            if let Some(valid) = valid_docs {
                if !valid.get(doc) {
                    continue;
                }
            }
            if !query.predicates.iter().all(|p| p.matches(row)) {
                continue;
            }
            result.rows.push(row.project_shared(&names));
        }
        sort_and_limit(&mut result.rows, &query.order_by, query.limit);
        Ok(result)
    }

    /// Mergeable aggregation over the mutable rows.
    pub fn execute_partial(
        &self,
        query: &Query,
        valid_docs: Option<&Bitmap>,
    ) -> Result<PartialAgg> {
        let mut partial = PartialAgg::default();
        for (doc, row) in self.rows.iter().enumerate() {
            partial.docs_scanned += 1;
            if let Some(valid) = valid_docs {
                if !valid.get(doc) {
                    continue;
                }
            }
            if !query.predicates.iter().all(|p| p.matches(row)) {
                continue;
            }
            let key: crate::query::GroupKey = query
                .group_by
                .iter()
                .map(|c| row.get(c).filter(|v| !v.is_null()).map(|v| v.to_string()))
                .collect();
            let accs: &mut Vec<AggAcc> = partial.groups.entry(key).or_insert_with(|| {
                query
                    .aggregations
                    .iter()
                    .map(|(_, f)| f.new_acc())
                    .collect()
            });
            for (acc, (_, f)) in accs.iter_mut().zip(query.aggregations.iter()) {
                acc.add(f, row);
            }
        }
        Ok(partial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use rtdi_common::{AggFn, FieldType};

    fn schema() -> Schema {
        Schema::of(
            "orders",
            &[
                ("city", FieldType::Str),
                ("total", FieldType::Double),
                ("ts", FieldType::Timestamp),
            ],
        )
    }

    fn filled(n: usize) -> MutableSegment {
        let mut seg = MutableSegment::new("rt-0-0", schema());
        for i in 0..n {
            seg.append(
                Row::new()
                    .with("city", ["sf", "la"][i % 2])
                    .with("total", i as f64)
                    .with("ts", i as i64),
            )
            .unwrap();
        }
        seg
    }

    #[test]
    fn append_and_query_immediately() {
        let seg = filled(10);
        assert_eq!(seg.doc_count(), 10);
        let q = Query::select_all("orders")
            .filter(Predicate::eq("city", "sf"))
            .aggregate("n", AggFn::Count);
        let res = seg.execute(&q, None).unwrap();
        assert_eq!(res.rows[0].get_int("n"), Some(5));
    }

    #[test]
    fn schema_violations_rejected() {
        let mut seg = MutableSegment::new("rt", schema());
        assert!(seg.append(Row::new().with("city", 42i64)).is_err());
        assert_eq!(seg.doc_count(), 0);
    }

    #[test]
    fn selection_with_projection() {
        let seg = filled(6);
        let q = Query::select_all("orders")
            .columns(&["total"])
            .filter(Predicate::new("total", crate::query::PredicateOp::Ge, 4.0));
        let res = seg.execute(&q, None).unwrap();
        assert_eq!(res.rows.len(), 2);
        assert_eq!(res.rows[0].len(), 1);
    }

    #[test]
    fn valid_docs_respected() {
        let seg = filled(4);
        let mut valid = Bitmap::full(4);
        valid.unset(1);
        let q = Query::select_all("orders").aggregate("n", AggFn::Count);
        assert_eq!(
            seg.execute(&q, Some(&valid)).unwrap().rows[0].get_int("n"),
            Some(3)
        );
    }

    #[test]
    fn seal_preserves_docs_and_results() {
        let seg = filled(100);
        let sealed = seg
            .seal(&IndexSpec::none().with_inverted(&["city"]))
            .unwrap();
        assert_eq!(sealed.doc_count(), 100);
        let q = Query::select_all("orders")
            .filter(Predicate::eq("city", "la"))
            .aggregate("sum".to_string(), AggFn::Sum("total".into()));
        let a = seg.execute(&q, None).unwrap().rows[0].get_double("sum");
        let b = sealed.execute(&q, None).unwrap().rows[0].get_double("sum");
        assert_eq!(a, b);
        // doc id alignment (no sorted column): every doc identical
        for i in 0..100 {
            assert_eq!(seg.row_at(i).unwrap().get_double("total"), {
                let r = sealed.row_at(i);
                r.get_double("total")
            });
        }
    }

    #[test]
    fn partial_merges_with_immutable_partial() {
        let seg = filled(50);
        let sealed = filled(50).seal(&IndexSpec::none()).unwrap();
        let q = Query::select_all("orders")
            .aggregate("avg_total".to_string(), AggFn::Avg("total".into()))
            .group(&["city"]);
        let mut p = seg.execute_partial(&q, None).unwrap();
        p.merge(sealed.execute_partial(&q, None).unwrap(), &q);
        let rows = p.finalize(&q);
        assert_eq!(rows.len(), 2);
        // avg across both halves equals avg of the duplicated dataset =
        // avg of one copy
        let sf = rows
            .iter()
            .find(|r| r.get_str("city") == Some("sf"))
            .unwrap();
        let expected: f64 = (0..50)
            .filter(|i| i % 2 == 0)
            .map(|i| i as f64)
            .sum::<f64>()
            / 25.0;
        assert!((sf.get_double("avg_total").unwrap() - expected).abs() < 1e-9);
    }
}
