//! Hybrid realtime + offline tables.
//!
//! §4.3: "Pinot employs the lambda architecture to present a federated
//! view between real-time and historical (offline) data... data is chunked
//! by time boundary and grouped into segments; while the query is first
//! decomposed into sub-plans which execute on the distributed segments in
//! parallel, and then the plan results are aggregated and merged into a
//! final one."
//!
//! [`OlapTable`] owns per-partition realtime state (a consuming mutable
//! segment, sealed segments, and — for upsert tables — the partition's
//! primary-key index) plus offline segments pushed from the warehouse.
//! Queries scatter across all live segments with time-range pruning and
//! merge through [`crate::query::PartialAgg`].

use crate::bitmap::Bitmap;
use crate::query::{sort_and_limit, PartialAgg, PartialResult, PredicateOp, Query, QueryResult};
use crate::realtime::MutableSegment;
use crate::segment::{IndexSpec, Segment};
use crate::upsert::PrimaryKeyIndex;
use parking_lot::RwLock;
use rtdi_common::{Error, Result, Row, Schema, Timestamp, Value};
use std::sync::Arc;

/// One scatter unit: a sealed/offline segment plus the upsert valid-doc
/// snapshot it must be filtered by (None when the table has no upserts).
type ScanTask = (Arc<Segment>, Option<Bitmap>);

/// Table configuration.
#[derive(Debug, Clone)]
pub struct TableConfig {
    pub name: String,
    pub schema: Schema,
    pub index_spec: IndexSpec,
    /// Time column for segment pruning and the realtime/offline boundary.
    pub time_column: Option<String>,
    /// Upsert mode: `primary_key` must be set; input must be partitioned
    /// by that key.
    pub upsert: bool,
    pub primary_key: Option<String>,
    /// Rows per realtime segment before sealing.
    pub segment_rows: usize,
    /// Realtime ingestion partitions (must match the input topic).
    pub partitions: usize,
    /// Worker threads for scattering sealed/offline segment scans
    /// (0 = one per available core). Small tables always scan serially.
    pub query_threads: usize,
}

impl TableConfig {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableConfig {
            name: name.into(),
            schema,
            index_spec: IndexSpec::none(),
            time_column: None,
            upsert: false,
            primary_key: None,
            segment_rows: 100_000,
            partitions: 4,
            query_threads: 0,
        }
    }

    pub fn with_query_threads(mut self, n: usize) -> Self {
        self.query_threads = n;
        self
    }

    pub fn with_index_spec(mut self, spec: IndexSpec) -> Self {
        self.index_spec = spec;
        self
    }

    pub fn with_time_column(mut self, col: &str) -> Self {
        self.time_column = Some(col.to_string());
        self
    }

    pub fn with_upsert(mut self, primary_key: &str) -> Self {
        self.upsert = true;
        self.primary_key = Some(primary_key.to_string());
        self
    }

    pub fn with_segment_rows(mut self, n: usize) -> Self {
        self.segment_rows = n.max(1);
        self
    }

    pub fn with_partitions(mut self, n: usize) -> Self {
        self.partitions = n.max(1);
        self
    }
}

struct PartitionState {
    consuming: MutableSegment,
    sealed: Vec<Arc<Segment>>,
    pk_index: PrimaryKeyIndex,
    seg_seq: u64,
    /// sealed segments not yet backed up to the segment store
    unbacked: Vec<String>,
}

/// A queryable hybrid table.
pub struct OlapTable {
    config: TableConfig,
    partitions: Vec<RwLock<PartitionState>>,
    offline: RwLock<Vec<Arc<Segment>>>,
}

impl OlapTable {
    pub fn new(mut config: TableConfig) -> Result<Arc<Self>> {
        if config.upsert {
            if config.primary_key.is_none() {
                return Err(Error::InvalidArgument(
                    "upsert table needs a primary key".into(),
                ));
            }
            // sealing must preserve doc ids for the pk index: no re-sort,
            // and the star-tree fast path is incompatible with valid-doc
            // filtering
            config.index_spec.sorted = None;
            config.index_spec.startree = None;
        }
        let partitions = (0..config.partitions)
            .map(|p| {
                RwLock::new(PartitionState {
                    consuming: MutableSegment::new(
                        format!("{}__rt_{p}_0", config.name),
                        config.schema.clone(),
                    ),
                    sealed: Vec::new(),
                    pk_index: PrimaryKeyIndex::new(),
                    seg_seq: 0,
                    unbacked: Vec::new(),
                })
            })
            .collect();
        Ok(Arc::new(OlapTable {
            config,
            partitions,
            offline: RwLock::new(Vec::new()),
        }))
    }

    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Ingest one row into a realtime partition. For upsert tables the
    /// caller must route rows by primary-key hash so that a key always
    /// lands in the same partition (the ingester does this).
    pub fn ingest(&self, partition: usize, row: Row) -> Result<()> {
        let state = self
            .partitions
            .get(partition)
            .ok_or_else(|| Error::InvalidArgument(format!("partition {partition} out of range")))?;
        let mut st = state.write();
        let doc = st.consuming.append(row.clone())?;
        if self.config.upsert {
            let pk_col = self.config.primary_key.as_deref().expect("validated");
            let key = row
                .get(pk_col)
                .cloned()
                .ok_or_else(|| Error::Schema(format!("upsert row missing key '{pk_col}'")))?;
            let seg_name = st.consuming.name().to_string();
            st.pk_index.upsert(&key, &seg_name, doc);
        }
        if st.consuming.doc_count() >= self.config.segment_rows {
            self.seal_partition(&mut st)?;
        }
        Ok(())
    }

    fn seal_partition(&self, st: &mut PartitionState) -> Result<()> {
        if st.consuming.doc_count() == 0 {
            return Ok(());
        }
        let sealed = Arc::new(st.consuming.seal(&self.config.index_spec)?);
        st.unbacked.push(sealed.name().to_string());
        st.sealed.push(sealed);
        st.seg_seq += 1;
        let name = format!(
            "{}__rt_{}_{}",
            self.config.name,
            partition_of(st),
            st.seg_seq
        );
        st.consuming = MutableSegment::new(name, self.config.schema.clone());
        Ok(())
    }

    /// Force-seal every partition's consuming segment (tests, shutdown).
    pub fn seal_all(&self) -> Result<()> {
        for state in &self.partitions {
            self.seal_partition(&mut state.write())?;
        }
        Ok(())
    }

    /// Segment names sealed but not yet archived; the ingester drains this
    /// into the segment store.
    pub fn take_unbacked(&self) -> Vec<(usize, Arc<Segment>)> {
        let mut out = Vec::new();
        for (p, state) in self.partitions.iter().enumerate() {
            let mut st = state.write();
            let names: Vec<String> = st.unbacked.drain(..).collect();
            for name in names {
                if let Some(seg) = st.sealed.iter().find(|s| s.name() == name) {
                    out.push((p, seg.clone()));
                }
            }
        }
        out
    }

    /// Register an offline segment (pushed from the warehouse via the
    /// Piper-style offline flow of §4.3.3).
    pub fn add_offline_segment(&self, segment: Segment) {
        self.offline.write().push(Arc::new(segment));
    }

    /// Drop a sealed realtime segment from a partition (replica-failure
    /// injection for the recovery experiments). Returns the segment.
    pub fn evict_sealed(&self, partition: usize, name: &str) -> Result<Arc<Segment>> {
        let mut st = self.partitions[partition].write();
        let idx = st
            .sealed
            .iter()
            .position(|s| s.name() == name)
            .ok_or_else(|| Error::NotFound(format!("sealed segment '{name}'")))?;
        Ok(st.sealed.remove(idx))
    }

    /// Re-install a recovered segment.
    pub fn restore_sealed(&self, partition: usize, segment: Arc<Segment>) {
        self.partitions[partition].write().sealed.push(segment);
    }

    /// Names of sealed segments per partition.
    pub fn sealed_segments(&self, partition: usize) -> Vec<String> {
        self.partitions[partition]
            .read()
            .sealed
            .iter()
            .map(|s| s.name().to_string())
            .collect()
    }

    pub fn doc_count(&self) -> usize {
        let rt: usize = self
            .partitions
            .iter()
            .map(|p| {
                let st = p.read();
                st.consuming.doc_count() + st.sealed.iter().map(|s| s.doc_count()).sum::<usize>()
            })
            .sum();
        let off: usize = self.offline.read().iter().map(|s| s.doc_count()).sum();
        rt + off
    }

    pub fn memory_bytes(&self) -> usize {
        let rt: usize = self
            .partitions
            .iter()
            .map(|p| {
                let st = p.read();
                st.consuming.memory_bytes()
                    + st.sealed.iter().map(|s| s.memory_bytes()).sum::<usize>()
                    + st.pk_index.memory_bytes()
            })
            .sum();
        let off: usize = self.offline.read().iter().map(|s| s.memory_bytes()).sum();
        rt + off
    }

    /// Can a segment with time range `[lo, hi]` possibly match the query's
    /// time predicates?
    fn time_overlaps(query: &Query, time_col: &str, lo: Timestamp, hi: Timestamp) -> bool {
        for p in query.predicates.iter() {
            if p.column != time_col {
                continue;
            }
            let Some(v) = p.value.as_int() else { continue };
            let ok = match p.op {
                PredicateOp::Eq => lo <= v && v <= hi,
                PredicateOp::Lt => lo < v,
                PredicateOp::Le => lo <= v,
                PredicateOp::Gt => hi > v,
                PredicateOp::Ge => hi >= v,
                PredicateOp::Ne => true,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    fn prunable(&self, query: &Query, segment: &Segment) -> bool {
        let Some(tc) = &self.config.time_column else {
            return false;
        };
        match segment.int_range(tc) {
            Some((lo, hi)) => !Self::time_overlaps(query, tc, lo, hi),
            None => false,
        }
    }

    /// Sealed + offline segments a query must visit, with their upsert
    /// valid-doc sets snapshotted under brief partition read locks — the
    /// scatter phase then runs lock-free across worker threads. Also
    /// returns how many segments the time statistics pruned.
    fn scan_tasks(&self, query: &Query) -> (Vec<ScanTask>, u64) {
        let mut tasks = Vec::new();
        let mut pruned = 0u64;
        for (p, state) in self.partitions.iter().enumerate() {
            let st = state.read();
            if !query.admits_partition(Some(p)) {
                // partition-pruned scatter: the whole partition is out
                pruned += st.sealed.len() as u64;
                continue;
            }
            for seg in &st.sealed {
                if self.prunable(query, seg) {
                    pruned += 1;
                    continue;
                }
                let valid = if self.config.upsert {
                    st.pk_index.valid_docs(seg.name()).cloned()
                } else {
                    None
                };
                tasks.push((seg.clone(), valid));
            }
        }
        for seg in self.offline.read().iter() {
            if self.prunable(query, seg) {
                pruned += 1;
                continue;
            }
            tasks.push((seg.clone(), None));
        }
        (tasks, pruned)
    }

    /// Worker count for a scatter over `tasks`: tiny tables stay serial —
    /// thread spawn costs more than the scan below ~8k docs.
    fn scatter_threads(&self, tasks: &[ScanTask]) -> usize {
        const SERIAL_DOC_THRESHOLD: usize = 8192;
        let total_docs: usize = tasks.iter().map(|(s, _)| s.doc_count()).sum();
        if tasks.len() <= 1 || total_docs < SERIAL_DOC_THRESHOLD {
            1
        } else {
            self.config.query_threads
        }
    }

    /// Execute an aggregation query and return mergeable per-group
    /// accumulators instead of finalized rows — the unit a federation
    /// layer needs to union this table's slice with offline/archival
    /// segments across the time boundary without breaking AVG or
    /// DISTINCTCOUNT.
    pub fn query_partial(&self, query: &Query) -> Result<PartialResult> {
        let mut out = PartialResult::default();
        let mut merged = PartialAgg::default();
        for (p, state) in self.partitions.iter().enumerate() {
            if !query.admits_partition(Some(p)) {
                continue;
            }
            // consuming segments serve the freshest data and go first, so
            // a blown deadline sheds historical segments before fresh ones
            if let Some(d) = &query.deadline {
                if d.expired() {
                    out.segments_shed += 1;
                    out.deadline_exceeded = true;
                    continue;
                }
            }
            let st = state.read();
            let valid: Option<Bitmap> = if self.config.upsert {
                st.pk_index.valid_docs(st.consuming.name()).cloned()
            } else {
                None
            };
            let part = st.consuming.execute_partial(query, valid.as_ref())?;
            out.segments_queried += 1;
            out.docs_scanned += part.docs_scanned;
            merged.merge(part, query);
        }
        let (tasks, segments_pruned) = self.scan_tasks(query);
        out.segments_pruned = segments_pruned;
        let parts = crate::scatter::scatter(tasks.len(), self.scatter_threads(&tasks), |i| {
            let (seg, valid) = &tasks[i];
            if let Some(d) = &query.deadline {
                d.check(seg.name())?;
            }
            seg.execute_partial(query, valid.as_ref())
        });
        for part in parts {
            match part {
                Ok(part) => {
                    out.segments_queried += 1;
                    out.docs_scanned += part.docs_scanned;
                    merged.merge(part, query);
                }
                Err(Error::DeadlineExceeded(_)) => {
                    out.segments_shed += 1;
                    out.deadline_exceeded = true;
                }
                Err(e) => return Err(e),
            }
        }
        if out.deadline_exceeded && out.segments_queried == 0 {
            return Err(Error::DeadlineExceeded(format!(
                "table '{}': deadline expired before any segment was served",
                self.name()
            )));
        }
        out.partial |= out.deadline_exceeded;
        out.agg = merged;
        Ok(out)
    }

    /// Execute a query across every live segment (scatter-gather-merge).
    /// Consuming (mutable) segments execute serially under their partition
    /// locks; sealed and offline segments scatter across the worker pool.
    pub fn query(&self, query: &Query) -> Result<QueryResult> {
        if query.is_aggregation() {
            return Ok(self.query_partial(query)?.finalize(query));
        }

        let mut segments_queried = 0u64;
        let mut docs_scanned = 0u64;
        let mut segments_shed = 0u64;
        let mut deadline_exceeded = false;
        let used_startree = false;

        // selection: concatenate in task order, then a final sort/limit
        let mut rows = Vec::new();
        for (p, state) in self.partitions.iter().enumerate() {
            if !query.admits_partition(Some(p)) {
                continue;
            }
            if let Some(d) = &query.deadline {
                if d.expired() {
                    segments_shed += 1;
                    deadline_exceeded = true;
                    continue;
                }
            }
            let st = state.read();
            let valid = if self.config.upsert {
                st.pk_index.valid_docs(st.consuming.name()).cloned()
            } else {
                None
            };
            let r = st.consuming.execute(query, valid.as_ref())?;
            segments_queried += 1;
            docs_scanned += r.docs_scanned;
            rows.extend(r.rows);
        }
        let (tasks, segments_pruned) = self.scan_tasks(query);
        let results = crate::scatter::scatter(tasks.len(), self.scatter_threads(&tasks), |i| {
            let (seg, valid) = &tasks[i];
            if let Some(d) = &query.deadline {
                d.check(seg.name())?;
            }
            seg.execute(query, valid.as_ref())
        });
        for r in results {
            match r {
                Ok(r) => {
                    segments_queried += 1;
                    docs_scanned += r.docs_scanned;
                    rows.extend(r.rows);
                }
                Err(Error::DeadlineExceeded(_)) => {
                    segments_shed += 1;
                    deadline_exceeded = true;
                }
                Err(e) => return Err(e),
            }
        }
        if deadline_exceeded && segments_queried == 0 {
            return Err(Error::DeadlineExceeded(format!(
                "table '{}': deadline expired before any segment was served",
                self.name()
            )));
        }
        sort_and_limit(&mut rows, &query.order_by, query.limit);
        Ok(QueryResult {
            rows,
            docs_scanned,
            segments_queried,
            used_startree,
            segments_pruned,
            partial: deadline_exceeded,
            deadline_exceeded,
            segments_shed,
            ..Default::default()
        })
    }

    /// Latest value of a column for a primary key (upsert tables): the
    /// point lookup that serves "correcting a ride fare" reads.
    pub fn lookup(&self, key: &Value, column: &str) -> Option<Value> {
        let partition = (key.partition_hash() % self.config.partitions as u64) as usize;
        let st = self.partitions[partition].read();
        let loc = st.pk_index.location(key)?;
        if loc.segment == st.consuming.name() {
            return st.consuming.row_at(loc.doc_id)?.get(column).cloned();
        }
        let seg = st.sealed.iter().find(|s| s.name() == loc.segment)?;
        Some(seg.value_at(column, loc.doc_id))
    }
}

fn partition_of(st: &PartitionState) -> usize {
    // partition id is embedded in the consuming segment name: ...__rt_<p>_<seq>
    st.consuming
        .name()
        .rsplit("__rt_")
        .next()
        .and_then(|tail| tail.split('_').next())
        .and_then(|p| p.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use rtdi_common::{AggFn, FieldType};

    fn schema() -> Schema {
        Schema::of(
            "trips",
            &[
                ("trip_id", FieldType::Str),
                ("city", FieldType::Str),
                ("fare", FieldType::Double),
                ("ts", FieldType::Timestamp),
            ],
        )
    }

    fn plain_table(segment_rows: usize) -> Arc<OlapTable> {
        OlapTable::new(
            TableConfig::new("trips", schema())
                .with_index_spec(IndexSpec::none().with_inverted(&["city"]))
                .with_time_column("ts")
                .with_segment_rows(segment_rows)
                .with_partitions(2),
        )
        .unwrap()
    }

    fn trip(i: usize) -> Row {
        Row::new()
            .with("trip_id", format!("t{i}"))
            .with("city", ["sf", "la"][i % 2])
            .with("fare", 10.0 + (i % 5) as f64)
            .with("ts", (i as i64) * 1000)
    }

    #[test]
    fn ingest_seal_query_across_segments() {
        let table = plain_table(25);
        for i in 0..100 {
            table.ingest(i % 2, trip(i)).unwrap();
        }
        // 100 rows, 25-per-segment -> sealing happened
        assert!(!table.sealed_segments(0).is_empty());
        assert_eq!(table.doc_count(), 100);
        let q = Query::select_all("trips")
            .aggregate("n", AggFn::Count)
            .aggregate("avg_fare", AggFn::Avg("fare".into()))
            .group(&["city"]);
        let res = table.query(&q).unwrap();
        assert_eq!(res.rows.len(), 2);
        let total: i64 = res.rows.iter().map(|r| r.get_int("n").unwrap()).sum();
        assert_eq!(total, 100);
        assert!(
            res.segments_queried >= 4,
            "queried {}",
            res.segments_queried
        );
    }

    #[test]
    fn time_pruning_skips_disjoint_segments() {
        let table = plain_table(10);
        for i in 0..100 {
            table.ingest(0, trip(i)).unwrap();
        }
        table.seal_all().unwrap();
        // query for a narrow time range: most sealed segments pruned
        let q = Query::select_all("trips")
            .filter(Predicate::new("ts", PredicateOp::Ge, 50_000i64))
            .filter(Predicate::new("ts", PredicateOp::Lt, 60_000i64))
            .aggregate("n", AggFn::Count);
        let res = table.query(&q).unwrap();
        assert_eq!(res.rows[0].get_int("n"), Some(10));
        // 10 segments of 10 rows each (+1 empty consuming + partition 1
        // consuming): only ~1-2 segments overlap the range
        assert!(
            res.segments_queried <= 5,
            "pruning failed: queried {}",
            res.segments_queried
        );
    }

    #[test]
    fn offline_segments_participate() {
        let table = plain_table(1000);
        for i in 0..10 {
            table.ingest(0, trip(i)).unwrap();
        }
        let offline_rows: Vec<Row> = (100..150).map(trip).collect();
        let seg = Segment::build("off-1", &schema(), offline_rows, &IndexSpec::none()).unwrap();
        table.add_offline_segment(seg);
        let q = Query::select_all("trips").aggregate("n", AggFn::Count);
        assert_eq!(table.query(&q).unwrap().rows[0].get_int("n"), Some(60));
    }

    #[test]
    fn selection_merges_and_limits_across_segments() {
        let table = plain_table(20);
        for i in 0..60 {
            table.ingest(i % 2, trip(i)).unwrap();
        }
        let q = Query::select_all("trips")
            .columns(&["trip_id", "ts"])
            .order("ts", crate::query::SortOrder::Desc)
            .limit(5);
        let res = table.query(&q).unwrap();
        assert_eq!(res.rows.len(), 5);
        assert_eq!(res.rows[0].get_int("ts"), Some(59_000));
    }

    fn upsert_table() -> Arc<OlapTable> {
        OlapTable::new(
            TableConfig::new("fares", schema())
                .with_upsert("trip_id")
                .with_segment_rows(10)
                .with_partitions(4),
        )
        .unwrap()
    }

    fn route(table: &OlapTable, row: Row) {
        let key = row.get("trip_id").cloned().unwrap();
        let p = (key.partition_hash() % table.config().partitions as u64) as usize;
        table.ingest(p, row).unwrap();
    }

    #[test]
    fn upsert_returns_latest_version_only() {
        let table = upsert_table();
        for i in 0..50 {
            route(&table, trip(i));
        }
        // correct fares for 10 trips (spanning sealed + consuming segments)
        for i in 0..10 {
            route(
                &table,
                Row::new()
                    .with("trip_id", format!("t{i}"))
                    .with("city", ["sf", "la"][i % 2])
                    .with("fare", 999.0)
                    .with("ts", 1_000_000 + i as i64),
            );
        }
        let q = Query::select_all("fares").aggregate("n", AggFn::Count);
        // count sees exactly 50 live records (no duplicates)
        assert_eq!(table.query(&q).unwrap().rows[0].get_int("n"), Some(50));
        // corrected fare visible via point lookup
        assert_eq!(
            table.lookup(&Value::Str("t3".into()), "fare"),
            Some(Value::Double(999.0))
        );
        // uncorrected trip unchanged
        assert_eq!(
            table.lookup(&Value::Str("t20".into()), "fare"),
            Some(Value::Double(10.0))
        );
        // aggregation reflects the corrections
        let q = Query::select_all("fares")
            .filter(Predicate::eq("trip_id", "t3"))
            .aggregate("f", AggFn::Max("fare".into()));
        assert_eq!(
            table.query(&q).unwrap().rows[0].get_double("f"),
            Some(999.0)
        );
    }

    #[test]
    fn upsert_config_sanitized() {
        let cfg = TableConfig::new("t", schema())
            .with_upsert("trip_id")
            .with_index_spec(IndexSpec::none().with_sorted("ts").with_startree(
                crate::startree::StarTreeSpec::new(&["city"], vec![AggFn::Count]),
            ));
        let table = OlapTable::new(cfg).unwrap();
        assert!(table.config().index_spec.sorted.is_none());
        assert!(table.config().index_spec.startree.is_none());
        // missing primary key rejected
        let mut bad = TableConfig::new("t", schema());
        bad.upsert = true;
        assert!(OlapTable::new(bad).is_err());
    }

    #[test]
    fn evict_and_restore_sealed_segment() {
        let table = plain_table(10);
        for i in 0..20 {
            table.ingest(0, trip(i)).unwrap();
        }
        let names = table.sealed_segments(0);
        assert_eq!(names.len(), 2);
        let q = Query::select_all("trips").aggregate("n", AggFn::Count);
        assert_eq!(table.query(&q).unwrap().rows[0].get_int("n"), Some(20));
        let seg = table.evict_sealed(0, &names[0]).unwrap();
        assert_eq!(table.query(&q).unwrap().rows[0].get_int("n"), Some(10));
        table.restore_sealed(0, seg);
        assert_eq!(table.query(&q).unwrap().rows[0].get_int("n"), Some(20));
        assert!(table.evict_sealed(0, "ghost").is_err());
    }

    #[test]
    fn parallel_table_scatter_matches_serial() {
        // enough docs to clear the serial threshold so workers really run
        let mk = |threads: usize| {
            let table = OlapTable::new(
                TableConfig::new("trips", schema())
                    .with_index_spec(IndexSpec::none().with_inverted(&["city"]))
                    .with_time_column("ts")
                    .with_segment_rows(2000)
                    .with_partitions(2)
                    .with_query_threads(threads),
            )
            .unwrap();
            for i in 0..12_000 {
                table.ingest(i % 2, trip(i)).unwrap();
            }
            table.seal_all().unwrap();
            table
        };
        let serial = mk(1);
        let parallel = mk(3);
        let queries = vec![
            Query::select_all("trips")
                .aggregate("n", AggFn::Count)
                .aggregate("avg_fare", AggFn::Avg("fare".into()))
                .group(&["city"]),
            Query::select_all("trips")
                .columns(&["trip_id", "ts"])
                .filter(Predicate::new("ts", PredicateOp::Ge, 1_000_000i64))
                .order("ts", crate::query::SortOrder::Desc)
                .limit(9),
        ];
        for q in queries {
            let a = serial.query(&q).unwrap();
            let b = parallel.query(&q).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn take_unbacked_drains_once() {
        let table = plain_table(10);
        for i in 0..30 {
            table.ingest(0, trip(i)).unwrap();
        }
        let first = table.take_unbacked();
        assert_eq!(first.len(), 3);
        assert!(table.take_unbacked().is_empty());
    }
}
