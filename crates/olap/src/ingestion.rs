//! Real-time ingestion from the streaming layer.
//!
//! §4.3: "records can be updated during the real-time ingestion into the
//! OLAP store"; §4.3.3: Pinot "integrates with Uber's schema service to
//! automatically infer the schema from the input Kafka topic". The
//! ingester consumes a topic partition-aligned into an [`OlapTable`],
//! reports audit observations to Chaperone and backs up newly sealed
//! segments through the [`SegmentStore`].

use crate::segstore::SegmentStore;
use crate::table::OlapTable;
use rtdi_common::{Clock, Error, PipelineTracer, Result, Row};
use rtdi_stream::chaperone::Chaperone;
use rtdi_stream::topic::Topic;
use std::sync::Arc;

/// Ingestion knobs.
#[derive(Debug, Clone)]
pub struct IngestionConfig {
    /// Records fetched per partition per round.
    pub batch_size: usize,
    /// Name under which ingestion reports to Chaperone.
    pub audit_stage: String,
}

impl Default for IngestionConfig {
    fn default() -> Self {
        IngestionConfig {
            batch_size: 1024,
            audit_stage: "pinot-ingestion".into(),
        }
    }
}

/// Consumes a topic into a table.
pub struct RealtimeIngester {
    topic: Arc<Topic>,
    table: Arc<OlapTable>,
    segstore: Option<Arc<SegmentStore>>,
    chaperone: Option<Chaperone>,
    tracer: Option<PipelineTracer>,
    clock: Option<Arc<dyn Clock>>,
    config: IngestionConfig,
    positions: Vec<u64>,
}

impl RealtimeIngester {
    pub fn new(topic: Arc<Topic>, table: Arc<OlapTable>, config: IngestionConfig) -> Result<Self> {
        if topic.num_partitions() != table.config().partitions {
            return Err(Error::InvalidArgument(format!(
                "topic has {} partitions but table expects {} — upsert \
                 integrity requires alignment",
                topic.num_partitions(),
                table.config().partitions
            )));
        }
        let n = topic.num_partitions();
        Ok(RealtimeIngester {
            topic,
            table,
            segstore: None,
            chaperone: None,
            tracer: None,
            clock: None,
            config,
            positions: vec![0; n],
        })
    }

    pub fn with_segment_store(mut self, ss: Arc<SegmentStore>) -> Self {
        self.segstore = Some(ss);
        self
    }

    pub fn with_chaperone(mut self, ch: Chaperone) -> Self {
        self.chaperone = Some(ch);
        self
    }

    /// Record per-record ingestion freshness under the topic's pipeline:
    /// the `"olap-ingest"` hop plus the end-to-end rollup (record becomes
    /// queryable here).
    pub fn with_tracer(mut self, tracer: PipelineTracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Clock used for dwell measurements; without one, observations fall
    /// back to each record's event time (zero-dwell in simulated setups).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Ingest everything currently available. Returns records ingested.
    pub fn run_once(&mut self) -> Result<u64> {
        let mut total = 0;
        for p in 0..self.topic.num_partitions() {
            loop {
                let fetch = match self
                    .topic
                    .fetch(p, self.positions[p], self.config.batch_size)
                {
                    Ok(f) => f,
                    Err(Error::OffsetOutOfRange { low, .. }) => {
                        self.positions[p] = low;
                        self.topic.fetch(p, low, self.config.batch_size)?
                    }
                    Err(e) => return Err(e),
                };
                if fetch.records.is_empty() {
                    break;
                }
                for rec in fetch.records {
                    let offset = rec.offset;
                    let mut record = rec.into_record();
                    self.positions[p] = offset + 1;
                    let now = self
                        .clock
                        .as_ref()
                        .map(|c| c.now())
                        .unwrap_or(record.timestamp);
                    if let Some(ch) = &self.chaperone {
                        ch.observe_at(&self.config.audit_stage, &record, now);
                    }
                    if let Some(tr) = &self.tracer {
                        let pipeline = self.topic.name();
                        tr.observe_hop(pipeline, "olap-ingest", &mut record, now);
                        // the record is queryable from here on: close out
                        // the end-to-end freshness measurement
                        tr.record_total(pipeline, &record, now);
                    }
                    let ts = record.timestamp;
                    let mut row: Row = record.value;
                    // make event time queryable under the table's time column
                    if let Some(tc) = &self.table.config().time_column {
                        if row.get(tc).is_none() {
                            row.push(tc.clone(), ts);
                        }
                    }
                    self.table.ingest(p, row)?;
                    total += 1;
                }
            }
        }
        // archive newly sealed segments
        if let Some(ss) = &self.segstore {
            for (_, seg) in self.table.take_unbacked() {
                ss.backup(self.table.name(), seg)?;
            }
        }
        Ok(total)
    }

    /// Total lag across partitions.
    pub fn lag(&self) -> u64 {
        (0..self.topic.num_partitions())
            .map(|p| {
                self.topic
                    .partition(p)
                    .map(|l| l.high_watermark().saturating_sub(self.positions[p]))
                    .unwrap_or(0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Predicate, Query};
    use crate::segment::IndexSpec;
    use crate::segstore::SegmentStoreMode;
    use crate::table::TableConfig;
    use rtdi_common::record::headers;
    use rtdi_common::{AggFn, FieldType, Record, Schema, Value};
    use rtdi_storage::object::InMemoryStore;
    use rtdi_stream::topic::TopicConfig;

    fn schema() -> Schema {
        Schema::of(
            "trips",
            &[
                ("trip_id", FieldType::Str),
                ("fare", FieldType::Double),
                ("ts", FieldType::Timestamp),
            ],
        )
    }

    fn topic() -> Arc<Topic> {
        Arc::new(Topic::new("trips", TopicConfig::default().with_partitions(2)).unwrap())
    }

    fn table(upsert: bool) -> Arc<OlapTable> {
        let mut cfg = TableConfig::new("trips", schema())
            .with_time_column("ts")
            .with_segment_rows(10)
            .with_partitions(2);
        if upsert {
            cfg = cfg.with_upsert("trip_id");
        }
        OlapTable::new(cfg).unwrap()
    }

    fn trip(i: usize, fare: f64) -> Record {
        Record::new(
            Row::new()
                .with("trip_id", format!("t{i}"))
                .with("fare", fare)
                .with("ts", i as i64),
            i as i64,
        )
        .with_key(format!("t{i}"))
        .with_header(headers::UNIQUE_ID, format!("m{i}-{fare}"))
    }

    #[test]
    fn ingests_all_partitions_and_tracks_lag() {
        let t = topic();
        for i in 0..50 {
            t.append(trip(i, 10.0), 0).unwrap();
        }
        let mut ing =
            RealtimeIngester::new(t.clone(), table(false), IngestionConfig::default()).unwrap();
        assert_eq!(ing.lag(), 50);
        assert_eq!(ing.run_once().unwrap(), 50);
        assert_eq!(ing.lag(), 0);
        // incremental
        t.append(trip(99, 5.0), 0).unwrap();
        assert_eq!(ing.lag(), 1);
        assert_eq!(ing.run_once().unwrap(), 1);
    }

    #[test]
    fn partition_mismatch_rejected() {
        let t = Arc::new(Topic::new("x", TopicConfig::default().with_partitions(8)).unwrap());
        assert!(RealtimeIngester::new(t, table(false), IngestionConfig::default()).is_err());
    }

    #[test]
    fn upsert_ingestion_dedupes_by_key() {
        let t = topic();
        let tbl = table(true);
        for i in 0..30 {
            t.append(trip(i, 10.0), 0).unwrap();
        }
        // fare corrections for 5 trips
        for i in 0..5 {
            t.append(trip(i, 777.0), 0).unwrap();
        }
        let mut ing = RealtimeIngester::new(t, tbl.clone(), IngestionConfig::default()).unwrap();
        ing.run_once().unwrap();
        let q = Query::select_all("trips").aggregate("n", AggFn::Count);
        assert_eq!(tbl.query(&q).unwrap().rows[0].get_int("n"), Some(30));
        assert_eq!(
            tbl.lookup(&Value::Str("t2".into()), "fare"),
            Some(Value::Double(777.0))
        );
        let q = Query::select_all("trips")
            .filter(Predicate::eq("trip_id", "t2"))
            .aggregate("f", AggFn::Sum("fare".into()));
        assert_eq!(tbl.query(&q).unwrap().rows[0].get_double("f"), Some(777.0));
    }

    #[test]
    fn sealed_segments_backed_up() {
        let t = topic();
        for i in 0..40 {
            t.append(trip(i, 1.0), 0).unwrap();
        }
        let tbl = table(false);
        let ss = Arc::new(SegmentStore::new(
            Arc::new(InMemoryStore::new()),
            SegmentStoreMode::Centralized,
            IndexSpec::none(),
        ));
        let mut ing = RealtimeIngester::new(t, tbl.clone(), IngestionConfig::default())
            .unwrap()
            .with_segment_store(ss.clone());
        ing.run_once().unwrap();
        // 40 rows over 2 partitions, seal threshold 10 -> sealed segments exist
        let mut backed = 0;
        for p in 0..2 {
            for name in tbl.sealed_segments(p) {
                assert!(ss.contains("trips", &name), "{name} not archived");
                backed += 1;
            }
        }
        assert!(backed >= 2);
    }

    #[test]
    fn chaperone_certifies_topic_to_table() {
        let t = topic();
        let ch = Chaperone::new(1_000);
        for i in 0..20 {
            let rec = trip(i, 1.0);
            ch.observe("kafka", &rec);
            t.append(rec, 0).unwrap();
        }
        let mut ing = RealtimeIngester::new(t, table(false), IngestionConfig::default())
            .unwrap()
            .with_chaperone(ch.clone());
        ing.run_once().unwrap();
        assert!(ch.certify("kafka", "pinot-ingestion"));
    }

    #[test]
    fn tracer_measures_ingestion_freshness() {
        use rtdi_common::SimClock;
        let t = topic();
        let tracer = PipelineTracer::default();
        for i in 0..20 {
            let mut rec = trip(i, 1.0);
            PipelineTracer::stamp(&mut rec, 1_000);
            t.append(rec, 1_000).unwrap();
        }
        // records sat 3 seconds between production and ingestion
        let clock = Arc::new(SimClock::new(4_000));
        let mut ing = RealtimeIngester::new(t, table(false), IngestionConfig::default())
            .unwrap()
            .with_tracer(tracer.clone())
            .with_clock(clock);
        ing.run_once().unwrap();
        let report = tracer.report();
        let hop = report.stage("trips", "olap-ingest").unwrap();
        assert_eq!(hop.count, 20);
        assert_eq!(hop.max_ms, 3_000);
        let e2e = report
            .stage("trips", rtdi_common::trace::END_TO_END)
            .unwrap();
        assert_eq!(e2e.count, 20);
        assert_eq!(e2e.max_ms, 3_000);
    }
}
