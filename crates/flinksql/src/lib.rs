//! # rtdi-flinksql
//!
//! FlinkSQL (§4.2.1): "the ability to transform an input Apache Calcite
//! SQL query into an efficient Flink job. The SQL processor compiles the
//! queries to reliable, efficient, distributed Flink applications, and
//! manages the full lifecycle of the application, allowing users to focus
//! solely on their business logic."
//!
//! The compiler reuses the `rtdi-sql` frontend (parser + logical planner)
//! and lowers the logical plan onto `rtdi-compute` operators:
//!
//! - `WHERE`  -> [`rtdi_compute::FilterOp`]
//! - `GROUP BY TUMBLE(ts, size), k1, ...` + aggregates ->
//!   [`rtdi_compute::WindowAggregateOp`]
//! - projections -> [`rtdi_compute::MapOp`]
//! - `HAVING` -> a post-window [`rtdi_compute::FilterOp`]
//!
//! Two build modes implement the §7 SQL-based backfill: the same statement
//! compiles to a *streaming* job over a topic (DataStream) or a *batch*
//! job over the archived Hive table (DataSet) — "the user does not need to
//! maintain 2 distinct jobs."

pub mod compiler;
pub mod sinks;

pub use compiler::{compile_batch, compile_streaming, CompileOptions};
pub use sinks::PinotSink;
