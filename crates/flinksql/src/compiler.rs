//! SQL -> dataflow compilation.

use rtdi_common::{AggFn, Error, Result, Row, Timestamp, Value};
use rtdi_compute::operator::{FilterOp, MapOp, Operator, WindowAggregateOp};
use rtdi_compute::runtime::Job;
use rtdi_compute::sink::Sink;
use rtdi_compute::source::{HiveSource, Source, TopicSource};
use rtdi_compute::window::WindowAssigner;
use rtdi_sql::ast::{AggName, Expr};
use rtdi_sql::expr::{eval, truthy};
use rtdi_sql::parser::parse_select;
use rtdi_sql::plan::{plan_select, AggItem, Plan};
use rtdi_storage::hive::HiveTable;
use rtdi_stream::topic::Topic;
use std::sync::Arc;

/// Compilation knobs.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Watermark bound for the generated job.
    pub max_out_of_orderness: i64,
    /// Allowed lateness of windows.
    pub allowed_lateness: i64,
    /// Bounded streaming source (read-to-current-end) vs unbounded.
    pub bounded: bool,
    /// Operator chaining: fuse adjacent stateless operators (WHERE
    /// filters, projections, window aliases) into single stages so the
    /// staged runtime spends no channel hop between them — Flink chains
    /// eligible SQL operators the same way. Window aggregations keep
    /// their own stage.
    pub chain_operators: bool,
    /// Parallelism of keyed (window-aggregate) stages; the staged runtime
    /// expands them into router + N shards + merge. Settable per query
    /// with a leading `/*+ PARALLELISM(n) */` hint.
    pub parallelism: usize,
    /// When set, keys hotter than this observed count are salted across
    /// all shards with two-phase (partial + combine) aggregation.
    /// Settable per query with `/*+ SALT_HOT_KEYS(threshold) */`.
    pub hot_key_threshold: Option<u64>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            max_out_of_orderness: 1_000,
            allowed_lateness: 0,
            bounded: true,
            chain_operators: true,
            parallelism: 1,
            hot_key_threshold: None,
        }
    }
}

/// Parse an optional leading `/*+ HINT(arg), HINT(arg) */` block — the
/// FlinkSQL-style per-query override syntax — returning the SQL with the
/// block stripped and the options it overrides. Supported hints:
/// `PARALLELISM(n)` and `SALT_HOT_KEYS(threshold)`.
fn apply_hints(sql: &str, options: &CompileOptions) -> Result<(String, CompileOptions)> {
    let mut opts = options.clone();
    let trimmed = sql.trim_start();
    let Some(rest) = trimmed.strip_prefix("/*+") else {
        return Ok((sql.to_string(), opts));
    };
    let Some(end) = rest.find("*/") else {
        return Err(Error::Sql("unterminated /*+ ... */ hint block".into()));
    };
    for hint in rest[..end].split(',') {
        let hint = hint.trim();
        if hint.is_empty() {
            continue;
        }
        let (name, arg) = hint
            .split_once('(')
            .and_then(|(n, a)| a.strip_suffix(')').map(|a| (n.trim(), a.trim())))
            .ok_or_else(|| Error::Sql(format!("malformed hint '{hint}', expected NAME(arg)")))?;
        if name.eq_ignore_ascii_case("PARALLELISM") {
            opts.parallelism = arg
                .parse::<usize>()
                .ok()
                .filter(|p| *p > 0)
                .ok_or_else(|| {
                    Error::Sql(format!("PARALLELISM takes a positive integer, got '{arg}'"))
                })?;
        } else if name.eq_ignore_ascii_case("SALT_HOT_KEYS") {
            let t = arg.parse::<u64>().ok().filter(|t| *t > 0).ok_or_else(|| {
                Error::Sql(format!("SALT_HOT_KEYS takes a positive count, got '{arg}'"))
            })?;
            opts.hot_key_threshold = Some(t);
        } else {
            return Err(Error::Sql(format!("unknown query hint '{name}'")));
        }
    }
    Ok((rest[end + 2..].to_string(), opts))
}

/// Compile a SQL statement into a streaming job over a topic
/// ("DataStream mode").
pub fn compile_streaming(
    name: &str,
    sql: &str,
    topic: Arc<Topic>,
    sink: Box<dyn Sink>,
    options: &CompileOptions,
) -> Result<Job> {
    let source: Box<dyn Source> = if options.bounded {
        Box::new(TopicSource::bounded(topic)?)
    } else {
        Box::new(TopicSource::unbounded(topic))
    };
    compile(name, sql, source, sink, options)
}

/// Compile the same SQL into a batch job over the archive
/// ("DataSet mode", the §7 SQL-based backfill). `from`/`to` bound the
/// replayed event-time range.
pub fn compile_batch(
    name: &str,
    sql: &str,
    table: &HiveTable,
    from: Timestamp,
    to: Timestamp,
    sink: Box<dyn Sink>,
    options: &CompileOptions,
) -> Result<Job> {
    let source = HiveSource::new(table, from, to, 4096)?;
    // archived data is out of order: widen the buffer (§7)
    let mut options = options.clone();
    options.max_out_of_orderness = options.max_out_of_orderness.max(60_000);
    compile(name, sql, Box::new(source), sink, &options)
}

fn compile(
    name: &str,
    sql: &str,
    source: Box<dyn Source>,
    sink: Box<dyn Sink>,
    options: &CompileOptions,
) -> Result<Job> {
    let (sql, options) = apply_hints(sql, options)?;
    let options = &options;
    let stmt = parse_select(&sql)?;
    let plan = plan_select(&stmt)?;
    let mut operators: Vec<Box<dyn Operator>> = Vec::new();
    lower(&plan, &mut operators, options)?;
    if operators.is_empty() {
        // pure `SELECT * FROM t`: identity map keeps the job non-trivial
        operators.push(Box::new(MapOp::new("identity", |r: &Row| r.clone())));
    }
    if options.chain_operators {
        operators = rtdi_compute::operator::fuse_stateless(operators);
    }
    Ok(Job::new(name, source, operators, sink).with_out_of_orderness(options.max_out_of_orderness))
}

/// Lower a logical plan into an operator chain (post-order: sources first).
fn lower(plan: &Plan, out: &mut Vec<Box<dyn Operator>>, options: &CompileOptions) -> Result<()> {
    match plan {
        Plan::Scan { .. } => Ok(()), // the source is provided externally
        Plan::Filter { input, predicate } => {
            lower(input, out, options)?;
            let pred = predicate.clone();
            out.push(Box::new(FilterOp::new("where", move |row: &Row| {
                eval(&pred, row).map(|v| truthy(&v)).unwrap_or(false)
            })));
            Ok(())
        }
        Plan::Project { input, items } => {
            lower(input, out, options)?;
            let items = items.clone();
            out.push(Box::new(MapOp::new("project", move |row: &Row| {
                let mut projected = Row::with_capacity(items.len());
                for (name, expr) in &items {
                    projected.push(name.clone(), eval(expr, row).unwrap_or(Value::Null));
                }
                projected
            })));
            Ok(())
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            lower(input, out, options)?;
            // locate the TUMBLE group expression
            let mut window: Option<(String, i64)> = None; // (output name, size)
            let mut key_cols: Vec<String> = Vec::new();
            for (name, expr) in group_by {
                match expr {
                    Expr::Function { name: f, args } if f.eq_ignore_ascii_case("TUMBLE") => {
                        if window.is_some() {
                            return Err(Error::Sql("multiple TUMBLE windows".into()));
                        }
                        if args.len() != 2 {
                            return Err(Error::Sql("TUMBLE(ts, size_ms) takes 2 args".into()));
                        }
                        let size = match &args[1] {
                            Expr::Literal(v) => v.as_int().filter(|s| *s > 0).ok_or_else(|| {
                                Error::Sql("TUMBLE size must be a positive literal".into())
                            })?,
                            _ => return Err(Error::Sql("TUMBLE size must be a literal".into())),
                        };
                        window = Some((name.clone(), size));
                    }
                    Expr::Column { name: col, .. } => key_cols.push(col.clone()),
                    other => {
                        return Err(Error::Sql(format!(
                            "unsupported group expression in streaming SQL: {other:?}"
                        )))
                    }
                }
            }
            let (win_name, size) = window.ok_or_else(|| {
                Error::Sql(
                    "streaming GROUP BY requires a TUMBLE(ts, size) window \
                     (unbounded grouping has no emission point)"
                        .into(),
                )
            })?;
            let agg_fns = aggs
                .iter()
                .map(agg_to_fn)
                .collect::<Result<Vec<(String, AggFn)>>>()?;
            let mut agg_op = WindowAggregateOp::new(
                "window-agg",
                key_cols,
                WindowAssigner::tumbling(size),
                agg_fns,
                options.allowed_lateness,
            );
            if options.parallelism > 1 {
                agg_op = agg_op.with_parallelism(options.parallelism);
            }
            if let Some(t) = options.hot_key_threshold {
                agg_op = agg_op.with_hot_key_salting(t);
            }
            out.push(Box::new(agg_op));
            // expose the window under the group output name
            if win_name != "window_start" {
                out.push(Box::new(MapOp::new("window-alias", move |row: &Row| {
                    let mut renamed = row.clone();
                    if let Some(ws) = row.get("window_start").cloned() {
                        renamed.set(&win_name, ws);
                    }
                    renamed
                })));
            }
            Ok(())
        }
        Plan::Join { .. } => Err(Error::Sql(
            "stream-stream joins are expressed via the low-level API \
             (WindowJoinOp), not FlinkSQL"
                .into(),
        )),
        Plan::Sort { .. } | Plan::Limit { .. } => Err(Error::Sql(
            "ORDER BY / LIMIT are not defined on unbounded streams".into(),
        )),
    }
}

fn agg_to_fn(item: &AggItem) -> Result<(String, AggFn)> {
    let col = match &item.arg {
        None => None,
        Some(Expr::Column { name, .. }) => Some(name.clone()),
        Some(other) => {
            return Err(Error::Sql(format!(
                "aggregate argument must be a column in streaming SQL, got {other:?}"
            )))
        }
    };
    let f = match (item.func, item.distinct, col) {
        (AggName::Count, false, _) => AggFn::Count,
        (AggName::Count, true, Some(c)) => AggFn::DistinctCount(c),
        (AggName::Sum, _, Some(c)) => AggFn::Sum(c),
        (AggName::Avg, _, Some(c)) => AggFn::Avg(c),
        (AggName::Min, _, Some(c)) => AggFn::Min(c),
        (AggName::Max, _, Some(c)) => AggFn::Max(c),
        (f, d, c) => {
            return Err(Error::Sql(format!(
                "unsupported aggregate {f:?} (distinct={d}, col={c:?})"
            )))
        }
    };
    Ok((item.name.clone(), f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::Record;
    use rtdi_compute::runtime::{Executor, ExecutorConfig};
    use rtdi_compute::sink::CollectSink;
    use rtdi_storage::hive::HiveCatalog;
    use rtdi_storage::object::InMemoryStore;
    use rtdi_stream::topic::TopicConfig;

    fn trips_topic(n: usize) -> Arc<Topic> {
        let t = Arc::new(Topic::new("trips", TopicConfig::default().with_partitions(2)).unwrap());
        for i in 0..n {
            t.append(
                Record::new(
                    Row::new()
                        .with("city", ["sf", "la"][i % 2])
                        .with("fare", 10.0 + (i % 5) as f64)
                        .with("ts", (i as i64) * 100),
                    (i as i64) * 100,
                )
                .with_key(format!("k{i}")),
                0,
            )
            .unwrap();
        }
        t
    }

    fn run(job: &mut Job) {
        Executor::new(ExecutorConfig::default()).run(job).unwrap();
    }

    #[test]
    fn windowed_aggregation_sql_compiles_and_runs() {
        let topic = trips_topic(100);
        let sink = CollectSink::new();
        let mut job = compile_streaming(
            "surge-sql",
            "SELECT city, TUMBLE(ts, 1000) AS w, COUNT(*) AS trips, AVG(fare) AS avg_fare \
             FROM trips GROUP BY city, TUMBLE(ts, 1000)",
            topic,
            Box::new(sink.clone()),
            &CompileOptions::default(),
        )
        .unwrap();
        run(&mut job);
        let rows = sink.rows();
        // 100 records at 100ms = 10s -> 10 windows x 2 cities
        assert_eq!(rows.len(), 20);
        let total: i64 = rows.iter().map(|r| r.get_int("trips").unwrap()).sum();
        assert_eq!(total, 100);
        // projection produced exactly the requested columns
        let names: Vec<&str> = rows[0].column_names().collect();
        assert_eq!(names, vec!["city", "w", "trips", "avg_fare"]);
        // window alias carries the window start
        assert!(rows.iter().any(|r| r.get_int("w") == Some(0)));
    }

    #[test]
    fn where_filter_applies_before_windowing() {
        let topic = trips_topic(100);
        let sink = CollectSink::new();
        let mut job = compile_streaming(
            "filtered",
            "SELECT TUMBLE(ts, 10000) AS w, COUNT(*) AS n FROM trips \
             WHERE city = 'sf' GROUP BY TUMBLE(ts, 10000)",
            topic,
            Box::new(sink.clone()),
            &CompileOptions::default(),
        )
        .unwrap();
        run(&mut job);
        let total: i64 = sink.rows().iter().map(|r| r.get_int("n").unwrap()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn stateless_projection_sql() {
        let topic = trips_topic(10);
        let sink = CollectSink::new();
        let mut job = compile_streaming(
            "proj",
            "SELECT city, fare * 2 AS double_fare FROM trips WHERE fare >= 12",
            topic,
            Box::new(sink.clone()),
            &CompileOptions::default(),
        )
        .unwrap();
        run(&mut job);
        let rows = sink.rows();
        assert!(!rows.is_empty());
        assert!(rows
            .iter()
            .all(|r| r.get_double("double_fare").unwrap() >= 24.0));
    }

    #[test]
    fn having_becomes_post_window_filter() {
        let topic = trips_topic(100);
        let sink = CollectSink::new();
        let mut job = compile_streaming(
            "having",
            "SELECT city, TUMBLE(ts, 1000) AS w, COUNT(*) AS n FROM trips \
             GROUP BY city, TUMBLE(ts, 1000) HAVING COUNT(*) > 4",
            topic,
            Box::new(sink.clone()),
            &CompileOptions::default(),
        )
        .unwrap();
        run(&mut job);
        // each (city, window) holds 5 records -> all pass > 4; sanity only
        assert!(sink.rows().iter().all(|r| r.get_int("n").unwrap() > 4));
        assert_eq!(sink.rows().len(), 20);
    }

    #[test]
    fn parallelism_hint_shards_the_aggregate_with_identical_output() {
        use rtdi_compute::runtime::{run_staged_with, StagedConfig};
        const SQL: &str = "SELECT city, TUMBLE(ts, 1000) AS w, COUNT(*) AS trips, \
             AVG(fare) AS avg_fare FROM trips GROUP BY city, TUMBLE(ts, 1000)";

        let serial_sink = CollectSink::new();
        let job = compile_streaming(
            "serial",
            SQL,
            trips_topic(400),
            Box::new(serial_sink.clone()),
            &CompileOptions::default(),
        )
        .unwrap();
        run_staged_with(job, &StagedConfig::batched(16, 32)).unwrap();

        // the hint block widens the aggregate and salts hot keys, with
        // byte-identical results
        let hinted = format!("/*+ PARALLELISM(4), SALT_HOT_KEYS(64) */ {SQL}");
        let sink = CollectSink::new();
        let job = compile_streaming(
            "hinted",
            &hinted,
            trips_topic(400),
            Box::new(sink.clone()),
            &CompileOptions::default(),
        )
        .unwrap();
        let stats = run_staged_with(job, &StagedConfig::batched(16, 32)).unwrap();
        assert!(
            stats.stages.iter().any(|s| s.stage == "window-agg[x4]"),
            "sharded stage missing: {:?}",
            stats.stages.iter().map(|s| &s.stage).collect::<Vec<_>>()
        );
        assert!(
            stats.stages.iter().any(|s| s.stage.contains("combine")),
            "salting adds a combine stage"
        );
        assert_eq!(sink.records(), serial_sink.records());
    }

    #[test]
    fn malformed_hints_are_rejected() {
        let topic = trips_topic(1);
        let opts = CompileOptions::default();
        let mk = |sql: &str| {
            compile_streaming("x", sql, topic.clone(), Box::new(CollectSink::new()), &opts)
        };
        let base = "SELECT city FROM trips";
        assert!(mk(&format!("/*+ PARALLELISM(0) */ {base}")).is_err());
        assert!(mk(&format!("/*+ PARALLELISM(abc) */ {base}")).is_err());
        assert!(mk(&format!("/*+ SALT_HOT_KEYS(0) */ {base}")).is_err());
        assert!(mk(&format!("/*+ UNKNOWN_HINT(3) */ {base}")).is_err());
        assert!(
            mk(&format!("/*+ PARALLELISM(2) {base}")).is_err(),
            "unterminated"
        );
        // a well-formed hint on a stateless query is harmless
        assert!(mk(&format!("/*+ PARALLELISM(2) */ {base}")).is_ok());
    }

    #[test]
    fn unsupported_features_rejected_with_clear_errors() {
        let topic = trips_topic(1);
        let opts = CompileOptions::default();
        let mk = |sql: &str| {
            compile_streaming("x", sql, topic.clone(), Box::new(CollectSink::new()), &opts)
        };
        // unbounded group by
        assert!(mk("SELECT city, COUNT(*) FROM trips GROUP BY city").is_err());
        // order by / limit
        assert!(mk("SELECT city FROM trips ORDER BY city").is_err());
        assert!(mk("SELECT city FROM trips LIMIT 5").is_err());
        // join
        assert!(mk("SELECT a.city FROM trips a JOIN trips b ON a.ts = b.ts").is_err());
        // non-literal window size
        assert!(mk("SELECT COUNT(*) FROM trips GROUP BY TUMBLE(ts, fare)").is_err());
        // two windows
        assert!(mk("SELECT COUNT(*) FROM trips GROUP BY TUMBLE(ts, 10), TUMBLE(ts, 20)").is_err());
    }

    #[test]
    fn batch_mode_matches_streaming_mode() {
        // §7: "execute the same SQL query on both real-time (Kafka) and
        // offline datasets (Hive)"
        let sql = "SELECT city, TUMBLE(ts, 1000) AS w, SUM(fare) AS revenue \
                   FROM trips GROUP BY city, TUMBLE(ts, 1000)";
        // streaming run
        let topic = trips_topic(100);
        let stream_sink = CollectSink::new();
        let mut sjob = compile_streaming(
            "s",
            sql,
            topic,
            Box::new(stream_sink.clone()),
            &CompileOptions::default(),
        )
        .unwrap();
        run(&mut sjob);

        // archive the same data, then batch run
        let store = Arc::new(InMemoryStore::new());
        let catalog = HiveCatalog::new(store);
        let schema = rtdi_common::Schema::of(
            "trips",
            &[
                ("city", rtdi_common::FieldType::Str),
                ("fare", rtdi_common::FieldType::Double),
                ("ts", rtdi_common::FieldType::Timestamp),
                ("__ts", rtdi_common::FieldType::Timestamp),
            ],
        );
        let table = catalog.create_table("trips", schema).unwrap();
        let rows: Vec<Row> = (0..100)
            .map(|i| {
                Row::new()
                    .with("city", ["sf", "la"][i % 2])
                    .with("fare", 10.0 + (i % 5) as f64)
                    .with("ts", (i as i64) * 100)
                    .with("__ts", (i as i64) * 100)
            })
            .collect();
        catalog.write_rows("trips", "d000000", &rows).unwrap();
        let batch_sink = CollectSink::new();
        let mut bjob = compile_batch(
            "b",
            sql,
            &table,
            0,
            i64::MAX,
            Box::new(batch_sink.clone()),
            &CompileOptions::default(),
        )
        .unwrap();
        run(&mut bjob);

        let canon = |mut rows: Vec<Row>| {
            rows.sort_by_key(|r| {
                (
                    r.get_str("city").unwrap().to_string(),
                    r.get_int("w").unwrap(),
                )
            });
            rows.into_iter()
                .map(|r| {
                    (
                        r.get_str("city").unwrap().to_string(),
                        r.get_int("w").unwrap(),
                        r.get_double("revenue").unwrap(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(canon(stream_sink.rows()), canon(batch_sink.rows()));
    }
}
