//! FlinkSQL sinks into the OLAP layer.
//!
//! §4.3.3: "Pinot also integrates with FlinkSQL as a data sink, so
//! customers can simply build a SQL transformation query and the output
//! messages can be 'pushed' to Pinot."

use rtdi_common::{Record, Result, Value};
use rtdi_compute::sink::Sink;
use rtdi_olap::table::OlapTable;
use std::sync::Arc;

/// Writes job output rows into an OLAP table, routing by the record key
/// (upsert tables require key routing; unkeyed records round-robin).
pub struct PinotSink {
    table: Arc<OlapTable>,
    round_robin: usize,
}

impl PinotSink {
    pub fn new(table: Arc<OlapTable>) -> Self {
        PinotSink {
            table,
            round_robin: 0,
        }
    }

    fn partition_for(&mut self, key: &Option<Value>) -> usize {
        let n = self.table.config().partitions;
        match key {
            Some(k) => (k.partition_hash() % n as u64) as usize,
            None => {
                self.round_robin = (self.round_robin + 1) % n;
                self.round_robin
            }
        }
    }
}

impl Sink for PinotSink {
    fn write(&mut self, record: Record) -> Result<()> {
        let p = self.partition_for(&record.key);
        let mut row = record.value;
        if let Some(tc) = &self.table.config().time_column {
            if row.get(tc).is_none() {
                row.push(tc.clone(), record.timestamp);
            }
        }
        self.table.ingest(p, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile_streaming, CompileOptions};
    use rtdi_common::{AggFn, FieldType, Row, Schema};
    use rtdi_compute::runtime::{Executor, ExecutorConfig};
    use rtdi_olap::query::Query;
    use rtdi_olap::table::TableConfig;
    use rtdi_stream::topic::{Topic, TopicConfig};

    #[test]
    fn sql_to_pinot_pipeline_end_to_end() {
        // the §4.3.3 flow: Kafka topic -> FlinkSQL pre-aggregation -> Pinot
        let topic =
            Arc::new(Topic::new("orders", TopicConfig::default().with_partitions(2)).unwrap());
        for i in 0..200usize {
            topic
                .append(
                    Record::new(
                        Row::new()
                            .with("restaurant", format!("r{}", i % 4))
                            .with("total", 10.0 + (i % 10) as f64)
                            .with("ts", (i as i64) * 50),
                        (i as i64) * 50,
                    )
                    .with_key(format!("r{}", i % 4)),
                    0,
                )
                .unwrap();
        }
        let schema = Schema::of(
            "order_stats",
            &[
                ("restaurant", FieldType::Str),
                ("w", FieldType::Timestamp),
                ("orders", FieldType::Int),
                ("revenue", FieldType::Double),
                ("ingest_ts", FieldType::Timestamp),
            ],
        );
        let table = OlapTable::new(
            TableConfig::new("order_stats", schema)
                .with_time_column("ingest_ts")
                .with_partitions(4)
                .with_segment_rows(16),
        )
        .unwrap();
        let mut job = compile_streaming(
            "orders-to-pinot",
            "SELECT restaurant, TUMBLE(ts, 1000) AS w, COUNT(*) AS orders, SUM(total) AS revenue \
             FROM orders GROUP BY restaurant, TUMBLE(ts, 1000)",
            topic,
            Box::new(PinotSink::new(table.clone())),
            &CompileOptions::default(),
        )
        .unwrap();
        Executor::new(ExecutorConfig::default())
            .run(&mut job)
            .unwrap();

        // 200 records at 50ms = 10s -> 10 windows x 4 restaurants = 40 rows
        let q = Query::select_all("order_stats").aggregate("n", AggFn::Count);
        assert_eq!(table.query(&q).unwrap().rows[0].get_int("n"), Some(40));
        let q =
            Query::select_all("order_stats").aggregate("total_orders", AggFn::Sum("orders".into()));
        assert_eq!(
            table.query(&q).unwrap().rows[0].get_double("total_orders"),
            Some(200.0)
        );
    }

    #[test]
    fn unkeyed_rows_round_robin_across_partitions() {
        let schema = Schema::of("t", &[("x", FieldType::Int)]);
        let table = OlapTable::new(
            TableConfig::new("t", schema)
                .with_partitions(3)
                .with_segment_rows(1000),
        )
        .unwrap();
        let mut sink = PinotSink::new(table.clone());
        for i in 0..9 {
            sink.write(Record::new(Row::new().with("x", i as i64), 0))
                .unwrap();
        }
        assert_eq!(table.doc_count(), 9);
    }
}
