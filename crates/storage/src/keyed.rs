//! Key-group framed operator state — the rescale unit of keyed compute.
//!
//! Flink partitions every keyed operator's state into a fixed number of
//! *key groups* (far more groups than instances) and assigns contiguous
//! group ranges to parallel instances; rescaling then moves whole groups
//! between instances without rehashing a single key. This module is our
//! version of that contract:
//!
//! - [`KEY_GROUPS`] is the fixed group space (128), [`key_group_of`] maps
//!   a key hash to its group, and [`shard_of_group`] maps a group to the
//!   owning instance at a given parallelism;
//! - [`KeyedSnapshot`] is the checkpoint envelope a keyed operator writes:
//!   its watermark and drop counter plus one opaque frame of state bytes
//!   per non-empty key group.
//!
//! The envelope is **parallelism-independent**: every shard of a stage
//! snapshots the frames it owns, the runtime merges them into one stage
//! snapshot ordered by group id, and on restore each (possibly different
//! number of) shard decodes the envelope and keeps only the groups
//! [`shard_of_group`] assigns to it. Duplicate group ids are legal — a
//! salted hot key leaves partial state for the same group in several
//! shards — and are resolved by the operator's restore-side fold.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rtdi_common::{Error, Result, Timestamp};

/// Fixed key-group space. Must never change once checkpoints exist: a
/// group id is persisted state.
pub const KEY_GROUPS: u32 = 128;

/// The key group a key hash belongs to (stable across parallelism).
pub fn key_group_of(hash: u64) -> u32 {
    (hash % u64::from(KEY_GROUPS)) as u32
}

/// The instance owning `group` at `parallelism` — contiguous ranges, the
/// same formula Flink uses, so rescaling moves group ranges wholesale.
pub fn shard_of_group(group: u32, parallelism: usize) -> usize {
    let p = parallelism.max(1).min(KEY_GROUPS as usize);
    (group as usize * p) / KEY_GROUPS as usize
}

/// Checkpoint envelope of one keyed-operator instance: watermark, drop
/// counter, and one opaque frame per non-empty key group.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeyedSnapshot {
    /// The instance's current watermark.
    pub watermark: Timestamp,
    /// Records dropped as too late (stage-wide counter on restore).
    pub dropped: u64,
    /// `(group id, state bytes)` pairs. Sorted by group id in a merged
    /// stage snapshot; duplicates allowed (salted hot-key state).
    pub frames: Vec<(u32, Bytes)>,
}

const MAGIC: u32 = 0x4b47_5230; // "KGR0"

impl KeyedSnapshot {
    /// Serialize the envelope.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(
            24 + self.frames.iter().map(|(_, b)| 8 + b.len()).sum::<usize>(),
        );
        buf.put_u32(MAGIC);
        buf.put_i64(self.watermark);
        buf.put_u64(self.dropped);
        buf.put_u32(self.frames.len() as u32);
        for (group, bytes) in &self.frames {
            buf.put_u32(*group);
            buf.put_u32(bytes.len() as u32);
            buf.put_slice(bytes);
        }
        buf.freeze()
    }

    /// Decode an envelope, rejecting truncated or foreign bytes.
    pub fn decode(mut data: Bytes) -> Result<Self> {
        if data.remaining() < 24 {
            return Err(Error::Corruption("keyed snapshot too short".into()));
        }
        if data.get_u32() != MAGIC {
            return Err(Error::Corruption("keyed snapshot bad magic".into()));
        }
        let watermark = data.get_i64();
        let dropped = data.get_u64();
        let n = data.get_u32() as usize;
        let mut frames = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            if data.remaining() < 8 {
                return Err(Error::Corruption(
                    "keyed snapshot truncated frame header".into(),
                ));
            }
            let group = data.get_u32();
            if group >= KEY_GROUPS {
                return Err(Error::Corruption(format!(
                    "keyed snapshot group {group} out of range"
                )));
            }
            let len = data.get_u32() as usize;
            if data.remaining() < len {
                return Err(Error::Corruption(
                    "keyed snapshot truncated frame body".into(),
                ));
            }
            frames.push((group, data.split_to(len)));
        }
        Ok(KeyedSnapshot {
            watermark,
            dropped,
            frames,
        })
    }

    /// Merge per-shard envelopes into one stage envelope: watermark is the
    /// max (all shards saw the same barrier-aligned watermark; MIN-valued
    /// idle shards must not drag it down), drop counters sum, and frames
    /// are concatenated then stably sorted by group id — shard order is
    /// the tiebreak, so the merge itself is deterministic.
    pub fn merge(parts: impl IntoIterator<Item = KeyedSnapshot>) -> KeyedSnapshot {
        let mut out = KeyedSnapshot {
            watermark: Timestamp::MIN,
            dropped: 0,
            frames: Vec::new(),
        };
        for part in parts {
            out.watermark = out.watermark.max(part.watermark);
            out.dropped += part.dropped;
            out.frames.extend(part.frames);
        }
        out.frames.sort_by_key(|(group, _)| *group);
        out
    }

    /// The frames owned by instance `index` of `parallelism`.
    pub fn frames_for(
        &self,
        index: usize,
        parallelism: usize,
    ) -> impl Iterator<Item = &(u32, Bytes)> {
        self.frames
            .iter()
            .filter(move |(group, _)| shard_of_group(*group, parallelism) == index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_group_owned_by_exactly_one_shard() {
        for p in [1usize, 2, 3, 4, 5, 7, 8, 16, 128] {
            let mut per_shard = vec![0u32; p];
            let mut prev = 0usize;
            for g in 0..KEY_GROUPS {
                let s = shard_of_group(g, p);
                assert!(s < p, "shard {s} out of range at parallelism {p}");
                assert!(s >= prev, "group ranges must be contiguous and ordered");
                prev = s;
                per_shard[s] += 1;
            }
            assert!(
                per_shard.iter().all(|&c| c > 0),
                "parallelism {p}: some shard owns no groups"
            );
            let (min, max) = (
                per_shard.iter().min().unwrap(),
                per_shard.iter().max().unwrap(),
            );
            assert!(max - min <= 1, "parallelism {p}: groups must balance");
        }
    }

    #[test]
    fn group_assignment_is_parallelism_independent() {
        // A key's group never changes; only the group->shard map does.
        for hash in [0u64, 1, 127, 128, 0xDEAD_BEEF, u64::MAX] {
            let g = key_group_of(hash);
            assert!(g < KEY_GROUPS);
            assert_eq!(g, key_group_of(hash));
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let snap = KeyedSnapshot {
            watermark: 123_456,
            dropped: 7,
            frames: vec![
                (3, Bytes::from_static(b"alpha")),
                (90, Bytes::from_static(b"")),
                (127, Bytes::from_static(b"omega")),
            ],
        };
        let decoded = KeyedSnapshot::decode(snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(KeyedSnapshot::decode(Bytes::from_static(b"short")).is_err());
        assert!(KeyedSnapshot::decode(Bytes::from_static(&[0xFF; 32])).is_err());
        let good = KeyedSnapshot {
            watermark: 1,
            dropped: 0,
            frames: vec![(5, Bytes::from_static(b"state"))],
        }
        .encode();
        for cut in 1..good.len() {
            // Any prefix must error, never panic.
            let _ = KeyedSnapshot::decode(good.slice(0..cut));
        }
    }

    #[test]
    fn merge_sorts_by_group_and_sums_drops() {
        let a = KeyedSnapshot {
            watermark: 500,
            dropped: 2,
            frames: vec![
                (7, Bytes::from_static(b"a7")),
                (1, Bytes::from_static(b"a1")),
            ],
        };
        let b = KeyedSnapshot {
            watermark: 500,
            dropped: 3,
            frames: vec![
                (7, Bytes::from_static(b"b7")),
                (0, Bytes::from_static(b"b0")),
            ],
        };
        let merged = KeyedSnapshot::merge([a, b]);
        assert_eq!(merged.watermark, 500);
        assert_eq!(merged.dropped, 5);
        let groups: Vec<u32> = merged.frames.iter().map(|(g, _)| *g).collect();
        assert_eq!(groups, vec![0, 1, 7, 7], "sorted, duplicates preserved");
        // Stable: shard a's frame for group 7 precedes shard b's.
        assert_eq!(&merged.frames[2].1[..], b"a7");
        assert_eq!(&merged.frames[3].1[..], b"b7");
    }

    #[test]
    fn rescale_redistributes_every_frame_exactly_once() {
        // Snapshot taken at parallelism 2, restored at parallelism 3:
        // every frame lands in exactly one new shard.
        let stage = KeyedSnapshot {
            watermark: 9,
            dropped: 0,
            frames: (0..KEY_GROUPS)
                .map(|g| (g, Bytes::from(g.to_le_bytes().to_vec())))
                .collect(),
        };
        for new_p in [1usize, 2, 3, 4, 8] {
            let mut seen = 0usize;
            for shard in 0..new_p {
                seen += stage.frames_for(shard, new_p).count();
            }
            assert_eq!(seen, KEY_GROUPS as usize, "rescale to {new_p} lost frames");
        }
    }
}
