//! Date-partitioned warehouse tables — the "Hive" stand-in.
//!
//! §4.4: compacted datasets "constitute the source of truth for all
//! analytical data. This is used to backfill data in Kafka, Pinot and even
//! some OLTP or key-value store data sinks." The Kappa+ backfill (§7)
//! reads these tables through [`HiveTable::scan_range`], and the SQL
//! layer's Hive connector scans them for federated queries.

use crate::colfile;
use crate::object::ObjectStore;
use crate::segfile;
use bytes::Bytes;
use parking_lot::RwLock;
use rtdi_common::{Error, Result, Row, Schema, Timestamp};
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct PartitionInfo {
    files: Vec<String>,
    row_count: usize,
}

#[derive(Debug)]
struct TableInner {
    schema: Schema,
    partitions: RwLock<BTreeMap<String, PartitionInfo>>,
}

/// A partitioned table backed by columnar files in the object store.
#[derive(Clone)]
pub struct HiveTable {
    name: String,
    store: Arc<dyn ObjectStore>,
    inner: Arc<TableInner>,
}

impl HiveTable {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> Schema {
        self.inner.schema.clone()
    }

    /// Sorted list of partition keys (dates).
    pub fn partitions(&self) -> Vec<String> {
        self.inner.partitions.read().keys().cloned().collect()
    }

    pub fn row_count(&self) -> usize {
        self.inner
            .partitions
            .read()
            .values()
            .map(|p| p.row_count)
            .sum()
    }

    /// Read every row of one partition.
    pub fn scan_partition(&self, date: &str) -> Result<Vec<Row>> {
        let files = {
            let parts = self.inner.partitions.read();
            parts
                .get(date)
                .ok_or_else(|| Error::NotFound(format!("partition '{date}' of '{}'", self.name)))?
                .files
                .clone()
        };
        let mut rows = Vec::new();
        for f in files {
            let data = self.store.get(&f)?;
            let (_, mut batch) = decode_part_file(&data)?;
            rows.append(&mut batch);
        }
        Ok(rows)
    }

    /// Full scan across all partitions, in partition order.
    pub fn scan_all(&self) -> Result<Vec<Row>> {
        let mut rows = Vec::new();
        for date in self.partitions() {
            rows.extend(self.scan_partition(&date)?);
        }
        Ok(rows)
    }

    /// Scan rows whose `__ts` column falls in `[from, to)`. Partitions are
    /// pruned by their date bucket, then rows filtered — this is the
    /// bounded-input read path the Kappa+ backfill uses to identify the
    /// "start/end boundary of the bounded input" (§7).
    pub fn scan_range(&self, from: Timestamp, to: Timestamp) -> Result<Vec<Row>> {
        if to <= from {
            return Ok(Vec::new());
        }
        let from_day = crate::archival::date_partition(from);
        let to_day = crate::archival::date_partition(to);
        let mut rows = Vec::new();
        for date in self.partitions() {
            if date < from_day || date > to_day {
                continue; // partition pruning
            }
            for row in self.scan_partition(&date)? {
                match row.get_int("__ts") {
                    Some(ts) if ts >= from && ts < to => rows.push(row),
                    None => rows.push(row), // tables without event time: no pruning
                    _ => {}
                }
            }
        }
        Ok(rows)
    }
}

#[derive(Default)]
struct CatalogInner {
    tables: RwLock<BTreeMap<String, HiveTable>>,
}

/// The warehouse catalog: table registry shared between the compactor, the
/// SQL layer and the backfill machinery.
#[derive(Clone)]
pub struct HiveCatalog {
    store: Arc<dyn ObjectStore>,
    inner: Arc<CatalogInner>,
}

impl HiveCatalog {
    pub fn new(store: Arc<dyn ObjectStore>) -> Self {
        HiveCatalog {
            store,
            inner: Arc::new(CatalogInner::default()),
        }
    }

    pub fn create_table(&self, name: &str, schema: Schema) -> Result<HiveTable> {
        let mut tables = self.inner.tables.write();
        if tables.contains_key(name) {
            return Err(Error::AlreadyExists(format!("hive table '{name}'")));
        }
        let table = HiveTable {
            name: name.to_string(),
            store: self.store.clone(),
            inner: Arc::new(TableInner {
                schema,
                partitions: RwLock::new(BTreeMap::new()),
            }),
        };
        tables.insert(name.to_string(), table.clone());
        Ok(table)
    }

    pub fn table(&self, name: &str) -> Result<HiveTable> {
        self.inner
            .tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("hive table '{name}'")))
    }

    pub fn table_names(&self) -> Vec<String> {
        self.inner.tables.read().keys().cloned().collect()
    }

    /// Register a new part file under a partition (invoked by the
    /// compactor and by direct warehouse writers).
    pub fn register_partition(
        &self,
        table: &str,
        date: &str,
        file: &str,
        rows: usize,
    ) -> Result<()> {
        let t = self.table(table)?;
        let mut parts = t.inner.partitions.write();
        let entry = parts.entry(date.to_string()).or_insert(PartitionInfo {
            files: Vec::new(),
            row_count: 0,
        });
        entry.files.push(file.to_string());
        entry.row_count += rows;
        Ok(())
    }

    /// Write a batch of rows directly as a new part file of a partition
    /// (used by tests, examples and the Piper-style offline-table builds
    /// the paper mentions in §4.3.3).
    pub fn write_rows(&self, table: &str, date: &str, rows: &[Row]) -> Result<()> {
        let t = self.table(table)?;
        let n = {
            let parts = t.inner.partitions.read();
            parts.get(date).map(|p| p.files.len()).unwrap_or(0)
        };
        let key = format!("warehouse/{table}/{date}/part-{n:05}");
        let seg_name = format!("{table}-{date}-{n:05}");
        let data = segfile::encode_rows_segment(&t.inner.schema, &seg_name, rows)?;
        self.store.put(&key, data)?;
        self.register_partition(table, date, &key, rows.len())
    }
}

/// Decode one warehouse part file, dispatching on its magic: new part
/// files are on-disk segments, while pre-existing colfile objects remain
/// readable for compatibility.
fn decode_part_file(data: &Bytes) -> Result<(Schema, Vec<Row>)> {
    if segfile::is_segment_file(data) {
        segfile::decode_rows_segment(data)
    } else {
        colfile::decode_columnar(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::InMemoryStore;
    use rtdi_common::FieldType;

    fn setup() -> (HiveCatalog, HiveTable) {
        let store = Arc::new(InMemoryStore::new());
        let catalog = HiveCatalog::new(store);
        let schema = Schema::of(
            "trips",
            &[
                ("id", FieldType::Int),
                ("city", FieldType::Str),
                ("__ts", FieldType::Timestamp),
            ],
        );
        let table = catalog.create_table("trips", schema).unwrap();
        (catalog, table)
    }

    fn rows_for_day(day: i64, n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new()
                    .with("id", day * 1000 + i as i64)
                    .with("city", "sf")
                    .with("__ts", day * 86_400_000 + i as i64 * 1000)
            })
            .collect()
    }

    #[test]
    fn create_and_duplicate() {
        let (catalog, _) = setup();
        assert!(matches!(
            catalog.create_table("trips", Schema::of("x", &[])),
            Err(Error::AlreadyExists(_))
        ));
        assert!(catalog.table("missing").is_err());
        assert_eq!(catalog.table_names(), vec!["trips".to_string()]);
    }

    #[test]
    fn write_scan_partitions() {
        let (catalog, table) = setup();
        catalog
            .write_rows("trips", "d000000", &rows_for_day(0, 10))
            .unwrap();
        catalog
            .write_rows("trips", "d000001", &rows_for_day(1, 20))
            .unwrap();
        catalog
            .write_rows("trips", "d000001", &rows_for_day(1, 5))
            .unwrap();
        assert_eq!(table.partitions(), vec!["d000000", "d000001"]);
        assert_eq!(table.scan_partition("d000000").unwrap().len(), 10);
        assert_eq!(table.scan_partition("d000001").unwrap().len(), 25);
        assert_eq!(table.scan_all().unwrap().len(), 35);
        assert_eq!(table.row_count(), 35);
        assert!(table.scan_partition("d000009").is_err());
    }

    #[test]
    fn scan_range_prunes_and_filters() {
        let (catalog, table) = setup();
        for day in 0..5 {
            catalog
                .write_rows(
                    "trips",
                    &crate::archival::date_partition(day * 86_400_000),
                    &rows_for_day(day, 10),
                )
                .unwrap();
        }
        // range covering day 1 and first half of day 2
        let from = 86_400_000;
        let to = 2 * 86_400_000 + 5_000;
        let rows = table.scan_range(from, to).unwrap();
        // all 10 of day1 + 5 of day2 (ts < to means i*1000 < 5000 -> i in 0..5)
        assert_eq!(rows.len(), 15);
        assert!(rows.iter().all(|r| {
            let ts = r.get_int("__ts").unwrap();
            ts >= from && ts < to
        }));
        // empty and inverted ranges
        assert!(table.scan_range(100, 100).unwrap().is_empty());
        assert!(table.scan_range(500, 100).unwrap().is_empty());
    }
}
