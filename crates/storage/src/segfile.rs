//! On-disk OLAP segment format — Pinot-style immutable segments.
//!
//! §4.3 credits Pinot's small footprint to dictionary encoding and
//! bit-compressed forward indexes; §4.3.4 moves segment archival into a
//! shared object store so any server can recover any segment. This module
//! is the byte-level realization of both: a little-endian binary segment
//! layout in which every column is an independently addressable byte
//! range, so readers deserialize only the columns a query touches and
//! prune whole segments from zone maps without loading any column at all.
//!
//! ```text
//! +--------------------------------------------------------------+
//! | header | column block 0 | ... | column block N-1 | index map |
//! +--------------------------------------------------------------+
//! | footer: index_map_offset u64 | index_map_len u32             |
//! |         crc32 u32 (all preceding bytes) | tail magic "rtsg"  |
//! +--------------------------------------------------------------+
//! ```
//!
//! Per-column encodings (selected per column at write time):
//! - dictionary + fixed-bit-packed ids for strings/JSON (sorted dict);
//! - frame-of-reference + fixed-bit packing for ints/timestamps;
//! - RLE runs for low-cardinality int/double/dict-id columns;
//! - var-byte (length-prefixed) forward index for raw byte columns;
//! - a null bitmap and a zone map (min/max/null-count) for every column.
//!
//! The decoder NEVER panics on corrupt bytes: every read goes through a
//! bounds-checked little-endian [`Reader`] and every declared length,
//! bit width, run count and dictionary id is validated before use, so
//! truncated or bit-flipped files surface as [`Error::Corruption`].
//! See DESIGN.md ("On-disk segment format") for the full byte diagram.

use crate::colfile::{bitpack, bits_for, bitunpack};
use bytes::Bytes;
use rtdi_common::{Error, FieldType, Result, Row, Schema, Value};
use std::sync::OnceLock;

/// Head magic: the file starts with the bytes `RTSG`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"RTSG");
/// Tail magic: the file ends with the bytes `rtsg`.
pub const TAIL_MAGIC: u32 = u32::from_le_bytes(*b"rtsg");
/// Format version stamped in the header.
pub const VERSION: u16 = 1;
/// Fixed footer size: index-map offset + len, CRC32, tail magic.
pub const FOOTER_LEN: usize = 8 + 4 + 4 + 4;

/// Encoding tag: fixed-bit packed values (dictionary ids or FOR deltas).
const ENC_PACKED: u8 = 0;
/// Encoding tag: run-length encoded `(run_len, value)` pairs.
const ENC_RLE: u8 = 1;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — table built lazily, no dependencies.
// ---------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC32 (IEEE) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Bounds-checked little-endian reader / writer.
// ---------------------------------------------------------------------

/// Little-endian read cursor over a byte slice. Every read is bounds
/// checked and returns `Err(Corruption)` instead of panicking — this is
/// the only way segment bytes are ever decoded.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Corruption(format!(
                "truncated {what}: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16> {
        Ok(u16::from_le_bytes(self.bytes(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }

    fn i64(&mut self, what: &str) -> Result<i64> {
        Ok(self.u64(what)? as i64)
    }

    fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Length-prefixed UTF-8 string: `len u32` + bytes.
    fn lpstr(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let raw = self.bytes(len, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| Error::Corruption(format!("invalid utf8 in {what}")))
    }
}

/// Little-endian append-only writer (the encode side of [`Reader`]).
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            out: Vec::with_capacity(1024),
        }
    }

    fn len(&self) -> usize {
        self.out.len()
    }

    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn slice(&mut self, s: &[u8]) {
        self.out.extend_from_slice(s);
    }

    fn lpstr(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.out.extend_from_slice(s.as_bytes());
    }
}

// ---------------------------------------------------------------------
// In-memory column model handed to the encoder / returned by the decoder.
// ---------------------------------------------------------------------

/// Per-column null mask: bit `i` set means row `i` is NULL. Bits are
/// stored LSB-first, `ceil(len/8)` bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NullMask {
    bits: Vec<u8>,
    len: usize,
}

impl NullMask {
    /// All-non-null mask over `len` rows.
    pub fn new(len: usize) -> Self {
        NullMask {
            bits: vec![0u8; len.div_ceil(8)],
            len,
        }
    }

    /// Rebuild a mask from its on-disk bytes.
    pub fn from_bits(bits: Vec<u8>, len: usize) -> Result<Self> {
        if bits.len() != len.div_ceil(8) {
            return Err(Error::Corruption(format!(
                "null bitmap length {} does not cover {len} rows",
                bits.len()
            )));
        }
        Ok(NullMask { bits, len })
    }

    pub fn set_null(&mut self, i: usize) {
        if i < self.len {
            self.bits[i / 8] |= 1 << (i % 8);
        }
    }

    pub fn is_null(&self, i: usize) -> bool {
        i < self.len && (self.bits[i / 8] >> (i % 8)) & 1 == 1
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn null_count(&self) -> u64 {
        (0..self.len).filter(|&i| self.is_null(i)).count() as u64
    }

    /// Raw LSB-first bitmap bytes (`ceil(len/8)` of them).
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }
}

/// Decoded column values. The variant is determined by the column's
/// [`FieldType`]: Int/Timestamp -> `Int`, Str/Json -> `Str` (JSON is
/// stored as its serialized text in the dictionary), Bytes -> `Bytes`.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnValues {
    Int(Vec<i64>),
    Double(Vec<f64>),
    Bool(Vec<bool>),
    /// Sorted dictionary + per-row dictionary ids.
    Str {
        dict: Vec<String>,
        ids: Vec<u32>,
    },
    Bytes(Vec<Vec<u8>>),
}

impl ColumnValues {
    pub fn len(&self) -> usize {
        match self {
            ColumnValues::Int(v) => v.len(),
            ColumnValues::Double(v) => v.len(),
            ColumnValues::Bool(v) => v.len(),
            ColumnValues::Str { ids, .. } => ids.len(),
            ColumnValues::Bytes(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One materialized column: values plus its null mask.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub values: ColumnValues,
    pub nulls: NullMask,
}

/// A zone-map bound. Ordering semantics match `Value::total_cmp` within
/// one type; cross-type comparisons are never pruned on.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoneValue {
    Int(i64),
    Double(f64),
    Str(String),
    Bool(bool),
}

/// Per-column min/max statistics consulted before any column bytes are
/// read. `min`/`max` are `None` when every row is NULL (or the column
/// type carries no ordered statistics, e.g. raw bytes).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ZoneMap {
    pub min: Option<ZoneValue>,
    pub max: Option<ZoneValue>,
    pub null_count: u64,
}

impl ZoneMap {
    /// Integer min/max bounds, when this column stores ordered integers
    /// (Int/Timestamp). Federation catalogs read per-segment time ranges
    /// through this without touching column bytes.
    pub fn int_bounds(&self) -> Option<(i64, i64)> {
        match (&self.min, &self.max) {
            (Some(ZoneValue::Int(lo)), Some(ZoneValue::Int(hi))) => Some((*lo, *hi)),
            _ => None,
        }
    }
}

/// Index-map entry: where one column's bytes live and its statistics.
#[derive(Debug, Clone)]
pub struct ColumnEntry {
    pub name: String,
    pub field_type: FieldType,
    /// Absolute byte offset of the column block in the file.
    pub offset: u64,
    /// Length of the column block in bytes.
    pub len: u64,
    pub zone: ZoneMap,
}

/// Segment-level header metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMeta {
    /// Segment name (unique within a table).
    pub name: String,
    /// Owning table / schema name.
    pub table: String,
    /// Column the rows are physically sorted by, if any.
    pub sorted_col: Option<String>,
    /// Row count shared by every column.
    pub nrows: u64,
}

// ---------------------------------------------------------------------
// Type tags (shared with colfile's numbering for familiarity).
// ---------------------------------------------------------------------

fn type_tag(t: FieldType) -> u8 {
    match t {
        FieldType::Bool => 0,
        FieldType::Int => 1,
        FieldType::Double => 2,
        FieldType::Str => 3,
        FieldType::Bytes => 4,
        FieldType::Json => 5,
        FieldType::Timestamp => 6,
    }
}

fn tag_type(tag: u8) -> Result<FieldType> {
    Ok(match tag {
        0 => FieldType::Bool,
        1 => FieldType::Int,
        2 => FieldType::Double,
        3 => FieldType::Str,
        4 => FieldType::Bytes,
        5 => FieldType::Json,
        6 => FieldType::Timestamp,
        t => return Err(Error::Corruption(format!("unknown segment type tag {t}"))),
    })
}

// ---------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------

/// Count value-change boundaries (number of RLE runs) in a slice.
fn run_count<T: PartialEq>(vals: &[T]) -> usize {
    let mut runs = 0usize;
    let mut prev: Option<&T> = None;
    for v in vals {
        if prev != Some(v) {
            runs += 1;
            prev = Some(v);
        }
    }
    runs
}

fn rle_runs<T: PartialEq + Copy>(vals: &[T]) -> Vec<(u32, T)> {
    let mut runs: Vec<(u32, T)> = Vec::new();
    for &v in vals {
        match runs.last_mut() {
            Some((len, last)) if *last == v => *len += 1,
            _ => runs.push((1, v)),
        }
    }
    runs
}

fn encode_int_block(w: &mut Writer, vals: &[i64]) {
    let min = vals.iter().copied().min().unwrap_or(0);
    let max = vals.iter().copied().max().unwrap_or(0);
    // widen through i128: (i64::MAX - i64::MIN) overflows i64 but the
    // delta always fits u64
    let range = (max as i128 - min as i128) as u64;
    let width = bits_for(range);
    let packed_cost = 1 + 8 + 1 + 4 + (vals.len() * width as usize).div_ceil(8);
    let nruns = run_count(vals);
    let rle_cost = 1 + 4 + nruns * 12;
    if rle_cost < packed_cost {
        w.u8(ENC_RLE);
        let runs = rle_runs(vals);
        w.u32(runs.len() as u32);
        for (len, v) in runs {
            w.u32(len);
            w.i64(v);
        }
    } else {
        w.u8(ENC_PACKED);
        w.i64(min);
        w.u8(width as u8);
        let rel: Vec<u64> = vals
            .iter()
            .map(|&v| (v as i128 - min as i128) as u64)
            .collect();
        let packed = bitpack(&rel, width);
        w.u32(packed.len() as u32);
        w.slice(&packed);
    }
}

fn encode_double_block(w: &mut Writer, vals: &[f64]) {
    // run detection on the bit pattern so NaN/-0.0 round-trip exactly
    let bits: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
    let nruns = run_count(&bits);
    let rle_cost = 1 + 4 + nruns * 12;
    let raw_cost = 1 + vals.len() * 8;
    if rle_cost < raw_cost {
        w.u8(ENC_RLE);
        let runs = rle_runs(&bits);
        w.u32(runs.len() as u32);
        for (len, b) in runs {
            w.u32(len);
            w.u64(b);
        }
    } else {
        w.u8(ENC_PACKED);
        for &b in &bits {
            w.u64(b);
        }
    }
}

fn encode_id_block(w: &mut Writer, ids: &[u32], dict_len: usize) {
    let width = bits_for(dict_len.saturating_sub(1) as u64);
    let packed_cost = 1 + 1 + 4 + (ids.len() * width as usize).div_ceil(8);
    let nruns = run_count(ids);
    let rle_cost = 1 + 4 + nruns * 8;
    if rle_cost < packed_cost {
        w.u8(ENC_RLE);
        let runs = rle_runs(ids);
        w.u32(runs.len() as u32);
        for (len, id) in runs {
            w.u32(len);
            w.u32(id);
        }
    } else {
        w.u8(ENC_PACKED);
        w.u8(width as u8);
        let wide: Vec<u64> = ids.iter().map(|&id| id as u64).collect();
        let packed = bitpack(&wide, width);
        w.u32(packed.len() as u32);
        w.slice(&packed);
    }
}

/// Encode one column block; returns the zone map computed from the data.
fn encode_column_block(w: &mut Writer, col: &Column) -> Result<ZoneMap> {
    let nulls = &col.nulls;
    w.u32(nulls.bits().len() as u32);
    w.slice(nulls.bits());
    let non_null = |i: &usize| !nulls.is_null(*i);
    let mut zone = ZoneMap {
        min: None,
        max: None,
        null_count: nulls.null_count(),
    };
    match &col.values {
        ColumnValues::Bool(vals) => {
            let packed: Vec<u64> = vals.iter().map(|&b| b as u64).collect();
            let bitvec = bitpack(&packed, 1);
            w.u32(bitvec.len() as u32);
            w.slice(&bitvec);
            let live: Vec<bool> = (0..vals.len()).filter(non_null).map(|i| vals[i]).collect();
            if let (Some(&mn), Some(&mx)) = (live.iter().min(), live.iter().max()) {
                zone.min = Some(ZoneValue::Bool(mn));
                zone.max = Some(ZoneValue::Bool(mx));
            }
        }
        ColumnValues::Int(vals) => {
            encode_int_block(w, vals);
            let live = (0..vals.len()).filter(non_null).map(|i| vals[i]);
            if let Some((mn, mx)) = min_max(live) {
                zone.min = Some(ZoneValue::Int(mn));
                zone.max = Some(ZoneValue::Int(mx));
            }
        }
        ColumnValues::Double(vals) => {
            encode_double_block(w, vals);
            let live: Vec<f64> = (0..vals.len()).filter(non_null).map(|i| vals[i]).collect();
            if !live.is_empty() {
                let mn = live.iter().copied().fold(f64::INFINITY, f64::min);
                let mx = live.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                zone.min = Some(ZoneValue::Double(mn));
                zone.max = Some(ZoneValue::Double(mx));
            }
        }
        ColumnValues::Str { dict, ids } => {
            if ids.len() != col.nulls.len() {
                return Err(Error::Internal("id count != row count".into()));
            }
            for win in dict.windows(2) {
                if win[0] >= win[1] {
                    return Err(Error::Internal("segment dictionary not sorted".into()));
                }
            }
            if let Some(&bad) = ids.iter().find(|&&id| id as usize >= dict.len()) {
                return Err(Error::Internal(format!("dict id {bad} out of range")));
            }
            w.u32(dict.len() as u32);
            for s in dict {
                w.lpstr(s);
            }
            encode_id_block(w, ids, dict.len());
            let live = (0..ids.len())
                .filter(non_null)
                .map(|i| ids[i])
                .collect::<Vec<_>>();
            if let (Some(&mn), Some(&mx)) = (live.iter().min(), live.iter().max()) {
                zone.min = Some(ZoneValue::Str(dict[mn as usize].clone()));
                zone.max = Some(ZoneValue::Str(dict[mx as usize].clone()));
            }
        }
        ColumnValues::Bytes(vals) => {
            for v in vals {
                w.u32(v.len() as u32);
                w.slice(v);
            }
            // raw bytes carry no ordered zone statistics
        }
    }
    Ok(zone)
}

fn min_max<I: Iterator<Item = i64>>(iter: I) -> Option<(i64, i64)> {
    let mut out: Option<(i64, i64)> = None;
    for v in iter {
        out = Some(match out {
            None => (v, v),
            Some((mn, mx)) => (mn.min(v), mx.max(v)),
        });
    }
    out
}

fn write_zone(w: &mut Writer, zone: &ZoneMap) {
    w.u64(zone.null_count);
    match (&zone.min, &zone.max) {
        (Some(mn), Some(mx)) => {
            w.u8(1);
            let kind = |z: &ZoneValue| match z {
                ZoneValue::Int(_) => 0u8,
                ZoneValue::Double(_) => 1,
                ZoneValue::Str(_) => 2,
                ZoneValue::Bool(_) => 3,
            };
            w.u8(kind(mn));
            for z in [mn, mx] {
                match z {
                    ZoneValue::Int(v) => w.i64(*v),
                    ZoneValue::Double(v) => w.f64(*v),
                    ZoneValue::Str(s) => w.lpstr(s),
                    ZoneValue::Bool(b) => w.u8(*b as u8),
                }
            }
        }
        _ => w.u8(0),
    }
}

fn read_zone(r: &mut Reader) -> Result<ZoneMap> {
    let null_count = r.u64("zone null count")?;
    let has = r.u8("zone presence flag")?;
    if has == 0 {
        return Ok(ZoneMap {
            min: None,
            max: None,
            null_count,
        });
    }
    if has != 1 {
        return Err(Error::Corruption(format!("bad zone presence flag {has}")));
    }
    let kind = r.u8("zone kind")?;
    let read_one = |r: &mut Reader| -> Result<ZoneValue> {
        Ok(match kind {
            0 => ZoneValue::Int(r.i64("zone int")?),
            1 => ZoneValue::Double(r.f64("zone double")?),
            2 => ZoneValue::Str(r.lpstr("zone string")?),
            3 => ZoneValue::Bool(r.u8("zone bool")? != 0),
            k => return Err(Error::Corruption(format!("unknown zone kind {k}"))),
        })
    };
    let min = read_one(r)?;
    let max = read_one(r)?;
    Ok(ZoneMap {
        min: Some(min),
        max: Some(max),
        null_count,
    })
}

/// Serialize a segment: header, per-column blocks, length-prefixed index
/// map, CRC32-checked footer. `fields[i]` describes `columns[i]`; every
/// column must have exactly `meta.nrows` rows.
pub fn encode_segment(
    meta: &SegmentMeta,
    fields: &[rtdi_common::Field],
    columns: &[Column],
) -> Result<Bytes> {
    if fields.len() != columns.len() {
        return Err(Error::Internal(format!(
            "{} fields but {} columns",
            fields.len(),
            columns.len()
        )));
    }
    for (f, c) in fields.iter().zip(columns) {
        if c.values.len() as u64 != meta.nrows || c.nulls.len() as u64 != meta.nrows {
            return Err(Error::Internal(format!(
                "column '{}' has {} rows, segment declares {}",
                f.name,
                c.values.len(),
                meta.nrows
            )));
        }
    }
    let mut w = Writer::new();
    w.u32(MAGIC);
    w.u16(VERSION);
    w.u16(0); // flags (reserved)
    w.lpstr(&meta.table);
    w.lpstr(&meta.name);
    w.lpstr(meta.sorted_col.as_deref().unwrap_or(""));
    w.u32(fields.len() as u32);
    w.u64(meta.nrows);

    let mut entries: Vec<ColumnEntry> = Vec::with_capacity(fields.len());
    for (f, c) in fields.iter().zip(columns) {
        let offset = w.len() as u64;
        let zone = encode_column_block(&mut w, c)?;
        entries.push(ColumnEntry {
            name: f.name.clone(),
            field_type: f.field_type,
            offset,
            len: w.len() as u64 - offset,
            zone,
        });
    }

    let index_map_offset = w.len() as u64;
    w.u32(entries.len() as u32);
    for e in &entries {
        w.lpstr(&e.name);
        w.u8(type_tag(e.field_type));
        w.u64(e.offset);
        w.u64(e.len);
        write_zone(&mut w, &e.zone);
    }
    let index_map_len = w.len() as u64 - index_map_offset;

    w.u64(index_map_offset);
    w.u32(index_map_len as u32);
    let crc = crc32(&w.out);
    w.u32(crc);
    w.u32(TAIL_MAGIC);
    Ok(Bytes::from(w.out))
}

// ---------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------

/// True when `data` starts with the segment magic (used to dispatch
/// between this format and legacy colfile bytes).
pub fn is_segment_file(data: &[u8]) -> bool {
    data.len() >= 4 && data[..4] == MAGIC.to_le_bytes()
}

/// An opened segment file: header + index map parsed and CRC verified,
/// column bytes untouched until [`SegmentFile::column`] is called.
pub struct SegmentFile {
    data: Bytes,
    meta: SegmentMeta,
    entries: Vec<ColumnEntry>,
    /// Bytes actually parsed by `open` (header + index map + footer) —
    /// the cost of a header-only, zone-map-pruned read.
    header_bytes: usize,
}

impl SegmentFile {
    /// Validate the footer (magic + CRC32), header and index map. Column
    /// blocks are NOT decoded — each is fetched lazily by [`Self::column`].
    pub fn open(data: Bytes) -> Result<Self> {
        let raw = data.as_slice();
        if raw.len() < 4 + 2 + 2 + FOOTER_LEN {
            return Err(Error::Corruption(format!(
                "segment file too small: {} bytes",
                raw.len()
            )));
        }
        if !is_segment_file(raw) {
            return Err(Error::Corruption("bad segment magic".into()));
        }
        let foot = &raw[raw.len() - FOOTER_LEN..];
        let mut fr = Reader::new(foot);
        let index_map_offset = fr.u64("footer index-map offset")? as usize;
        let index_map_len = fr.u32("footer index-map length")? as usize;
        let stored_crc = fr.u32("footer crc")?;
        let tail = fr.u32("footer magic")?;
        if tail != TAIL_MAGIC {
            return Err(Error::Corruption("bad segment tail magic".into()));
        }
        let computed = crc32(&raw[..raw.len() - 8]);
        if computed != stored_crc {
            return Err(Error::Corruption(format!(
                "segment crc mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"
            )));
        }
        let body_end = raw.len() - FOOTER_LEN;
        if index_map_offset
            .checked_add(index_map_len)
            .is_none_or(|end| end != body_end)
        {
            return Err(Error::Corruption(format!(
                "index map [{index_map_offset}, +{index_map_len}) does not end at footer"
            )));
        }

        let mut r = Reader::new(&raw[..index_map_offset]);
        let magic = r.u32("magic")?;
        debug_assert_eq!(magic, MAGIC);
        let version = r.u16("version")?;
        if version != VERSION {
            return Err(Error::Corruption(format!(
                "unsupported segment version {version}"
            )));
        }
        let _flags = r.u16("flags")?;
        let table = r.lpstr("table name")?;
        let name = r.lpstr("segment name")?;
        let sorted = r.lpstr("sorted column")?;
        let ncols = r.u32("column count")? as usize;
        let nrows = r.u64("row count")?;
        let header_end = r.pos;

        // every column block starts with its null bitmap, so a declared
        // row count must be coverable by the bytes between header and
        // index map — this bounds all later `with_capacity(nrows)` calls
        let col_bytes = index_map_offset - header_end;
        if ncols > 0 {
            let per_col = 4 + (nrows as usize).div_ceil(8);
            if per_col.checked_mul(ncols).is_none_or(|min| min > col_bytes) {
                return Err(Error::Corruption(format!(
                    "{ncols} columns x {nrows} rows cannot fit in {col_bytes} column bytes"
                )));
            }
        }

        let mut ir = Reader::new(&raw[index_map_offset..body_end]);
        let nentries = ir.u32("index map entry count")? as usize;
        if nentries != ncols {
            return Err(Error::Corruption(format!(
                "index map has {nentries} entries, header declares {ncols} columns"
            )));
        }
        // each entry is at least name(4) + tag(1) + offset(8) + len(8) +
        // zone(9) bytes: bound the preallocation by what could fit
        let mut entries = Vec::with_capacity(nentries.min(ir.remaining() / 30 + 1));
        for _ in 0..nentries {
            let cname = ir.lpstr("column name")?;
            let ftype = tag_type(ir.u8("column type tag")?)?;
            let offset = ir.u64("column offset")?;
            let len = ir.u64("column length")?;
            let zone = read_zone(&mut ir)?;
            let end = offset.checked_add(len);
            if (offset as usize) < header_end || end.is_none_or(|e| e as usize > index_map_offset) {
                return Err(Error::Corruption(format!(
                    "column '{cname}' byte range [{offset}, +{len}) escapes column area"
                )));
            }
            entries.push(ColumnEntry {
                name: cname,
                field_type: ftype,
                offset,
                len,
                zone,
            });
        }
        if ir.remaining() != 0 {
            return Err(Error::Corruption(format!(
                "{} trailing bytes after index map entries",
                ir.remaining()
            )));
        }

        Ok(SegmentFile {
            data,
            meta: SegmentMeta {
                name,
                table,
                sorted_col: if sorted.is_empty() {
                    None
                } else {
                    Some(sorted)
                },
                nrows,
            },
            entries,
            header_bytes: header_end + index_map_len + FOOTER_LEN,
        })
    }

    pub fn meta(&self) -> &SegmentMeta {
        &self.meta
    }

    pub fn nrows(&self) -> usize {
        self.meta.nrows as usize
    }

    pub fn entries(&self) -> &[ColumnEntry] {
        &self.entries
    }

    pub fn entry(&self, name: &str) -> Option<&ColumnEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Bytes touched by [`Self::open`]: header + index map + footer. A
    /// zone-map-pruned segment reads only this much.
    pub fn header_bytes(&self) -> usize {
        self.header_bytes
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> usize {
        self.data.len()
    }

    /// Schema reconstructed from the index map (field order preserved).
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.meta.table.clone(),
            self.entries
                .iter()
                .map(|e| rtdi_common::Field::new(e.name.clone(), e.field_type))
                .collect(),
        )
    }

    /// Decode a single column by name without touching any other column.
    pub fn column(&self, name: &str) -> Result<Column> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| Error::NotFound(format!("segment column '{name}'")))?;
        self.column_at(idx)
    }

    /// Decode the column at index-map position `idx`.
    pub fn column_at(&self, idx: usize) -> Result<Column> {
        let entry = self
            .entries
            .get(idx)
            .ok_or_else(|| Error::NotFound(format!("segment column #{idx}")))?;
        let start = entry.offset as usize;
        let block = &self.data.as_slice()[start..start + entry.len as usize];
        decode_column_block(block, entry.field_type, self.nrows()).map_err(|e| match e {
            Error::Corruption(msg) => Error::Corruption(format!("column '{}': {msg}", entry.name)),
            other => other,
        })
    }

    /// Materialize every column back into rows (schema order). The full
    /// eager read path used by compaction scans and backfill.
    pub fn read_rows(&self) -> Result<(Schema, Vec<Row>)> {
        let schema = self.schema();
        let nrows = self.nrows();
        let mut columns = Vec::with_capacity(self.entries.len());
        for i in 0..self.entries.len() {
            let col = self.column_at(i)?;
            columns.push(column_to_values(&col, self.entries[i].field_type)?);
        }
        let names: Vec<std::sync::Arc<str>> = self
            .entries
            .iter()
            .map(|e| std::sync::Arc::from(e.name.as_str()))
            .collect();
        let mut rows = Vec::with_capacity(nrows.min(1 << 20));
        for i in 0..nrows {
            let mut row = Row::with_capacity(names.len());
            for (name, col) in names.iter().zip(&columns) {
                row.push(name.clone(), col[i].clone());
            }
            rows.push(row);
        }
        Ok((schema, rows))
    }
}

fn decode_int_block(r: &mut Reader, nrows: usize) -> Result<Vec<i64>> {
    match r.u8("int encoding tag")? {
        ENC_PACKED => {
            let base = r.i64("int base")?;
            let width = r.u8("int bit width")? as u32;
            if width > 64 {
                return Err(Error::Corruption(format!("int bit width {width} > 64")));
            }
            let plen = r.u32("int packed length")? as usize;
            if plen != (nrows * width as usize).div_ceil(8) {
                return Err(Error::Corruption(format!(
                    "int packed length {plen} != expected for {nrows} rows x {width} bits"
                )));
            }
            let packed = r.bytes(plen, "int packed data")?;
            Ok(bitunpack(packed, width, nrows)
                .into_iter()
                .map(|v| base.wrapping_add(v as i64))
                .collect())
        }
        ENC_RLE => decode_rle(r, nrows, "int", |r| r.i64("int run value")),
        t => Err(Error::Corruption(format!("unknown int encoding tag {t}"))),
    }
}

/// Decode `(run_len u32, value)` pairs whose lengths must sum to `nrows`.
fn decode_rle<T: Copy>(
    r: &mut Reader,
    nrows: usize,
    what: &str,
    mut read_val: impl FnMut(&mut Reader) -> Result<T>,
) -> Result<Vec<T>> {
    let nruns = r.u32("run count")? as usize;
    // each run occupies >= 5 bytes (len u32 + >= 1-byte value)
    if nruns > r.remaining() / 5 + 1 {
        return Err(Error::Corruption(format!(
            "{what} run count {nruns} exceeds remaining bytes"
        )));
    }
    let mut out = Vec::with_capacity(nrows.min(1 << 20));
    for _ in 0..nruns {
        let len = r.u32("run length")? as usize;
        let v = read_val(r)?;
        if out.len() + len > nrows {
            return Err(Error::Corruption(format!(
                "{what} run lengths exceed {nrows} rows"
            )));
        }
        out.extend(std::iter::repeat_n(v, len));
    }
    if out.len() != nrows {
        return Err(Error::Corruption(format!(
            "{what} runs cover {} of {nrows} rows",
            out.len()
        )));
    }
    Ok(out)
}

fn decode_column_block(block: &[u8], ftype: FieldType, nrows: usize) -> Result<Column> {
    let mut r = Reader::new(block);
    let bm_len = r.u32("null bitmap length")? as usize;
    let bm = r.bytes(bm_len, "null bitmap")?.to_vec();
    let nulls = NullMask::from_bits(bm, nrows)?;
    let values = match ftype {
        FieldType::Bool => {
            let plen = r.u32("bool packed length")? as usize;
            if plen != nrows.div_ceil(8) {
                return Err(Error::Corruption(format!(
                    "bool packed length {plen} != expected for {nrows} rows"
                )));
            }
            let packed = r.bytes(plen, "bool packed data")?;
            ColumnValues::Bool(
                bitunpack(packed, 1, nrows)
                    .into_iter()
                    .map(|v| v == 1)
                    .collect(),
            )
        }
        FieldType::Int | FieldType::Timestamp => {
            ColumnValues::Int(decode_int_block(&mut r, nrows)?)
        }
        FieldType::Double => match r.u8("double encoding tag")? {
            ENC_PACKED => {
                let raw = r.bytes(nrows * 8, "double data")?;
                ColumnValues::Double(
                    raw.chunks_exact(8)
                        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
                        .collect(),
                )
            }
            ENC_RLE => ColumnValues::Double(
                decode_rle(&mut r, nrows, "double", |r| r.u64("double run value"))?
                    .into_iter()
                    .map(f64::from_bits)
                    .collect(),
            ),
            t => {
                return Err(Error::Corruption(format!(
                    "unknown double encoding tag {t}"
                )))
            }
        },
        FieldType::Str | FieldType::Json => {
            let dict_len = r.u32("dictionary length")? as usize;
            // every dictionary entry needs at least its 4-byte length
            if dict_len > r.remaining() / 4 {
                return Err(Error::Corruption(format!(
                    "dictionary length {dict_len} exceeds remaining bytes"
                )));
            }
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                let s = r.lpstr("dictionary entry")?;
                if let Some(prev) = dict.last() {
                    if *prev >= s {
                        return Err(Error::Corruption("dictionary not sorted".into()));
                    }
                }
                dict.push(s);
            }
            let ids: Vec<u32> = match r.u8("id encoding tag")? {
                ENC_PACKED => {
                    let width = r.u8("id bit width")? as u32;
                    if width > 32 {
                        return Err(Error::Corruption(format!("id bit width {width} > 32")));
                    }
                    let plen = r.u32("id packed length")? as usize;
                    if plen != (nrows * width as usize).div_ceil(8) {
                        return Err(Error::Corruption(format!(
                            "id packed length {plen} != expected for {nrows} rows x {width} bits"
                        )));
                    }
                    let packed = r.bytes(plen, "id packed data")?;
                    bitunpack(packed, width, nrows)
                        .into_iter()
                        .map(|v| v as u32)
                        .collect()
                }
                ENC_RLE => decode_rle(&mut r, nrows, "id", |r| r.u32("id run value"))?,
                t => return Err(Error::Corruption(format!("unknown id encoding tag {t}"))),
            };
            if nrows > 0 {
                if dict.is_empty() {
                    return Err(Error::Corruption("empty dictionary with rows".into()));
                }
                if let Some(&bad) = ids.iter().find(|&&id| id as usize >= dict.len()) {
                    return Err(Error::Corruption(format!(
                        "dictionary id {bad} out of range (dict has {})",
                        dict.len()
                    )));
                }
            }
            ColumnValues::Str { dict, ids }
        }
        FieldType::Bytes => {
            let mut vals = Vec::with_capacity(nrows.min(1 << 20));
            for _ in 0..nrows {
                let len = r.u32("bytes value length")? as usize;
                vals.push(r.bytes(len, "bytes value")?.to_vec());
            }
            ColumnValues::Bytes(vals)
        }
    };
    if r.remaining() != 0 {
        return Err(Error::Corruption(format!(
            "{} trailing bytes after column block",
            r.remaining()
        )));
    }
    Ok(Column { values, nulls })
}

/// Expand a decoded column into per-row [`Value`]s (NULLs applied, JSON
/// parsed back from its dictionary text).
pub fn column_to_values(col: &Column, ftype: FieldType) -> Result<Vec<Value>> {
    let n = col.values.len();
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for i in 0..n {
        if col.nulls.is_null(i) {
            out.push(Value::Null);
            continue;
        }
        let v = match &col.values {
            ColumnValues::Int(vals) => Value::Int(vals[i]),
            ColumnValues::Double(vals) => Value::Double(vals[i]),
            ColumnValues::Bool(vals) => Value::Bool(vals[i]),
            ColumnValues::Str { dict, ids } => {
                let s = &dict[ids[i] as usize];
                if ftype == FieldType::Json {
                    Value::Json(Box::new(rtdi_common::json::parse(s).map_err(|_| {
                        Error::Corruption(format!("invalid json in dictionary: {s}"))
                    })?))
                } else {
                    Value::Str(s.clone())
                }
            }
            ColumnValues::Bytes(vals) => Value::Bytes(vals[i].clone()),
        };
        out.push(v);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Row-batch convenience encoder (warehouse part files, compaction).
// ---------------------------------------------------------------------

/// Build the segfile [`Column`] for one schema field from a row batch.
pub fn column_from_rows(field: &rtdi_common::Field, rows: &[Row]) -> Column {
    let name = field.name.as_str();
    let mut nulls = NullMask::new(rows.len());
    for (i, row) in rows.iter().enumerate() {
        if matches!(row.get(name), None | Some(Value::Null)) {
            nulls.set_null(i);
        }
    }
    let values = match field.field_type {
        FieldType::Bool => ColumnValues::Bool(
            rows.iter()
                .map(|r| matches!(r.get(name), Some(Value::Bool(true))))
                .collect(),
        ),
        FieldType::Int | FieldType::Timestamp => ColumnValues::Int(
            rows.iter()
                .map(|r| r.get(name).and_then(Value::as_int).unwrap_or(0))
                .collect(),
        ),
        FieldType::Double => ColumnValues::Double(
            rows.iter()
                .map(|r| r.get(name).and_then(Value::as_double).unwrap_or(0.0))
                .collect(),
        ),
        FieldType::Str | FieldType::Json => {
            let texts: Vec<Option<String>> = rows
                .iter()
                .map(|r| match r.get(name) {
                    Some(Value::Str(s)) => Some(s.clone()),
                    Some(Value::Json(j)) => Some(rtdi_common::json::to_string(j)),
                    _ => None,
                })
                .collect();
            let mut dict: Vec<String> = texts.iter().flatten().cloned().collect();
            dict.sort_unstable();
            dict.dedup();
            if dict.is_empty() && !rows.is_empty() {
                // all-NULL column: one placeholder keeps ids in range
                dict.push(String::new());
            }
            let ids = texts
                .iter()
                .map(|t| match t {
                    Some(s) => dict.binary_search(s).unwrap_or(0) as u32,
                    None => 0,
                })
                .collect();
            ColumnValues::Str { dict, ids }
        }
        FieldType::Bytes => ColumnValues::Bytes(
            rows.iter()
                .map(|r| match r.get(name) {
                    Some(Value::Bytes(b)) => b.clone(),
                    _ => Vec::new(),
                })
                .collect(),
        ),
    };
    Column { values, nulls }
}

/// Encode a row batch under a schema as a segment file — the drop-in
/// replacement for `colfile::encode_columnar` in warehouse writers.
pub fn encode_rows_segment(schema: &Schema, name: &str, rows: &[Row]) -> Result<Bytes> {
    let columns: Vec<Column> = schema
        .fields
        .iter()
        .map(|f| column_from_rows(f, rows))
        .collect();
    let meta = SegmentMeta {
        name: name.to_string(),
        table: schema.name.clone(),
        sorted_col: None,
        nrows: rows.len() as u64,
    };
    encode_segment(&meta, &schema.fields, &columns)
}

/// Decode a full segment file back into `(schema, rows)` — the eager
/// counterpart of [`SegmentFile::open`] + [`SegmentFile::read_rows`].
pub fn decode_rows_segment(data: &Bytes) -> Result<(Schema, Vec<Row>)> {
    SegmentFile::open(data.clone())?.read_rows()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::Field;

    fn sample_schema() -> Schema {
        Schema::new(
            "orders",
            vec![
                Field::new("id", FieldType::Int),
                Field::new("restaurant", FieldType::Str),
                Field::new("total", FieldType::Double),
                Field::new("delivered", FieldType::Bool),
                Field::new("ts", FieldType::Timestamp),
                Field::new("blob", FieldType::Bytes),
            ],
        )
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new()
                    .with("id", i as i64)
                    .with("restaurant", format!("rest-{}", i % 7))
                    .with("total", i as f64 * 1.5)
                    .with("delivered", i % 2 == 0)
                    .with("ts", 1_600_000_000_000i64 + i as i64)
                    .with("blob", Value::Bytes(vec![i as u8; i % 5]))
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_rows() {
        let schema = sample_schema();
        let rows = sample_rows(100);
        let data = encode_rows_segment(&schema, "s0", &rows).unwrap();
        let file = SegmentFile::open(data).unwrap();
        assert_eq!(file.meta().name, "s0");
        assert_eq!(file.meta().table, "orders");
        assert_eq!(file.nrows(), 100);
        let (schema2, rows2) = file.read_rows().unwrap();
        assert_eq!(schema2.fields.len(), schema.fields.len());
        for (a, b) in rows.iter().zip(&rows2) {
            for f in &schema.fields {
                assert_eq!(a.get(&f.name), b.get(&f.name), "column {}", f.name);
            }
        }
    }

    #[test]
    fn lazy_column_load_reads_one_column() {
        let schema = sample_schema();
        let rows = sample_rows(64);
        let data = encode_rows_segment(&schema, "s", &rows).unwrap();
        let file = SegmentFile::open(data).unwrap();
        let col = file.column("id").unwrap();
        match &col.values {
            ColumnValues::Int(vals) => {
                assert_eq!(vals.len(), 64);
                assert_eq!(vals[10], 10);
            }
            other => panic!("wrong column type: {other:?}"),
        }
        assert!(matches!(file.column("nope"), Err(Error::NotFound(_))));
    }

    #[test]
    fn zone_maps_record_min_max_and_nulls() {
        let schema = Schema::of("t", &[("n", FieldType::Int), ("city", FieldType::Str)]);
        let rows = vec![
            Row::new().with("n", 5i64).with("city", "sf"),
            Row::new().with("n", -3i64),
            Row::new().with("n", 12i64).with("city", "la"),
        ];
        let data = encode_rows_segment(&schema, "s", &rows).unwrap();
        let file = SegmentFile::open(data).unwrap();
        let n = file.entry("n").unwrap();
        assert_eq!(n.zone.min, Some(ZoneValue::Int(-3)));
        assert_eq!(n.zone.max, Some(ZoneValue::Int(12)));
        assert_eq!(n.zone.null_count, 0);
        let city = file.entry("city").unwrap();
        assert_eq!(city.zone.min, Some(ZoneValue::Str("la".into())));
        assert_eq!(city.zone.max, Some(ZoneValue::Str("sf".into())));
        assert_eq!(city.zone.null_count, 1);
    }

    #[test]
    fn rle_kicks_in_for_low_cardinality() {
        let schema = Schema::of("t", &[("k", FieldType::Int)]);
        let constant: Vec<Row> = (0..10_000).map(|_| Row::new().with("k", 7i64)).collect();
        let data = encode_rows_segment(&schema, "s", &constant).unwrap();
        // 10k constant ints collapse to one run; the remaining bulk is the
        // 1250-byte null bitmap (10k bits), far below 8 bytes per value
        assert!(data.len() < 1400, "RLE ineffective: {} bytes", data.len());
        let (_, rows) = decode_rows_segment(&data).unwrap();
        assert_eq!(rows.len(), 10_000);
        assert!(rows.iter().all(|r| r.get_int("k") == Some(7)));
    }

    #[test]
    fn extreme_int_range_roundtrips() {
        // i64::MAX - i64::MIN overflows i64: the i128 widening must hold
        let schema = Schema::of("t", &[("n", FieldType::Int)]);
        let rows = vec![
            Row::new().with("n", i64::MIN),
            Row::new().with("n", i64::MAX),
            Row::new().with("n", 0i64),
        ];
        let data = encode_rows_segment(&schema, "s", &rows).unwrap();
        let (_, rows2) = decode_rows_segment(&data).unwrap();
        assert_eq!(rows2[0].get_int("n"), Some(i64::MIN));
        assert_eq!(rows2[1].get_int("n"), Some(i64::MAX));
        assert_eq!(rows2[2].get_int("n"), Some(0));
    }

    #[test]
    fn corrupt_bytes_error_cleanly() {
        let schema = sample_schema();
        let rows = sample_rows(20);
        let data = encode_rows_segment(&schema, "s", &rows).unwrap();
        // any single-byte flip must be caught (CRC covers the whole body)
        for pos in [0usize, 4, data.len() / 2, data.len() - 1] {
            let mut bad = data.to_vec();
            bad[pos] ^= 0x40;
            assert!(
                matches!(
                    SegmentFile::open(Bytes::from(bad)).and_then(|f| f.read_rows()),
                    Err(Error::Corruption(_))
                ),
                "flip at {pos} not caught"
            );
        }
        // every truncation point must error, never panic
        for cut in 0..data.len() {
            let t = data.slice(0..cut);
            assert!(
                SegmentFile::open(t).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn corrupt_header_cannot_force_huge_alloc() {
        // craft a tiny file declaring u64::MAX rows with a valid CRC: the
        // row-count-vs-size check must reject it before any allocation
        let schema = Schema::of("t", &[("n", FieldType::Int)]);
        let data = encode_rows_segment(&schema, "s", &[Row::new().with("n", 1i64)]).unwrap();
        let mut raw = data.to_vec();
        // nrows u64 lives right after magic+version+flags+3 lpstrs+ncols
        let nrows_off = 4 + 2 + 2 + (4 + 1) + (4 + 1) + 4 + 4;
        raw[nrows_off..nrows_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let len = raw.len();
        let crc = crc32(&raw[..len - 8]);
        raw[len - 8..len - 4].copy_from_slice(&crc.to_le_bytes());
        match SegmentFile::open(Bytes::from(raw)) {
            Err(Error::Corruption(msg)) => assert!(msg.contains("cannot fit"), "{msg}"),
            Err(other) => panic!("wrong error for huge row count: {other}"),
            Ok(_) => panic!("huge row count accepted"),
        }
    }

    #[test]
    fn empty_segment_roundtrips() {
        let schema = sample_schema();
        let data = encode_rows_segment(&schema, "s", &[]).unwrap();
        let file = SegmentFile::open(data).unwrap();
        assert_eq!(file.nrows(), 0);
        let (s2, rows) = file.read_rows().unwrap();
        assert_eq!(s2.fields.len(), schema.fields.len());
        assert!(rows.is_empty());
    }

    #[test]
    fn all_null_string_column_roundtrips() {
        let schema = Schema::of("t", &[("city", FieldType::Str)]);
        let rows = vec![Row::new(), Row::new()];
        let data = encode_rows_segment(&schema, "s", &rows).unwrap();
        let file = SegmentFile::open(data).unwrap();
        assert_eq!(file.entry("city").unwrap().zone.null_count, 2);
        assert_eq!(file.entry("city").unwrap().zone.min, None);
        let (_, rows2) = file.read_rows().unwrap();
        assert!(rows2.iter().all(|r| r.get("city") == Some(&Value::Null)));
    }

    #[test]
    fn magic_sniffing_distinguishes_formats() {
        let schema = Schema::of("t", &[("n", FieldType::Int)]);
        let rows = vec![Row::new().with("n", 1i64)];
        let seg = encode_rows_segment(&schema, "s", &rows).unwrap();
        let col = crate::colfile::encode_columnar(&schema, &rows).unwrap();
        assert!(is_segment_file(&seg));
        assert!(!is_segment_file(&col));
        assert!(!is_segment_file(b"RT"));
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC32 of "123456789" is the classic check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn header_bytes_much_smaller_than_file() {
        let schema = sample_schema();
        let rows = sample_rows(2000);
        let data = encode_rows_segment(&schema, "s", &rows).unwrap();
        let file = SegmentFile::open(data).unwrap();
        assert!(
            file.header_bytes() * 10 < file.file_bytes(),
            "header {} vs file {}",
            file.header_bytes(),
            file.file_bytes()
        );
    }

    #[test]
    fn json_column_roundtrips() {
        let schema = Schema::of("t", &[("payload", FieldType::Json)]);
        let j = rtdi_common::json::parse(r#"{"a":{"b":[1,2]}}"#).unwrap();
        let rows = vec![Row::new().with("payload", Value::Json(Box::new(j.clone())))];
        let data = encode_rows_segment(&schema, "s", &rows).unwrap();
        let (_, rows2) = decode_rows_segment(&data).unwrap();
        assert_eq!(rows2[0].get("payload"), Some(&Value::Json(Box::new(j))));
    }
}
