//! # rtdi-storage
//!
//! The archival/storage layer of the stack (§3 "Storage", §4.4 "HDFS for
//! archival store"). Provides:
//!
//! - [`object`]: a generic object/blob store interface with read-after-write
//!   consistency (the paper's minimum storage requirement), with in-memory
//!   and local-filesystem backends plus a fault-injecting wrapper used by
//!   the failure experiments;
//! - [`colfile`]: a compact columnar file format (the "Parquet" stand-in)
//!   with dictionary encoding and bit-packing;
//! - [`archival`]: raw-log persistence of stream records (the "Avro raw
//!   logs" of §4.4) and the compaction process that merges them into
//!   columnar files;
//! - [`hive`]: date-partitioned long-term tables over columnar files — the
//!   source of truth used for backfills (§7) and Pinot offline segments;
//! - [`segfile`]: the real on-disk OLAP segment format (little-endian,
//!   dictionary + bit-packed/var-byte forward indexes, RLE runs, zone
//!   maps, CRC32-checked footer) with lazy per-column decoding.

pub mod archival;
pub mod colfile;
pub mod hive;
pub mod keyed;
pub mod object;
pub mod segfile;

pub use archival::{ArchivalWriter, Compactor};
pub use colfile::{decode_columnar, encode_columnar};
pub use hive::{HiveCatalog, HiveTable};
pub use keyed::{key_group_of, shard_of_group, KeyedSnapshot, KEY_GROUPS};
pub use object::{FaultyStore, InMemoryStore, LocalFsStore, MirroredStore, ObjectStore};
pub use segfile::{
    decode_rows_segment, encode_rows_segment, is_segment_file, SegmentFile, SegmentMeta,
};
