//! Object/blob store abstraction.
//!
//! §3: "This provides a generic object or blob storage interface for all
//! the layers above it with a read after write consistency guarantee...
//! optimized for high write rate." Flink checkpoints, Pinot segment
//! archival and raw-log persistence all sit on this trait, so the same
//! pipeline can run against memory (tests/benches) or the local
//! filesystem.

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use rtdi_common::fault_point;
use rtdi_common::{Error, FaultPoint, Result};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A flat key -> bytes store with read-after-write consistency.
pub trait ObjectStore: Send + Sync {
    /// Write (or overwrite) an object.
    fn put(&self, key: &str, data: Bytes) -> Result<()>;
    /// Read an object.
    fn get(&self, key: &str) -> Result<Bytes>;
    /// Delete an object. Deleting a missing key is not an error.
    fn delete(&self, key: &str) -> Result<()>;
    /// List keys with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;
    /// Whether a key exists.
    fn exists(&self, key: &str) -> Result<bool> {
        Ok(self.list(key)?.iter().any(|k| k == key))
    }
}

/// In-memory object store; the default backend for tests and benches.
#[derive(Debug, Default)]
pub struct InMemoryStore {
    objects: RwLock<BTreeMap<String, Bytes>>,
    bytes_written: AtomicU64,
}

impl InMemoryStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes ever written; used by disk-footprint experiments (E10).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Current total stored bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.objects.read().values().map(|b| b.len() as u64).sum()
    }

    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }
}

impl ObjectStore for InMemoryStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        fault_point!(FaultPoint::StorageObjectPut);
        self.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.objects.write().insert(key.to_string(), data);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        fault_point!(FaultPoint::StorageObjectGet);
        self.objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("object '{key}'")))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.objects.write().remove(key);
        Ok(())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        Ok(self
            .objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn exists(&self, key: &str) -> Result<bool> {
        Ok(self.objects.read().contains_key(key))
    }
}

/// Local-filesystem backend. Keys map to files under a root directory;
/// `/` in keys becomes directory structure.
#[derive(Debug)]
pub struct LocalFsStore {
    root: PathBuf,
}

impl LocalFsStore {
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(LocalFsStore { root })
    }

    fn path_for(&self, key: &str) -> Result<PathBuf> {
        if key.contains("..") || key.starts_with('/') {
            return Err(Error::InvalidArgument(format!(
                "invalid object key '{key}'"
            )));
        }
        Ok(self.root.join(key))
    }
}

impl ObjectStore for LocalFsStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        fault_point!(FaultPoint::StorageObjectPut);
        let path = self.path_for(key)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // write-then-rename for atomicity (read-after-write without torn reads)
        let tmp = path.with_extension("tmp-rtdi");
        std::fs::write(&tmp, &data)?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        fault_point!(FaultPoint::StorageObjectGet);
        let path = self.path_for(key)?;
        match std::fs::read(&path) {
            Ok(data) => Ok(Bytes::from(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(Error::NotFound(format!("object '{key}'")))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn delete(&self, key: &str) -> Result<()> {
        let path = self.path_for(key)?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let entries = match std::fs::read_dir(&dir) {
                Ok(e) => e,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            for entry in entries {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if let Ok(rel) = path.strip_prefix(&self.root) {
                    let key = rel.to_string_lossy().replace('\\', "/");
                    if key.starts_with(prefix) && !key.ends_with(".tmp-rtdi") {
                        out.push(key);
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

/// Bandwidth/outage-modelling wrapper used by the failure experiments:
/// the E13 centralized-segment-store bottleneck models the archive as a
/// store with limited upload bandwidth; availability experiments flip the
/// store into a failing state. (Transient per-operation faults are no
/// longer modelled here — arm the `storage.object_put/get` chaos points
/// instead.)
pub struct FaultyStore<S> {
    inner: S,
    /// Simulated per-put latency in microseconds of busy-wait-free delay
    /// (applied via thread::sleep).
    put_delay_us: AtomicU64,
    /// When true, every operation fails with `Unavailable`.
    down: std::sync::atomic::AtomicBool,
    /// Serializes puts, modelling a single-controller upload path.
    serialize_puts: bool,
    put_lock: Mutex<()>,
}

impl<S: ObjectStore> FaultyStore<S> {
    pub fn new(inner: S) -> Self {
        FaultyStore {
            inner,
            put_delay_us: AtomicU64::new(0),
            down: std::sync::atomic::AtomicBool::new(false),
            serialize_puts: false,
            put_lock: Mutex::new(()),
        }
    }

    /// Model a slow archive: every put takes at least `us` microseconds.
    /// When `serialize` is set, puts also contend on a single lock, like
    /// the single-controller backup path the paper calls out in §4.3.4.
    pub fn with_put_delay(mut self, us: u64, serialize: bool) -> Self {
        self.put_delay_us.store(us, Ordering::Relaxed);
        self.serialize_puts = serialize;
        self
    }

    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn check_up(&self) -> Result<()> {
        if self.down.load(Ordering::SeqCst) {
            Err(Error::Unavailable("object store down".into()))
        } else {
            Ok(())
        }
    }
}

impl<S: ObjectStore> ObjectStore for FaultyStore<S> {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        self.check_up()?;
        let delay = self.put_delay_us.load(Ordering::Relaxed);
        if self.serialize_puts {
            let _g = self.put_lock.lock();
            if delay > 0 {
                std::thread::sleep(std::time::Duration::from_micros(delay));
            }
            self.inner.put(key, data)
        } else {
            if delay > 0 {
                std::thread::sleep(std::time::Duration::from_micros(delay));
            }
            self.inner.put(key, data)
        }
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.check_up()?;
        self.inner.get(key)
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.check_up()?;
        self.inner.delete(key)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.check_up()?;
        self.inner.list(prefix)
    }
}

/// Cross-region replicated object store (§6.4): every write lands on the
/// primary region's store and is mirrored best-effort to the backup
/// region. Checkpoint persistence stays strict on the primary (a mirror
/// hiccup must not fail the job), while a region failover reads from the
/// surviving mirror via [`MirroredStore::mirror`]. `resync` replays the
/// primary into the mirror after an outage, returning how many objects
/// were copied — the replication catch-up measure the DR drill reports.
pub struct MirroredStore {
    primary: Arc<dyn ObjectStore>,
    mirror: Arc<dyn ObjectStore>,
    mirror_failures: AtomicU64,
}

impl MirroredStore {
    pub fn new(primary: Arc<dyn ObjectStore>, mirror: Arc<dyn ObjectStore>) -> Self {
        MirroredStore {
            primary,
            mirror,
            mirror_failures: AtomicU64::new(0),
        }
    }

    /// The backup-region handle; survives when the primary region dies.
    pub fn mirror(&self) -> Arc<dyn ObjectStore> {
        Arc::clone(&self.mirror)
    }

    /// The primary-region handle.
    pub fn primary(&self) -> Arc<dyn ObjectStore> {
        Arc::clone(&self.primary)
    }

    /// Writes that reached the primary but failed to mirror; each is a
    /// window where a region kill would force fallback to an older copy.
    pub fn mirror_failures(&self) -> u64 {
        self.mirror_failures.load(Ordering::Relaxed)
    }

    /// Copy every primary object whose bytes are missing or absent from
    /// the mirror. Returns the number of objects copied.
    pub fn resync(&self) -> Result<usize> {
        let mut copied = 0;
        for key in self.primary.list("")? {
            let data = self.primary.get(&key)?;
            let up_to_date = matches!(self.mirror.get(&key), Ok(existing) if existing == data);
            if !up_to_date {
                self.mirror.put(&key, data)?;
                copied += 1;
            }
        }
        Ok(copied)
    }
}

impl ObjectStore for MirroredStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        self.primary.put(key, data.clone())?;
        if self.mirror.put(key, data).is_err() {
            self.mirror_failures.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        match self.primary.get(key) {
            Ok(data) => Ok(data),
            Err(_) => self.mirror.get(key),
        }
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.primary.delete(key)?;
        if self.mirror.delete(key).is_err() {
            self.mirror_failures.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        match self.primary.list(prefix) {
            Ok(mut keys) => {
                if let Ok(mirrored) = self.mirror.list(prefix) {
                    keys.extend(mirrored);
                    keys.sort();
                    keys.dedup();
                }
                Ok(keys)
            }
            Err(_) => self.mirror.list(prefix),
        }
    }
}

/// Convenience alias: the store type most components hold.
pub type SharedStore = Arc<dyn ObjectStore>;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(store: &dyn ObjectStore) {
        store.put("a/b/one", Bytes::from_static(b"1")).unwrap();
        store.put("a/b/two", Bytes::from_static(b"22")).unwrap();
        store.put("a/c/three", Bytes::from_static(b"333")).unwrap();
        assert_eq!(store.get("a/b/one").unwrap(), Bytes::from_static(b"1"));
        // read-after-write on overwrite
        store.put("a/b/one", Bytes::from_static(b"1x")).unwrap();
        assert_eq!(store.get("a/b/one").unwrap(), Bytes::from_static(b"1x"));
        assert_eq!(
            store.list("a/b/").unwrap(),
            vec!["a/b/one".to_string(), "a/b/two".to_string()]
        );
        assert_eq!(store.list("a/").unwrap().len(), 3);
        assert!(store.exists("a/c/three").unwrap());
        store.delete("a/b/one").unwrap();
        assert!(!store.exists("a/b/one").unwrap());
        assert!(store.get("a/b/one").is_err());
        store.delete("a/b/one").unwrap(); // idempotent
    }

    #[test]
    fn memory_store_roundtrip() {
        roundtrip(&InMemoryStore::new());
    }

    #[test]
    fn fs_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rtdi-fs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = LocalFsStore::new(&dir).unwrap();
        roundtrip(&store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_store_rejects_escaping_keys() {
        let dir = std::env::temp_dir().join(format!("rtdi-fs-esc-{}", std::process::id()));
        let store = LocalFsStore::new(&dir).unwrap();
        assert!(store.put("../evil", Bytes::new()).is_err());
        assert!(store.get("/etc/passwd").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_store_accounts_bytes() {
        let s = InMemoryStore::new();
        s.put("k", Bytes::from(vec![0u8; 100])).unwrap();
        s.put("k", Bytes::from(vec![0u8; 50])).unwrap();
        assert_eq!(s.bytes_written(), 150);
        assert_eq!(s.stored_bytes(), 50); // overwrite replaced
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn faulty_store_down_blocks_everything() {
        let s = FaultyStore::new(InMemoryStore::new());
        s.put("k", Bytes::from_static(b"v")).unwrap();
        s.set_down(true);
        assert!(matches!(s.get("k"), Err(Error::Unavailable(_))));
        assert!(matches!(
            s.put("k2", Bytes::new()),
            Err(Error::Unavailable(_))
        ));
        s.set_down(false);
        assert_eq!(s.get("k").unwrap(), Bytes::from_static(b"v"));
    }

    #[test]
    fn mirrored_store_survives_mirror_outage_and_resyncs() {
        let primary = Arc::new(InMemoryStore::new());
        let mirror_inner = Arc::new(FaultyStore::new(InMemoryStore::new()));
        let mirrored = MirroredStore::new(primary.clone(), mirror_inner.clone());

        mirrored.put("ckpt/1", Bytes::from_static(b"a")).unwrap();
        assert_eq!(
            mirrored.mirror().get("ckpt/1").unwrap(),
            Bytes::from_static(b"a")
        );

        // mirror region goes dark: primary writes still succeed
        mirror_inner.set_down(true);
        mirrored.put("ckpt/2", Bytes::from_static(b"b")).unwrap();
        mirrored.put("ckpt/1", Bytes::from_static(b"a2")).unwrap();
        assert_eq!(mirrored.mirror_failures(), 2);
        assert_eq!(mirrored.get("ckpt/2").unwrap(), Bytes::from_static(b"b"));

        // mirror heals: catch-up copies the missed + stale objects only
        mirror_inner.set_down(false);
        assert_eq!(mirrored.resync().unwrap(), 2);
        assert_eq!(mirrored.resync().unwrap(), 0, "idempotent");
        assert_eq!(
            mirrored.mirror().get("ckpt/1").unwrap(),
            Bytes::from_static(b"a2")
        );

        // primary region dies: reads fall back to the mirror
        let gone = Arc::new(FaultyStore::new(InMemoryStore::new()));
        gone.set_down(true);
        let failed_over = MirroredStore::new(gone, mirror_inner.clone());
        assert_eq!(failed_over.get("ckpt/2").unwrap(), Bytes::from_static(b"b"));
        assert_eq!(failed_over.list("ckpt/").unwrap().len(), 2);
    }

    #[test]
    fn chaos_point_fails_every_nth_put() {
        use rtdi_common::chaos::{self, FaultKind, FaultPlan, Trigger};
        let _g = chaos::test_guard();
        chaos::registry().reset(0x5707A6E);
        chaos::registry().arm(
            FaultPoint::StorageObjectPut,
            FaultPlan::fail(FaultKind::Unavailable, Trigger::EveryNth(3)),
        );
        let s = InMemoryStore::new();
        let mut failures = 0;
        for i in 0..9 {
            if s.put(&format!("k{i}"), Bytes::new()).is_err() {
                failures += 1;
            }
        }
        chaos::registry().disarm_all();
        assert_eq!(failures, 3);
        assert_eq!(s.object_count(), 6);
    }
}
