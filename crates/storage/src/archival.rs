//! Raw-log archival and compaction.
//!
//! §4.4: "Most of this data comes from Kafka which is in Avro format and is
//! persisted in HDFS as raw logs. These logs are then merged into the long
//! term Parquet data format using a compaction process."
//!
//! [`ArchivalWriter`] appends micro-batches of records as raw-log objects
//! keyed by `raw/<dataset>/<date>/<seq>`; [`Compactor`] merges all raw logs
//! of a (dataset, date) into one columnar file under
//! `warehouse/<dataset>/<date>/part-<n>` and registers it with the Hive
//! catalog.

use crate::colfile::{
    get_f64_checked, get_i64_checked, get_u32_checked, get_u8_checked, split_checked,
};
use crate::hive::HiveCatalog;
use crate::object::ObjectStore;
use crate::segfile;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rtdi_common::{Error, Record, Result, RetryPolicy, Row, Schema, Timestamp, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Format a timestamp into the `YYYY-MM-DD`-style date partition used for
/// archival layout. We use day buckets computed from epoch days — exact
/// calendar rendering is irrelevant to the experiments, only stable
/// bucketing matters.
pub fn date_partition(ts: Timestamp) -> String {
    let day = ts.div_euclid(86_400_000);
    format!("d{day:06}")
}

/// Raw-log encoding of a record batch: length-prefixed rows with key,
/// timestamp and headers (public: the tiered-storage extension reuses it
/// for cold chunks).
pub fn encode_raw(records: &[Record]) -> Result<Bytes> {
    let mut buf = BytesMut::new();
    buf.put_u32(records.len() as u32);
    for r in records {
        buf.put_i64(r.timestamp);
        match &r.key {
            Some(Value::Str(s)) => {
                buf.put_u8(1);
                buf.put_u32(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Some(Value::Int(i)) => {
                buf.put_u8(2);
                buf.put_i64(*i);
            }
            _ => buf.put_u8(0),
        }
        buf.put_u32(r.headers.len() as u32);
        for (k, v) in r.headers.iter() {
            buf.put_u32(k.len() as u32);
            buf.put_slice(k.as_bytes());
            buf.put_u32(v.len() as u32);
            buf.put_slice(v.as_bytes());
        }
        buf.put_u32(r.value.len() as u32);
        for (name, value) in r.value.iter() {
            buf.put_u32(name.len() as u32);
            buf.put_slice(name.as_bytes());
            encode_value(&mut buf, value);
        }
    }
    Ok(buf.freeze())
}

fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64(*i);
        }
        Value::Double(d) => {
            buf.put_u8(3);
            buf.put_f64(*d);
        }
        Value::Str(s) => {
            buf.put_u8(4);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.put_u8(5);
            buf.put_u32(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Json(j) => {
            let s = rtdi_common::json::to_string(j);
            buf.put_u8(6);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
    }
}

fn decode_value(buf: &mut Bytes) -> Result<Value> {
    let tag = get_u8_checked(buf, "value tag")?;
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Bool(get_u8_checked(buf, "bool value")? == 1),
        2 => Value::Int(get_i64_checked(buf, "int value")?),
        3 => Value::Double(get_f64_checked(buf, "double value")?),
        4 => {
            let len = get_u32_checked(buf, "string length")? as usize;
            let s = split_checked(buf, len, "string value")?;
            Value::Str(
                String::from_utf8(s.to_vec())
                    .map_err(|_| Error::Corruption("invalid utf8 in raw log".into()))?,
            )
        }
        5 => {
            let len = get_u32_checked(buf, "bytes length")? as usize;
            Value::Bytes(split_checked(buf, len, "bytes value")?.to_vec())
        }
        6 => {
            let len = get_u32_checked(buf, "json length")? as usize;
            let s = split_checked(buf, len, "json value")?;
            let text = String::from_utf8(s.to_vec())
                .map_err(|_| Error::Corruption("invalid utf8 in raw log".into()))?;
            let j = rtdi_common::json::parse(&text)
                .map_err(|_| Error::Corruption("invalid json in raw log".into()))?;
            Value::Json(Box::new(j))
        }
        t => return Err(Error::Corruption(format!("bad value tag {t}"))),
    })
}

/// Encode a bare row list (used by compute-state checkpoints).
pub fn encode_rows(rows: &[Row]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32(rows.len() as u32);
    for row in rows {
        buf.put_u32(row.len() as u32);
        for (name, value) in row.iter() {
            buf.put_u32(name.len() as u32);
            buf.put_slice(name.as_bytes());
            encode_value(&mut buf, value);
        }
    }
    buf.freeze()
}

/// Inverse of [`encode_rows`]. Bounds-checked throughout: corrupt input
/// returns `Err(Corruption)` and declared counts cannot force giant
/// preallocations.
pub fn decode_rows(data: &Bytes) -> Result<Vec<Row>> {
    let mut buf = data.clone();
    let n = get_u32_checked(&mut buf, "row count")? as usize;
    // every row needs at least its 4-byte column count
    if n > buf.remaining() / 4 {
        return Err(Error::Corruption(format!(
            "row count {n} exceeds remaining bytes"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let ncols = get_u32_checked(&mut buf, "column count")? as usize;
        if ncols > buf.remaining() / 5 {
            return Err(Error::Corruption(format!(
                "column count {ncols} exceeds remaining bytes"
            )));
        }
        let mut row = Row::with_capacity(ncols);
        for _ in 0..ncols {
            let nlen = get_u32_checked(&mut buf, "column name length")? as usize;
            let name = String::from_utf8(split_checked(&mut buf, nlen, "column name")?.to_vec())
                .map_err(|_| Error::Corruption("invalid column name".into()))?;
            row.push(name, decode_value(&mut buf)?);
        }
        out.push(row);
    }
    Ok(out)
}

/// Decode a raw-log object back into records. Bounds-checked throughout:
/// corrupt input returns `Err(Corruption)`, never panics.
pub fn decode_raw(data: &Bytes) -> Result<Vec<Record>> {
    let mut buf = data.clone();
    let n = get_u32_checked(&mut buf, "record count")? as usize;
    // every record needs at least ts(8) + key tag(1) + two counts(8)
    if n > buf.remaining() / 17 {
        return Err(Error::Corruption(format!(
            "record count {n} exceeds remaining bytes"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let ts = get_i64_checked(&mut buf, "record timestamp")?;
        let key = match get_u8_checked(&mut buf, "key tag")? {
            1 => {
                let len = get_u32_checked(&mut buf, "key length")? as usize;
                let s = split_checked(&mut buf, len, "key")?;
                Some(Value::Str(
                    String::from_utf8(s.to_vec())
                        .map_err(|_| Error::Corruption("invalid utf8 key".into()))?,
                ))
            }
            2 => Some(Value::Int(get_i64_checked(&mut buf, "int key")?)),
            _ => None,
        };
        let nh = get_u32_checked(&mut buf, "header count")? as usize;
        if nh > buf.remaining() / 8 {
            return Err(Error::Corruption(format!(
                "header count {nh} exceeds remaining bytes"
            )));
        }
        let mut rec = Record::new(Row::new(), ts);
        rec.key = key;
        for _ in 0..nh {
            let klen = get_u32_checked(&mut buf, "header key length")? as usize;
            let k = String::from_utf8(split_checked(&mut buf, klen, "header key")?.to_vec())
                .map_err(|_| Error::Corruption("invalid header".into()))?;
            let vlen = get_u32_checked(&mut buf, "header value length")? as usize;
            let v = String::from_utf8(split_checked(&mut buf, vlen, "header value")?.to_vec())
                .map_err(|_| Error::Corruption("invalid header".into()))?;
            rec.headers.set(k, v);
        }
        let ncols = get_u32_checked(&mut buf, "column count")? as usize;
        if ncols > buf.remaining() / 5 {
            return Err(Error::Corruption(format!(
                "column count {ncols} exceeds remaining bytes"
            )));
        }
        let mut row = Row::with_capacity(ncols);
        for _ in 0..ncols {
            let nlen = get_u32_checked(&mut buf, "column name length")? as usize;
            let name = String::from_utf8(split_checked(&mut buf, nlen, "column name")?.to_vec())
                .map_err(|_| Error::Corruption("invalid column name".into()))?;
            row.push(name, decode_value(&mut buf)?);
        }
        rec.value = row;
        out.push(rec);
    }
    Ok(out)
}

/// Persists stream records into raw-log objects, bucketed by dataset and
/// date.
pub struct ArchivalWriter {
    store: Arc<dyn ObjectStore>,
    dataset: String,
    seq: AtomicU64,
}

impl ArchivalWriter {
    pub fn new(store: Arc<dyn ObjectStore>, dataset: impl Into<String>) -> Self {
        ArchivalWriter {
            store,
            dataset: dataset.into(),
            seq: AtomicU64::new(0),
        }
    }

    /// Write one micro-batch; records may span dates — they are split into
    /// per-date objects so compaction stays date-aligned.
    pub fn write_batch(&self, records: &[Record]) -> Result<Vec<String>> {
        let mut by_date: std::collections::BTreeMap<String, Vec<Record>> = Default::default();
        for r in records {
            by_date
                .entry(date_partition(r.timestamp))
                .or_default()
                .push(r.clone());
        }
        let mut keys = Vec::new();
        let policy = RetryPolicy::new(4).with_backoff_us(50, 2_000);
        for (date, recs) in by_date {
            let seq = self.seq.fetch_add(1, Ordering::SeqCst);
            let key = format!("raw/{}/{}/log-{seq:08}", self.dataset, date);
            let data = encode_raw(&recs)?;
            // a flaky archive is absorbed here: re-putting the same key is
            // an idempotent overwrite, so retries cannot duplicate data
            policy.run(|_| self.store.put(&key, data.clone()))?;
            keys.push(key);
        }
        Ok(keys)
    }

    /// List the raw-log object keys for a date.
    pub fn raw_keys(&self, date: &str) -> Result<Vec<String>> {
        self.store.list(&format!("raw/{}/{}/", self.dataset, date))
    }

    /// Read all raw records of a date (ordered by object key, i.e. write
    /// order).
    pub fn read_raw(&self, date: &str) -> Result<Vec<Record>> {
        let mut out = Vec::new();
        for key in self.raw_keys(date)? {
            out.extend(decode_raw(&self.store.get(&key)?)?);
        }
        Ok(out)
    }
}

/// Merges raw logs into columnar warehouse files and registers them in the
/// Hive catalog — the §4.4 compaction process.
pub struct Compactor {
    store: Arc<dyn ObjectStore>,
    catalog: HiveCatalog,
}

impl Compactor {
    pub fn new(store: Arc<dyn ObjectStore>, catalog: HiveCatalog) -> Self {
        Compactor { store, catalog }
    }

    /// Compact every raw log of `(dataset, date)` into a single columnar
    /// part file, register it with the catalog, and delete the raw logs.
    /// Returns the number of rows compacted.
    pub fn compact(&self, dataset: &str, date: &str, schema: &Schema) -> Result<usize> {
        let raw_prefix = format!("raw/{dataset}/{date}/");
        let keys = self.store.list(&raw_prefix)?;
        if keys.is_empty() {
            return Ok(0);
        }
        let mut rows = Vec::new();
        for key in &keys {
            for rec in decode_raw(&self.store.get(key)?)? {
                let mut row = rec.value;
                // preserve event time for time-bounded backfills
                if row.get("__ts").is_none() {
                    row.push("__ts", rec.timestamp);
                }
                rows.push(row);
            }
        }
        let mut full_schema = schema.clone();
        if full_schema.field("__ts").is_none() {
            full_schema.fields.push(rtdi_common::Field::new(
                "__ts",
                rtdi_common::FieldType::Timestamp,
            ));
        }
        let part = format!("warehouse/{dataset}/{date}/part-00000");
        // real on-disk segment format: dictionary + bit-packed forward
        // indexes, zone maps and a CRC-checked footer (§4.3)
        let seg_name = format!("{dataset}-{date}-00000");
        let data = segfile::encode_rows_segment(&full_schema, &seg_name, &rows)?;
        self.store.put(&part, data)?;
        self.catalog
            .register_partition(dataset, date, &part, rows.len())?;
        for key in keys {
            self.store.delete(&key)?;
        }
        Ok(rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::InMemoryStore;
    use rtdi_common::FieldType;

    fn rec(i: i64, ts: Timestamp) -> Record {
        Record::new(
            Row::new().with("id", i).with("city", format!("c{}", i % 3)),
            ts,
        )
        .with_key(format!("k{i}"))
        .with_header("rtdi.unique_id", format!("u{i}"))
    }

    #[test]
    fn raw_roundtrip() {
        let records: Vec<Record> = (0..50).map(|i| rec(i, 1000 + i)).collect();
        let data = encode_raw(&records).unwrap();
        let decoded = decode_raw(&data).unwrap();
        assert_eq!(records, decoded);
    }

    #[test]
    fn date_partition_buckets_by_day() {
        assert_eq!(date_partition(0), "d000000");
        assert_eq!(date_partition(86_400_000), "d000001");
        assert_eq!(date_partition(86_399_999), "d000000");
        // negative timestamps bucket consistently too
        assert_eq!(
            date_partition(-1),
            "d-00001".replace("d-00001", &date_partition(-1))
        );
    }

    #[test]
    fn writer_splits_batches_by_date() {
        let store = Arc::new(InMemoryStore::new());
        let w = ArchivalWriter::new(store.clone(), "trips");
        let day = 86_400_000i64;
        let batch: Vec<Record> = vec![rec(1, 10), rec(2, day + 10), rec(3, 20)];
        let keys = w.write_batch(&batch).unwrap();
        assert_eq!(keys.len(), 2);
        let d0 = w.read_raw("d000000").unwrap();
        let d1 = w.read_raw("d000001").unwrap();
        assert_eq!(d0.len(), 2);
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].value.get_int("id"), Some(2));
    }

    #[test]
    fn compaction_merges_and_registers() {
        let store = Arc::new(InMemoryStore::new());
        let catalog = HiveCatalog::new(store.clone() as Arc<dyn ObjectStore>);
        let schema = Schema::of("trips", &[("id", FieldType::Int), ("city", FieldType::Str)]);
        catalog.create_table("trips", schema.clone()).unwrap();
        let w = ArchivalWriter::new(store.clone(), "trips");
        for chunk in 0..5 {
            let batch: Vec<Record> = (0..10).map(|i| rec(chunk * 10 + i, 100 + i)).collect();
            w.write_batch(&batch).unwrap();
        }
        assert_eq!(w.raw_keys("d000000").unwrap().len(), 5);
        let compactor = Compactor::new(store.clone(), catalog.clone());
        let n = compactor.compact("trips", "d000000", &schema).unwrap();
        assert_eq!(n, 50);
        // raw logs gone, warehouse file present
        assert!(w.raw_keys("d000000").unwrap().is_empty());
        let table = catalog.table("trips").unwrap();
        let rows = table.scan_partition("d000000").unwrap();
        assert_eq!(rows.len(), 50);
        // event time preserved
        assert!(rows[0].get_int("__ts").is_some());
    }

    #[test]
    fn compacting_empty_date_is_noop() {
        let store = Arc::new(InMemoryStore::new());
        let catalog = HiveCatalog::new(store.clone() as Arc<dyn ObjectStore>);
        let schema = Schema::of("t", &[("id", FieldType::Int)]);
        catalog.create_table("t", schema.clone()).unwrap();
        let c = Compactor::new(store, catalog);
        assert_eq!(c.compact("t", "d000099", &schema).unwrap(), 0);
    }
}
