//! Columnar file format — the "Parquet" stand-in for long-term storage.
//!
//! §4.4: raw logs "are then merged into the long term Parquet data format
//! using a compaction process". This module provides a compact binary
//! encoding of a batch of rows:
//!
//! - per-column layout (all values of a column stored contiguously);
//! - dictionary encoding for strings (each distinct string stored once);
//! - bit-packed dictionary ids and integers (minimum width to cover the
//!   value range), mirroring Pinot's "bit compressed forward indices" that
//!   the paper credits for Pinot's small footprint (§4.3);
//! - a null bitmap per column.
//!
//! The same encoder is reused by Pinot offline segments, so the footprint
//! comparisons in E10 measure a realistic columnar representation.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rtdi_common::{Error, FieldType, Result, Row, Schema, Value};

const MAGIC: u32 = 0x5254_4331; // "RTC1"

/// Encode rows under a schema into the columnar format.
pub fn encode_columnar(schema: &Schema, rows: &[Row]) -> Result<Bytes> {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_u32(MAGIC);
    put_str(&mut buf, &schema.name);
    buf.put_u32(schema.fields.len() as u32);
    buf.put_u64(rows.len() as u64);
    for field in &schema.fields {
        put_str(&mut buf, &field.name);
        buf.put_u8(type_tag(field.field_type));
        encode_column(&mut buf, field, rows)?;
    }
    Ok(buf.freeze())
}

/// Decode a columnar file back into `(schema, rows)`.
///
/// Never panics on corrupt bytes: every read is bounds-checked and the
/// header-declared field/row counts are validated against the remaining
/// buffer size before anything is preallocated, so truncated or
/// bit-flipped input surfaces as [`Error::Corruption`].
pub fn decode_columnar(data: &Bytes) -> Result<(Schema, Vec<Row>)> {
    let mut buf = data.clone();
    if buf.remaining() < 4 || buf.get_u32() != MAGIC {
        return Err(Error::Corruption("bad columnar file magic".into()));
    }
    let name = get_str(&mut buf)?;
    let nfields = get_u32_checked(&mut buf, "field count")? as usize;
    let nrows = get_u64_checked(&mut buf, "row count")? as usize;
    // every field occupies at least name(4) + tag(1) + bitmap len(4) +
    // the null bitmap itself: a corrupt header cannot force a huge
    // preallocation from a tiny buffer
    let min_per_field = 9usize.saturating_add(nrows.div_ceil(8));
    let plausible = match nfields.checked_mul(min_per_field) {
        Some(min_total) => min_total <= buf.remaining(),
        None => false,
    };
    if !plausible || (nfields == 0 && nrows != 0) {
        return Err(Error::Corruption(format!(
            "declared {nfields} fields x {nrows} rows cannot fit in {} bytes",
            buf.remaining()
        )));
    }
    let mut fields = Vec::with_capacity(nfields);
    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let fname = get_str(&mut buf)?;
        let ftype = tag_type(get_u8_checked(&mut buf, "type tag")?)?;
        let col = decode_column(&mut buf, ftype, nrows)?;
        fields.push(rtdi_common::Field::new(fname, ftype));
        columns.push(col);
    }
    let schema = Schema::new(name, fields);
    let mut rows = Vec::with_capacity(nrows);
    for i in 0..nrows {
        let mut row = Row::with_capacity(nfields);
        for (f, col) in schema.fields.iter().zip(&columns) {
            row.push(f.name.clone(), col[i].clone());
        }
        rows.push(row);
    }
    Ok((schema, rows))
}

fn type_tag(t: FieldType) -> u8 {
    match t {
        FieldType::Bool => 0,
        FieldType::Int => 1,
        FieldType::Double => 2,
        FieldType::Str => 3,
        FieldType::Bytes => 4,
        FieldType::Json => 5,
        FieldType::Timestamp => 6,
    }
}

fn tag_type(tag: u8) -> Result<FieldType> {
    Ok(match tag {
        0 => FieldType::Bool,
        1 => FieldType::Int,
        2 => FieldType::Double,
        3 => FieldType::Str,
        4 => FieldType::Bytes,
        5 => FieldType::Json,
        6 => FieldType::Timestamp,
        t => return Err(Error::Corruption(format!("unknown type tag {t}"))),
    })
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = get_u32_checked(buf, "string length")? as usize;
    if buf.remaining() < len {
        return Err(Error::Corruption("truncated string body".into()));
    }
    let bytes = buf.split_to(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| Error::Corruption("invalid utf8".into()))
}

// Bounds-checked reads: the `Buf` trait panics on underflow, so every
// decoder read funnels through these and reports `Error::Corruption`.

pub(crate) fn get_u8_checked(buf: &mut Bytes, what: &str) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(Error::Corruption(format!("truncated {what}")));
    }
    Ok(buf.get_u8())
}

pub(crate) fn get_u32_checked(buf: &mut Bytes, what: &str) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(Error::Corruption(format!("truncated {what}")));
    }
    Ok(buf.get_u32())
}

pub(crate) fn get_u64_checked(buf: &mut Bytes, what: &str) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(Error::Corruption(format!("truncated {what}")));
    }
    Ok(buf.get_u64())
}

pub(crate) fn get_i64_checked(buf: &mut Bytes, what: &str) -> Result<i64> {
    if buf.remaining() < 8 {
        return Err(Error::Corruption(format!("truncated {what}")));
    }
    Ok(buf.get_i64())
}

pub(crate) fn get_f64_checked(buf: &mut Bytes, what: &str) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(Error::Corruption(format!("truncated {what}")));
    }
    Ok(buf.get_f64())
}

pub(crate) fn split_checked(buf: &mut Bytes, n: usize, what: &str) -> Result<Bytes> {
    if buf.remaining() < n {
        return Err(Error::Corruption(format!("truncated {what}")));
    }
    Ok(buf.split_to(n))
}

/// Minimum number of bits needed to represent values in `0..=max`.
pub fn bits_for(max: u64) -> u32 {
    if max == 0 {
        1
    } else {
        64 - max.leading_zeros()
    }
}

/// Bit-pack a slice of u64 values each fitting in `bits` bits.
pub fn bitpack(values: &[u64], bits: u32) -> Vec<u8> {
    let total_bits = values.len() * bits as usize;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    let mut bitpos = 0usize;
    for &v in values {
        for b in 0..bits {
            if (v >> b) & 1 == 1 {
                out[bitpos / 8] |= 1 << (bitpos % 8);
            }
            bitpos += 1;
        }
    }
    out
}

/// Inverse of [`bitpack`].
pub fn bitunpack(data: &[u8], bits: u32, count: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut bitpos = 0usize;
    for _ in 0..count {
        let mut v = 0u64;
        for b in 0..bits {
            if bitpos / 8 < data.len() && (data[bitpos / 8] >> (bitpos % 8)) & 1 == 1 {
                v |= 1 << b;
            }
            bitpos += 1;
        }
        out.push(v);
    }
    out
}

fn null_bitmap(rows: &[Row], name: &str) -> Vec<u8> {
    let mut bm = vec![0u8; rows.len().div_ceil(8)];
    for (i, row) in rows.iter().enumerate() {
        let is_null = matches!(row.get(name), None | Some(Value::Null));
        if is_null {
            bm[i / 8] |= 1 << (i % 8);
        }
    }
    bm
}

fn is_null(bm: &[u8], i: usize) -> bool {
    bm[i / 8] >> (i % 8) & 1 == 1
}

fn encode_column(buf: &mut BytesMut, field: &rtdi_common::Field, rows: &[Row]) -> Result<()> {
    let name = field.name.as_str();
    let bm = null_bitmap(rows, name);
    buf.put_u32(bm.len() as u32);
    buf.put_slice(&bm);
    match field.field_type {
        FieldType::Bool => {
            let vals: Vec<u64> = rows
                .iter()
                .map(|r| matches!(r.get(name), Some(Value::Bool(true))) as u64)
                .collect();
            let packed = bitpack(&vals, 1);
            buf.put_u32(packed.len() as u32);
            buf.put_slice(&packed);
        }
        FieldType::Int | FieldType::Timestamp => {
            // frame-of-reference + bit packing
            let vals: Vec<i64> = rows
                .iter()
                .map(|r| r.get(name).and_then(Value::as_int).unwrap_or(0))
                .collect();
            let min = vals.iter().copied().min().unwrap_or(0);
            let max = vals.iter().copied().max().unwrap_or(0);
            // widen through i128: the full i64 range overflows (max - min)
            let width = bits_for((max as i128 - min as i128) as u64);
            buf.put_i64(min);
            buf.put_u8(width as u8);
            let rel: Vec<u64> = vals
                .iter()
                .map(|v| (*v as i128 - min as i128) as u64)
                .collect();
            let packed = bitpack(&rel, width);
            buf.put_u32(packed.len() as u32);
            buf.put_slice(&packed);
        }
        FieldType::Double => {
            for row in rows {
                let v = row.get(name).and_then(Value::as_double).unwrap_or(0.0);
                buf.put_f64(v);
            }
        }
        FieldType::Str | FieldType::Json => {
            // dictionary encode
            let mut dict: Vec<String> = Vec::new();
            let mut index = std::collections::HashMap::new();
            let mut ids = Vec::with_capacity(rows.len());
            for row in rows {
                let s = match row.get(name) {
                    Some(Value::Str(s)) => s.clone(),
                    Some(Value::Json(j)) => rtdi_common::json::to_string(j),
                    _ => String::new(),
                };
                let id = *index.entry(s.clone()).or_insert_with(|| {
                    dict.push(s);
                    dict.len() - 1
                });
                ids.push(id as u64);
            }
            buf.put_u32(dict.len() as u32);
            for s in &dict {
                put_str(buf, s);
            }
            let width = bits_for(dict.len().saturating_sub(1) as u64);
            buf.put_u8(width as u8);
            let packed = bitpack(&ids, width);
            buf.put_u32(packed.len() as u32);
            buf.put_slice(&packed);
        }
        FieldType::Bytes => {
            for row in rows {
                match row.get(name) {
                    Some(Value::Bytes(b)) => {
                        buf.put_u32(b.len() as u32);
                        buf.put_slice(b);
                    }
                    _ => buf.put_u32(0),
                }
            }
        }
    }
    Ok(())
}

fn decode_column(buf: &mut Bytes, ftype: FieldType, nrows: usize) -> Result<Vec<Value>> {
    let bm_len = get_u32_checked(buf, "null bitmap length")? as usize;
    // the bitmap must cover every row: `is_null` indexes it by row
    if bm_len != nrows.div_ceil(8) {
        return Err(Error::Corruption(format!(
            "null bitmap of {bm_len} bytes does not cover {nrows} rows"
        )));
    }
    let bm = split_checked(buf, bm_len, "null bitmap")?.to_vec();
    let mut out = Vec::with_capacity(nrows);
    match ftype {
        FieldType::Bool => {
            let plen = get_u32_checked(buf, "bool packed length")? as usize;
            let packed = split_checked(buf, plen, "bool packed data")?.to_vec();
            let vals = bitunpack(&packed, 1, nrows);
            for (i, v) in vals.into_iter().enumerate() {
                out.push(if is_null(&bm, i) {
                    Value::Null
                } else {
                    Value::Bool(v == 1)
                });
            }
        }
        FieldType::Int | FieldType::Timestamp => {
            let min = get_i64_checked(buf, "int base")?;
            let width = get_u8_checked(buf, "int bit width")? as u32;
            if width > 64 {
                return Err(Error::Corruption(format!("int bit width {width} > 64")));
            }
            let plen = get_u32_checked(buf, "int packed length")? as usize;
            let packed = split_checked(buf, plen, "int packed data")?.to_vec();
            let vals = bitunpack(&packed, width, nrows);
            for (i, v) in vals.into_iter().enumerate() {
                out.push(if is_null(&bm, i) {
                    Value::Null
                } else {
                    Value::Int(min.wrapping_add(v as i64))
                });
            }
        }
        FieldType::Double => {
            for i in 0..nrows {
                let v = get_f64_checked(buf, "double value")?;
                out.push(if is_null(&bm, i) {
                    Value::Null
                } else {
                    Value::Double(v)
                });
            }
        }
        FieldType::Str | FieldType::Json => {
            let dict_len = get_u32_checked(buf, "dictionary length")? as usize;
            // each dictionary entry needs at least its 4-byte length prefix
            if dict_len > buf.remaining() / 4 {
                return Err(Error::Corruption(format!(
                    "dictionary length {dict_len} exceeds remaining bytes"
                )));
            }
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(get_str(buf)?);
            }
            let width = get_u8_checked(buf, "id bit width")? as u32;
            if width > 64 {
                return Err(Error::Corruption(format!("id bit width {width} > 64")));
            }
            let plen = get_u32_checked(buf, "id packed length")? as usize;
            let packed = split_checked(buf, plen, "id packed data")?.to_vec();
            let ids = bitunpack(&packed, width, nrows);
            for (i, id) in ids.into_iter().enumerate() {
                if is_null(&bm, i) {
                    out.push(Value::Null);
                    continue;
                }
                let s = dict
                    .get(id as usize)
                    .ok_or_else(|| Error::Corruption("dict id out of range".into()))?;
                if ftype == FieldType::Json {
                    let j = rtdi_common::json::parse(s)
                        .map_err(|_| Error::Corruption("invalid json in dictionary".into()))?;
                    out.push(Value::Json(Box::new(j)));
                } else {
                    out.push(Value::Str(s.clone()));
                }
            }
        }
        FieldType::Bytes => {
            for i in 0..nrows {
                let len = get_u32_checked(buf, "bytes value length")? as usize;
                let b = split_checked(buf, len, "bytes value")?.to_vec();
                out.push(if is_null(&bm, i) {
                    Value::Null
                } else {
                    Value::Bytes(b)
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdi_common::Field;

    fn sample_schema() -> Schema {
        Schema::new(
            "orders",
            vec![
                Field::new("id", FieldType::Int),
                Field::new("restaurant", FieldType::Str),
                Field::new("total", FieldType::Double),
                Field::new("delivered", FieldType::Bool),
                Field::new("ts", FieldType::Timestamp),
            ],
        )
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new()
                    .with("id", i as i64)
                    .with("restaurant", format!("rest-{}", i % 10))
                    .with("total", i as f64 * 1.5)
                    .with("delivered", i % 2 == 0)
                    .with("ts", 1_600_000_000_000i64 + i as i64)
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_rows() {
        let schema = sample_schema();
        let rows = sample_rows(100);
        let data = encode_columnar(&schema, &rows).unwrap();
        let (schema2, rows2) = decode_columnar(&data).unwrap();
        assert_eq!(schema2.name, "orders");
        assert_eq!(rows2.len(), 100);
        for (a, b) in rows.iter().zip(&rows2) {
            assert_eq!(a.get_int("id"), b.get_int("id"));
            assert_eq!(a.get_str("restaurant"), b.get_str("restaurant"));
            assert_eq!(a.get_double("total"), b.get_double("total"));
            assert_eq!(a.get("delivered"), b.get("delivered"));
            assert_eq!(a.get_int("ts"), b.get_int("ts"));
        }
    }

    #[test]
    fn nulls_survive_roundtrip() {
        let schema = sample_schema();
        let rows = vec![
            Row::new().with("id", 1i64), // everything else missing -> null
            Row::new()
                .with("id", Value::Null)
                .with("restaurant", "r")
                .with("total", 2.0)
                .with("delivered", false)
                .with("ts", 5i64),
        ];
        let data = encode_columnar(&schema, &rows).unwrap();
        let (_, rows2) = decode_columnar(&data).unwrap();
        assert!(rows2[0].get("restaurant").unwrap().is_null());
        assert!(rows2[0].get("ts").unwrap().is_null());
        assert!(rows2[1].get("id").unwrap().is_null());
        assert_eq!(rows2[1].get_str("restaurant"), Some("r"));
    }

    #[test]
    fn dictionary_encoding_compresses_repeats() {
        let schema = Schema::of("t", &[("city", FieldType::Str)]);
        let repeated: Vec<Row> = (0..1000)
            .map(|i| Row::new().with("city", format!("city-{}", i % 4)))
            .collect();
        let unique: Vec<Row> = (0..1000)
            .map(|i| Row::new().with("city", format!("city-{i}")))
            .collect();
        let small = encode_columnar(&schema, &repeated).unwrap();
        let big = encode_columnar(&schema, &unique).unwrap();
        assert!(
            small.len() * 4 < big.len(),
            "dict encoding ineffective: {} vs {}",
            small.len(),
            big.len()
        );
    }

    #[test]
    fn timestamps_use_frame_of_reference() {
        // Narrow-range large timestamps should pack tightly.
        let schema = Schema::of("t", &[("ts", FieldType::Timestamp)]);
        let rows: Vec<Row> = (0..10_000)
            .map(|i| Row::new().with("ts", 1_600_000_000_000i64 + (i % 60_000) as i64))
            .collect();
        let data = encode_columnar(&schema, &rows).unwrap();
        // 16 bits per value max (range < 2^16) => well under 8 bytes/value
        assert!(data.len() < 10_000 * 4, "got {} bytes", data.len());
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(decode_columnar(&Bytes::from_static(b"nope")).is_err());
        let schema = sample_schema();
        let rows = sample_rows(10);
        let data = encode_columnar(&schema, &rows).unwrap();
        // every proper prefix must fail cleanly: the decoder consumes
        // each encoded byte, so a truncation always cuts a live read
        for cut in 0..data.len() {
            let truncated = data.slice(0..cut);
            assert!(
                matches!(decode_columnar(&truncated), Err(Error::Corruption(_))),
                "truncation at {cut} not rejected"
            );
        }
        // flipping the magic always fails cleanly
        let mut bad = data.to_vec();
        bad[0] ^= 0xFF;
        assert!(decode_columnar(&Bytes::from(bad)).is_err());
    }

    #[test]
    fn corrupt_header_cannot_force_huge_alloc() {
        // a tiny file declaring absurd nfields/nrows must be rejected by
        // the plausibility check, not turned into a giant preallocation
        let mut raw = Vec::new();
        raw.put_u32(MAGIC);
        raw.put_u32(1);
        raw.extend_from_slice(b"t");
        raw.put_u32(u32::MAX); // nfields
        raw.put_u64(u64::MAX); // nrows
        let err = decode_columnar(&Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "{err}");
    }

    #[test]
    fn extreme_int_range_roundtrips() {
        // i64::MAX - i64::MIN overflows i64: the widened frame-of-
        // reference math must survive (this used to abort debug builds)
        let schema = Schema::of("t", &[("n", FieldType::Int)]);
        let rows = vec![
            Row::new().with("n", i64::MIN),
            Row::new().with("n", i64::MAX),
        ];
        let data = encode_columnar(&schema, &rows).unwrap();
        let (_, rows2) = decode_columnar(&data).unwrap();
        assert_eq!(rows2[0].get_int("n"), Some(i64::MIN));
        assert_eq!(rows2[1].get_int("n"), Some(i64::MAX));
    }

    #[test]
    fn bitpack_roundtrip_various_widths() {
        for bits in [1u32, 3, 7, 13, 31, 64] {
            let max = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            let vals: Vec<u64> = (0..100).map(|i| (i * 2654435761u64) % max.max(1)).collect();
            let packed = bitpack(&vals, bits);
            let un = bitunpack(&packed, bits, vals.len());
            assert_eq!(vals, un, "width {bits}");
        }
    }

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn json_column_roundtrip() {
        let schema = Schema::of("t", &[("payload", FieldType::Json)]);
        let j = rtdi_common::json::parse(r#"{"a":{"b":[1,2]}}"#).unwrap();
        let rows = vec![Row::new().with("payload", Value::Json(Box::new(j.clone())))];
        let data = encode_columnar(&schema, &rows).unwrap();
        let (_, rows2) = decode_columnar(&data).unwrap();
        assert_eq!(rows2[0].get("payload"), Some(&Value::Json(Box::new(j))));
    }

    #[test]
    fn empty_batch_roundtrip() {
        let schema = sample_schema();
        let data = encode_columnar(&schema, &[]).unwrap();
        let (s2, rows) = decode_columnar(&data).unwrap();
        assert_eq!(s2.fields.len(), schema.fields.len());
        assert!(rows.is_empty());
    }
}
