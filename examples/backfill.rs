//! Backfill (§7): why Kappa fails at Uber's retention settings and how
//! Kappa+ replays archived data through the *same* streaming logic.
//!
//! Run with: `cargo run --example backfill`

use rtdi::common::{AggFn, FieldType, Record, Row, Schema};
use rtdi::compute::backfill::{
    detect_bounds, kafka_replay_job, kafka_retains, kappa_plus_job, BackfillConfig,
};
use rtdi::compute::operator::{Operator, WindowAggregateOp};
use rtdi::compute::runtime::{Executor, ExecutorConfig};
use rtdi::compute::sink::CollectSink;
use rtdi::compute::window::WindowAssigner;
use rtdi::storage::archival::{ArchivalWriter, Compactor};
use rtdi::storage::hive::HiveCatalog;
use rtdi::storage::object::InMemoryStore;
use rtdi::stream::topic::{Topic, TopicConfig};
use std::sync::Arc;

fn agg_chain() -> Vec<Box<dyn Operator>> {
    vec![Box::new(WindowAggregateOp::new(
        "hourly-trips",
        vec!["city".into()],
        WindowAssigner::tumbling(3_600_000),
        vec![
            ("trips".into(), AggFn::Count),
            ("revenue".into(), AggFn::Sum("fare".into())),
        ],
        0,
    ))]
}

fn main() {
    // a trips topic with 2 days of retention (the paper: "we limit Kafka
    // retention to only a few days")
    let topic = Arc::new(
        Topic::new(
            "trips",
            TopicConfig {
                partitions: 2,
                retention_ms: 2 * 86_400_000,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let store = Arc::new(InMemoryStore::new());
    let catalog = HiveCatalog::new(store.clone());
    let schema = Schema::of(
        "trips",
        &[("city", FieldType::Str), ("fare", FieldType::Double)],
    );
    catalog.create_table("trips", schema.clone()).unwrap();
    let writer = ArchivalWriter::new(store.clone(), "trips");
    let compactor = Compactor::new(store.clone(), catalog.clone());

    // 7 days of trips: produced, archived continuously, retention trims
    // the topic as time advances
    let day = 86_400_000i64;
    let mut archived_dates = Vec::new();
    for d in 0..7i64 {
        let mut batch = Vec::new();
        for i in 0..2_000i64 {
            let ts = d * day + i * (day / 2_000);
            let rec = Record::new(
                Row::new()
                    .with("city", if i % 2 == 0 { "sf" } else { "la" })
                    .with("fare", 10.0 + (i % 9) as f64),
                ts,
            )
            .with_key(format!("t{d}-{i}"));
            topic.append(rec.clone(), ts).unwrap();
            batch.push(rec);
        }
        for key in writer.write_batch(&batch).unwrap() {
            let date = key.split('/').nth(2).unwrap().to_string();
            if !archived_dates.contains(&date) {
                archived_dates.push(date);
            }
        }
    }
    for date in &archived_dates {
        compactor.compact("trips", date, &schema).unwrap();
    }
    let table = catalog.table("trips").unwrap();
    println!(
        "7 days produced; topic retains {} records, warehouse holds {}",
        topic.total_records() as usize - topic_trimmed(&topic),
        table.row_count()
    );

    // A bug was found: reprocess days 1-5. Kafka no longer has them.
    let from = day;
    let to = 6 * day;
    println!(
        "\nKappa (replay Kafka) possible for day 1..6? {}",
        kafka_retains(&topic, from)
    );
    match kafka_replay_job(
        "kappa",
        topic.clone(),
        from,
        agg_chain(),
        Box::new(CollectSink::new()),
    ) {
        Err(e) => println!("Kappa replay rejected: {e}"),
        Ok(_) => println!("unexpectedly possible"),
    }

    // Kappa+: same operators over the archive
    let (lo, hi) = detect_bounds(&table, from, to).unwrap();
    println!("\nKappa+ detected archive bounds for the request: [{lo}, {hi})");
    let sink = CollectSink::new();
    let mut job = kappa_plus_job(
        "kappa-plus",
        &table,
        agg_chain(),
        Box::new(sink.clone()),
        &BackfillConfig {
            from,
            to,
            throttle_per_poll: 2_048,
            max_out_of_orderness: 60_000,
        },
    )
    .unwrap();
    let stats = Executor::new(ExecutorConfig::default())
        .run(&mut job)
        .unwrap();
    println!(
        "Kappa+ replayed {} archived events into {} hourly windows with the SAME streaming code",
        stats.records_in,
        sink.len()
    );
    let revenue: f64 = sink
        .rows()
        .iter()
        .map(|r| r.get_double("revenue").unwrap())
        .sum();
    println!("recomputed revenue for days 1-5: ${revenue:.0}");
}

fn topic_trimmed(topic: &Topic) -> usize {
    (0..topic.num_partitions())
        .map(|p| topic.partition(p).unwrap().log_start_offset() as usize)
        .sum()
}
