//! Active-passive consumption with offset synchronization (§6, Figure 7):
//! a payment processor that cannot lose data fails over between regions
//! using uReplicator's offset-mapping checkpoints.
//!
//! Run with: `cargo run --example multiregion_failover`

use rtdi::common::record::headers;
use rtdi::common::{Record, Row};
use rtdi::multiregion::activepassive::{ActivePassiveConsumer, OffsetSyncService};
use rtdi::multiregion::topology::MultiRegionTopology;
use rtdi::stream::topic::TopicConfig;
use std::collections::BTreeSet;

fn payment(i: i64, region: &str) -> Record {
    Record::new(
        Row::new()
            .with("payment_id", i)
            .with("amount", 10.0 + (i % 50) as f64),
        i,
    )
    .with_key(format!("p{i}"))
    .with_header(headers::UNIQUE_ID, format!("pay-{i}"))
    .with_header(headers::SERVICE, region)
}

fn main() {
    // payments use lossless topics (§10: "disseminating financial data
    // that needs zero data loss guarantees in a multi region ecosystem")
    let topo = MultiRegionTopology::new(
        &["us-west", "us-east"],
        "payments",
        TopicConfig::lossless().with_partitions(4),
    )
    .expect("topology");

    // steady traffic from both regions, replicated with offset checkpoints
    for i in 0..5_000i64 {
        let region = if i % 2 == 0 { "us-west" } else { "us-east" };
        topo.produce(region, payment(i, region), i).unwrap();
    }
    topo.replicate(10_000);
    println!("5000 payments replicated into both aggregate clusters");

    let sync = OffsetSyncService::new(topo.mappings().clone());
    let mut consumer = ActivePassiveConsumer::new("payment-processor", "payments", "us-west");
    let batch1 = consumer.consume_available(&topo).expect("consume");
    println!("processor consumed {} payments in us-west", batch1.len());

    // more traffic lands, then the active region dies
    for i in 5_000..6_000i64 {
        let region = if i % 2 == 0 { "us-west" } else { "us-east" };
        topo.produce(region, payment(i, region), i).unwrap();
    }
    topo.replicate(12_000);
    let batch2 = consumer.consume_available(&topo).expect("consume");
    println!(
        "processor consumed {} more, then us-west fails",
        batch2.len()
    );
    topo.region("us-west").unwrap().set_down(true);
    assert!(consumer.consume_available(&topo).is_err());

    // fail over with offset translation
    consumer
        .fail_over(&topo, &sync, "us-east")
        .expect("failover");
    let batch3 = consumer.consume_available(&topo).expect("resume");
    println!(
        "failed over to us-east, resumed from synchronized offsets, {} records replayed/processed",
        batch3.len()
    );

    // verify: zero data loss, bounded replay
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for r in batch1.iter().chain(&batch2).chain(&batch3) {
        seen.insert(r.unique_id().unwrap().to_string());
    }
    println!(
        "unique payments processed: {} of 6000 (replay overlap: {})",
        seen.len(),
        batch1.len() + batch2.len() + batch3.len() - seen.len()
    );
    assert_eq!(seen.len(), 6_000, "payments lost!");
    println!("zero data loss confirmed");
}
