//! UberEats Restaurant Manager (§5.2): Flink pre-aggregation feeding a
//! Pinot table with pre-aggregation indices, serving dashboard page loads.
//!
//! Also prints the transform-time-vs-query-time tradeoff the paper
//! describes: the same page served from raw events touches orders of
//! magnitude more documents.
//!
//! Run with: `cargo run --example restaurant_dashboard`

use rtdi::usecases::restaurant::{ingest_raw, RestaurantManager};
use rtdi::usecases::workloads::TripEventGenerator;

fn main() {
    let mut gen = TripEventGenerator::new(77, 64);
    let orders: Vec<_> = (0..100_000)
        .map(|i| gen.eats_order((i as i64) * 50))
        .collect();
    println!(
        "generated {} order events over ~{} minutes",
        orders.len(),
        100_000 * 50 / 60_000
    );

    // transform-time processing: Flink rollup into the stats table
    let rm = RestaurantManager::new(60_000).expect("deploy");
    let rolled = rm.ingest_orders(orders.clone()).expect("rollup");
    println!(
        "Flink preprocessor rolled {} raw events into {} stat rows ({}x reduction)",
        orders.len(),
        rolled,
        orders.len() as u64 / rolled.max(1)
    );
    rm.stats_table.seal_all().expect("seal");

    // a restaurant owner loads their dashboard
    let restaurant = "rest-0005";
    let t0 = std::time::Instant::now();
    let pages = rm.load_dashboard(restaurant).expect("dashboard");
    let preagg_elapsed = t0.elapsed();
    let docs: u64 = pages.iter().map(|p| p.docs_scanned).sum();
    println!("\ndashboard for {restaurant} (pre-aggregated path):");
    println!(
        "  sales series rows: {}, lifetime orders: {}, avg rating: {:.2}",
        pages[0].rows.len(),
        pages[1].rows[0].get_double("total_orders").unwrap(),
        pages[2].rows[0].get_double("rating").unwrap(),
    );
    println!(
        "  latency {:?}, docs touched {}, star-tree used: {}",
        preagg_elapsed, docs, pages[1].used_startree
    );

    // the query-time alternative: same questions over raw events
    let raw_table = RestaurantManager::raw_table().expect("raw table");
    ingest_raw(&raw_table, &orders).expect("raw ingest");
    raw_table.seal_all().expect("seal");
    let t0 = std::time::Instant::now();
    let raw_queries = RestaurantManager::raw_dashboard_queries(restaurant, 60_000);
    let mut raw_docs = 0;
    for q in &raw_queries {
        raw_docs += raw_table.query(q).expect("raw query").docs_scanned;
    }
    let raw_elapsed = t0.elapsed();
    println!("\nsame dashboard from raw events (no preprocessing):");
    println!("  latency {raw_elapsed:?}, docs touched {raw_docs}");
    println!(
        "\ntransform-time preprocessing gave {:.0}x fewer docs touched and {:.1}x lower latency",
        raw_docs as f64 / docs.max(1) as f64,
        raw_elapsed.as_secs_f64() / preagg_elapsed.as_secs_f64().max(1e-9)
    );
}
