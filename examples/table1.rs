//! Regenerates Table 1 of the paper: which architectural components each
//! representative use case exercises (experiment E19).
//!
//! Each §5 use case runs (scaled down) against the platform with usage
//! accounting on; the resulting matrix is printed in the paper's layout.
//!
//! Run with: `cargo run --example table1`

use rtdi::common::{FieldType, Record, Schema};
use rtdi::core::platform::RealtimePlatform;
use rtdi::core::usage::Component;
use rtdi::multiregion::kv::ReplicatedKv;
use rtdi::olap::table::TableConfig;
use rtdi::stream::topic::TopicConfig;
use rtdi::usecases::eatsops::{AutomationRule, OpsAutomation, RuleAction};
use rtdi::usecases::prediction::PredictionMonitoring;
use rtdi::usecases::restaurant::RestaurantManager;
use rtdi::usecases::surge::{LinearSurgeModel, SurgePipeline};
use rtdi::usecases::workloads::TripEventGenerator;
use std::sync::Arc;

fn main() {
    let platform = RealtimePlatform::new();
    let mut gen = TripEventGenerator::new(99, 32);

    // ---- Surge: API + Compute + Stream ---------------------------------
    platform.usage().begin_use_case("Surge");
    let schema = Schema::of(
        "marketplace",
        &[
            ("hex", FieldType::Str),
            ("kind", FieldType::Str),
            ("ts", FieldType::Timestamp),
        ],
    );
    platform
        .create_topic(
            "marketplace",
            TopicConfig::high_throughput().with_partitions(2),
            schema,
        )
        .unwrap();
    let producer = platform.producer("marketplace");
    for t in 0..2_000i64 {
        producer
            .send("marketplace", gen.marketplace_event(t * 10))
            .unwrap();
    }
    // advanced users use the low-level API (not SQL) for the surge job
    let surge = SurgePipeline::new(10_000, Arc::new(LinearSurgeModel::default()));
    let kv = ReplicatedKv::new();
    let job = surge
        .job(
            "surge",
            platform
                .federation()
                .subscribe("marketplace")
                .unwrap()
                .topic(),
            kv.clone(),
            "region-1",
        )
        .unwrap();
    platform.usage().note(Component::Api);
    platform.usage().note(Component::Compute);
    surge.run(job).unwrap();
    println!("Surge priced {} hexes", kv.len());
    platform.usage().end_use_case();

    // ---- Restaurant Manager: SQL + OLAP + Compute + Stream + Storage ---
    platform.usage().begin_use_case("Restaurant Manager");
    let rm = RestaurantManager::new(60_000).unwrap();
    let orders: Vec<Record> = (0..5_000)
        .map(|i| gen.eats_order((i as i64) * 100))
        .collect();
    platform.usage().note(Component::Compute);
    platform.usage().note(Component::Stream);
    platform.usage().note(Component::Storage); // segments archived long-term
    rm.ingest_orders(orders).unwrap();
    platform.usage().note(Component::Sql);
    platform.usage().note(Component::Olap);
    let pages = rm.load_dashboard("rest-0001").unwrap();
    println!(
        "Restaurant Manager dashboard: {} query results",
        pages.len()
    );
    platform.usage().end_use_case();

    // ---- Real-time Prediction Monitoring: everything -------------------
    platform
        .usage()
        .begin_use_case("Real-time Prediction Monitoring");
    let pm = PredictionMonitoring::new(60_000, 10_000).unwrap();
    let mut preds = Vec::new();
    let mut outs = Vec::new();
    for i in 0..2_000 {
        let (p, o) = gen.prediction_pair((i as i64) * 20, 100, 1_000);
        preds.push(p);
        outs.push(o);
    }
    platform.usage().note(Component::Api); // pipeline built via low-level API
    platform.usage().note(Component::Compute);
    platform.usage().note(Component::Stream);
    platform.usage().note(Component::Storage); // checkpoints + archives
    pm.run(preds, outs).unwrap();
    platform.usage().note(Component::Sql);
    platform.usage().note(Component::Olap);
    let degraded = pm.degraded_models(0.5).unwrap();
    println!("Prediction monitoring: {} degraded models", degraded.len());
    platform.usage().end_use_case();

    // ---- Eats Ops Automation: SQL + OLAP + Compute + Stream -------------
    platform.usage().begin_use_case("Eats Ops Automation");
    let schema = Schema::of(
        "courier_activity",
        &[
            ("hex", FieldType::Str),
            ("restaurant", FieldType::Str),
            ("items", FieldType::Int),
            ("ts", FieldType::Timestamp),
        ],
    );
    platform
        .create_topic(
            "courier_activity",
            TopicConfig::default().with_partitions(2),
            schema.clone(),
        )
        .unwrap();
    let table = platform
        .create_olap_table(
            TableConfig::new("courier_activity", schema)
                .with_time_column("ts")
                .with_partitions(2),
        )
        .unwrap();
    let producer = platform.producer("eats");
    for i in 0..3_000usize {
        let o = gen.eats_order((i as i64) * 50);
        let mut rec = Record::new(o.value.clone(), o.timestamp);
        rec.key = o.key.clone();
        producer.send("courier_activity", rec).unwrap();
    }
    platform.usage().note(Component::Compute); // ingestion pipeline
    platform
        .ingest_into("courier_activity", table)
        .unwrap()
        .run_once()
        .unwrap();
    let mut ops = OpsAutomation::new();
    ops.promote_with(
        |sql| platform.sql(sql).map(|_| ()),
        AutomationRule {
            name: "capacity".into(),
            sql: "SELECT hex, COUNT(*) AS couriers FROM courier_activity GROUP BY hex".into(),
            metric_column: "couriers".into(),
            threshold: 50.0,
            action: RuleAction::ThrottleOrders,
        },
    )
    .unwrap();
    let alerts = ops
        .evaluate_with(|sql| platform.sql(sql).map(|o| o.rows))
        .unwrap();
    println!("Eats ops automation: {} alerts", alerts.len());
    platform.usage().end_use_case();

    // ---- Table 1 --------------------------------------------------------
    println!("\nTable 1 — components used by the example use cases:\n");
    println!("{}", platform.usage().render_table());
}
