//! Surge pricing with active-active multi-region failover (§5.1, §6,
//! Figure 6).
//!
//! Trip events flow into two regions' regional clusters, replicate into
//! both aggregate clusters, and each region redundantly computes surge
//! multipliers; only the primary region's update service writes the KV
//! store. Mid-run, the primary region dies and the coordinator fails over
//! — pricing keeps flowing with no gap.
//!
//! Run with: `cargo run --example surge_pricing`

use rtdi::common::Row;
use rtdi::multiregion::activeactive::{redundant_compute_round, ActiveActiveCoordinator};
use rtdi::multiregion::kv::ReplicatedKv;
use rtdi::multiregion::topology::MultiRegionTopology;
use rtdi::stream::topic::TopicConfig;
use rtdi::usecases::surge::{LinearSurgeModel, SurgeModel};
use rtdi::usecases::workloads::TripEventGenerator;
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    // surge uses high-throughput (not lossless) topics: freshness over
    // consistency (§5.1)
    let topo = MultiRegionTopology::new(
        &["us-west", "us-east"],
        "marketplace",
        TopicConfig::high_throughput().with_partitions(4),
    )
    .expect("topology");
    let coordinator = ActiveActiveCoordinator::new("us-west");
    let kv = ReplicatedKv::new();
    let model = Arc::new(LinearSurgeModel::default());

    let surge_compute = {
        let model = model.clone();
        move |rows: &[Row]| -> BTreeMap<String, Row> {
            let mut demand_supply: BTreeMap<String, (f64, f64)> = BTreeMap::new();
            for r in rows {
                if let Some(hex) = r.get_str("hex") {
                    let e = demand_supply.entry(hex.to_string()).or_insert((0.0, 0.0));
                    match r.get_str("kind") {
                        Some("demand") => e.0 += 1.0,
                        Some("supply") => e.1 += 1.0,
                        _ => {}
                    }
                }
            }
            demand_supply
                .into_iter()
                .map(|(hex, (d, s))| {
                    (
                        hex,
                        Row::new()
                            .with("multiplier", model.multiplier(d, s))
                            .with("demand", d)
                            .with("supply", s),
                    )
                })
                .collect()
        }
    };

    // --- normal operation ---------------------------------------------
    let mut gen_west = TripEventGenerator::new(1, 48).with_lateness(0.05, 3_000);
    let mut gen_east = TripEventGenerator::new(2, 48).with_lateness(0.05, 3_000);
    for t in 0..2_000i64 {
        topo.produce("us-west", gen_west.marketplace_event(t * 5), t * 5)
            .unwrap();
        topo.produce("us-east", gen_east.marketplace_event(t * 5), t * 5)
            .unwrap();
    }
    let copied = topo.replicate(10_000);
    println!("replicated {copied} events into both aggregate clusters");
    let states = redundant_compute_round(&topo, &coordinator, &kv, 10_000, &surge_compute).unwrap();
    println!(
        "both regions computed surge for {} hexes; states identical: {}",
        states["us-west"].len(),
        states["us-west"] == states["us-east"]
    );
    let sample = kv.keys().into_iter().next().unwrap();
    println!(
        "primary={} wrote e.g. {} -> multiplier {:.2}",
        coordinator.primary(),
        sample,
        kv.get(&sample).unwrap().get_double("multiplier").unwrap()
    );

    // --- disaster strikes the primary -----------------------------------
    println!("\n!! us-west goes dark");
    topo.region("us-west").unwrap().set_down(true);
    for t in 2_000..3_000i64 {
        // only east can ingest now
        topo.produce("us-east", gen_east.marketplace_event(t * 5), t * 5)
            .unwrap();
    }
    topo.replicate(20_000);
    redundant_compute_round(&topo, &coordinator, &kv, 20_000, &surge_compute).unwrap();
    println!(
        "coordinator failed over: primary={}, KV writer of {} is now {}",
        coordinator.primary(),
        sample,
        kv.writer_of(&sample).unwrap()
    );
    println!(
        "pricing still serving: {} hexes priced, {} -> {:.2}",
        kv.len(),
        sample,
        kv.get(&sample).unwrap().get_double("multiplier").unwrap()
    );
}
