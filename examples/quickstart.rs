//! Quickstart: Figure 1's data path end to end on one machine.
//!
//! Producers -> federated Kafka-like stream -> FlinkSQL windowed
//! pre-aggregation -> Pinot-like OLAP table -> PrestoSQL dashboard query,
//! plus archival to the warehouse and a Kappa+ backfill over it.
//!
//! Run with: `cargo run --example quickstart`

use rtdi::common::{FieldType, Record, Row, Schema};
use rtdi::compute::sink::CollectSink;
use rtdi::core::platform::RealtimePlatform;
use rtdi::flinksql::compiler::CompileOptions;
use rtdi::olap::table::TableConfig;
use rtdi::stream::topic::TopicConfig;

fn trips_schema() -> Schema {
    Schema::of(
        "trips",
        &[
            ("city", FieldType::Str),
            ("fare", FieldType::Double),
            ("ts", FieldType::Timestamp),
        ],
    )
}

fn main() {
    let platform = RealtimePlatform::new();

    // 1. provision a topic with a registered schema (§9.4 onboarding)
    platform
        .create_topic(
            "trips",
            TopicConfig::default().with_partitions(4),
            trips_schema(),
        )
        .expect("topic");
    println!("created topic 'trips' (4 partitions, schema v1 registered)");

    // 2. services produce trip events through the thin client
    let producer = platform.producer("trip-service");
    for i in 0..10_000i64 {
        producer
            .send(
                "trips",
                Record::new(
                    Row::new()
                        .with("city", ["sf", "la", "nyc", "chi"][(i % 4) as usize])
                        .with("fare", 8.0 + (i % 23) as f64)
                        .with("ts", i * 10),
                    i * 10,
                )
                .with_key(format!("trip-{i}")),
            )
            .expect("produce");
    }
    println!("produced 10000 trip events");

    // 3. FlinkSQL pipeline: windowed city metrics into a Pinot table
    let stats_schema = Schema::of(
        "trip_stats",
        &[
            ("city", FieldType::Str),
            ("w", FieldType::Timestamp),
            ("trips", FieldType::Int),
            ("revenue", FieldType::Double),
            ("ingest_ts", FieldType::Timestamp),
        ],
    );
    let stats = platform
        .create_olap_table(
            TableConfig::new("trip_stats", stats_schema)
                .with_time_column("ingest_ts")
                .with_partitions(4),
        )
        .expect("olap table");
    let job = platform
        .deploy_sql_pipeline(
            "trip-metrics",
            "SELECT city, TUMBLE(ts, 10000) AS w, COUNT(*) AS trips, SUM(fare) AS revenue \
             FROM trips GROUP BY city, TUMBLE(ts, 10000)",
            "trips",
            stats,
            &CompileOptions::default(),
        )
        .expect("pipeline");
    println!(
        "FlinkSQL pipeline processed {} events into {} window rows",
        job.records_in, job.records_out
    );

    // 4. dashboard query through the federated SQL layer (pushdown on)
    let out = platform
        .sql(
            "SELECT city, SUM(trips) AS total_trips, SUM(revenue) AS total_revenue \
             FROM trip_stats GROUP BY city ORDER BY total_trips DESC",
        )
        .expect("sql");
    println!("\ncity dashboard (served by Pinot through PrestoSQL):");
    for row in &out.rows {
        println!(
            "  {:<5} trips={:<6} revenue=${:.2}",
            row.get_str("city").unwrap(),
            row.get_double("total_trips").unwrap(),
            row.get_double("total_revenue").unwrap()
        );
    }
    println!(
        "  (docs scanned in the store: {}, rows shipped to engine: {})",
        out.stats.docs_scanned, out.stats.rows_shipped
    );

    // 5. archive the topic to the warehouse and backfill the same SQL over it
    let archived = platform
        .archive_topic("trips", &trips_schema())
        .expect("archive");
    println!("\narchived {archived} raw events into the warehouse (hive.trips)");
    let sink = CollectSink::new();
    let backfill = platform
        .backfill_sql(
            "trip-metrics-backfill",
            "SELECT city, TUMBLE(ts, 10000) AS w, COUNT(*) AS trips, SUM(fare) AS revenue \
             FROM trips GROUP BY city, TUMBLE(ts, 10000)",
            "trips",
            0,
            i64::MAX,
            Box::new(sink.clone()),
        )
        .expect("backfill");
    println!(
        "Kappa+ backfill replayed {} archived events into {} rows — same SQL, batch source",
        backfill.records_in,
        sink.len()
    );

    // 6. lineage recorded automatically
    println!(
        "\nlineage of kafka.trips: {:?}",
        platform.lineage().impact("kafka.trips")
    );
}
