//! UberEats Ops automation (§5.4): ad-hoc PrestoSQL exploration over
//! real-time Pinot data, promoted into the rule-based automation
//! framework — the covid capacity scenario.
//!
//! Run with: `cargo run --example eats_ops_automation`

use rtdi::common::{FieldType, Record, Schema};
use rtdi::core::platform::RealtimePlatform;
use rtdi::olap::table::TableConfig;
use rtdi::stream::topic::TopicConfig;
use rtdi::usecases::eatsops::{AutomationRule, OpsAutomation, RuleAction};
use rtdi::usecases::workloads::TripEventGenerator;

fn main() {
    let platform = RealtimePlatform::new();
    let schema = Schema::of(
        "courier_activity",
        &[
            ("hex", FieldType::Str),
            ("restaurant", FieldType::Str),
            ("items", FieldType::Int),
            ("ts", FieldType::Timestamp),
        ],
    );
    platform
        .create_topic(
            "courier_activity",
            TopicConfig::default().with_partitions(2),
            schema.clone(),
        )
        .expect("topic");
    let table = platform
        .create_olap_table(
            TableConfig::new("courier_activity", schema)
                .with_time_column("ts")
                .with_partitions(2),
        )
        .expect("table");

    // live courier/order activity flows in
    let producer = platform.producer("eats-backend");
    let mut gen = TripEventGenerator::new(31, 64);
    for i in 0..20_000usize {
        let order = gen.eats_order((i as i64) * 25);
        let mut rec = Record::new(order.value.clone(), order.timestamp);
        rec.key = order.key.clone();
        producer.send("courier_activity", rec).expect("produce");
    }
    platform
        .ingest_into("courier_activity", table)
        .expect("ingester")
        .run_once()
        .expect("ingest");
    println!("ingested 20000 courier activity events into Pinot");

    // 1. ad-hoc exploration: where are couriers concentrating?
    let explored = platform
        .sql(
            "SELECT hex, COUNT(*) AS couriers FROM courier_activity \
             GROUP BY hex ORDER BY couriers DESC LIMIT 5",
        )
        .expect("explore");
    println!("\nad-hoc exploration — hottest areas:");
    for row in &explored.rows {
        println!(
            "  {:<10} couriers={}",
            row.get_str("hex").unwrap(),
            row.get_double("couriers").unwrap()
        );
    }
    let hottest = explored.rows[0].get_double("couriers").unwrap();

    // 2. productionize the discovered query as a capacity rule — "the same
    //    infrastructure provided a seamless path from ad-hoc exploration to
    //    production rollout"
    let mut ops = OpsAutomation::new();
    ops.promote_with(
        |sql| platform.sql(sql).map(|_| ()),
        AutomationRule {
            name: "covid-capacity-eu".into(),
            sql: "SELECT hex, COUNT(*) AS couriers FROM courier_activity GROUP BY hex".into(),
            metric_column: "couriers".into(),
            threshold: hottest * 0.6,
            action: RuleAction::Notify {
                template: "capacity exceeded at {hex}: redirect couriers".into(),
            },
        },
    )
    .expect("promotion");

    // 3. the production loop evaluates the rule on fresh data
    let alerts = ops
        .evaluate_with(|sql| platform.sql(sql).map(|o| o.rows))
        .expect("evaluation");
    println!("\n{} capacity alerts fired:", alerts.len());
    for a in alerts.iter().take(5) {
        println!("  {}", a.message);
    }
    assert!(!alerts.is_empty());
}
