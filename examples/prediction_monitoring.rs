//! Real-time ML prediction monitoring (§5.3): join predictions to
//! observed outcomes, cube accuracy per model into Pinot, alert on
//! degraded models.
//!
//! Run with: `cargo run --example prediction_monitoring`

use rtdi::common::{Record, Row};
use rtdi::usecases::prediction::PredictionMonitoring;
use rtdi::usecases::workloads::TripEventGenerator;

fn main() {
    let pm = PredictionMonitoring::new(60_000, 10_000).expect("deploy");
    let mut gen = TripEventGenerator::new(123, 16);

    // healthy traffic: 1000 models, 30k prediction/outcome pairs
    let mut preds = Vec::new();
    let mut outs = Vec::new();
    for i in 0..30_000 {
        let (p, o) = gen.prediction_pair((i as i64) * 10, 1_000, 2_000);
        preds.push(p);
        outs.push(o);
    }
    // one silently-broken model mixed in
    for i in 0..200i64 {
        let ts = 310_000 + i * 10;
        let case = format!("broken-{i}");
        preds.push(
            Record::new(
                Row::new()
                    .with("case_id", case.clone())
                    .with("model", "model-broken")
                    .with("predicted", 0.9)
                    .with("ts", ts),
                ts,
            )
            .with_key(case.clone()),
        );
        outs.push(
            Record::new(
                Row::new()
                    .with("case_id", case.clone())
                    .with("model", "model-broken")
                    .with("actual", 0.1)
                    .with("ts", ts + 500),
                ts + 500,
            )
            .with_key(case),
        );
    }

    let stats = pm.run(preds, outs).expect("pipeline");
    println!(
        "joined and aggregated {} events into {} accuracy-cube rows",
        stats.records_in,
        pm.cube.doc_count()
    );

    let degraded = pm.degraded_models(0.5).expect("alerting");
    println!("models with mean abs error > 0.5: {degraded:?}");
    assert_eq!(degraded, vec!["model-broken".to_string()]);

    let series = pm.accuracy_series("model-broken").expect("series");
    println!("\naccuracy time series for model-broken:");
    for row in series.iter().take(5) {
        println!(
            "  window {:>8}: {} samples, mean abs error {:.3}",
            row.get_int("window_start").unwrap(),
            row.get_int("samples").unwrap(),
            row.get_double("mean_abs_error").unwrap()
        );
    }
    let healthy = pm.accuracy_series("model-0042").expect("series");
    if let Some(row) = healthy.first() {
        println!(
            "\nhealthy model-0042 for contrast: mean abs error {:.3}",
            row.get_double("mean_abs_error").unwrap()
        );
    }
}
