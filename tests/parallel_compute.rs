//! Data-parallel keyed compute: end-to-end guarantees for sharded
//! stateful operators (ISSUE 10).
//!
//! - the sharded plan (`parallelism: N`) must be observationally
//!   invisible: byte-identical output vs the serial plan for any N,
//!   any batch size, stateless-fused or reference protocol;
//! - salted hot-key pre-aggregation (two-phase partial/combine) must
//!   also be byte-identical — workloads use dyadic-rational fares so
//!   f64 sums are order-independent and strict equality is meaningful;
//! - elastic rescale at a checkpoint boundary (2 -> 4 -> 1) preserves
//!   exactly-once, including a chaos-injected crash mid-segment;
//! - `parallel_env_seed_prints_summary` is the ci.sh determinism gate:
//!   one `PARALLEL_SUMMARY` line whose digests must agree across
//!   parallelism levels, across processes and across seeds.

use rtdi::common::chaos::{self, FaultKind, FaultPlan, FaultPoint, Trigger};
use rtdi::common::{AggFn, Error, Record, Row, Value};
use rtdi::compute::{
    run_staged_with, CheckpointStore, CollectSink, DedupOp, Job, Operator, RescaleHandle,
    StagedConfig, VecSource, WindowAggregateOp, WindowAssigner,
};
use rtdi::storage::object::InMemoryStore;
use rtdi::usecases::CityDriverGenerator;
use std::sync::Arc;

fn trips(seed: u64, n: usize, skew: f64) -> Vec<Record> {
    CityDriverGenerator::new(seed, 24, 4_000, skew).trips(n, 7)
}

/// Keyed tumbling-window revenue rollup — the §5.1 surge-shaped job.
fn agg_job(name: &str, rows: Vec<Record>, sink: CollectSink, parallelism: usize) -> Job {
    let op = WindowAggregateOp::new(
        "agg",
        vec!["city".into()],
        WindowAssigner::tumbling(1_000),
        vec![
            ("trips".into(), AggFn::Count),
            ("revenue".into(), AggFn::Sum("fare".into())),
        ],
        0,
    )
    .with_parallelism(parallelism);
    Job::new(
        name,
        Box::new(VecSource::new(rows)),
        vec![Box::new(op)],
        Box::new(sink),
    )
}

fn salted_job(
    name: &str,
    rows: Vec<Record>,
    sink: CollectSink,
    parallelism: usize,
    threshold: u64,
) -> Job {
    let op = WindowAggregateOp::new(
        "agg",
        vec!["city".into()],
        WindowAssigner::tumbling(1_000),
        vec![
            ("trips".into(), AggFn::Count),
            ("revenue".into(), AggFn::Sum("fare".into())),
        ],
        0,
    )
    .with_parallelism(parallelism)
    .with_hot_key_salting(threshold);
    Job::new(
        name,
        Box::new(VecSource::new(rows)),
        vec![Box::new(op)],
        Box::new(sink),
    )
}

#[test]
fn parallel_output_is_byte_identical_to_serial_for_all_parallelisms() {
    let rows = trips(0xA110, 4_000, 1.1);
    let serial = CollectSink::new();
    run_staged_with(
        agg_job("serial", rows.clone(), serial.clone(), 1),
        &StagedConfig::batched(16, 32),
    )
    .unwrap();
    assert!(serial.len() > 0);

    for p in [2usize, 4, 8] {
        let sink = CollectSink::new();
        let stats = run_staged_with(
            agg_job("par", rows.clone(), sink.clone(), p),
            &StagedConfig::batched(16, 32),
        )
        .unwrap();
        assert_eq!(sink.records(), serial.records(), "parallelism {p}");
        let stage = stats
            .stages
            .iter()
            .find(|s| s.stage.starts_with("agg[x"))
            .expect("sharded stage missing from stats");
        assert_eq!(stage.shards.len(), p);
        let shard_in: u64 = stage.shards.iter().map(|s| s.records_in).sum();
        assert_eq!(shard_in, rows.len() as u64);
        // every shard advanced to the terminal watermark
        assert!(stage.shards.iter().all(|s| s.watermark > 0));
    }

    // the per-record unfused reference protocol agrees too
    let sink = CollectSink::new();
    run_staged_with(
        agg_job("ref", rows.clone(), sink.clone(), 4),
        &StagedConfig::reference(8),
    )
    .unwrap();
    assert_eq!(sink.records(), serial.records(), "reference protocol");
}

#[test]
fn parallel_dedup_matches_serial_exactly() {
    // duplicate-heavy stream: replay each trip 1-3 times
    let base = trips(0xD0D0, 1_500, 1.0);
    let mut rows = Vec::new();
    for (i, r) in base.iter().enumerate() {
        for _ in 0..=(i % 3) {
            rows.push(r.clone());
        }
    }
    let job = |name: &str, sink: CollectSink, p: usize| {
        let op = DedupOp::new("dedup", vec!["city".into(), "driver".into(), "ts".into()])
            .with_parallelism(p);
        Job::new(
            name,
            Box::new(VecSource::new(rows.clone())),
            vec![Box::new(op) as Box<dyn Operator>],
            Box::new(sink),
        )
    };
    let serial = CollectSink::new();
    run_staged_with(
        job("ser", serial.clone(), 1),
        &StagedConfig::batched(16, 32),
    )
    .unwrap();
    assert!(serial.len() > 0 && serial.len() < rows.len());
    for p in [2usize, 4] {
        let sink = CollectSink::new();
        run_staged_with(job("par", sink.clone(), p), &StagedConfig::batched(16, 32)).unwrap();
        assert_eq!(sink.records(), serial.records(), "dedup parallelism {p}");
    }
}

#[test]
fn salted_hot_key_aggregation_is_byte_identical() {
    // s=1.5 Zipf: one scorching city plus a long tail — the hot-key
    // storm that motivates two-phase salted pre-aggregation
    let rows = trips(0x5A17, 6_000, 1.5);
    let serial = CollectSink::new();
    run_staged_with(
        agg_job("serial", rows.clone(), serial.clone(), 1),
        &StagedConfig::batched(16, 32),
    )
    .unwrap();

    let sink = CollectSink::new();
    let stats = run_staged_with(
        salted_job("salted", rows.clone(), sink.clone(), 4, 64),
        &StagedConfig::batched(16, 32),
    )
    .unwrap();
    assert_eq!(
        sink.records(),
        serial.records(),
        "salted two-phase plan diverged from serial"
    );
    // the plan really is two-phase: sharded partial stage + combiner
    assert!(stats.stages.iter().any(|s| s.stage.starts_with("agg[x4]")));
    assert!(stats.stages.iter().any(|s| s.stage.contains("combine")));
    // salting spread the hot key: no shard saw the full stream
    let stage = stats
        .stages
        .iter()
        .find(|s| s.stage.starts_with("agg[x4]"))
        .unwrap();
    let max_shard = stage.shards.iter().map(|s| s.records_in).max().unwrap();
    assert!(
        max_shard < rows.len() as u64 * 2 / 3,
        "hot key not salted: one shard took {max_shard}/{} records",
        rows.len()
    );
}

#[test]
fn rescale_chain_two_to_four_to_one_is_exactly_once() {
    let rows = trips(0x2E5C, 3_000, 1.2);
    let baseline = CollectSink::new();
    run_staged_with(
        agg_job("base", rows.clone(), baseline.clone(), 1),
        &StagedConfig::batched(8, 16),
    )
    .unwrap();

    let store = Arc::new(InMemoryStore::new());
    let cs = CheckpointStore::new(store);
    let mut cfg = StagedConfig::batched(8, 16);
    cfg.checkpoint_interval = 500;
    cfg.checkpoint_store = Some(cs);

    let sink = CollectSink::new();
    // segment 1 at p=2: stop at the first checkpoint boundary
    let handle = RescaleHandle::new();
    handle.request();
    cfg.rescale = Some(handle);
    let s1 = run_staged_with(agg_job("job", rows.clone(), sink.clone(), 2), &cfg).unwrap();
    assert_eq!(s1.stopped_at_checkpoint, Some(1));

    // segment 2 at p=4: restore the p=2 state, stop at the next barrier
    let handle = RescaleHandle::new();
    handle.request();
    cfg.rescale = Some(handle);
    let s2 = run_staged_with(agg_job("job", rows.clone(), sink.clone(), 4), &cfg).unwrap();
    assert_eq!(s2.restored_from_checkpoint, Some(1));
    assert_eq!(s2.stopped_at_checkpoint, Some(2));

    // segment 3 back to serial: run to completion
    cfg.rescale = None;
    let s3 = run_staged_with(agg_job("job", rows.clone(), sink.clone(), 1), &cfg).unwrap();
    assert_eq!(s3.restored_from_checkpoint, Some(2));
    assert_eq!(s3.records_in, rows.len() as u64);

    // exactly-once across both rescales: sorted but NOT deduplicated
    let canon = |mut out: Vec<Row>| {
        out.sort_by_key(|r| {
            (
                r.get_str("city").unwrap().to_string(),
                r.get_int("window_start").unwrap(),
            )
        });
        out
    };
    assert_eq!(canon(baseline.rows()), canon(sink.rows()));
}

#[test]
fn crash_during_rescaled_segment_recovers_exactly_once() {
    let _g = chaos::test_guard();
    chaos::registry().disarm_all();
    let rows = trips(0xC2A5, 2_000, 1.2);
    let baseline = CollectSink::new();
    run_staged_with(
        agg_job("base", rows.clone(), baseline.clone(), 1),
        &StagedConfig::batched(8, 16),
    )
    .unwrap();

    let store = Arc::new(InMemoryStore::new());
    let cs = CheckpointStore::new(store);
    let mut cfg = StagedConfig::batched(8, 16);
    cfg.checkpoint_interval = 400;
    cfg.checkpoint_store = Some(cs);

    let sink = CollectSink::new();
    // segment 1 at p=2 stops at the first barrier
    let handle = RescaleHandle::new();
    handle.request();
    cfg.rescale = Some(handle);
    let s1 = run_staged_with(agg_job("job", rows.clone(), sink.clone(), 2), &cfg).unwrap();
    assert_eq!(s1.stopped_at_checkpoint, Some(1));

    // segment 2 at p=4 crashes mid-flight on an injected channel fault
    chaos::registry().reset(0xC2A5);
    chaos::registry().arm(
        FaultPoint::ComputeChannel,
        FaultPlan::fail(FaultKind::Unavailable, Trigger::Always).with_burst(300, Some(1)),
    );
    cfg.rescale = None;
    let err = run_staged_with(agg_job("job", rows.clone(), sink.clone(), 4), &cfg)
        .expect_err("armed channel fault must crash the rescaled segment");
    assert!(matches!(err, Error::Unavailable(_)), "wrong error: {err}");
    chaos::registry().disarm_all();

    // retry from the surviving checkpoint completes the job
    let s3 = run_staged_with(agg_job("job", rows.clone(), sink.clone(), 4), &cfg).unwrap();
    assert!(s3.restored_from_checkpoint.is_some());
    assert_eq!(s3.records_in, rows.len() as u64);

    // state is exactly-once; the sink may hold replayed duplicates from
    // the crashed attempt, so compare after sort + dedup
    let canon = |mut out: Vec<Row>| {
        out.sort_by_key(|r| format!("{r:?}"));
        out.dedup();
        out
    };
    assert_eq!(canon(baseline.rows()), canon(sink.rows()));
}

/// Property-style sweep: random keyed jobs (window size, parallelism,
/// skew, salting, batch size all drawn from a seeded rng) must produce
/// byte-identical output under the sharded plan and the serial plan.
#[test]
fn random_keyed_jobs_parallel_equals_serial() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x9A11E1 + case);
        let n = rng.gen_range(500..2_000usize);
        let cities = [8usize, 24, 64][rng.gen_range(0..3usize)];
        let skew = rng.gen_range(0.8..1.6f64);
        let window = [500i64, 1_000, 2_000][rng.gen_range(0..3usize)];
        let p = [2usize, 3, 4, 8][rng.gen_range(0..4usize)];
        let salt = rng.gen_bool(0.5).then(|| rng.gen_range(16..128u64));
        let batch = [1usize, 16, 32][rng.gen_range(0..3usize)];
        let rows = CityDriverGenerator::new(case, cities, 1_000, skew).trips(n, 5);

        let make = |name: &str, sink: CollectSink, parallelism: usize, salt: Option<u64>| {
            let mut op = WindowAggregateOp::new(
                "agg",
                vec!["city".into()],
                WindowAssigner::tumbling(window),
                vec![
                    ("trips".into(), AggFn::Count),
                    ("revenue".into(), AggFn::Sum("fare".into())),
                ],
                0,
            )
            .with_parallelism(parallelism);
            if let Some(t) = salt {
                op = op.with_hot_key_salting(t);
            }
            Job::new(
                name,
                Box::new(VecSource::new(rows.clone())),
                vec![Box::new(op) as Box<dyn Operator>],
                Box::new(sink),
            )
        };
        let serial = CollectSink::new();
        run_staged_with(
            make("ser", serial.clone(), 1, None),
            &StagedConfig::batched(16, 32),
        )
        .unwrap();
        let sink = CollectSink::new();
        run_staged_with(
            make("par", sink.clone(), p, salt),
            &StagedConfig::batched(16, batch),
        )
        .unwrap();
        assert_eq!(
            sink.records(),
            serial.records(),
            "case {case}: n={n} cities={cities} skew={skew:.2} window={window} p={p} salt={salt:?} batch={batch}"
        );
    }
}

/// FNV-1a over every output record's canonical rendering, in emit order.
fn digest(sink: &CollectSink) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for rec in sink.records() {
        let mut cols: Vec<String> = rec
            .value
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect();
        cols.sort();
        let line = format!("ts={} key={:?} {}", rec.timestamp, rec.key, cols.join(","));
        for b in line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= Value::hash_of_str("|");
    }
    h
}

fn env_seed() -> u64 {
    std::env::var("RTDI_PARALLEL_SEED")
        .ok()
        .and_then(|s| {
            s.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| s.parse().ok())
        })
        .unwrap_or(0xFA11)
}

/// ci.sh hook: digest the serial, sharded and salted plans for the env
/// seed and print one `PARALLEL_SUMMARY` line. ci.sh runs this twice per
/// seed in separate processes and diffs the output: all digests must
/// match the serial plan and reproduce across processes.
#[test]
fn parallel_env_seed_prints_summary() {
    let seed = env_seed();
    let rows = trips(seed, 3_000, 1.0 + (seed % 7) as f64 / 10.0);

    let run = |p: usize, salt: Option<u64>| {
        let sink = CollectSink::new();
        let job = match salt {
            Some(t) => salted_job("gate", rows.clone(), sink.clone(), p, t),
            None => agg_job("gate", rows.clone(), sink.clone(), p),
        };
        run_staged_with(job, &StagedConfig::batched(16, 32)).unwrap();
        (digest(&sink), sink.len())
    };
    let (d1, n1) = run(1, None);
    let (d2, _) = run(2, None);
    let (d4, _) = run(4, None);
    let (ds, _) = run(4, Some(48));
    println!(
        "PARALLEL_SUMMARY seed={seed:#x} records={n1} digest_p1={d1:016x} \
         digest_p2={d2:016x} digest_p4={d4:016x} digest_salted={ds:016x}"
    );
    assert_eq!(d1, d2, "p=2 diverged from serial");
    assert_eq!(d1, d4, "p=4 diverged from serial");
    assert_eq!(d1, ds, "salted plan diverged from serial");
}
