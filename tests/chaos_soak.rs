//! Chaos soak: the full pipeline — producer, consumer proxy, stateful
//! compute under supervision, OLAP ingestion, broker scatter-gather and
//! archival — driven under seeded, deterministic fault plans.
//!
//! Every test runs the same soak twice with the same seed and asserts the
//! recorded fault schedule is byte-identical: the chaos layer never uses
//! wall-clock or ambient randomness, so a failure seen once can always be
//! replayed. `ci.sh` additionally diffs the printed `CHAOS_SUMMARY` lines
//! between two separate processes for three fixed seeds.

use rtdi::common::chaos::{self, FaultKind, FaultPlan, FaultPoint, Trigger};
use rtdi::common::{AggFn, FieldType, Record, Row, Schema, SimClock};
use rtdi::core::platform::RealtimePlatform;
use rtdi::flinksql::compiler::CompileOptions;
use rtdi::olap::broker::{Broker, ServerNode};
use rtdi::olap::query::Query;
use rtdi::olap::segment::{IndexSpec, Segment};
use rtdi::olap::table::TableConfig;
use rtdi::stream::consumer::{ConsumerGroup, TopicSubscription};
use rtdi::stream::dlq::DeadLetterQueue;
use rtdi::stream::proxy::{ConsumerProxy, DispatchMode, ProxyConfig};
use rtdi::stream::topic::TopicConfig;
use std::sync::Arc;

const RECORDS: usize = 200;

fn trips_schema() -> Schema {
    Schema::of(
        "trips",
        &[
            ("city", FieldType::Str),
            ("fare", FieldType::Double),
            ("ts", FieldType::Timestamp),
        ],
    )
}

fn seg(name: &str, n: usize) -> Arc<Segment> {
    let schema = Schema::of("cities", &[("city", FieldType::Str), ("v", FieldType::Int)]);
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            Row::new()
                .with("city", ["sf", "la"][i % 2])
                .with("v", i as i64)
        })
        .collect();
    Arc::new(Segment::build(name, &schema, rows, &IndexSpec::none()).unwrap())
}

/// One named fault plan per layer of the pipeline.
struct FaultMix {
    append: FaultPlan,
    dispatch: FaultPlan,
    compute: FaultPlan,
    serve: FaultPlan,
    archive_put: FaultPlan,
}

/// Every-Nth faults on every layer; the compute job crashes once mid-run.
fn mix_every_nth() -> FaultMix {
    FaultMix {
        append: FaultPlan::fail(FaultKind::Unavailable, Trigger::EveryNth(7)),
        dispatch: FaultPlan::fail(FaultKind::Timeout, Trigger::EveryNth(5)),
        compute: FaultPlan::fail(FaultKind::ProcessingFailed, Trigger::Always)
            .with_burst(50, Some(1)),
        serve: FaultPlan::fail(FaultKind::Unavailable, Trigger::EveryNth(3)),
        archive_put: FaultPlan::fail(FaultKind::Unavailable, Trigger::Always)
            .with_burst(0, Some(1)),
    }
}

/// Probabilistic faults where a retry budget backs the caller, plus
/// latency injection on segment serving.
fn mix_probabilistic() -> FaultMix {
    FaultMix {
        append: FaultPlan::fail(FaultKind::Unavailable, Trigger::Probability(0.08)),
        dispatch: FaultPlan::fail(FaultKind::ProcessingFailed, Trigger::Probability(0.05)),
        compute: FaultPlan::fail(FaultKind::ProcessingFailed, Trigger::Always)
            .with_burst(120, Some(1)),
        serve: FaultPlan::fail(FaultKind::Timeout, Trigger::EveryNth(2)).with_latency_us(200),
        archive_put: FaultPlan::fail(FaultKind::Unavailable, Trigger::Always)
            .with_burst(0, Some(1)),
    }
}

/// Burst windows: consecutive failures that exactly exhaust (but never
/// exceed) the retry budgets, and a compute job that crashes twice.
fn mix_bursty() -> FaultMix {
    FaultMix {
        append: FaultPlan::fail(FaultKind::Unavailable, Trigger::Always).with_burst(100, Some(3)),
        dispatch: FaultPlan::fail(FaultKind::Unavailable, Trigger::EveryNth(6)),
        compute: FaultPlan::fail(FaultKind::ProcessingFailed, Trigger::Always)
            .with_burst(30, Some(2)),
        serve: FaultPlan::fail(FaultKind::Unavailable, Trigger::EveryNth(4)),
        archive_put: FaultPlan::fail(FaultKind::Timeout, Trigger::Always).with_burst(0, Some(2)),
    }
}

/// Run the full pipeline under `mix` with `seed`, assert every soak
/// invariant (zero loss, green health, degraded-not-failed broker,
/// bounded retries) and return the recorded fault schedule.
fn soak(seed: u64, mix: FaultMix) -> String {
    chaos::registry().reset(seed);
    chaos::reset_retry_stats();
    let clock = Arc::new(SimClock::new(1_000_000));
    let p = RealtimePlatform::with_clock(clock);
    p.create_topic(
        "trips",
        TopicConfig::default().with_partitions(2),
        trips_schema(),
    )
    .unwrap();
    chaos::registry().arm(FaultPoint::StreamAppend, mix.append);
    chaos::registry().arm(FaultPoint::ProxyDispatch, mix.dispatch);
    chaos::registry().arm(FaultPoint::ComputeProcess, mix.compute);

    // --- produce through injected stream.append faults: the producer's
    // retry policy absorbs every one of them
    let producer = p.producer("chaos-soak");
    for i in 0..RECORDS {
        producer
            .send(
                "trips",
                Record::new(
                    Row::new()
                        .with("city", ["sf", "la"][i % 2])
                        .with("fare", 10.0 + (i % 5) as f64)
                        .with("ts", (i as i64) * 100),
                    (i as i64) * 100,
                )
                .with_key(format!("t{i}")),
            )
            .expect("producer retries absorb injected append faults");
    }

    // --- consumer proxy under injected dispatch faults: transient, so
    // everything is delivered and nothing is dead-lettered
    let sub = p.federation().subscribe("trips").unwrap();
    let group = ConsumerGroup::new("soak", TopicSubscription::new(sub.topic()));
    let dlq = Arc::new(DeadLetterQueue::new("trips").unwrap());
    let proxy = ConsumerProxy::new(
        ProxyConfig {
            mode: DispatchMode::Poll,
            max_attempts: 4,
            poll_batch: 64,
            ..Default::default()
        },
        Arc::new(|_: &Record| Ok(())),
        dlq.clone(),
    );
    let stats = proxy.run_until_caught_up(&group).unwrap();
    assert_eq!(stats.delivered as usize, RECORDS, "proxy delivered all");
    assert_eq!(stats.dead_lettered, 0, "transient faults never park");
    assert_eq!(dlq.depth(), 0);

    // --- OLAP ingestion (audited by Chaperone against the stream hop)
    let table = p
        .create_olap_table(
            TableConfig::new("trips", trips_schema())
                .with_time_column("ts")
                .with_partitions(2),
        )
        .unwrap();
    let mut ing = p.ingest_into("trips", table).unwrap();
    assert_eq!(ing.run_once().unwrap() as usize, RECORDS);

    // --- supervised stateful compute: the injected compute.process crash
    // kills the run; the job manager restarts from the last checkpoint and
    // the windowed state comes back exactly once
    let stats_schema = Schema::of(
        "trip_stats",
        &[
            ("city", FieldType::Str),
            ("w", FieldType::Timestamp),
            ("trips", FieldType::Int),
            ("ingest_ts", FieldType::Timestamp),
        ],
    );
    let sink_table = p
        .create_olap_table(
            TableConfig::new("trip_stats", stats_schema)
                .with_time_column("ingest_ts")
                .with_partitions(2),
        )
        .unwrap();
    let job_stats = p
        .deploy_sql_pipeline(
            "trip-windows",
            "SELECT city, TUMBLE(ts, 1000) AS w, COUNT(*) AS trips \
             FROM trips GROUP BY city, TUMBLE(ts, 1000)",
            "trips",
            sink_table.clone(),
            &CompileOptions::default(),
        )
        .expect("supervision recovers the crashed job");
    assert!(job_stats.records_in as usize >= RECORDS);
    let restarts = p.job_manager().status("trip-windows").unwrap().restarts;
    assert!(restarts >= 1, "injected crash must force a restart");
    let q = Query::select_all("trip_stats").aggregate("total", AggFn::Sum("trips".into()));
    assert_eq!(
        sink_table.query(&q).unwrap().rows[0].get_double("total"),
        Some(RECORDS as f64),
        "exactly-once window state after crash recovery"
    );

    // --- broker degradation: one server down plus injected segment-serve
    // faults yields a partial answer, never an error
    let servers: Vec<Arc<ServerNode>> = (0..3).map(ServerNode::new).collect();
    let broker = Broker::new(servers);
    broker.register_table("cities", false);
    for i in 0..4 {
        broker
            .place_segment("cities", seg(&format!("s{i}"), 100), None, 1)
            .unwrap();
    }
    chaos::registry().arm(FaultPoint::OlapSegmentServe, mix.serve);
    broker.servers()[1].set_down(true);
    let cq = Query::select_all("cities").aggregate("n", AggFn::Count);
    let degraded = broker
        .query(&cq)
        .expect("degraded service, not an outage: partial beats Err");
    assert!(degraded.partial, "faults must flag the answer partial");
    assert!(degraded.segments_unavailable > 0);
    let n = degraded.rows[0].get_int("n").unwrap();
    assert!(n > 0 && n < 400, "partial count, got {n}");
    // the server heals and the faults stop: full service resumes
    chaos::registry().disarm(FaultPoint::OlapSegmentServe);
    broker.servers()[1].set_down(false);
    let healed = broker.query(&cq).unwrap();
    assert!(!healed.partial);
    assert_eq!(healed.rows[0].get_int("n"), Some(400));

    // --- archival through injected storage.object_put faults
    chaos::registry().arm(FaultPoint::StorageObjectPut, mix.archive_put);
    assert_eq!(p.archive_topic("trips", &trips_schema()).unwrap(), RECORDS);
    let (_, put_fires) = chaos::registry().stats(FaultPoint::StorageObjectPut);
    assert!(put_fires >= 1, "archival fault plan must have fired");

    // --- green health: per-stage freshness traced, Chaperone audits clean
    let health = p.health();
    let audit = health
        .audits
        .iter()
        .find(|a| a.pipeline == "trips")
        .expect("stream->ingested hop audited");
    assert_eq!(audit.lost, 0, "chaos must not lose records");
    assert_eq!(audit.duplicated, 0, "chaos must not duplicate records");
    assert!(health.zero_loss());

    // --- retries happened, and stayed within a sane global bound
    let retries = chaos::retries_total();
    assert!(retries > 0, "fault plans must exercise the retry paths");
    assert!(retries < 1_000, "retry storm: {retries} retries");

    let summary = chaos::registry().schedule_summary();
    chaos::registry().disarm_all();
    summary
}

/// Run one seed twice; the fault schedule must be byte-identical.
fn soak_twice(seed: u64, mk: fn() -> FaultMix) -> String {
    let first = soak(seed, mk());
    let second = soak(seed, mk());
    assert_eq!(
        first, second,
        "same seed must reproduce a byte-identical fault schedule"
    );
    assert!(first.starts_with(&format!("seed={seed}")));
    first
}

#[test]
fn soak_every_nth_plan_is_survivable_and_deterministic() {
    let _g = chaos::test_guard();
    soak_twice(0xA11CE, mix_every_nth);
}

#[test]
fn soak_probabilistic_plan_is_survivable_and_deterministic() {
    let _g = chaos::test_guard();
    soak_twice(0xB0B5EED, mix_probabilistic);
}

#[test]
fn soak_bursty_plan_is_survivable_and_deterministic() {
    let _g = chaos::test_guard();
    soak_twice(0xC4A05C4, mix_bursty);
}

/// ci.sh hook: the seed comes from `RTDI_CHAOS_SEED`, and the schedule is
/// printed so two separate processes can be diffed line-by-line.
#[test]
fn soak_env_seed_prints_schedule() {
    let seed = std::env::var("RTDI_CHAOS_SEED")
        .ok()
        .and_then(|s| {
            s.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| s.parse().ok())
        })
        .unwrap_or(0xA11CE);
    let _g = chaos::test_guard();
    let summary = soak_twice(seed, mix_every_nth);
    for line in summary.lines() {
        println!("CHAOS_SUMMARY {line}");
    }
}
