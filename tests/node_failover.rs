//! Node-kill soak: seeded, deterministic kill/heal cycles against broker
//! nodes (stream side) and OLAP servers (serving side), asserting the
//! PR-4 durability invariant end to end:
//!
//! - every record the cluster *committed* (acks=all past the ISR) is
//!   delivered to consumers exactly once, in order, across any number of
//!   leader failovers;
//! - every sealed segment lost to a server death is re-served after the
//!   self-healing rebalance, so queries return to full (non-partial)
//!   coverage.
//!
//! Like `chaos_soak.rs`, each soak runs twice per seed and the recorded
//! failover/rebalance logs must be byte-identical; `ci.sh` additionally
//! diffs the printed `NODEKILL_SUMMARY` lines between two separate
//! processes for two fixed seeds.

use rtdi::common::chaos;
use rtdi::common::{
    AggFn, Clock, FieldType, Membership, MembershipConfig, Record, Row, Schema, SimClock,
};
use rtdi::olap::broker::{Broker, ServerNode};
use rtdi::olap::query::Query;
use rtdi::olap::rebalance::Rebalancer;
use rtdi::olap::segment::{IndexSpec, Segment};
use rtdi::olap::segstore::{SegmentStore, SegmentStoreMode};
use rtdi::storage::object::InMemoryStore;
use rtdi::stream::cluster::{Cluster, ClusterConfig};
use rtdi::stream::topic::TopicConfig;
use std::collections::BTreeMap;
use std::sync::Arc;

const NODES: usize = 5;
const PARTITIONS: usize = 4;
const CYCLES: usize = 4;
const PERIOD_MS: i64 = 30_000;
const OUTAGE_MS: i64 = 12_000;

/// Stream half: produce through seeded kill/heal cycles, alternating
/// announced kills (instant failover) with silent failures (deadline
/// detection), and prove exactly-once delivery of every committed record.
fn stream_soak() -> String {
    let clock = Arc::new(SimClock::new(0));
    let cluster = Cluster::with_clock(
        "core",
        ClusterConfig {
            nodes: NODES,
            ..Default::default()
        },
        clock.clone(),
    );
    let topic = cluster
        .create_topic(
            "trips",
            TopicConfig {
                partitions: PARTITIONS,
                replication: 3,
                lossless: true,
                min_insync: 2,
                ..Default::default()
            },
        )
        .unwrap();

    let names = cluster.node_names();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let outages =
        chaos::registry().plan_node_outages(&name_refs, CYCLES, 5_000, PERIOD_MS, OUTAGE_MS);

    let interval = cluster.membership().config().heartbeat_interval_ms;
    let horizon = 5_000 + CYCLES as i64 * PERIOD_MS + 20_000;
    let mut committed: BTreeMap<usize, Vec<i64>> = BTreeMap::new();
    let mut next_kill = 0usize;
    let mut pending_heals: Vec<(i64, String)> = Vec::new();
    let mut rejected = 0u64;
    let mut i: i64 = 0;
    while clock.now() < horizon {
        let now = clock.now();
        pending_heals.retain(|(at, node)| {
            if *at <= now {
                cluster.heal_node(node);
                false
            } else {
                true
            }
        });
        while next_kill < outages.len() && outages[next_kill].kill_at_ms <= now {
            let o = &outages[next_kill];
            // alternate announced and silent kills: both paths must
            // preserve the invariant
            if next_kill.is_multiple_of(2) {
                cluster.kill_node(&o.node);
            } else {
                cluster.fail_node_silently(&o.node);
            }
            pending_heals.push((o.heal_at_ms, o.node.clone()));
            next_kill += 1;
        }
        // steady produce load; an under-replicated partition may reject
        // (acks=all semantics) — rejected writes are NOT committed and so
        // are exempt from the durability invariant
        for _ in 0..4 {
            let rec = Record::new(Row::new().with("i", i), now).with_key(format!("k{i}"));
            match cluster.produce("trips", rec, now) {
                Ok((p, _)) => committed.entry(p).or_default().push(i),
                Err(_) => rejected += 1,
            }
            i += 1;
        }
        clock.advance(interval);
        cluster.heartbeat_tick();
    }
    // final heal + settle so every node rejoins its ISRs
    for (_, node) in pending_heals.drain(..) {
        cluster.heal_node(&node);
    }
    clock.advance(interval);
    cluster.heartbeat_tick();

    // durability: consumers replay exactly the committed sequence
    for p in 0..PARTITIONS {
        let fetched: Vec<i64> = topic
            .fetch(p, 0, usize::MAX)
            .unwrap()
            .records
            .into_iter()
            .map(|r| r.record.value.get_int("i").unwrap())
            .collect();
        let expect = committed.get(&p).cloned().unwrap_or_default();
        assert_eq!(
            fetched, expect,
            "partition {p}: committed records must survive failover exactly once, in order"
        );
        // full ISR restored after the last heal
        let st = topic.replica_status(p).unwrap();
        assert_eq!(st.isr.len(), st.assignment.len(), "partition {p} re-synced");
    }
    let total: usize = committed.values().map(|v| v.len()).sum();
    assert!(total > 0, "soak must commit records");
    let log = cluster.failover_log();
    assert!(!log.is_empty(), "kill cycles must force failovers");
    format!("produced={} rejected={rejected}\n{log}", total)
}

/// OLAP half: kill servers under the same seeded schedule; the membership
/// listener drives the rebalancer, which must re-host every sealed
/// segment so queries return to full coverage after each death.
fn olap_soak() -> String {
    let servers: Vec<Arc<ServerNode>> = (0..4).map(ServerNode::new).collect();
    let broker = Arc::new(Broker::new(servers));
    broker.register_table("t", false);
    let store = Arc::new(SegmentStore::new(
        Arc::new(InMemoryStore::new()),
        SegmentStoreMode::PeerToPeer,
        IndexSpec::none(),
    ));
    let schema = Schema::of("t", &[("city", FieldType::Str), ("v", FieldType::Int)]);
    for s in 0..8 {
        let rows: Vec<Row> = (0..100)
            .map(|j| {
                Row::new()
                    .with("city", ["sf", "la"][j % 2])
                    .with("v", (s * 100 + j) as i64)
            })
            .collect();
        let seg =
            Arc::new(Segment::build(format!("s{s}"), &schema, rows, &IndexSpec::none()).unwrap());
        store.backup("t", seg.clone()).unwrap();
        broker.place_segment("t", seg, None, 2).unwrap();
    }
    store.flush_pending().unwrap();

    let clock = Arc::new(SimClock::new(1_000_000));
    let membership = Membership::new(clock, MembershipConfig::default());
    let server_names: Vec<String> = broker
        .servers()
        .iter()
        .map(|s| s.name().to_string())
        .collect();
    for n in &server_names {
        membership.register(n);
    }
    let rebalancer = Rebalancer::new(broker.clone(), store);
    rebalancer.watch(&membership);

    let name_refs: Vec<&str> = server_names.iter().map(|s| s.as_str()).collect();
    let outages = chaos::registry().plan_node_outages(&name_refs, CYCLES, 0, PERIOD_MS, OUTAGE_MS);
    let q = Query::select_all("t").aggregate("n", AggFn::Count);
    for o in &outages {
        chaos::registry().kill_node(&o.node);
        // the Dead event triggers an immediate rebalance pass
        membership.kill(&o.node);
        let healed = broker.query(&q).unwrap();
        assert!(
            !healed.partial,
            "rebalance must restore full coverage after killing {}",
            o.node
        );
        assert_eq!(
            healed.rows[0].get_int("n"),
            Some(800),
            "every sealed segment re-served after {} died",
            o.node
        );
        chaos::registry().heal_node(&o.node);
        membership.revive(&o.node);
    }
    let moves = rebalancer.move_log();
    assert!(!moves.is_empty(), "server kills must force replica moves");
    moves
}

fn soak(seed: u64) -> String {
    chaos::registry().reset(seed);
    let summary = format!("seed={seed:#x}\n{}{}", stream_soak(), olap_soak());
    chaos::registry().reset(seed);
    summary
}

fn soak_twice(seed: u64) -> String {
    let first = soak(seed);
    let second = soak(seed);
    assert_eq!(
        first, second,
        "same seed must reproduce byte-identical failover and rebalance logs"
    );
    first
}

#[test]
fn node_kills_preserve_committed_records_and_segment_coverage() {
    let _g = chaos::test_guard();
    soak_twice(0xFA110);
}

#[test]
fn node_kill_soak_alternate_seed() {
    let _g = chaos::test_guard();
    soak_twice(0xDEAD5EED);
}

/// ci.sh hook: seed from `RTDI_NODEKILL_SEED`, logs printed for
/// cross-process diffing.
#[test]
fn node_kill_env_seed_prints_failover_log() {
    let seed = std::env::var("RTDI_NODEKILL_SEED")
        .ok()
        .and_then(|s| {
            s.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| s.parse().ok())
        })
        .unwrap_or(0xFA110);
    let _g = chaos::test_guard();
    let summary = soak_twice(seed);
    for line in summary.lines() {
        println!("NODEKILL_SUMMARY {line}");
    }
}
