//! Decoder robustness soak: a seeded corpus of damaged on-disk files —
//! truncated and bit-flipped segment files and legacy colfiles — driven
//! through every decode entry point (`segfile::decode_rows_segment`, the
//! lazy `Segment::load_lazy` path and `colfile::decode_columnar`).
//!
//! The invariant under test is the bugfix contract of the segment format:
//! a decoder fed hostile bytes may succeed (benign damage the format
//! cannot see — colfile has no checksum) or return
//! `Err(Error::Corruption)`, but it must NEVER panic and never surface
//! any other error kind. Any panic aborts the test and fails `ci.sh`.
//!
//! The corpus derives entirely from a seed (`RTDI_FUZZ_SEED` in ci), and
//! the printed `DECODER_SUMMARY` line is a pure function of that seed, so
//! `ci.sh` diffs the line between two separate processes to prove the
//! soak is replayable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtdi::common::{Error, Field, FieldType, Row, Schema, Value};
use rtdi::olap::query::Query;
use rtdi::olap::segment::{IndexSpec, Segment};
use rtdi::storage::{colfile, segfile};

const DEFAULT_SEED: u64 = 0xDEC0DE;

/// A schema of 1–5 fields over every supported field type.
fn arb_schema(rng: &mut StdRng) -> Schema {
    let types = [
        FieldType::Bool,
        FieldType::Int,
        FieldType::Double,
        FieldType::Str,
        FieldType::Bytes,
        FieldType::Json,
        FieldType::Timestamp,
    ];
    let n = rng.gen_range(1..=5usize);
    Schema::new(
        "t",
        (0..n)
            .map(|i| Field::new(format!("f{i}"), types[rng.gen_range(0..types.len())]))
            .collect(),
    )
}

fn arb_rows(rng: &mut StdRng, schema: &Schema, lo: usize, hi: usize) -> Vec<Row> {
    let len = rng.gen_range(lo..hi);
    (0..len)
        .map(|_| {
            let mut row = Row::new();
            for f in &schema.fields {
                if !rng.gen_bool(0.8) {
                    continue;
                }
                let v = match f.field_type {
                    FieldType::Bool => Value::Bool(rng.gen()),
                    FieldType::Int | FieldType::Timestamp => Value::Int(rng.gen_range(0..5000i64)),
                    FieldType::Double => Value::Double(rng.gen_range(-1e6..1e6)),
                    FieldType::Str => Value::Str(format!("s{}", rng.gen_range(0..12u8))),
                    FieldType::Bytes => {
                        let n = rng.gen_range(0..10usize);
                        Value::Bytes((0..n).map(|_| rng.gen_range(0..=255u8)).collect())
                    }
                    FieldType::Json => Value::Str(format!("j{}", rng.gen_range(0..12u8))),
                };
                // Json columns accept Str text; keep the corpus simple
                let v = if f.field_type == FieldType::Json {
                    match v {
                        Value::Str(s) => {
                            Value::Json(Box::new(rtdi::common::value::JsonValue::String(s)))
                        }
                        other => other,
                    }
                } else {
                    v
                };
                row.push(f.name.as_str(), v);
            }
            row
        })
        .collect()
}

/// Tally of decode outcomes across the corpus; all counts derive from the
/// seed alone, so the summary line is byte-stable across processes.
#[derive(Default)]
struct Tally {
    cases: u64,
    truncations: u64,
    flips: u64,
    detected: u64,
    benign: u64,
}

/// Decode `bytes` through one entry point; count the outcome and panic
/// only on a non-Corruption error (a real panic inside the decoder also
/// propagates and fails the test — that is the gate).
fn probe_segfile(bytes: Vec<u8>, tally: &mut Tally, ctx: &str) {
    match segfile::decode_rows_segment(&bytes.clone().into()) {
        Ok(_) => tally.benign += 1,
        Err(Error::Corruption(_)) => tally.detected += 1,
        Err(e) => panic!("{ctx}: segfile decode surfaced wrong error kind: {e}"),
    }
    // the lazy path must hold the same bound: open + full materialize
    match Segment::load_lazy(bytes.into()).and_then(|l| l.into_segment(&IndexSpec::none())) {
        Ok(_) | Err(Error::Corruption(_)) => {}
        Err(e) => panic!("{ctx}: lazy decode surfaced wrong error kind: {e}"),
    }
}

fn probe_colfile(bytes: &[u8], tally: &mut Tally, ctx: &str) {
    match colfile::decode_columnar(&bytes.to_vec().into()) {
        Ok(_) => tally.benign += 1,
        Err(Error::Corruption(_)) => tally.detected += 1,
        Err(e) => panic!("{ctx}: colfile decode surfaced wrong error kind: {e}"),
    }
}

/// Run the whole corpus for one seed and return the summary line body.
fn soak(seed: u64) -> String {
    let mut tally = Tally::default();
    for case in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(case));
        tally.cases += 1;

        // --- segment files (checksummed format)
        let schema = arb_schema(&mut rng);
        let rows = arb_rows(&mut rng, &schema, 1, 60);
        let clean = segfile::encode_rows_segment(&schema, "fz", &rows)
            .unwrap()
            .to_vec();
        for t in 0..5 {
            let cut = if t == 0 {
                0
            } else {
                rng.gen_range(0..clean.len())
            };
            tally.truncations += 1;
            probe_segfile(
                clean[..cut].to_vec(),
                &mut tally,
                &format!("case {case} segfile cut {cut}"),
            );
        }
        for _ in 0..5 {
            let mut bad = clean.clone();
            let at = rng.gen_range(0..bad.len());
            bad[at] ^= rng.gen_range(1..=255u8);
            tally.flips += 1;
            probe_segfile(bad, &mut tally, &format!("case {case} segfile flip {at}"));
        }

        // --- a lazily-opened segment with a flipped column region must
        // fail on access, not on open: exercise the query path too
        let mut bad = clean.clone();
        let at = clean.len() / 2;
        bad[at] ^= 0xFF;
        if let Ok(lazy) = Segment::load_lazy(bad.into()) {
            match lazy.execute(&Query::select_all("t")) {
                Ok(_) | Err(Error::Corruption(_)) => {}
                Err(e) => panic!("case {case}: lazy execute wrong error kind: {e}"),
            }
        }

        // --- legacy colfiles (no checksum: benign decodes allowed)
        let colschema = Schema::of(
            "t",
            &[
                ("city", FieldType::Str),
                ("n", FieldType::Int),
                ("x", FieldType::Double),
                ("flag", FieldType::Bool),
            ],
        );
        let colrows: Vec<Row> = (0..rng.gen_range(1..60usize))
            .map(|i| {
                Row::new()
                    .with("city", format!("c{}", i % 5))
                    .with("n", i as i64)
                    .with("x", i as f64)
                    .with("flag", i % 2 == 0)
            })
            .collect();
        let clean = colfile::encode_columnar(&colschema, &colrows)
            .unwrap()
            .to_vec();
        for t in 0..5 {
            let cut = if t == 0 {
                0
            } else {
                rng.gen_range(0..clean.len())
            };
            tally.truncations += 1;
            probe_colfile(
                &clean[..cut],
                &mut tally,
                &format!("case {case} colfile cut {cut}"),
            );
        }
        for _ in 0..5 {
            let mut bad = clean.clone();
            let at = rng.gen_range(0..bad.len());
            bad[at] ^= rng.gen_range(1..=255u8);
            tally.flips += 1;
            probe_colfile(&bad, &mut tally, &format!("case {case} colfile flip {at}"));
        }
    }
    format!(
        "seed={seed:#x} cases={} truncations={} flips={} corrupt_detected={} benign={}",
        tally.cases, tally.truncations, tally.flips, tally.detected, tally.benign
    )
}

#[test]
fn damaged_files_never_panic_the_decoders() {
    let first = soak(DEFAULT_SEED);
    let second = soak(DEFAULT_SEED);
    assert_eq!(first, second, "same seed must replay identically");
}

/// ci.sh hook: the seed comes from `RTDI_FUZZ_SEED`, and the summary is
/// printed so two separate processes can be diffed byte-for-byte.
#[test]
fn fuzz_env_seed_prints_summary() {
    let seed = std::env::var("RTDI_FUZZ_SEED")
        .ok()
        .and_then(|s| {
            s.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| s.parse().ok())
        })
        .unwrap_or(DEFAULT_SEED);
    let summary = soak(seed);
    assert_eq!(summary, soak(seed), "replay must be byte-identical");
    println!("DECODER_SUMMARY {summary}");
}
