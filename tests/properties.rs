//! Property-based tests on cross-crate invariants.
//!
//! The build container has no registry access, so instead of proptest this
//! uses a deterministic seeded-PRNG harness: every test runs N generated
//! cases, each derived from `StdRng::seed_from_u64(BASE + case)`. A failure
//! message always carries the case number, so any failure replays exactly
//! by re-running the test. The shrunk counter-examples proptest found in
//! the seed (`tests/properties.proptest-regressions`) are pinned below as
//! plain deterministic tests in `mod pinned_regressions`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtdi::common::{AggFn, FieldType, Record, Row, Schema, Value};
use rtdi::olap::query::{Predicate, PredicateOp, Query};
use rtdi::olap::segment::{IndexSpec, Segment};
use rtdi::olap::startree::StarTreeSpec;
use rtdi::storage::colfile;
use rtdi::stream::log::PartitionLog;

/// Distinct per-test seed bases so tests never share generated streams.
const SEED_COLFILE: u64 = 0x0C01_F11E;
const SEED_INDEXES: u64 = 0x001D_E7E5;
const SEED_SORTED: u64 = 0x0050_27ED;
const SEED_STARTREE: u64 = 0x57A2_72EE;
const SEED_LOG: u64 = 0x10C_0FF5;
const SEED_VECTOR: u64 = 0x0B47_C4ED;
const SEED_JSON: u64 = 0x150_4200;
const SEED_PARTITION: u64 = 0x9A27_1710;
const SEED_PUSHDOWN: u64 = 0x0090_54D0;
const SEED_FUSION: u64 = 0x0F05_ED00;
const SEED_SEGFILE: u64 = 0x5E6F_11E0;
const SEED_SEGFUZZ: u64 = 0x5E6F_F422;
const SEED_COLFUZZ: u64 = 0x0C01_F422;

fn schema() -> Schema {
    Schema::of(
        "t",
        &[
            ("city", FieldType::Str),
            ("n", FieldType::Int),
            ("x", FieldType::Double),
            ("flag", FieldType::Bool),
        ],
    )
}

/// A row over the schema where each column is independently present ~75%
/// of the time (absent columns exercise the NULL paths end to end).
fn arb_row(rng: &mut StdRng) -> Row {
    let mut row = Row::new();
    if rng.gen_bool(0.75) {
        row.push("city", format!("c{}", rng.gen_range(0..6u8)));
    }
    if rng.gen_bool(0.75) {
        row.push("n", rng.gen_range(-1000..1000i64));
    }
    if rng.gen_bool(0.75) {
        row.push("x", rng.gen_range(-100.0..100.0f64));
    }
    if rng.gen_bool(0.75) {
        row.push("flag", rng.gen::<bool>());
    }
    row
}

fn arb_rows(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<Row> {
    let len = rng.gen_range(lo..hi);
    (0..len).map(|_| arb_row(rng)).collect()
}

fn arb_predicate(rng: &mut StdRng) -> Predicate {
    let op = [
        PredicateOp::Eq,
        PredicateOp::Ne,
        PredicateOp::Lt,
        PredicateOp::Le,
        PredicateOp::Gt,
        PredicateOp::Ge,
    ][rng.gen_range(0..6usize)];
    match rng.gen_range(0..3u8) {
        0 => Predicate::new("city", op, format!("c{}", rng.gen_range(0..6u8))),
        1 => Predicate::new("n", op, rng.gen_range(-1000..1000i64)),
        _ => Predicate::new("x", op, rng.gen_range(-100.0..100.0f64)),
    }
}

/// Columnar file encode/decode round-trips arbitrary rows (including
/// missing fields -> nulls).
#[test]
fn colfile_roundtrip() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(SEED_COLFILE + case);
        let rows = arb_rows(&mut rng, 0, 200);
        let data = colfile::encode_columnar(&schema(), &rows).unwrap();
        let (s2, decoded) = colfile::decode_columnar(&data).unwrap();
        assert_eq!(s2.fields.len(), schema().fields.len(), "case {case}");
        assert_eq!(decoded.len(), rows.len(), "case {case}");
        for (a, b) in rows.iter().zip(&decoded) {
            for col in ["city", "n", "x", "flag"] {
                let va = a.get(col).cloned().unwrap_or(Value::Null);
                let vb = b.get(col).cloned().unwrap_or(Value::Null);
                assert_eq!(va, vb, "case {case} column {col}");
            }
        }
    }
}

/// On-disk segment files round-trip arbitrary rows over arbitrary
/// schemas drawn from every field type the format supports (bit-packed
/// ints, RLE, dictionaries, var-byte blobs, JSON text, null bitmaps).
#[test]
fn segfile_roundtrip_random_schemas() {
    use rtdi::storage::segfile;

    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(SEED_SEGFILE + case);
        let schema = arb_schema(&mut rng);
        let rows = arb_typed_rows(&mut rng, &schema, 0, 200);
        let data = segfile::encode_rows_segment(&schema, "p", &rows).unwrap();
        assert!(segfile::is_segment_file(&data), "case {case}");
        let (s2, decoded) = segfile::decode_rows_segment(&data).unwrap();
        assert_eq!(s2.fields.len(), schema.fields.len(), "case {case}");
        assert_eq!(decoded.len(), rows.len(), "case {case}");
        for (i, (a, b)) in rows.iter().zip(&decoded).enumerate() {
            for f in &schema.fields {
                let va = a.get(&f.name).cloned().unwrap_or(Value::Null);
                let vb = b.get(&f.name).cloned().unwrap_or(Value::Null);
                assert_eq!(va, vb, "case {case} row {i} column {}", f.name);
            }
        }
    }
}

/// Decoder robustness: truncating or flipping bytes of a valid segment
/// file must never panic — every damaged input decodes to `Ok` (benign
/// damage) or `Err(Error::Corruption)`, nothing else. The segment
/// format's CRC-checked footer means damage is in fact always detected.
#[test]
fn segfile_decode_never_panics_on_corrupt_bytes() {
    use rtdi::common::Error;
    use rtdi::storage::segfile;

    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(SEED_SEGFUZZ + case);
        let schema = arb_schema(&mut rng);
        let rows = arb_typed_rows(&mut rng, &schema, 1, 80);
        let clean = segfile::encode_rows_segment(&schema, "p", &rows)
            .unwrap()
            .to_vec();
        // truncations at random cut points (plus the empty file)
        for t in 0..6 {
            let cut = if t == 0 {
                0
            } else {
                rng.gen_range(0..clean.len())
            };
            let res = segfile::decode_rows_segment(&clean[..cut].to_vec().into());
            match res {
                Err(Error::Corruption(_)) => {}
                Err(e) => panic!("case {case} cut {cut}: wrong error kind: {e}"),
                Ok(_) => panic!("case {case} cut {cut}: truncated file decoded"),
            }
        }
        // random byte flips anywhere in the file
        for _ in 0..6 {
            let mut bad = clean.clone();
            let at = rng.gen_range(0..bad.len());
            bad[at] ^= rng.gen_range(1..=255u8);
            match segfile::decode_rows_segment(&bad.into()) {
                Err(Error::Corruption(_)) => {}
                Err(e) => panic!("case {case} flip at {at}: wrong error kind: {e}"),
                Ok(_) => panic!("case {case} flip at {at}: checksum missed a flip"),
            }
        }
    }
}

/// The legacy columnar part-file decoder holds the same no-panic bound:
/// damaged bytes yield `Ok` (colfile has no checksum, so a value-byte
/// flip can decode to different rows) or `Err(Error::Corruption)` —
/// never a panic, never another error kind.
#[test]
fn colfile_decode_never_panics_on_corrupt_bytes() {
    use rtdi::common::Error;

    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(SEED_COLFUZZ + case);
        let rows = arb_rows(&mut rng, 1, 80);
        let clean = colfile::encode_columnar(&schema(), &rows).unwrap().to_vec();
        let check = |bytes: &[u8], ctx: &str| match colfile::decode_columnar(&bytes.to_vec().into())
        {
            Ok(_) | Err(Error::Corruption(_)) => {}
            Err(e) => panic!("case {case} {ctx}: wrong error kind: {e}"),
        };
        for t in 0..6 {
            let cut = if t == 0 {
                0
            } else {
                rng.gen_range(0..clean.len())
            };
            check(&clean[..cut], &format!("cut {cut}"));
        }
        for _ in 0..6 {
            let mut bad = clean.clone();
            let at = rng.gen_range(0..bad.len());
            bad[at] ^= rng.gen_range(1..=255u8);
            check(&bad, &format!("flip at {at}"));
        }
    }
}

/// A schema of 1–6 fields drawn from all seven supported field types.
fn arb_schema(rng: &mut StdRng) -> Schema {
    use rtdi::common::Field;
    let types = [
        FieldType::Bool,
        FieldType::Int,
        FieldType::Double,
        FieldType::Str,
        FieldType::Bytes,
        FieldType::Json,
        FieldType::Timestamp,
    ];
    let n = rng.gen_range(1..=6usize);
    Schema::new(
        "t",
        (0..n)
            .map(|i| Field::new(format!("f{i}"), types[rng.gen_range(0..types.len())]))
            .collect(),
    )
}

/// Rows matching `schema`, each field independently present ~80% of the
/// time with a type-appropriate random value. Low-cardinality int/str
/// draws keep the RLE and dictionary paths exercised.
fn arb_typed_rows(rng: &mut StdRng, schema: &Schema, lo: usize, hi: usize) -> Vec<Row> {
    let len = rng.gen_range(lo..hi);
    (0..len)
        .map(|_| {
            let mut row = Row::new();
            for f in &schema.fields {
                if !rng.gen_bool(0.8) {
                    continue;
                }
                let v = match f.field_type {
                    FieldType::Bool => Value::Bool(rng.gen()),
                    FieldType::Int => {
                        if rng.gen_bool(0.5) {
                            Value::Int(rng.gen_range(0..4i64)) // RLE-friendly
                        } else {
                            Value::Int(rng.gen_range(i64::MIN / 2..i64::MAX / 2))
                        }
                    }
                    FieldType::Double => Value::Double(rng.gen_range(-1e6..1e6)),
                    FieldType::Str => Value::Str(format!("s{}", rng.gen_range(0..10u8))),
                    FieldType::Bytes => {
                        let n = rng.gen_range(0..12usize);
                        Value::Bytes((0..n).map(|_| rng.gen_range(0..=255u8)).collect())
                    }
                    FieldType::Json => Value::Json(Box::new(arb_json(rng, 2))),
                    FieldType::Timestamp => Value::Int(rng.gen_range(0..2_000_000_000i64)),
                };
                row.push(f.name.as_str(), v);
            }
            row
        })
        .collect()
}

/// Index-accelerated segment execution agrees with row-by-row predicate
/// evaluation for every predicate type.
#[test]
fn indexes_equal_scan() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(SEED_INDEXES + case);
        let rows = arb_rows(&mut rng, 1, 300);
        let preds: Vec<Predicate> = (0..rng.gen_range(1..3usize))
            .map(|_| arb_predicate(&mut rng))
            .collect();
        let spec = IndexSpec::none()
            .with_inverted(&["city", "n"])
            .with_range(&["x", "n"]);
        let seg = Segment::build("s", &schema(), rows.clone(), &spec).unwrap();
        let mut q = Query::select_all("t").aggregate("cnt", AggFn::Count);
        q.predicates = std::sync::Arc::new(preds.clone());
        let got = seg.execute(&q, None).unwrap().rows[0]
            .get_int("cnt")
            .unwrap();
        let expected = rows
            .iter()
            .filter(|r| preds.iter().all(|p| p.matches(r)))
            .count() as i64;
        assert_eq!(got, expected, "case {case} preds {preds:?}");
    }
}

/// Sorted-column builds return the same answers as unsorted ones.
#[test]
fn sorted_build_preserves_answers() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(SEED_SORTED + case);
        let rows = arb_rows(&mut rng, 1, 200);
        let pred = arb_predicate(&mut rng);
        let plain = Segment::build("a", &schema(), rows.clone(), &IndexSpec::none()).unwrap();
        let sorted =
            Segment::build("b", &schema(), rows, &IndexSpec::none().with_sorted("n")).unwrap();
        let q = Query::select_all("t")
            .filter(pred.clone())
            .aggregate("cnt", AggFn::Count)
            .aggregate("sum_x", AggFn::Sum("x".into()));
        let a = plain.execute(&q, None).unwrap().rows;
        let b = sorted.execute(&q, None).unwrap().rows;
        assert_eq!(
            a[0].get_int("cnt"),
            b[0].get_int("cnt"),
            "case {case} pred {pred:?}"
        );
        let (sa, sb) = (
            a[0].get_double("sum_x").unwrap_or(0.0),
            b[0].get_double("sum_x").unwrap_or(0.0),
        );
        assert!((sa - sb).abs() < 1e-6, "case {case}: {sa} vs {sb}");
    }
}

/// Star-tree answers equal exact aggregation for covered query shapes.
#[test]
fn startree_equals_exact() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(SEED_STARTREE + case);
        let rows = arb_rows(&mut rng, 1, 300);
        let mut st_spec = StarTreeSpec::new(&["city"], vec![AggFn::Count, AggFn::Sum("x".into())]);
        st_spec.max_leaf_records = 0; // always split: tree covers every group-by
        let spec = IndexSpec::none().with_startree(st_spec);
        let seg = Segment::build("s", &schema(), rows.clone(), &spec).unwrap();
        let q = Query::select_all("t")
            .aggregate("cnt", AggFn::Count)
            .aggregate("sx", AggFn::Sum("x".into()))
            .group(&["city"]);
        let res = seg.execute(&q, None).unwrap();
        assert!(res.used_startree, "case {case}");
        let total: i64 = res.rows.iter().map(|r| r.get_int("cnt").unwrap()).sum();
        assert_eq!(total, rows.len() as i64, "case {case}");
        let sum: f64 = res
            .rows
            .iter()
            .map(|r| r.get_double("sx").unwrap_or(0.0))
            .sum();
        let exact: f64 = rows.iter().filter_map(|r| r.get_double("x")).sum();
        assert!((sum - exact).abs() < 1e-6, "case {case}: {sum} vs {exact}");
    }
}

/// The vectorized sealed-segment execution path (compiled predicates,
/// batched columnar folds, dict-id group interning) returns exactly the
/// rows of the retained row-at-a-time reference implementation
/// (`MutableSegment`) for arbitrary queries: selections and aggregations,
/// predicates of every operator, NULL-producing absent columns, group-by
/// and projections over columns the schema does not even have, and upsert
/// valid-doc masks. Specs are restricted to non-reordering indices so both
/// engines fold docs in identical order and float sums compare exactly.
#[test]
fn vectorized_execution_equals_row_reference() {
    use rtdi::olap::bitmap::Bitmap;
    use rtdi::olap::realtime::MutableSegment;

    for case in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(SEED_VECTOR + case);
        let rows = arb_rows(&mut rng, 0, 300);
        let spec = match rng.gen_range(0..3u8) {
            0 => IndexSpec::none(),
            1 => IndexSpec::none().with_inverted(&["city", "n"]),
            _ => IndexSpec::none().with_range(&["x", "n"]),
        };
        let sealed = Segment::build("v", &schema(), rows.clone(), &spec).unwrap();
        let mut reference = MutableSegment::new("v", schema());
        for r in &rows {
            reference.append(r.clone()).unwrap();
        }

        let mut q = Query::select_all("t");
        for _ in 0..rng.gen_range(0..3usize) {
            q = q.filter(arb_predicate(&mut rng));
        }
        if rng.gen_bool(0.5) {
            // aggregation: slots may target absent ("ghost") columns, and
            // group-by may mix dict fast-path, non-dict and ghost columns
            let aggs: &[(&str, AggFn)] = &[
                ("cnt", AggFn::Count),
                ("sx", AggFn::Sum("x".into())),
                ("ax", AggFn::Avg("x".into())),
                ("mn", AggFn::Min("n".into())),
                ("mx", AggFn::Max("n".into())),
                ("dc", AggFn::DistinctCount("city".into())),
                ("gg", AggFn::Sum("ghost".into())),
            ];
            for slot in 0..rng.gen_range(1..4usize) {
                let (name, f) = &aggs[rng.gen_range(0..aggs.len())];
                q = q.aggregate(format!("{name}{slot}"), f.clone());
            }
            q = match rng.gen_range(0..5u8) {
                0 => q,
                1 => q.group(&["city"]),
                2 => q.group(&["city", "flag"]),
                3 => q.group(&["ghost"]),
                _ => q.group(&["city", "ghost"]),
            };
        } else {
            q = match rng.gen_range(0..3u8) {
                0 => q,
                1 => q.columns(&["city", "x"]),
                _ => q.columns(&["ghost", "n"]),
            };
            if rng.gen_bool(0.5) {
                q = q.order("n", rtdi::olap::query::SortOrder::Asc);
            }
            if rng.gen_bool(0.5) {
                q = q.limit(rng.gen_range(1..40usize));
            }
        }
        let valid: Option<Bitmap> = if rng.gen_bool(0.5) && !rows.is_empty() {
            let mut bm = Bitmap::new(rows.len());
            for i in 0..rows.len() {
                if rng.gen_bool(0.6) {
                    bm.set(i);
                }
            }
            Some(bm)
        } else {
            None
        };

        let fast = sealed.execute(&q, valid.as_ref()).unwrap();
        let slow = reference.execute(&q, valid.as_ref()).unwrap();
        // docs_scanned intentionally differs (index pruning vs full scan);
        // the answer rows must be identical, values and order included
        assert_eq!(fast.rows, slow.rows, "case {case} query {q:?}");
    }
}

/// Log offsets are dense and monotonic under any append/retention mix.
#[test]
fn log_offsets_monotonic() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(SEED_LOG + case);
        let sizes: Vec<usize> = (0..rng.gen_range(1..20usize))
            .map(|_| rng.gen_range(1..50usize))
            .collect();
        let retention_bytes = if rng.gen_bool(0.5) {
            rng.gen_range(1_000..20_000usize)
        } else {
            0
        };
        let log = PartitionLog::new(0, retention_bytes);
        let mut expected = 0u64;
        for (i, size) in sizes.iter().enumerate() {
            let batch: Vec<Record> = (0..*size)
                .map(|j| Record::new(Row::new().with("i", (i * 100 + j) as i64), 0))
                .collect();
            let first = log.append_batch(batch, i as i64);
            assert_eq!(first, expected, "case {case} batch {i}");
            expected += *size as u64;
        }
        assert_eq!(log.high_watermark(), expected, "case {case}");
        assert!(
            log.log_start_offset() <= log.high_watermark(),
            "case {case}"
        );
        // everything retained is fetchable with contiguous offsets
        let fetch = log.fetch(log.log_start_offset(), usize::MAX / 2).unwrap();
        for (k, r) in fetch.records.iter().enumerate() {
            assert_eq!(
                r.offset,
                log.log_start_offset() + k as u64,
                "case {case} record {k}"
            );
        }
    }
}

/// JSON parse/serialize round-trips arbitrary generated documents.
#[test]
fn json_roundtrip() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(SEED_JSON + case);
        let doc = arb_json(&mut rng, 3);
        let text = rtdi::common::json::to_string(&doc);
        let parsed = rtdi::common::json::parse(&text).unwrap();
        assert_eq!(parsed, doc, "case {case}: {text}");
    }
}

/// Keyed records always land on the same partition.
#[test]
fn partitioning_deterministic() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(SEED_PARTITION + case);
        let len = rng.gen_range(0..=24usize);
        let key: String = (0..len)
            .map(|_| {
                // printable ASCII keeps the property readable on failure
                char::from(rng.gen_range(0x20..0x7Fu8))
            })
            .collect();
        let parts = rng.gen_range(1..64usize);
        let r1 = Record::new(Row::new(), 0).with_key(key.clone());
        let r2 = Record::new(Row::new(), 0).with_key(key.clone());
        assert_eq!(
            r1.partition_for(parts),
            r2.partition_for(parts),
            "case {case} key {key:?}"
        );
        assert!(r1.partition_for(parts).unwrap() < parts, "case {case}");
    }
}

fn arb_json(rng: &mut StdRng, depth: u32) -> rtdi::common::value::JsonValue {
    use rtdi::common::value::JsonValue;
    let max = if depth == 0 { 4 } else { 6 };
    match rng.gen_range(0..max) {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.gen::<bool>()),
        2 => {
            // finite, round-trippable numbers
            let f = rng.gen_range(-1e9..1e9f64);
            JsonValue::Number((f * 100.0).round() / 100.0)
        }
        3 => {
            const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABC XYZ0123456789_-";
            let len = rng.gen_range(0..=12usize);
            JsonValue::String(
                (0..len)
                    .map(|_| char::from(ALPHABET[rng.gen_range(0..ALPHABET.len())]))
                    .collect(),
            )
        }
        4 => {
            let len = rng.gen_range(0..4usize);
            JsonValue::Array((0..len).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0..4usize);
            JsonValue::Object(
                (0..len)
                    .map(|_| {
                        let klen = rng.gen_range(1..=6usize);
                        let k: String = (0..klen)
                            .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
                            .collect();
                        (k, arb_json(rng, depth - 1))
                    })
                    .collect(),
            )
        }
    }
}

/// Engine-level property: connector pushdown never changes SQL results.
mod pushdown_equivalence {
    use super::*;
    use rtdi::olap::table::{OlapTable, TableConfig};
    use rtdi::sql::connector::PinotConnector;
    use rtdi::sql::engine::{EngineConfig, SqlEngine};
    use std::sync::Arc;

    pub fn engines(rows: &[Row]) -> (SqlEngine, SqlEngine) {
        let table = OlapTable::new(
            TableConfig::new("t", schema())
                .with_index_spec(
                    IndexSpec::none()
                        .with_inverted(&["city"])
                        .with_range(&["x", "n"]),
                )
                .with_partitions(2)
                .with_segment_rows(64),
        )
        .unwrap();
        for (i, r) in rows.iter().enumerate() {
            table.ingest(i % 2, r.clone()).unwrap();
        }
        let mk = |pushdown: bool| {
            let pinot = PinotConnector::new();
            pinot.register(table.clone());
            let mut e = SqlEngine::new(EngineConfig {
                default_catalog: "pinot".into(),
                enable_pushdown: pushdown,
            });
            e.register_connector("pinot", Arc::new(pinot));
            e
        };
        (mk(true), mk(false))
    }

    fn arb_sql(rng: &mut StdRng) -> String {
        let pred = if rng.gen_bool(0.7) {
            Some(match rng.gen_range(0..4u8) {
                0 => format!("city = 'c{}'", rng.gen_range(0..6u8)),
                1 => format!("n > {}", rng.gen_range(-500..500i64)),
                2 => format!("x <= {}", rng.gen_range(-50..50i64)),
                _ => format!("city <> 'c{}'", rng.gen_range(0..6u8)),
            })
        } else {
            None
        };
        let agg = [
            "COUNT(*) AS a",
            "SUM(x) AS a",
            "AVG(x) AS a",
            "MIN(n) AS a",
            "MAX(n) AS a",
        ][rng.gen_range(0..5usize)];
        let group = rng.gen::<bool>();
        let limit = if rng.gen_bool(0.5) {
            Some(rng.gen_range(1..20usize))
        } else {
            None
        };
        let mut sql = String::from("SELECT ");
        if group {
            sql.push_str("city, ");
        }
        sql.push_str(agg);
        sql.push_str(" FROM t");
        if let Some(p) = pred {
            sql.push_str(&format!(" WHERE {p}"));
        }
        if group {
            sql.push_str(" GROUP BY city ORDER BY city ASC");
            if let Some(n) = limit {
                sql.push_str(&format!(" LIMIT {n}"));
            }
        }
        sql
    }

    /// Assert the pushdown-on and pushdown-off engines agree on a query
    /// (with float tolerance: AVG/SUM accumulate in different orders).
    pub fn assert_pushdown_equivalent(rows: &[Row], sql: &str, ctx: &str) {
        let (on, off) = engines(rows);
        let a = on.query(sql).unwrap();
        let b = off.query(sql).unwrap();
        assert_eq!(a.rows.len(), b.rows.len(), "{ctx}: {sql}");
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            for (name, va) in ra.iter() {
                let vb = rb.get(name).unwrap();
                match (va.as_double(), vb.as_double()) {
                    (Some(x), Some(y)) => {
                        assert!((x - y).abs() < 1e-6, "{ctx}: {sql}: {x} vs {y}")
                    }
                    _ => assert_eq!(va, vb, "{ctx}: {sql}"),
                }
            }
        }
        // and pushdown actually reduced (or matched) shipped rows
        assert!(
            a.stats.rows_shipped <= b.stats.rows_shipped,
            "{ctx}: {sql}: shipped {} > {}",
            a.stats.rows_shipped,
            b.stats.rows_shipped
        );
    }

    #[test]
    fn pushdown_never_changes_results() {
        for case in 0..48u64 {
            let mut rng = StdRng::seed_from_u64(SEED_PUSHDOWN + case);
            let rows = arb_rows(&mut rng, 1, 150);
            let sql = arb_sql(&mut rng);
            assert_pushdown_equivalent(&rows, &sql, &format!("case {case}"));
        }
    }
}

/// The shrunk counter-examples recorded by the seed's proptest runs
/// (`tests/properties.proptest-regressions`), pinned as deterministic
/// tests so the regressions stay covered without the regressions file.
/// The staged runtime's micro-batched + operator-chained protocol must be
/// observationally identical to the per-record reference protocol: same
/// result records in the same order, same late-drop counts — across random
/// operator chains (stateless map/filter/flat-map runs around an optional
/// keyed window aggregation), random out-of-order streams, every batch
/// size, and with a chaos delay fault injected on the channel hop.
mod fused_batched_equivalence {
    use super::*;
    use rtdi::common::chaos::{self, FaultKind, FaultPlan, FaultPoint, Trigger};
    use rtdi::common::Timestamp;
    use rtdi::compute::{
        run_staged, run_staged_with, CollectSink, FilterOp, FlatMapOp, Job, MapOp, Operator,
        StagedConfig, VecSource, WindowAggregateOp, WindowAssigner,
    };

    #[derive(Clone, Debug)]
    enum StageSpec {
        AddN(i64),
        ScaleX(f64),
        FilterMod(i64),
        Dup,
    }

    #[derive(Clone, Debug)]
    struct JobSpec {
        pre: Vec<StageSpec>,
        window: Option<i64>, // tumbling size
        post: Vec<StageSpec>,
        out_of_orderness: i64,
        rows: Vec<(Timestamp, Row)>,
    }

    fn arb_stage(rng: &mut StdRng) -> StageSpec {
        match rng.gen_range(0..4u8) {
            0 => StageSpec::AddN(rng.gen_range(-50..50i64)),
            1 => StageSpec::ScaleX(rng.gen_range(0.5..2.0f64)),
            2 => StageSpec::FilterMod(rng.gen_range(2..5i64)),
            _ => StageSpec::Dup,
        }
    }

    fn arb_job_spec(rng: &mut StdRng) -> JobSpec {
        let pre = (0..rng.gen_range(1..4usize))
            .map(|_| arb_stage(rng))
            .collect();
        let window = if rng.gen_bool(0.7) {
            Some([500, 1_000, 1_700][rng.gen_range(0..3usize)])
        } else {
            None
        };
        let post = (0..rng.gen_range(0..3usize))
            .map(|_| arb_stage(rng))
            .collect();
        let n = rng.gen_range(40..250usize);
        let rows = (0..n)
            .map(|_| (rng.gen_range(0..8_000i64), arb_row(rng)))
            .collect();
        JobSpec {
            pre,
            window,
            post,
            out_of_orderness: [0, 250, 1_000][rng.gen_range(0..3usize)],
            rows,
        }
    }

    fn stateless_op(idx: usize, spec: &StageSpec) -> Box<dyn Operator> {
        match spec {
            StageSpec::AddN(k) => {
                let k = *k;
                Box::new(MapOp::new(format!("add{idx}"), move |r: &Row| {
                    let mut out = r.clone();
                    out.push(format!("m{idx}"), r.get_int("n").unwrap_or(0) + k);
                    out
                }))
            }
            StageSpec::ScaleX(f) => {
                let f = *f;
                Box::new(MapOp::new(format!("scale{idx}"), move |r: &Row| {
                    let mut out = r.clone();
                    out.push(format!("m{idx}"), r.get_double("x").unwrap_or(0.0) * f);
                    out
                }))
            }
            StageSpec::FilterMod(m) => {
                let m = *m;
                Box::new(FilterOp::new(format!("mod{idx}"), move |r: &Row| {
                    r.get_int("n").unwrap_or(0).rem_euclid(m) != 0
                }))
            }
            StageSpec::Dup => Box::new(FlatMapOp::new(format!("dup{idx}"), |r: &Record| {
                vec![r.clone(), r.clone()]
            })),
        }
    }

    fn build_job(name: &str, spec: &JobSpec, sink: CollectSink) -> Job {
        let mut ops: Vec<Box<dyn Operator>> = Vec::new();
        for (i, s) in spec.pre.iter().enumerate() {
            ops.push(stateless_op(i, s));
        }
        if let Some(size) = spec.window {
            ops.push(Box::new(WindowAggregateOp::new(
                "agg",
                vec!["city".into()],
                WindowAssigner::tumbling(size),
                vec![
                    ("cnt".into(), AggFn::Count),
                    ("sum_n".into(), AggFn::Sum("n".into())),
                ],
                0,
            )));
        }
        for (i, s) in spec.post.iter().enumerate() {
            ops.push(stateless_op(100 + i, s));
        }
        Job::new(
            name,
            Box::new(VecSource::from_rows(spec.rows.clone())),
            ops,
            Box::new(sink),
        )
        .with_out_of_orderness(spec.out_of_orderness)
    }

    fn late_drops(stats: &rtdi::compute::StagedRunStats) -> u64 {
        stats.stages.iter().map(|s| s.late_dropped).sum()
    }

    /// Batched + fused output is identical to the per-record reference
    /// for every batch size, including sizes that leave partial batches.
    #[test]
    fn staged_batched_fused_matches_reference_on_random_jobs() {
        for case in 0..32u64 {
            let mut rng = StdRng::seed_from_u64(SEED_FUSION + case);
            let spec = arb_job_spec(&mut rng);
            let ref_sink = CollectSink::new();
            let ref_stats = run_staged(build_job("ref", &spec, ref_sink.clone()), 32)
                .unwrap_or_else(|e| panic!("case {case}: reference run failed: {e}"));
            for batch in [2usize, 7, 64] {
                let sink = CollectSink::new();
                let stats = run_staged_with(
                    build_job("fused", &spec, sink.clone()),
                    &StagedConfig::batched(32, batch),
                )
                .unwrap_or_else(|e| panic!("case {case} batch {batch}: run failed: {e}"));
                assert_eq!(
                    sink.records(),
                    ref_sink.records(),
                    "case {case} batch {batch}: fused+batched output diverged"
                );
                assert_eq!(
                    late_drops(&stats),
                    late_drops(&ref_stats),
                    "case {case} batch {batch}: late-drop counts diverged"
                );
                assert_eq!(stats.records_in, ref_stats.records_in, "case {case}");
            }
        }
    }

    /// A chaos delay fault on the channel hop slows the pump but must not
    /// change what comes out.
    #[test]
    fn staged_batched_fused_matches_reference_under_channel_delay_fault() {
        let _g = chaos::test_guard();
        for case in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(SEED_FUSION + 0x1000 + case);
            let spec = arb_job_spec(&mut rng);
            chaos::registry().disarm_all();
            let ref_sink = CollectSink::new();
            run_staged(build_job("ref", &spec, ref_sink.clone()), 32).unwrap();
            chaos::registry().reset(SEED_FUSION + case);
            chaos::registry().arm(
                FaultPoint::ComputeChannel,
                FaultPlan::delay(50, Trigger::Probability(0.2)),
            );
            let sink = CollectSink::new();
            let res = run_staged_with(
                build_job("fused", &spec, sink.clone()),
                &StagedConfig::batched(32, 7),
            );
            chaos::registry().disarm_all();
            res.unwrap_or_else(|e| panic!("case {case}: delay fault must not error: {e}"));
            assert_eq!(
                sink.records(),
                ref_sink.records(),
                "case {case}: output changed under channel delay fault"
            );
        }
    }

    /// A transient channel-hop failure surfaces as the injected error and
    /// a clean re-run (fault exhausted) reproduces the reference output
    /// exactly — the retry semantics jobs lean on.
    #[test]
    fn staged_batched_fused_recovers_identically_after_channel_fault() {
        let _g = chaos::test_guard();
        for case in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(SEED_FUSION + 0x2000 + case);
            let spec = arb_job_spec(&mut rng);
            chaos::registry().disarm_all();
            let ref_sink = CollectSink::new();
            run_staged(build_job("ref", &spec, ref_sink.clone()), 32).unwrap();
            chaos::registry().reset(SEED_FUSION + case);
            let skip = rng.gen_range(0..spec.rows.len() as u64);
            chaos::registry().arm(
                FaultPoint::ComputeChannel,
                FaultPlan::fail(FaultKind::Unavailable, Trigger::Always).with_burst(skip, Some(1)),
            );
            let crash_sink = CollectSink::new();
            let err = run_staged_with(
                build_job("crash", &spec, crash_sink.clone()),
                &StagedConfig::batched(32, 7),
            )
            .expect_err("armed channel fault must surface");
            assert!(
                matches!(err, rtdi::common::Error::Unavailable(_)),
                "case {case}: wrong error kind: {err}"
            );
            let retry_sink = CollectSink::new();
            let res = run_staged_with(
                build_job("retry", &spec, retry_sink.clone()),
                &StagedConfig::batched(32, 7),
            );
            chaos::registry().disarm_all();
            res.unwrap_or_else(|e| panic!("case {case}: retry must succeed: {e}"));
            assert_eq!(
                retry_sink.records(),
                ref_sink.records(),
                "case {case}: re-run output diverged from reference"
            );
        }
    }
}

mod pinned_regressions {
    use super::*;
    use pushdown_equivalence::{assert_pushdown_equivalent, engines};

    /// `rows = [Row { columns: [] }]`: a fully-empty row must survive the
    /// colfile round-trip, match raw scans, and aggregate through the
    /// star-tree (one all-NULL group).
    #[test]
    fn empty_row_roundtrips_and_aggregates() {
        let rows = vec![Row::new()];

        let data = colfile::encode_columnar(&schema(), &rows).unwrap();
        let (_, decoded) = colfile::decode_columnar(&data).unwrap();
        assert_eq!(decoded.len(), 1);
        for col in ["city", "n", "x", "flag"] {
            assert_eq!(
                decoded[0].get(col).cloned().unwrap_or(Value::Null),
                Value::Null
            );
        }

        let mut st_spec = StarTreeSpec::new(&["city"], vec![AggFn::Count, AggFn::Sum("x".into())]);
        st_spec.max_leaf_records = 0;
        let spec = IndexSpec::none().with_startree(st_spec);
        let seg = Segment::build("s", &schema(), rows, &spec).unwrap();
        let q = Query::select_all("t")
            .aggregate("cnt", AggFn::Count)
            .aggregate("sx", AggFn::Sum("x".into()))
            .group(&["city"]);
        let res = seg.execute(&q, None).unwrap();
        assert!(res.used_startree);
        assert_eq!(res.rows.len(), 1);
        // the group key for the absent city is a real NULL, not "NULL"
        assert_eq!(res.rows[0].get("city"), Some(&Value::Null));
        assert_eq!(res.rows[0].get_int("cnt"), Some(1));
        // SUM over no non-null inputs is NULL, not 0
        assert_eq!(res.rows[0].get("sx"), Some(&Value::Null));
    }

    /// `rows = [Row { columns: [] }], sql = "SELECT SUM(x) AS a FROM t"`:
    /// empty-set SUM must be NULL on both the engine and pushdown paths.
    #[test]
    fn sum_over_columnless_row_is_null() {
        let rows = vec![Row::new()];
        let sql = "SELECT SUM(x) AS a FROM t";
        assert_pushdown_equivalent(&rows, sql, "pinned");
        let (on, off) = engines(&rows);
        for (label, engine) in [("pushdown", &on), ("engine", &off)] {
            let out = engine.query(sql).unwrap();
            assert_eq!(out.rows.len(), 1, "{label}");
            assert_eq!(out.rows[0].get("a"), Some(&Value::Null), "{label}");
        }
    }

    /// `rows = [Row { columns: [("x", Double(0.0))] }], sql = "SELECT
    /// city, COUNT(*) AS a FROM t GROUP BY city ORDER BY city ASC"`:
    /// grouping by an absent column yields one NULL-keyed group on both
    /// paths (the pushdown path used to render it as the string "NULL").
    #[test]
    fn group_by_absent_column_yields_null_group() {
        let rows = vec![Row::new().with("x", 0.0)];
        let sql = "SELECT city, COUNT(*) AS a FROM t GROUP BY city ORDER BY city ASC";
        assert_pushdown_equivalent(&rows, sql, "pinned");
        let (on, off) = engines(&rows);
        for (label, engine) in [("pushdown", &on), ("engine", &off)] {
            let out = engine.query(sql).unwrap();
            assert_eq!(out.rows.len(), 1, "{label}");
            assert_eq!(out.rows[0].get("city"), Some(&Value::Null), "{label}");
            assert_eq!(out.rows[0].get_int("a"), Some(1), "{label}");
        }
    }

    /// A literal string "NULL" must stay distinct from a NULL group key —
    /// the collision the stringified group keys used to allow.
    #[test]
    fn literal_null_string_is_not_a_null_group() {
        let rows = vec![
            Row::new().with("city", "NULL").with("x", 1.0),
            Row::new().with("x", 2.0),
        ];
        let sql = "SELECT city, COUNT(*) AS a FROM t GROUP BY city ORDER BY city ASC";
        assert_pushdown_equivalent(&rows, sql, "pinned");
        let (on, _) = engines(&rows);
        let out = on.query(sql).unwrap();
        assert_eq!(out.rows.len(), 2, "NULL key must not merge with 'NULL'");
        assert_eq!(out.rows[0].get("city"), Some(&Value::Null));
        assert_eq!(out.rows[1].get("city"), Some(&Value::Str("NULL".into())));
    }
}
