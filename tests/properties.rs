//! Property-based tests on cross-crate invariants (proptest).

use proptest::prelude::*;
use rtdi::common::{AggFn, FieldType, Record, Row, Schema, Value};
use rtdi::olap::query::{Predicate, PredicateOp, Query};
use rtdi::olap::segment::{IndexSpec, Segment};
use rtdi::olap::startree::StarTreeSpec;
use rtdi::storage::colfile;
use rtdi::stream::log::PartitionLog;

fn schema() -> Schema {
    Schema::of(
        "t",
        &[
            ("city", FieldType::Str),
            ("n", FieldType::Int),
            ("x", FieldType::Double),
            ("flag", FieldType::Bool),
        ],
    )
}

prop_compose! {
    fn arb_row()(
        city in prop::option::of(0..6u8),
        n in prop::option::of(-1000..1000i64),
        x in prop::option::of(-100.0..100.0f64),
        flag in prop::option::of(any::<bool>()),
    ) -> Row {
        let mut row = Row::new();
        if let Some(c) = city { row.push("city", format!("c{c}")); }
        if let Some(n) = n { row.push("n", n); }
        if let Some(x) = x { row.push("x", x); }
        if let Some(f) = flag { row.push("flag", f); }
        row
    }
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let op = prop::sample::select(vec![
        PredicateOp::Eq,
        PredicateOp::Ne,
        PredicateOp::Lt,
        PredicateOp::Le,
        PredicateOp::Gt,
        PredicateOp::Ge,
    ]);
    (op, 0..3u8).prop_flat_map(|(op, col)| match col {
        0 => (0..6u8).prop_map(move |c| Predicate::new("city", op, format!("c{c}"))).boxed(),
        1 => (-1000..1000i64).prop_map(move |v| Predicate::new("n", op, v)).boxed(),
        _ => (-100.0..100.0f64).prop_map(move |v| Predicate::new("x", op, v)).boxed(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Columnar file encode/decode round-trips arbitrary rows (including
    /// missing fields -> nulls).
    #[test]
    fn colfile_roundtrip(rows in prop::collection::vec(arb_row(), 0..200)) {
        let data = colfile::encode_columnar(&schema(), &rows).unwrap();
        let (s2, decoded) = colfile::decode_columnar(&data).unwrap();
        prop_assert_eq!(s2.fields.len(), schema().fields.len());
        prop_assert_eq!(decoded.len(), rows.len());
        for (a, b) in rows.iter().zip(&decoded) {
            for col in ["city", "n", "x", "flag"] {
                let va = a.get(col).cloned().unwrap_or(Value::Null);
                let vb = b.get(col).cloned().unwrap_or(Value::Null);
                prop_assert_eq!(va, vb, "column {}", col);
            }
        }
    }

    /// Index-accelerated segment execution agrees with row-by-row
    /// predicate evaluation for every predicate type.
    #[test]
    fn indexes_equal_scan(
        rows in prop::collection::vec(arb_row(), 1..300),
        preds in prop::collection::vec(arb_predicate(), 1..3),
    ) {
        let spec = IndexSpec::none()
            .with_inverted(&["city", "n"])
            .with_range(&["x", "n"]);
        let seg = Segment::build("s", &schema(), rows.clone(), &spec).unwrap();
        let mut q = Query::select_all("t").aggregate("cnt", AggFn::Count);
        q.predicates = preds.clone();
        let got = seg.execute(&q, None).unwrap().rows[0].get_int("cnt").unwrap();
        let expected = rows
            .iter()
            .filter(|r| preds.iter().all(|p| p.matches(r)))
            .count() as i64;
        prop_assert_eq!(got, expected);
    }

    /// Sorted-column builds return the same answers as unsorted ones.
    #[test]
    fn sorted_build_preserves_answers(
        rows in prop::collection::vec(arb_row(), 1..200),
        pred in arb_predicate(),
    ) {
        let plain = Segment::build("a", &schema(), rows.clone(), &IndexSpec::none()).unwrap();
        let sorted = Segment::build("b", &schema(), rows, &IndexSpec::none().with_sorted("n")).unwrap();
        let q = Query::select_all("t")
            .filter(pred)
            .aggregate("cnt", AggFn::Count)
            .aggregate("sum_x", AggFn::Sum("x".into()));
        let a = plain.execute(&q, None).unwrap().rows;
        let b = sorted.execute(&q, None).unwrap().rows;
        prop_assert_eq!(a[0].get_int("cnt"), b[0].get_int("cnt"));
        let (sa, sb) = (
            a[0].get_double("sum_x").unwrap_or(0.0),
            b[0].get_double("sum_x").unwrap_or(0.0),
        );
        prop_assert!((sa - sb).abs() < 1e-6);
    }

    /// Star-tree answers equal exact aggregation for covered query shapes.
    #[test]
    fn startree_equals_exact(rows in prop::collection::vec(arb_row(), 1..300)) {
        let mut st_spec = StarTreeSpec::new(
            &["city"],
            vec![AggFn::Count, AggFn::Sum("x".into())],
        );
        st_spec.max_leaf_records = 0; // always split: tree covers every group-by
        let spec = IndexSpec::none().with_startree(st_spec);
        let seg = Segment::build("s", &schema(), rows.clone(), &spec).unwrap();
        let q = Query::select_all("t")
            .aggregate("cnt", AggFn::Count)
            .aggregate("sx", AggFn::Sum("x".into()))
            .group(&["city"]);
        let res = seg.execute(&q, None).unwrap();
        prop_assert!(res.used_startree);
        let total: i64 = res.rows.iter().map(|r| r.get_int("cnt").unwrap()).sum();
        prop_assert_eq!(total, rows.len() as i64);
        let sum: f64 = res.rows.iter().map(|r| r.get_double("sx").unwrap_or(0.0)).sum();
        let exact: f64 = rows.iter().filter_map(|r| r.get_double("x")).sum();
        prop_assert!((sum - exact).abs() < 1e-6);
    }

    /// Log offsets are dense and monotonic under any append/retention mix.
    #[test]
    fn log_offsets_monotonic(
        sizes in prop::collection::vec(1..50usize, 1..20),
        retention_bytes in prop::option::of(1_000..20_000usize),
    ) {
        let log = PartitionLog::new(0, retention_bytes.unwrap_or(0));
        let mut expected = 0u64;
        for (i, size) in sizes.iter().enumerate() {
            let batch: Vec<Record> = (0..*size)
                .map(|j| Record::new(Row::new().with("i", (i * 100 + j) as i64), 0))
                .collect();
            let first = log.append_batch(batch, i as i64);
            prop_assert_eq!(first, expected);
            expected += *size as u64;
        }
        prop_assert_eq!(log.high_watermark(), expected);
        prop_assert!(log.log_start_offset() <= log.high_watermark());
        // everything retained is fetchable with contiguous offsets
        let fetch = log.fetch(log.log_start_offset(), usize::MAX / 2).unwrap();
        for (k, r) in fetch.records.iter().enumerate() {
            prop_assert_eq!(r.offset, log.log_start_offset() + k as u64);
        }
    }

    /// JSON parse/serialize round-trips arbitrary generated documents.
    #[test]
    fn json_roundtrip(doc in arb_json(3)) {
        let text = rtdi::common::json::to_string(&doc);
        let parsed = rtdi::common::json::parse(&text).unwrap();
        prop_assert_eq!(parsed, doc);
    }

    /// Keyed records always land on the same partition.
    #[test]
    fn partitioning_deterministic(key in ".{0,24}", parts in 1..64usize) {
        let r1 = Record::new(Row::new(), 0).with_key(key.clone());
        let r2 = Record::new(Row::new(), 0).with_key(key);
        prop_assert_eq!(r1.partition_for(parts), r2.partition_for(parts));
        prop_assert!(r1.partition_for(parts).unwrap() < parts);
    }
}

/// Engine-level property: connector pushdown never changes SQL results.
mod pushdown_equivalence {
    use super::*;
    use rtdi::olap::segment::IndexSpec;
    use rtdi::olap::table::{OlapTable, TableConfig};
    use rtdi::sql::connector::PinotConnector;
    use rtdi::sql::engine::{EngineConfig, SqlEngine};
    use std::sync::Arc;

    fn engines(rows: &[Row]) -> (SqlEngine, SqlEngine) {
        let table = OlapTable::new(
            TableConfig::new("t", schema())
                .with_index_spec(IndexSpec::none().with_inverted(&["city"]).with_range(&["x", "n"]))
                .with_partitions(2)
                .with_segment_rows(64),
        )
        .unwrap();
        for (i, r) in rows.iter().enumerate() {
            table.ingest(i % 2, r.clone()).unwrap();
        }
        let mk = |pushdown: bool| {
            let pinot = PinotConnector::new();
            pinot.register(table.clone());
            let mut e = SqlEngine::new(EngineConfig {
                default_catalog: "pinot".into(),
                enable_pushdown: pushdown,
            });
            e.register_connector("pinot", Arc::new(pinot));
            e
        };
        (mk(true), mk(false))
    }

    fn arb_sql() -> impl Strategy<Value = String> {
        let pred = prop_oneof![
            (0..6u8).prop_map(|c| format!("city = 'c{c}'")),
            (-500..500i64).prop_map(|v| format!("n > {v}")),
            (-50..50i64).prop_map(|v| format!("x <= {v}")),
            (0..6u8).prop_map(|c| format!("city <> 'c{c}'")),
        ];
        let agg = prop::sample::select(vec![
            "COUNT(*) AS a",
            "SUM(x) AS a",
            "AVG(x) AS a",
            "MIN(n) AS a",
            "MAX(n) AS a",
        ]);
        (prop::option::of(pred), agg, any::<bool>(), prop::option::of(1..20usize)).prop_map(
            |(pred, agg, group, limit)| {
                let mut sql = format!("SELECT ");
                if group {
                    sql.push_str("city, ");
                }
                sql.push_str(agg);
                sql.push_str(" FROM t");
                if let Some(p) = pred {
                    sql.push_str(&format!(" WHERE {p}"));
                }
                if group {
                    sql.push_str(" GROUP BY city ORDER BY city ASC");
                    if let Some(n) = limit {
                        sql.push_str(&format!(" LIMIT {n}"));
                    }
                }
                sql
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn pushdown_never_changes_results(
            rows in prop::collection::vec(arb_row(), 1..150),
            sql in arb_sql(),
        ) {
            let (on, off) = engines(&rows);
            let a = on.query(&sql).unwrap();
            let b = off.query(&sql).unwrap();
            // compare with float tolerance (AVG/SUM accumulate in
            // different orders across the two paths)
            prop_assert_eq!(a.rows.len(), b.rows.len(), "{}", sql);
            for (ra, rb) in a.rows.iter().zip(&b.rows) {
                for (name, va) in ra.iter() {
                    let vb = rb.get(name).unwrap();
                    match (va.as_double(), vb.as_double()) {
                        (Some(x), Some(y)) => {
                            prop_assert!((x - y).abs() < 1e-6, "{}: {} vs {}", sql, x, y)
                        }
                        _ => prop_assert_eq!(va, vb, "{}", sql),
                    }
                }
            }
            // and pushdown actually reduced (or matched) shipped rows
            prop_assert!(a.stats.rows_shipped <= b.stats.rows_shipped);
        }
    }
}

fn arb_json(depth: u32) -> impl Strategy<Value = rtdi::common::value::JsonValue> {
    use rtdi::common::value::JsonValue;
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        // finite, round-trippable numbers
        (-1e9..1e9f64).prop_map(|f| JsonValue::Number((f * 100.0).round() / 100.0)),
        "[a-zA-Z0-9 _\\-]{0,12}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(JsonValue::Object),
        ]
    })
}
