//! Failure-injection integration tests: the availability machinery of
//! §4.1.2/§4.3.4/§6 under induced faults.

use rtdi::common::{AggFn, Error, FieldType, Record, Row, Schema};
use rtdi::olap::broker::{Broker, ServerNode};
use rtdi::olap::query::Query;
use rtdi::olap::segment::{IndexSpec, Segment};
use rtdi::olap::segstore::{SegmentStore, SegmentStoreMode};
use rtdi::olap::table::{OlapTable, TableConfig};
use rtdi::storage::object::{FaultyStore, InMemoryStore, ObjectStore};
use rtdi::stream::consumer::{ConsumerGroup, TopicSubscription};
use rtdi::stream::dlq::DeadLetterQueue;
use rtdi::stream::proxy::{ConsumerProxy, DispatchMode, ProxyConfig};
use rtdi::stream::topic::{Topic, TopicConfig};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::of(
        "t",
        &[
            ("city", FieldType::Str),
            ("v", FieldType::Int),
            ("ts", FieldType::Timestamp),
        ],
    )
}

fn seg(name: &str, n: usize) -> Arc<Segment> {
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            Row::new()
                .with("city", ["sf", "la"][i % 2])
                .with("v", i as i64)
                .with("ts", i as i64)
        })
        .collect();
    Arc::new(Segment::build(name, &schema(), rows, &IndexSpec::none()).unwrap())
}

/// E13 scenario: a replica dies; with peer-to-peer recovery the table is
/// fully queryable again even while the deep store is down.
#[test]
fn segment_recovery_survives_deep_store_outage() {
    let table = OlapTable::new(
        TableConfig::new("t", schema())
            .with_partitions(1)
            .with_segment_rows(50),
    )
    .unwrap();
    for i in 0..200usize {
        table
            .ingest(
                0,
                Row::new()
                    .with("city", ["sf", "la"][i % 2])
                    .with("v", i as i64)
                    .with("ts", i as i64),
            )
            .unwrap();
    }
    let names = table.sealed_segments(0);
    assert_eq!(names.len(), 4);

    // peers (other server replicas) hold copies of the sealed segments
    let peer = ServerNode::new(1);
    for (_, s) in table.take_unbacked() {
        peer.host(s);
    }
    // deep store is DOWN
    let faulty = FaultyStore::new(InMemoryStore::new());
    faulty.set_down(true);
    let store = SegmentStore::new(
        Arc::new(faulty),
        SegmentStoreMode::PeerToPeer,
        IndexSpec::none(),
    );

    // a replica loses a segment
    let victim = names[1].clone();
    let _lost = table.evict_sealed(0, &victim).unwrap();
    let count = |t: &OlapTable| {
        t.query(&Query::select_all("t").aggregate("n", AggFn::Count))
            .unwrap()
            .rows[0]
            .get_int("n")
            .unwrap()
    };
    assert_eq!(count(&table), 150);

    // peer-to-peer recovery restores it without touching the archive
    let recovered = store.recover("t", &victim, &[peer]).unwrap();
    table.restore_sealed(0, recovered);
    assert_eq!(count(&table), 200);
}

/// Broker failover: servers die one by one; queries survive while any
/// replica lives, then fail cleanly.
#[test]
fn broker_survives_n_minus_one_server_failures() {
    let servers: Vec<Arc<ServerNode>> = (0..3).map(ServerNode::new).collect();
    let broker = Broker::new(servers);
    broker.register_table("t", false);
    for i in 0..4 {
        broker
            .place_segment("t", seg(&format!("s{i}"), 100), None, 3)
            .unwrap();
    }
    let q = Query::select_all("t").aggregate("n", AggFn::Count);
    assert_eq!(broker.query(&q).unwrap().rows[0].get_int("n"), Some(400));
    broker.servers()[0].set_down(true);
    assert_eq!(broker.query(&q).unwrap().rows[0].get_int("n"), Some(400));
    broker.servers()[1].set_down(true);
    assert_eq!(broker.query(&q).unwrap().rows[0].get_int("n"), Some(400));
    broker.servers()[2].set_down(true);
    assert!(matches!(broker.query(&q), Err(Error::Unavailable(_))));
    // recovery restores service
    broker.servers()[2].set_down(false);
    assert_eq!(broker.query(&q).unwrap().rows[0].get_int("n"), Some(400));
}

/// Poison messages + a flapping downstream service: live traffic never
/// blocks, the DLQ isolates the poison, merge retries it after the fix.
#[test]
fn dlq_merge_after_downstream_fix() {
    let topic = Arc::new(Topic::new("orders", TopicConfig::default().with_partitions(2)).unwrap());
    for i in 0..100i64 {
        topic
            .append(
                Record::new(Row::new().with("i", i), i).with_key(format!("k{i}")),
                0,
            )
            .unwrap();
    }
    let dlq = Arc::new(DeadLetterQueue::new("orders").unwrap());
    // phase 1: messages divisible by 10 are "corrupt" for the current
    // service version
    let broken = Arc::new(|r: &Record| {
        if r.value.get_int("i").unwrap() % 10 == 0 {
            Err(Error::ProcessingFailed("cannot parse v1 payload".into()))
        } else {
            Ok(())
        }
    });
    let group = ConsumerGroup::new("g", TopicSubscription::new(topic.clone()));
    let proxy = ConsumerProxy::new(
        ProxyConfig {
            mode: DispatchMode::Push(8),
            max_attempts: 2,
            poll_batch: 32,
            ..Default::default()
        },
        broken,
        dlq.clone(),
    );
    let stats = proxy.run_until_caught_up(&group).unwrap();
    assert_eq!(stats.delivered, 90);
    assert_eq!(stats.dead_lettered, 10);
    assert_eq!(group.lag(), 0, "poison never blocked live traffic");

    // phase 2: service fixed; merge the DLQ back into the main topic
    struct Cluster0(Arc<Topic>);
    impl rtdi::stream::producer::StreamEndpoint for Cluster0 {
        fn send(
            &self,
            _topic: &str,
            record: Record,
            now: i64,
        ) -> rtdi::common::Result<(usize, u64)> {
            self.0.append(record, now)
        }
        fn fetch(
            &self,
            _topic: &str,
            partition: usize,
            offset: u64,
            max: usize,
        ) -> rtdi::common::Result<rtdi::stream::log::FetchResult> {
            self.0.fetch(partition, offset, max)
        }
        fn num_partitions(&self, _topic: &str) -> rtdi::common::Result<usize> {
            Ok(self.0.num_partitions())
        }
    }
    let merged = dlq.merge(&Cluster0(topic.clone()), 1_000).unwrap();
    assert_eq!(merged, 10);
    let fixed = Arc::new(|_: &Record| Ok(()));
    let proxy = ConsumerProxy::new(
        ProxyConfig {
            mode: DispatchMode::Push(8),
            max_attempts: 2,
            poll_batch: 32,
            ..Default::default()
        },
        fixed,
        dlq.clone(),
    );
    let stats = proxy.run_until_caught_up(&group).unwrap();
    assert_eq!(stats.delivered, 10, "merged messages reprocessed");
    assert_eq!(dlq.depth(), 0);
}

/// Intermittent object-store failures: the writer's built-in retry policy
/// absorbs injected `storage.object_put` faults without data loss and
/// without caller-side retry loops.
#[test]
fn archival_tolerates_flaky_store() {
    use rtdi::common::chaos::{self, FaultKind, FaultPlan, FaultPoint, Trigger};
    use rtdi::storage::archival::ArchivalWriter;
    let _g = chaos::test_guard();
    chaos::registry().reset(0xA2C417);
    // every 3rd put fails transiently: well inside the writer's 4-attempt
    // budget, so every batch lands
    chaos::registry().arm(
        FaultPoint::StorageObjectPut,
        FaultPlan::fail(FaultKind::Unavailable, Trigger::EveryNth(3)),
    );
    let store = Arc::new(InMemoryStore::new());
    let writer = ArchivalWriter::new(store as Arc<dyn ObjectStore>, "trips");
    for batch in 0..10 {
        let records: Vec<Record> = (0..10)
            .map(|i| Record::new(Row::new().with("i", (batch * 10 + i) as i64), 0))
            .collect();
        writer.write_batch(&records).unwrap();
    }
    chaos::registry().disarm_all();
    let read_back = writer.read_raw("d000000").unwrap();
    // retried puts overwrite the same key: no loss AND no duplicates
    let values: Vec<i64> = read_back
        .iter()
        .map(|r| r.value.get_int("i").unwrap())
        .collect();
    assert_eq!(values.len(), 100);
    let distinct: std::collections::BTreeSet<i64> = values.iter().copied().collect();
    assert_eq!(distinct.len(), 100);
}

/// uReplicator resume semantics: when the cross-region link stays down
/// past the retry budget, the run fails with the per-partition resume
/// position saved; the next run picks up exactly where the last copied
/// record left off — every source record lands in the destination once,
/// in order, with no duplicates and no gaps.
#[test]
fn replicator_honors_saved_resume_position_after_retry_exhaustion() {
    use rtdi::common::chaos::{self, FaultKind, FaultPlan, FaultPoint, Trigger};
    use rtdi::stream::cluster::{Cluster, ClusterConfig};
    use rtdi::stream::replicator::{OffsetMappingStore, Replicator};
    let _g = chaos::test_guard();
    chaos::registry().reset(0x2E5);

    let src = Cluster::new("regional", ClusterConfig::default());
    src.create_topic("trips", TopicConfig::default().with_partitions(2))
        .unwrap();
    let dst = Cluster::new("aggregate", ClusterConfig::default());
    let r = Replicator::new(
        "regional->aggregate",
        src.clone(),
        dst.clone(),
        "trips",
        OffsetMappingStore::new(),
        10,
    );
    r.prepare().unwrap();
    let produce = |lo: i64, hi: i64| {
        for i in lo..hi {
            src.produce(
                "trips",
                Record::new(Row::new().with("i", i), i).with_key(format!("k{i}")),
                i,
            )
            .unwrap();
        }
    };

    // wave 1 copies cleanly and establishes non-zero resume positions
    produce(0, 60);
    assert_eq!(r.run_once(1_000).unwrap(), 60);

    // wave 2 hits a persistent outage: the retry budget (4 attempts)
    // exhausts and run_once errors with the position parked at the
    // first uncopied record
    produce(60, 120);
    chaos::registry().arm(
        FaultPoint::MultiregionReplicate,
        FaultPlan::fail(FaultKind::Unavailable, Trigger::Always).with_burst(20, None),
    );
    assert!(r.run_once(2_000).is_err(), "outage must surface");

    // link restored: the restart resumes from the saved position
    chaos::registry().disarm_all();
    let resumed = r.run_once(3_000).unwrap();
    assert!(resumed > 0 && resumed <= 60, "resumed {resumed}");
    assert_eq!(r.run_once(4_000).unwrap(), 0, "nothing left behind");

    // record-level proof: per partition the destination holds exactly
    // the source sequence — no duplicate, no skip, no reorder
    let st = src.topic("trips").unwrap();
    let dt = dst.topic("trips").unwrap();
    for p in 0..2 {
        let pull = |t: &Topic| -> Vec<i64> {
            t.fetch(p, 0, 10_000)
                .unwrap()
                .records
                .into_iter()
                .map(|r| r.record.value.get_int("i").unwrap())
                .collect()
        };
        let src_vals = pull(&st);
        let dst_vals = pull(&dt);
        assert!(!src_vals.is_empty());
        assert_eq!(src_vals, dst_vals, "partition {p} replicated exactly once");
    }
}

/// Upsert tables stay correct when segments seal mid-correction-stream.
#[test]
fn upsert_correct_across_seals_and_eviction_recovery() {
    let table = OlapTable::new(
        TableConfig::new("fares", schema())
            .with_upsert("city") // two keys only: heavy update pressure
            .with_partitions(1)
            .with_segment_rows(10),
    )
    .unwrap();
    for i in 0..95usize {
        table
            .ingest(
                0,
                Row::new()
                    .with("city", ["sf", "la"][i % 2])
                    .with("v", i as i64)
                    .with("ts", i as i64),
            )
            .unwrap();
    }
    let q = Query::select_all("fares").aggregate("n", AggFn::Count);
    // only the latest version of each key is live
    assert_eq!(table.query(&q).unwrap().rows[0].get_int("n"), Some(2));
    let latest_sf = table
        .lookup(&rtdi::common::Value::Str("sf".into()), "v")
        .unwrap();
    assert_eq!(latest_sf, rtdi::common::Value::Int(94));
}
