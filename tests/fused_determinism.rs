//! Fused-vs-reference determinism gate (ci.sh).
//!
//! For a seed taken from `RTDI_FUSE_SEED`, build a random operator chain
//! and input stream, run it through (a) the per-record unchained reference
//! protocol and (b) the micro-batched + operator-chained protocol, digest
//! both output streams, and print one `FUSED_SUMMARY` line. ci.sh runs
//! this twice per seed in separate processes and diffs the lines: the
//! digests must match between protocols (chaining is observationally
//! invisible) and between processes (the whole pipeline is deterministic).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtdi::common::{AggFn, Row, Timestamp, Value};
use rtdi::compute::{
    run_staged, run_staged_with, CollectSink, FilterOp, Job, MapOp, Operator, StagedConfig,
    VecSource, WindowAggregateOp, WindowAssigner,
};

fn arb_rows(rng: &mut StdRng, n: usize) -> Vec<(Timestamp, Row)> {
    (0..n)
        .map(|_| {
            let mut row = Row::new();
            row.push("city", format!("c{}", rng.gen_range(0..5u8)));
            row.push("n", rng.gen_range(-500..500i64));
            if rng.gen_bool(0.8) {
                row.push("x", rng.gen_range(-50.0..50.0f64));
            }
            (rng.gen_range(0..6_000i64), row)
        })
        .collect()
}

fn build_job(name: &str, seed: u64, sink: CollectSink) -> Job {
    let mut rng = StdRng::seed_from_u64(seed);
    let shift = rng.gen_range(-20..20i64);
    let modulus = rng.gen_range(2..5i64);
    let window = [500, 1_000, 2_000][rng.gen_range(0..3usize)];
    let n = rng.gen_range(200..600usize);
    let rows = arb_rows(&mut rng, n);
    let ops: Vec<Box<dyn Operator>> = vec![
        Box::new(MapOp::new("shift", move |r: &Row| {
            let mut out = r.clone();
            out.push("n2", r.get_int("n").unwrap_or(0) + shift);
            out
        })),
        Box::new(FilterOp::new("mod", move |r: &Row| {
            r.get_int("n2").unwrap_or(0).rem_euclid(modulus) != 0
        })),
        Box::new(WindowAggregateOp::new(
            "agg",
            vec!["city".into()],
            WindowAssigner::tumbling(window),
            vec![
                ("cnt".into(), AggFn::Count),
                ("sum".into(), AggFn::Sum("n2".into())),
            ],
            0,
        )),
        Box::new(MapOp::new("post", |r: &Row| r.clone())),
    ];
    Job::new(
        name,
        Box::new(VecSource::from_rows(rows)),
        ops,
        Box::new(sink),
    )
    .with_out_of_orderness(250)
}

/// FNV-1a over every output record's canonical rendering, in emit order.
fn digest(sink: &CollectSink) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for rec in sink.records() {
        let mut cols: Vec<String> = rec
            .value
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect();
        cols.sort();
        let line = format!("ts={} key={:?} {}", rec.timestamp, rec.key, cols.join(","));
        for b in line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= Value::hash_of_str("|");
    }
    h
}

fn env_seed() -> u64 {
    std::env::var("RTDI_FUSE_SEED")
        .ok()
        .and_then(|s| {
            s.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| s.parse().ok())
        })
        .unwrap_or(0xF05E)
}

/// ci.sh hook: print the reference and fused digests for the env seed.
#[test]
fn fuse_env_seed_prints_digests() {
    let seed = env_seed();
    let ref_sink = CollectSink::new();
    let ref_stats = run_staged(build_job("ref", seed, ref_sink.clone()), 32).unwrap();
    assert_eq!(ref_stats.stages.len(), 4);
    let fused_sink = CollectSink::new();
    let fused_stats = run_staged_with(
        build_job("fused", seed, fused_sink.clone()),
        &StagedConfig::batched(32, 64),
    )
    .unwrap();
    assert!(fused_stats.stages.len() < 4, "chaining must merge stages");
    let (dr, df) = (digest(&ref_sink), digest(&fused_sink));
    println!(
        "FUSED_SUMMARY seed={seed:#x} records={} digest_ref={dr:016x} digest_fused={df:016x}",
        ref_sink.len()
    );
    assert_eq!(dr, df, "fused+batched digest diverged from reference");
}
