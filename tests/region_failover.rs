//! Region-scale disaster-recovery soak: seeded kill/heal drills against
//! whole region failure domains (§6), asserting the platform's recovery
//! contract end to end under live traffic:
//!
//! - **RPO = 0**: every record acknowledged to a producer is observed by
//!   the failed-over consumer AND counted by the redeployed compute job;
//! - **bounded replay**: consumer duplicates after failover stay within
//!   the offset-sync checkpoint interval per route per partition;
//! - **convergence**: after the last heal, every region's aggregate holds
//!   the full committed stream, the active-active surge states agree
//!   across regions, and every partition is back to a full ISR;
//! - **determinism**: the drill's `DR_SUMMARY` ledger (detection, RTO per
//!   layer, duplicates, catch-up) is byte-identical for a given seed.
//!
//! Like the other soaks, each drill runs twice per seed in-process and
//! `ci.sh` additionally diffs the printed `DR_SUMMARY` lines between two
//! separate processes for two fixed seeds.

use rtdi::common::chaos::{self, RegionOutageKind};
use rtdi::multiregion::{DrConfig, DrDrill};

/// Offset-mapping checkpoint interval of the replicator (records): the
/// bound on replay after an offset-synchronized failover.
const SYNC_INTERVAL: u64 = 64;

fn run_drill(seed: u64, cfg: DrConfig) -> rtdi::multiregion::DrReport {
    DrDrill::new(seed, cfg)
        .expect("drill setup")
        .run()
        .expect("drill run")
}

/// Run the full drill twice with one seed; assert the recovery contract
/// and that both runs produce byte-identical ledgers. Returns the summary.
fn soak_twice(seed: u64) -> String {
    let report = run_drill(seed, DrConfig::default());

    // RPO: nothing committed may be lost, at any layer
    assert!(report.committed > 200, "drill produced too little traffic");
    assert_eq!(report.lost, 0, "RPO violated:\n{}", report.summary());
    assert_eq!(
        report.consumer_seen,
        report.committed,
        "consumer missed records:\n{}",
        report.summary()
    );
    assert_eq!(
        report.compute_distinct,
        report.committed,
        "compute job missed records:\n{}",
        report.summary()
    );

    // bounded replay: duplicates are a failover artifact, not a leak
    assert!(
        report.consumer_duplicates <= report.replay_bound(SYNC_INTERVAL),
        "consumer replay {} beyond the offset-sync bound {}",
        report.consumer_duplicates,
        report.replay_bound(SYNC_INTERVAL)
    );

    // every planned outage ran and was accounted
    assert_eq!(report.cycles.len(), 3, "{}", report.summary());
    for c in &report.cycles {
        assert!(c.catchup_ms >= 0, "cycle {} never caught up", c.cycle);
        if c.affected {
            // the strike hit the serving region: every layer recovered
            // after detection, never before
            assert!(c.detect_ms > 0, "affected cycle without detection");
            assert!(c.rto_consume_ms >= c.detect_ms, "{}", report.summary());
            assert!(c.rto_query_ms >= c.detect_ms, "{}", report.summary());
        }
    }

    // convergence after the last heal
    assert!(report.aggregates_equal, "{}", report.summary());
    assert!(report.surge_converged, "{}", report.summary());
    assert!(report.isr_full, "{}", report.summary());

    // determinism: a second full drill with the same seed produces a
    // byte-identical ledger
    let again = run_drill(seed, DrConfig::default());
    assert_eq!(
        report.summary(),
        again.summary(),
        "seed {seed:#x} drill is not deterministic"
    );
    report.summary()
}

#[test]
fn region_dr_soak() {
    let _g = chaos::test_guard();
    soak_twice(0xD12A57E2);
}

#[test]
fn region_dr_soak_alternate_seed() {
    let _g = chaos::test_guard();
    soak_twice(0x5EED_0DDA);
}

/// Replication-lag outages must surface as query staleness while they
/// last, then drain: find a seed whose first strike is a lag burst and
/// assert the freshness tracer exposed the lag to `QueryStats`.
#[test]
fn replication_lag_surfaces_as_query_staleness() {
    let _g = chaos::test_guard();
    let mut hit = None;
    for seed in 0..64 {
        chaos::registry().reset(seed);
        let plan =
            chaos::registry().plan_region_outages(&["west", "east"], 1, 20_000, 40_000, 15_000);
        if plan[0].kind == RegionOutageKind::ReplicatorLag {
            hit = Some(seed);
            break;
        }
    }
    let seed = hit.expect("some seed plans a replicator-lag burst first");
    let cfg = DrConfig {
        cycles: 1,
        ..DrConfig::default()
    };
    let report = run_drill(seed, cfg);
    let cycle = &report.cycles[0];
    assert_eq!(cycle.kind, "replicator-lag");
    // lag is observed, not announced: no failover, no detection latency
    assert_eq!(cycle.detect_ms, 0);
    assert!(!cycle.affected);
    assert_eq!(report.consumer_failovers, 0);
    // the backlog was visible at heal time and drained afterwards
    assert!(cycle.lag_at_heal > 0, "{}", report.summary());
    assert!(cycle.catchup_ms > 0, "{}", report.summary());
    // degraded-but-partial serving: queries kept answering and reported
    // data staleness comparable to the outage length
    assert!(
        report.max_staleness_ms >= 7_000,
        "staleness not surfaced: {}\n{}",
        report.max_staleness_ms,
        report.summary()
    );
    assert_eq!(report.lost, 0, "{}", report.summary());
}

/// ci.sh hook: seed from `RTDI_DR_SEED`, ledger printed for cross-process
/// diffing (the lines already carry the `DR_SUMMARY` prefix).
#[test]
fn region_dr_env_seed_prints_summary() {
    let seed = std::env::var("RTDI_DR_SEED")
        .ok()
        .and_then(|s| {
            s.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| s.parse().ok())
        })
        .unwrap_or(0xD12);
    let _g = chaos::test_guard();
    let summary = soak_twice(seed);
    for line in summary.lines() {
        println!("{line}");
    }
}
