//! Overload soak: seeded burst traffic at 1×/2×/5×/10× of sustained
//! capacity driven through both admission points — producer topic quotas
//! at the edge, then the consumer proxy's tenant quotas and queue-depth
//! watermarks — plus a deadline-bounded broker scatter, all on the
//! injectable clock.
//!
//! The invariant is exact accounting at every layer: offered = accepted +
//! shed at the producer edge, accepted = delivered + parked at the proxy,
//! and the admission controller's own ledger balances (`offered ==
//! admitted + shed_total`). Nothing panics, nothing is silently dropped.
//! Every test runs the same soak twice with the same seed and asserts the
//! printed `OVERLOAD_SUMMARY` is byte-identical; `ci.sh` additionally
//! diffs the summaries between two separate processes for two fixed
//! seeds.

use rtdi::common::record::headers;
use rtdi::common::{
    AdmissionConfig, AdmissionController, AggFn, Clock, Deadline, FieldType, Priority, Quota,
    Record, Row, Schema, SimClock, Timestamp,
};
use rtdi::olap::broker::{Broker, ServerNode};
use rtdi::olap::query::Query;
use rtdi::olap::segment::{IndexSpec, Segment};
use rtdi::stream::cluster::{Cluster, ClusterConfig};
use rtdi::stream::consumer::{ConsumerGroup, TopicSubscription};
use rtdi::stream::dlq::{DeadLetterQueue, ParkReason};
use rtdi::stream::producer::{Producer, ProducerConfig};
use rtdi::stream::proxy::{ConsumerProxy, DispatchMode, ProxyConfig};
use rtdi::stream::topic::{Topic, TopicConfig};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Records per phase at 1× offered load.
const BASE: usize = 20;
const TENANTS: [&str; 3] = ["driver-app", "eats-app", "rider-app"];
/// The burst plan: sustained, then 2×, 5×, 10×, then recovery.
const MULTIPLIERS: [usize; 5] = [1, 2, 5, 10, 1];

/// Deterministic generator for the burst plan (same mix as the chaos
/// layer's seeding; local copy because the soak must not depend on
/// chaos internals).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<'a>(&mut self, xs: &'a [&'a str]) -> &'a str {
        xs[(self.next() % xs.len() as u64) as usize]
    }
}

/// A clock that advances a fixed step on every read, so query deadlines
/// expire mid-scatter deterministically without sleeping.
struct TickClock {
    now: AtomicI64,
    step: i64,
}

impl Clock for TickClock {
    fn now(&self) -> Timestamp {
        self.now.fetch_add(self.step, Ordering::Relaxed) + self.step
    }
}

fn seg(name: &str, n: usize) -> Arc<Segment> {
    let schema = Schema::of("cities", &[("city", FieldType::Str), ("v", FieldType::Int)]);
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            Row::new()
                .with("city", ["sf", "la"][i % 2])
                .with("v", i as i64)
        })
        .collect();
    Arc::new(Segment::build(name, &schema, rows, &IndexSpec::none()).unwrap())
}

/// Drive the seeded burst plan through producer quotas, proxy admission
/// and a deadline-bounded broker query; assert every accounting
/// invariant and return the byte-stable summary.
fn soak(seed: u64) -> String {
    let mut rng = SplitMix64(seed);
    let mut out = format!("seed={seed}\n");

    let clock = Arc::new(SimClock::new(0));
    let cluster = Cluster::new("soak", ClusterConfig::default());
    cluster
        .create_topic("trips", TopicConfig::default().with_partitions(2))
        .unwrap();
    // one producer per tenant service, each behind the same edge quota —
    // the paper's Kafka-side client quotas
    let producers: Vec<(&str, Producer)> = TENANTS
        .iter()
        .map(|svc| {
            let p = Producer::with_clock(
                cluster.clone(),
                ProducerConfig {
                    service: (*svc).into(),
                    ..Default::default()
                },
                clock.clone(),
            );
            p.set_topic_quota("trips", Quota::per_sec(40).with_burst(50));
            (*svc, p)
        })
        .collect();

    // the proxy's admission gate: tenant quotas plus lag-fed watermarks
    // small enough that the 10× burst trips the high watermark
    let admission = Arc::new(AdmissionController::new(
        clock.clone(),
        AdmissionConfig {
            max_in_flight: 64,
            queue_high_watermark: 150,
            queue_low_watermark: 60,
            default_tenant_quota: Some(Quota::per_sec(30).with_burst(40)),
        },
    ));
    let dlq = Arc::new(DeadLetterQueue::new("trips").unwrap());
    let proxy = ConsumerProxy::new(
        ProxyConfig {
            // serial dispatch: admit order, and therefore the summary,
            // is exact
            mode: DispatchMode::Poll,
            max_attempts: 2,
            poll_batch: 32,
            admission: Some(admission.clone()),
            max_in_flight: 64,
        },
        Arc::new(|_: &Record| Ok(())),
        dlq.clone(),
    );
    let group = ConsumerGroup::new(
        "soak",
        TopicSubscription::new(cluster.topic("trips").unwrap()),
    );

    let (mut offered_total, mut accepted_total, mut delivered_total) = (0u64, 0u64, 0u64);
    let mut prev_depth = 0u64;
    for (phase, mult) in MULTIPLIERS.iter().enumerate() {
        // each phase starts a fresh second: both edge and proxy token
        // buckets refill by exactly one second's rate
        clock.advance(1_000);
        let offered = (BASE * mult) as u64;
        let (mut accepted, mut shed_edge) = (0u64, 0u64);
        for i in 0..offered {
            let tenant = rng.pick(&TENANTS);
            let producer = &producers.iter().find(|(s, _)| *s == tenant).unwrap().1;
            let rec = Record::new(
                Row::new().with("i", i as i64).with("phase", phase as i64),
                clock.now(),
            )
            .with_key(format!("p{phase}-{i}"));
            match producer.send("trips", rec) {
                Ok(()) => accepted += 1,
                Err(e) => {
                    assert!(
                        matches!(e, rtdi::common::Error::Overloaded(_)),
                        "edge refusal must be Overloaded, got {e}"
                    );
                    assert!(e.is_retryable(), "overload must invite retry-with-backoff");
                    shed_edge += 1;
                }
            }
        }
        assert_eq!(offered, accepted + shed_edge, "edge accounting (exact)");

        let stats = proxy.run_until_caught_up(&group).unwrap();
        let parked = dlq.depth() as u64 - prev_depth;
        prev_depth = dlq.depth() as u64;
        assert_eq!(
            accepted,
            stats.delivered + stats.dead_lettered + stats.shed,
            "proxy accounting (exact)"
        );
        assert_eq!(stats.dead_lettered, 0, "a healthy service never parks");
        assert_eq!(
            parked, stats.shed,
            "every shed record is parked, none dropped"
        );
        offered_total += offered;
        accepted_total += accepted;
        delivered_total += stats.delivered;
        out.push_str(&format!(
            "phase={phase} mult={mult} offered={offered} accepted={accepted} shed_edge={shed_edge} delivered={} shed_proxy={} parked={parked}\n",
            stats.delivered, stats.shed
        ));
    }

    // the global ledger balances: offered = processed + shed, end to end
    let s = admission.stats();
    assert_eq!(
        s.offered, accepted_total,
        "proxy offered all accepted records"
    );
    assert_eq!(s.offered, s.admitted + s.shed_total(), "admission ledger");
    assert_eq!(s.admitted, delivered_total);
    assert_eq!(
        offered_total,
        delivered_total + (offered_total - accepted_total) + s.shed_total(),
        "end-to-end: offered = delivered + shed_edge + shed_proxy"
    );
    assert!(s.shed_queue > 0, "the 10x burst must trip the watermark");
    assert!(s.shed_quota > 0, "the burst must exhaust tenant buckets");
    // shed work parks under Overload — replayable, not lost
    for rec in dlq.peek(dlq.depth()) {
        assert_eq!(
            rec.headers.get(headers::DLQ_REASON),
            Some(ParkReason::Overload.as_str())
        );
    }
    out.push_str(&admission.summary());

    // --- query side: a deadline-bounded scatter sheds trailing segments
    // as a partial answer instead of missing its budget
    let servers: Vec<Arc<ServerNode>> = (0..2).map(ServerNode::new).collect();
    let broker = Broker::new(servers);
    broker.register_table("cities", false);
    for i in 0..6 {
        broker
            .place_segment("cities", seg(&format!("s{i}"), 50), None, 1)
            .unwrap();
    }
    let qclock = Arc::new(TickClock {
        now: AtomicI64::new(0),
        step: 10,
    });
    let q = Query::select_all("cities")
        .aggregate("n", AggFn::Count)
        .with_deadline(Deadline::within_ms(qclock, 35))
        .lane(Priority::Backfill); // serial lane: deterministic shed order
    let res = broker.query(&q).unwrap();
    assert!(
        res.deadline_exceeded,
        "the ticking clock must blow the budget"
    );
    assert!(res.segments_shed > 0 && res.partial);
    let n = res.rows[0].get_int("n").unwrap();
    assert!(n > 0 && n < 300, "partial count, got {n}");
    out.push_str(&format!(
        "query rows={n} segments_shed={} deadline_exceeded={}\n",
        res.segments_shed, res.deadline_exceeded
    ));
    out
}

/// Run one seed twice; the summary must be byte-identical.
fn soak_twice(seed: u64) -> String {
    let first = soak(seed);
    let second = soak(seed);
    assert_eq!(
        first, second,
        "same seed must reproduce a byte-identical overload summary"
    );
    assert!(first.starts_with(&format!("seed={seed}")));
    first
}

#[test]
fn burst_soak_is_survivable_and_deterministic() {
    soak_twice(0x0FFE12ED);
}

#[test]
fn burst_soak_alternate_seed() {
    soak_twice(0x5A70FFE);
}

/// Satellite: under a seeded burst plan driven straight at the proxy,
/// quota rejection + DLQ `Overload` parks satisfy offered = delivered +
/// parked *exactly*, across 3 seeds.
#[test]
fn offered_equals_delivered_plus_parked_across_seeds() {
    for seed in [1u64, 0xFEED, 0xDEAD_BEEF] {
        let mut rng = SplitMix64(seed);
        let topic =
            Arc::new(Topic::new("trips", TopicConfig::default().with_partitions(2)).unwrap());
        let mut offered = 0u64;
        for burst in 0..4 {
            let n = 10 + rng.next() % 90;
            for i in 0..n {
                let mut r = Record::new(Row::new().with("i", i as i64), burst * 1_000)
                    .with_key(format!("b{burst}-{i}"));
                r.headers.set(headers::SERVICE, rng.pick(&TENANTS));
                topic.append(r, burst * 1_000).unwrap();
                offered += 1;
            }
        }
        let clock = Arc::new(SimClock::new(0));
        let admission = Arc::new(AdmissionController::new(
            clock,
            AdmissionConfig {
                default_tenant_quota: Some(Quota::per_sec(15).with_burst(30)),
                ..Default::default()
            },
        ));
        let dlq = Arc::new(DeadLetterQueue::new("trips").unwrap());
        let proxy = ConsumerProxy::new(
            ProxyConfig {
                mode: DispatchMode::Poll,
                max_attempts: 2,
                poll_batch: 64,
                admission: Some(admission.clone()),
                max_in_flight: 64,
            },
            Arc::new(|_: &Record| Ok(())),
            dlq.clone(),
        );
        let group = ConsumerGroup::new("prop", TopicSubscription::new(topic));
        let stats = proxy.run_until_caught_up(&group).unwrap();
        assert_eq!(
            stats.delivered + dlq.depth() as u64,
            offered,
            "seed {seed:#x}: offered = delivered + parked, exactly"
        );
        assert_eq!(stats.dead_lettered, 0);
        assert!(stats.shed > 0, "seed {seed:#x}: the burst must shed");
        assert_eq!(stats.shed, dlq.depth() as u64);
        let s = admission.stats();
        assert_eq!(s.offered, offered);
        assert_eq!(s.offered, s.admitted + s.shed_total());
    }
}

/// ci.sh hook: the seed comes from `RTDI_OVERLOAD_SEED` and the summary
/// is printed so two separate processes can be diffed line-by-line.
#[test]
fn soak_env_seed_prints_summary() {
    let seed = std::env::var("RTDI_OVERLOAD_SEED")
        .ok()
        .and_then(|s| {
            s.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| s.parse().ok())
        })
        .unwrap_or(0x0FFE12ED);
    let summary = soak_twice(seed);
    for line in summary.lines() {
        println!("OVERLOAD_SUMMARY {line}");
    }
}
