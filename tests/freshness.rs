//! End-to-end freshness observability (§5.1 "seconds, not minutes").
//!
//! The pipeline tracer decomposes a record's origin-to-queryable latency
//! into per-stage dwells (stream append, OLAP ingestion) that must sum
//! back to the measured end-to-end freshness, and Chaperone audits that
//! no records were lost or duplicated between the broker and the OLAP
//! store on the happy path.

use rtdi::common::trace::{END_TO_END, SQL_QUERY_STAGE};
use rtdi::common::{FieldType, Record, Row, Schema, SimClock};
use rtdi::compute::jobmanager::HealthAction;
use rtdi::core::platform::RealtimePlatform;
use rtdi::olap::table::TableConfig;
use rtdi::stream::topic::TopicConfig;
use std::sync::Arc;

fn schema(name: &str) -> Schema {
    Schema::of(
        name,
        &[
            ("city", FieldType::Str),
            ("fare", FieldType::Double),
            ("ts", FieldType::Timestamp),
        ],
    )
}

fn produce(p: &RealtimePlatform, topic: &str, n: usize) {
    let producer = p.producer("freshness-test");
    for i in 0..n {
        producer
            .send(
                topic,
                Record::new(
                    Row::new()
                        .with("city", ["sf", "la"][i % 2])
                        .with("fare", 10.0 + (i % 5) as f64)
                        .with("ts", (i as i64) * 100),
                    (i as i64) * 100,
                )
                .with_key(format!("{topic}-{i}")),
            )
            .unwrap();
    }
}

fn wire_pipeline(p: &RealtimePlatform, name: &str, n: usize) {
    p.create_topic(
        name,
        TopicConfig::default().with_partitions(2),
        schema(name),
    )
    .unwrap();
    produce(p, name, n);
    let table = p
        .create_olap_table(
            TableConfig::new(name, schema(name))
                .with_time_column("ts")
                .with_partitions(2),
        )
        .unwrap();
    let mut ing = p.ingest_into(name, table).unwrap();
    assert_eq!(ing.run_once().unwrap() as usize, n);
}

#[test]
fn per_stage_dwells_sum_to_end_to_end_freshness() {
    let clock = Arc::new(SimClock::new(1_000_000));
    let p = RealtimePlatform::with_clock(clock.clone());
    p.create_topic(
        "trips",
        TopicConfig::default().with_partitions(2),
        schema("trips"),
    )
    .unwrap();
    // production and broker append at t0: zero stream dwell
    produce(&p, "trips", 50);
    // records sit in the log for 3 seconds before ingestion picks them up
    clock.advance(3_000);
    let table = p
        .create_olap_table(
            TableConfig::new("trips", schema("trips"))
                .with_time_column("ts")
                .with_partitions(2),
        )
        .unwrap();
    let mut ing = p.ingest_into("trips", table).unwrap();
    assert_eq!(ing.run_once().unwrap(), 50);

    let report = p.tracer().report();
    let stream = report.stage("trips", "stream").expect("stream hop traced");
    let olap = report
        .stage("trips", "olap-ingest")
        .expect("olap hop traced");
    let e2e = report.stage("trips", END_TO_END).expect("total traced");
    assert_eq!(stream.count, 50);
    assert_eq!(olap.count, 50);
    assert_eq!(e2e.count, 50);
    assert_eq!(stream.max_ms, 0);
    assert_eq!(olap.max_ms, 3_000);
    assert_eq!(e2e.max_ms, 3_000);
    // the decomposition invariant: hop dwells sum to measured end-to-end
    let sum = report.sum_of_hop_means_ms("trips");
    assert!(
        (sum - e2e.mean_ms).abs() < 1.0,
        "hop sum {sum} != end-to-end {}",
        e2e.mean_ms
    );

    // two more seconds pass before anyone queries: staleness = 5s
    clock.advance(2_000);
    let out = p.sql("SELECT COUNT(*) AS n FROM trips").unwrap();
    assert_eq!(out.rows[0].get_int("n"), Some(50));
    let report = p.tracer().report();
    let staleness = report
        .stage("trips", SQL_QUERY_STAGE)
        .expect("query staleness");
    assert_eq!(staleness.count, 1);
    assert_eq!(staleness.max_ms, 5_000);
}

#[test]
fn platform_health_covers_all_use_case_pipelines_with_zero_loss() {
    let clock = Arc::new(SimClock::new(2_000_000));
    let p = RealtimePlatform::with_clock(clock.clone());
    // the four §5 use-case feeds: surge, eats ops, restaurant dashboards,
    // ML feature pipelines
    for name in ["surge", "eatsops", "restaurant", "prediction"] {
        wire_pipeline(&p, name, 30);
    }
    let health = p.health();
    for name in ["surge", "eatsops", "restaurant", "prediction"] {
        let stages = health.report.pipeline(name);
        assert!(
            stages.iter().any(|s| s.stage == "stream"),
            "{name}: stream hop missing"
        );
        assert!(
            stages.iter().any(|s| s.stage == "olap-ingest"),
            "{name}: olap hop missing"
        );
        assert!(
            stages.iter().any(|s| s.stage == END_TO_END),
            "{name}: end-to-end rollup missing"
        );
        let audit = health
            .audits
            .iter()
            .find(|a| a.pipeline == name)
            .expect("audit pair exists");
        assert_eq!(audit.lost, 0, "{name}: lost records on the happy path");
        assert_eq!(audit.duplicated, 0, "{name}: duplicated records");
    }
    assert_eq!(health.audits.len(), 4);
    assert!(health.zero_loss());

    // the tracer feeds the job manager's rule engine
    let mut jh = p.job_health_for("surge");
    jh.records_per_sec = 50_000;
    jh.lag = 100;
    assert_eq!(
        p.job_manager().evaluate_health(&jh).0,
        HealthAction::None,
        "fresh pipeline must not trigger corrective action"
    );
    let stale = rtdi::compute::jobmanager::JobHealth {
        freshness_p99_ms: 60_000,
        records_per_sec: 50_000,
        lag: 100,
        ..Default::default()
    };
    let (action, rule) = p.job_manager().evaluate_health(&stale);
    assert_eq!(action, HealthAction::Restart);
    assert_eq!(rule, Some("stale-pipeline-restart"));
}

#[test]
fn wall_clock_freshness_is_seconds_not_minutes() {
    // §5.1: data must be queryable seconds after production. With the
    // real clock the whole produce->ingest->query path runs well under
    // the 5s bound even on a loaded machine.
    let p = RealtimePlatform::new();
    wire_pipeline(&p, "trips", 500);
    let report = p.tracer().report();
    let e2e = report.stage("trips", END_TO_END).expect("total traced");
    assert_eq!(e2e.count, 500);
    assert!(
        e2e.p99_ms < 5_000,
        "end-to-end p99 {}ms breaches the seconds-level SLA",
        e2e.p99_ms
    );
}
