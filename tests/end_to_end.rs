//! Cross-crate integration tests: the platform flows of Figures 1 and 3.

use rtdi::common::record::headers;
use rtdi::common::{AggFn, FieldType, Record, Row, Schema, SimClock};
use rtdi::core::platform::RealtimePlatform;
use rtdi::flinksql::compiler::CompileOptions;
use rtdi::olap::query::Query;
use rtdi::olap::table::TableConfig;
use rtdi::stream::cluster::{Cluster, ClusterConfig};
use rtdi::stream::topic::TopicConfig;
use std::sync::Arc;

fn trips_schema() -> Schema {
    Schema::of(
        "trips",
        &[
            ("city", FieldType::Str),
            ("fare", FieldType::Double),
            ("ts", FieldType::Timestamp),
        ],
    )
}

fn platform() -> RealtimePlatform {
    RealtimePlatform::with_clock(Arc::new(SimClock::new(1_000)))
}

fn produce(p: &RealtimePlatform, topic: &str, n: usize) {
    let producer = p.producer("it-test");
    for i in 0..n {
        producer
            .send(
                topic,
                Record::new(
                    Row::new()
                        .with("city", ["sf", "la", "nyc"][i % 3])
                        .with("fare", 5.0 + (i % 10) as f64)
                        .with("ts", (i as i64) * 100),
                    (i as i64) * 100,
                )
                .with_key(format!("t{i}")),
            )
            .unwrap();
    }
}

#[test]
fn figure1_full_path_stream_compute_olap_sql_storage() {
    let p = platform();
    p.create_topic(
        "trips",
        TopicConfig::default().with_partitions(2),
        trips_schema(),
    )
    .unwrap();
    produce(&p, "trips", 3_000);

    // realtime path: FlinkSQL windows into Pinot
    let stats_schema = Schema::of(
        "trip_stats",
        &[
            ("city", FieldType::Str),
            ("w", FieldType::Timestamp),
            ("trips", FieldType::Int),
            ("revenue", FieldType::Double),
            ("ingest_ts", FieldType::Timestamp),
        ],
    );
    let stats = p
        .create_olap_table(
            TableConfig::new("trip_stats", stats_schema)
                .with_time_column("ingest_ts")
                .with_partitions(2)
                .with_segment_rows(64),
        )
        .unwrap();
    let job = p
        .deploy_sql_pipeline(
            "windows",
            "SELECT city, TUMBLE(ts, 10000) AS w, COUNT(*) AS trips, SUM(fare) AS revenue \
             FROM trips GROUP BY city, TUMBLE(ts, 10000)",
            "trips",
            stats,
            &CompileOptions::default(),
        )
        .unwrap();
    assert_eq!(job.records_in, 3_000);

    // serving path: federated SQL with pushdown
    let out = p
        .sql("SELECT city, SUM(trips) AS total FROM trip_stats GROUP BY city ORDER BY total DESC")
        .unwrap();
    assert_eq!(out.rows.len(), 3);
    let total: f64 = out
        .rows
        .iter()
        .map(|r| r.get_double("total").unwrap())
        .sum();
    assert_eq!(total, 3_000.0);
    // aggregation pushdown kept the engine thin
    assert!(
        out.stats.rows_shipped <= 10,
        "shipped {}",
        out.stats.rows_shipped
    );

    // archival path: raw logs -> warehouse -> federated query over hive
    let archived = p.archive_topic("trips", &trips_schema()).unwrap();
    assert_eq!(archived, 3_000);
    let out = p.sql("SELECT COUNT(*) AS n FROM hive.trips").unwrap();
    assert_eq!(out.rows[0].get_int("n"), Some(3_000));

    // lineage spans the whole graph
    let impact = p.lineage().impact("kafka.trips");
    assert!(impact.contains(&"pinot.trip_stats".to_string()));
    assert!(impact.contains(&"hive.trips".to_string()));
}

#[test]
fn federation_migration_under_live_sql_pipeline() {
    let p = platform();
    // add a second physical cluster, then migrate the topic mid-stream
    p.federation()
        .add_cluster(Cluster::new("cluster-2", ClusterConfig::default()));
    p.create_topic(
        "trips",
        TopicConfig::default().with_partitions(2),
        trips_schema(),
    )
    .unwrap();
    produce(&p, "trips", 500);

    let table = p
        .create_olap_table(
            TableConfig::new("trips", trips_schema())
                .with_time_column("ts")
                .with_partitions(2),
        )
        .unwrap();
    let mut ingester = p.ingest_into("trips", table.clone()).unwrap();
    assert_eq!(ingester.run_once().unwrap(), 500);

    // live migration: consumers (the ingester's subscription) keep working
    p.federation().migrate_topic("trips", "cluster-2").unwrap();
    assert_eq!(p.federation().placement("trips").unwrap(), "cluster-2");
    produce(&p, "trips", 100);
    // Note: the ingester holds its own topic handle; re-subscribe after
    // migration as a proxy for subscription redirect (the federation test
    // suite covers transparent redirect in depth)
    let mut ingester2 = p.ingest_into("trips", table.clone()).unwrap();
    ingester2.run_once().unwrap();
    let res = table
        .query(&Query::select_all("trips").aggregate("n", AggFn::Count))
        .unwrap();
    // at-least-once: all 600 distinct records present (re-subscription
    // replays; count >= 600 with duplicates possible, so check distinct)
    let res_sel = p.sql("SELECT COUNT(*) AS n FROM trips").unwrap();
    assert!(res_sel.rows[0].get_int("n").unwrap() >= 600);
    assert!(res.rows[0].get_int("n").unwrap() >= 600);
}

#[test]
fn chaperone_certifies_topic_to_olap_and_detects_injected_loss() {
    let p = platform();
    p.create_topic(
        "trips",
        TopicConfig::default().with_partitions(2),
        trips_schema(),
    )
    .unwrap();
    let producer = p.producer("svc");
    for i in 0..200 {
        let rec = Record::new(
            Row::new()
                .with("city", "sf")
                .with("fare", 1.0)
                .with("ts", i as i64),
            i as i64,
        )
        .with_key(format!("k{i}"));
        producer.send("trips", rec).unwrap();
    }
    // observe the produce side by re-reading the topic (the producer
    // stamped unique ids)
    let sub = p.federation().subscribe("trips").unwrap();
    let t = sub.topic();
    for part in 0..t.num_partitions() {
        let log = t.partition(part).unwrap();
        for r in log.fetch(0, 10_000).unwrap().records {
            p.chaperone().observe("kafka", &r.record);
        }
    }
    let table = p
        .create_olap_table(
            TableConfig::new("trips", trips_schema())
                .with_time_column("ts")
                .with_partitions(2),
        )
        .unwrap();
    // ingestion reports under the `{topic}/ingested` stage so the
    // platform can pair it with the broker-side `{topic}/stream` counts
    p.ingest_into("trips", table).unwrap().run_once().unwrap();
    assert!(p.chaperone().certify("kafka", "trips/ingested"));

    // injected loss shows up as an audit alert
    p.chaperone().observe_id("kafka", "ghost-message", 50);
    let alerts = p.chaperone().audit("kafka", "trips/ingested");
    assert_eq!(alerts.len(), 1);
    assert_eq!(alerts[0].magnitude, 1);
}

#[test]
fn producer_audit_headers_survive_to_olap_ingestion() {
    let p = platform();
    p.create_topic(
        "trips",
        TopicConfig::default().with_partitions(1),
        trips_schema(),
    )
    .unwrap();
    let producer = p.producer("driver-app");
    producer
        .send(
            "trips",
            Record::new(
                Row::new()
                    .with("city", "sf")
                    .with("fare", 1.0)
                    .with("ts", 1i64),
                1,
            )
            .with_key("k"),
        )
        .unwrap();
    let sub = p.federation().subscribe("trips").unwrap();
    let rec = &sub.topic().fetch(0, 0, 1).unwrap().records[0].record;
    assert_eq!(rec.headers.get(headers::SERVICE), Some("driver-app"));
    assert!(rec.unique_id().is_some());
    assert!(rec.headers.get(headers::APP_TIMESTAMP).is_some());
}

#[test]
fn schema_registry_guards_all_surfaces() {
    let p = platform();
    p.create_topic("trips", TopicConfig::default(), trips_schema())
        .unwrap();
    p.create_olap_table(TableConfig::new("trips", trips_schema()))
        .unwrap();
    // subjects exist per surface
    let subjects = p.registry().subjects();
    assert!(subjects.contains(&"kafka.trips".to_string()));
    assert!(subjects.contains(&"pinot.trips".to_string()));
    // discovery finds them
    assert_eq!(p.registry().discover("trips").len(), 2);
}

#[test]
fn semistructured_json_flattened_then_ingested() {
    // §4.3.3: "Users currently rely on a Flink job to preprocess an input
    // Kafka topic with nested JSON format into a flattened-schema Kafka
    // topic for Pinot ingestion."
    use rtdi::common::json;
    use rtdi::common::Value;
    use rtdi::compute::operator::FlatMapOp;
    use rtdi::compute::runtime::{Executor, ExecutorConfig, Job};
    use rtdi::compute::sink::CollectSink;
    use rtdi::compute::source::VecSource;

    // nested JSON order events as they arrive from the app
    let docs: Vec<&str> = vec![
        r#"{"order": {"id": 1, "restaurant": {"name": "taqueria", "city": "sf"}, "total": 21.5}}"#,
        r#"{"order": {"id": 2, "restaurant": {"name": "noodles", "city": "la"}, "total": 11.0}}"#,
        r#"{"order": {"id": 3, "restaurant": {"name": "taqueria", "city": "sf"}, "total": 9.25}}"#,
    ];
    let records: Vec<Record> = docs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            Record::new(
                Row::new().with("payload", Value::Json(Box::new(json::parse(d).unwrap()))),
                i as i64,
            )
        })
        .collect();

    // the Flink flattening preprocessor
    let flatten = FlatMapOp::new("flatten-json", |rec: &Record| {
        let Some(Value::Json(doc)) = rec.value.get("payload") else {
            return vec![];
        };
        let mut row = Row::new();
        for (path, value) in doc.flatten() {
            row.push(path.replace('.', "_"), value);
        }
        row.push("ts", rec.timestamp);
        vec![Record::new(row, rec.timestamp)]
    });
    let sink = CollectSink::new();
    let mut job = Job::new(
        "json-flatten",
        Box::new(VecSource::new(records)),
        vec![Box::new(flatten)],
        Box::new(sink.clone()),
    );
    Executor::new(ExecutorConfig::default())
        .run(&mut job)
        .unwrap();

    // flattened rows land in an OLAP table inferred from the sample —
    // "Pinot integrates with Uber's schema service to automatically infer
    // the schema from the input Kafka topic"
    let flat_rows = sink.rows();
    let (schema, cardinality) =
        rtdi::metadata::registry::SchemaRegistry::infer_from_rows("orders_flat", &flat_rows);
    assert!(schema.field("order_restaurant_city").is_some());
    assert_eq!(cardinality["order_restaurant_city"], 2);
    let table = rtdi::olap::table::OlapTable::new(
        rtdi::olap::table::TableConfig::new("orders_flat", schema).with_partitions(1),
    )
    .unwrap();
    for row in flat_rows {
        table.ingest(0, row).unwrap();
    }
    // queryable through the full SQL layer
    use rtdi::sql::connector::PinotConnector;
    use rtdi::sql::engine::{EngineConfig, SqlEngine};
    let pinot = PinotConnector::new();
    pinot.register(table);
    let mut engine = SqlEngine::new(EngineConfig::default());
    engine.register_connector("pinot", Arc::new(pinot));
    let out = engine
        .query(
            "SELECT order_restaurant_city AS city, COUNT(*) AS n, SUM(order_total) AS revenue \
             FROM orders_flat GROUP BY order_restaurant_city ORDER BY n DESC",
        )
        .unwrap();
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.rows[0].get_str("city"), Some("sf"));
    assert_eq!(out.rows[0].get_int("n"), Some(2));
    assert_eq!(out.rows[0].get_double("revenue"), Some(30.75));
}
