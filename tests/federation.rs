//! Hybrid-table federation correctness properties.
//!
//! The invariant under test: for any split of a dataset into an offline
//! archive (authoritative up to the time boundary) and a realtime store
//! (fresh, overlapping the archive's tail), every federated query answer
//! is identical to the same query over a single full-scan table holding
//! exactly one copy of every row. Cases cover boundary-straddling
//! windows, windows entirely on one side, empty sides, partitioned
//! archives, and replays through the freshness-aware result cache across
//! seal/compaction invalidation.
//!
//! No proptest in the offline container: a deterministic seeded-PRNG
//! harness generates the cases, and any failure message carries the case
//! number so it replays exactly. `ci.sh` additionally diffs the printed
//! `FED_SUMMARY` lines between two separate processes per seed (cache
//! hits included), proving cached and uncached executions byte-agree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtdi::common::{AggFn, FieldType, Row, Schema};
use rtdi::olap::broker::{Broker, ServerNode};
use rtdi::olap::query::{Predicate, PredicateOp, Query};
use rtdi::olap::segment::{IndexSpec, LazySegment, Segment};
use rtdi::olap::table::{OlapTable, TableConfig};
use rtdi::sql::catalog::{HybridTable, RealtimeSide};
use rtdi::sql::connector::{Pushdown, PushedAgg};
use std::sync::Arc;

const SEED_FED: u64 = 0xFED_2021;
const PARTITIONS: usize = 4;

fn schema() -> Schema {
    Schema::of(
        "trips",
        &[
            ("city", FieldType::Str),
            ("ts", FieldType::Timestamp),
            ("fare", FieldType::Double),
        ],
    )
}

/// Integer-valued fares keep every SUM/AVG exact in f64, so federated
/// and single-scan answers are bit-identical regardless of merge order.
fn arb_row(rng: &mut StdRng) -> Row {
    let mut row = Row::new()
        .with("city", format!("c{}", rng.gen_range(0..5u8)))
        .with("ts", rng.gen_range(0..400i64));
    if rng.gen_bool(0.9) {
        row.push("fare", rng.gen_range(0..1000i64) as f64);
    }
    row
}

fn lazy(name: &str, rows: Vec<Row>) -> Arc<LazySegment> {
    let seg = Segment::build(name, &schema(), rows, &IndexSpec::none()).unwrap();
    Arc::new(Segment::load_lazy(seg.persist().unwrap()).unwrap())
}

fn partition_of(row: &Row) -> usize {
    (row.get("city").unwrap().partition_hash() % PARTITIONS as u64) as usize
}

/// One generated dataset: a hybrid table plus the row sets behind it.
struct FedCase {
    hybrid: HybridTable,
    offline: Vec<Row>,
    realtime: Vec<Row>,
    /// Exactly one copy of every row the federation must see.
    reference: Vec<Row>,
}

/// The federation contract, stated over raw rows: the offline side is
/// authoritative up to its newest timestamp; the realtime side serves
/// only what lies past that.
fn semantic_reference(offline: &[Row], realtime: &[Row]) -> Vec<Row> {
    let boundary = offline.iter().map(|r| r.get_int("ts").unwrap()).max();
    offline
        .iter()
        .cloned()
        .chain(
            realtime
                .iter()
                .filter(|r| boundary.is_none_or(|b| r.get_int("ts").unwrap() > b))
                .cloned(),
        )
        .collect()
}

fn arb_case(rng: &mut StdRng) -> FedCase {
    let n = rng.gen_range(50..300usize);
    let rows: Vec<Row> = (0..n).map(|_| arb_row(rng)).collect();
    let boundary = rng.gen_range(50..350i64);
    let overlap = rng.gen_range(0..80i64);
    let partitioned = rng.gen_bool(0.5);
    let no_offline = rng.gen_bool(0.15);
    let no_realtime = rng.gen_bool(0.15);

    let mut offline: Vec<Row> = Vec::new();
    let mut realtime: Vec<Row> = Vec::new();
    for row in rows {
        let ts = row.get_int("ts").unwrap();
        // the realtime store re-sees the archive's tail — the boundary
        // must dedup this overlap
        if !no_offline && ts <= boundary {
            offline.push(row.clone());
        }
        if !no_realtime && (ts > boundary - overlap || no_offline) {
            realtime.push(row);
        }
    }
    let reference = semantic_reference(&offline, &realtime);

    let rt = OlapTable::new(
        TableConfig::new("trips", schema())
            .with_partitions(1)
            .with_query_threads(1)
            .with_time_column("ts"),
    )
    .unwrap();
    for row in &realtime {
        rt.ingest(0, row.clone()).unwrap();
    }

    let mut hybrid =
        HybridTable::new("trips", schema(), "ts", RealtimeSide::Direct(rt)).with_query_threads(1);
    if partitioned {
        hybrid = hybrid.with_partition_spec("city", PARTITIONS);
        let mut buckets: Vec<Vec<Row>> = vec![Vec::new(); PARTITIONS];
        for row in &offline {
            buckets[partition_of(row)].push(row.clone());
        }
        for (p, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                hybrid
                    .register_offline_segment(lazy(&format!("off_p{p}"), bucket), Some(p))
                    .unwrap();
            }
        }
    } else {
        // chunk the archive into several time-sliced segments
        let mut sorted = offline.clone();
        sorted.sort_by_key(|r| r.get_int("ts").unwrap());
        let chunks = rng.gen_range(1..4usize);
        for (i, chunk) in sorted
            .chunks(sorted.len().max(1).div_ceil(chunks))
            .enumerate()
        {
            if !chunk.is_empty() {
                hybrid
                    .register_offline_segment(lazy(&format!("off_{i}"), chunk.to_vec()), None)
                    .unwrap();
            }
        }
    }
    FedCase {
        hybrid,
        offline,
        realtime,
        reference,
    }
}

/// A random pushdown: aggregation or selection, with a random time
/// window (straddling, one-sided, unbounded, or empty) and sometimes a
/// city equality.
fn arb_pushdown(rng: &mut StdRng) -> Pushdown {
    let mut predicates = Vec::new();
    match rng.gen_range(0..5u8) {
        0 => {} // unbounded
        1 => predicates.push(Predicate::new(
            "ts",
            PredicateOp::Gt,
            rng.gen_range(0..400i64),
        )),
        2 => predicates.push(Predicate::new(
            "ts",
            PredicateOp::Le,
            rng.gen_range(0..400i64),
        )),
        _ => {
            let lo = rng.gen_range(-50..420i64);
            let hi = lo + rng.gen_range(0..200i64);
            predicates.push(Predicate::new("ts", PredicateOp::Ge, lo));
            predicates.push(Predicate::new("ts", PredicateOp::Le, hi));
        }
    }
    if rng.gen_bool(0.4) {
        predicates.push(Predicate::eq("city", format!("c{}", rng.gen_range(0..6u8))));
    }
    if rng.gen_bool(0.7) {
        let mut aggs: Vec<(String, AggFn)> = vec![("n".into(), AggFn::Count)];
        if rng.gen_bool(0.6) {
            aggs.push(("s".into(), AggFn::Sum("fare".into())));
        }
        if rng.gen_bool(0.4) {
            aggs.push(("a".into(), AggFn::Avg("fare".into())));
        }
        if rng.gen_bool(0.4) {
            aggs.push(("mn".into(), AggFn::Min("ts".into())));
            aggs.push(("mx".into(), AggFn::Max("ts".into())));
        }
        if rng.gen_bool(0.3) {
            aggs.push(("d".into(), AggFn::DistinctCount("city".into())));
        }
        let group_by = if rng.gen_bool(0.5) {
            vec!["city".to_string()]
        } else {
            vec![]
        };
        Pushdown {
            predicates: Arc::new(predicates),
            aggregation: Some(PushedAgg {
                group_by: Arc::new(group_by),
                aggs: Arc::new(aggs),
            }),
            ..Default::default()
        }
    } else {
        Pushdown {
            predicates: Arc::new(predicates),
            projection: Some(Arc::new(vec!["city".into(), "ts".into(), "fare".into()])),
            ..Default::default()
        }
    }
}

/// The reference answer: the same pushdown over a single table holding
/// exactly one copy of every row.
fn reference_answer(reference: &[Row], pushdown: &Pushdown) -> Vec<String> {
    let mut q = Query::select_all("trips");
    q.predicates = Arc::clone(&pushdown.predicates);
    if let Some(agg) = &pushdown.aggregation {
        q.aggregations = Arc::clone(&agg.aggs);
        q.group_by = Arc::clone(&agg.group_by);
    } else if let Some(proj) = &pushdown.projection {
        q.select = Arc::clone(proj);
    }
    let table = OlapTable::new(
        TableConfig::new("trips", schema())
            .with_partitions(1)
            .with_query_threads(1)
            .with_time_column("ts"),
    )
    .unwrap();
    for row in reference {
        table.ingest(0, row.clone()).unwrap();
    }
    canonical(table.query(&q).unwrap().rows)
}

/// Order-independent canonical form for multiset comparison.
fn canonical(rows: Vec<Row>) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

fn fnv(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for l in lines {
        for b in l.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0x0a;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Core property: federated == full-scan reference, uncached and cached.
#[test]
fn federated_equals_full_scan_reference() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(SEED_FED + case);
        let fed = arb_case(&mut rng);
        for qi in 0..6 {
            let pd = arb_pushdown(&mut rng);
            let expect = reference_answer(&fed.reference, &pd);
            let cold = fed.hybrid.scan(&pd).unwrap();
            assert_eq!(
                canonical(cold.rows.clone()),
                expect,
                "case {case} query {qi} diverged from reference ({pd:?})"
            );
            // the replay may hit the freshness-aware cache; it must not
            // change a single byte of the answer
            let warm = fed.hybrid.scan(&pd).unwrap();
            assert_eq!(
                canonical(warm.rows),
                expect,
                "case {case} query {qi} cached replay diverged"
            );
        }
    }
}

/// Segment events must invalidate cached slices. A compaction that
/// rewrites the same rows into one segment changes no answer but must
/// recompute it; a late archive push of genuinely new data moves the
/// boundary and must surface in the next answer.
#[test]
fn cache_invalidation_tracks_segment_events() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(SEED_FED + 0x1000 + case);
        let fed = arb_case(&mut rng);
        let pd = arb_pushdown(&mut rng);
        let before = reference_answer(&fed.reference, &pd);
        assert_eq!(canonical(fed.hybrid.scan(&pd).unwrap().rows), before);

        // compaction: the whole archive rewritten as one segment — same
        // rows, so the same answer, but never from a stale cache entry
        let v = fed.hybrid.version();
        let compacted = if fed.offline.is_empty() {
            vec![]
        } else {
            vec![(lazy("compacted", fed.offline.clone()), None)]
        };
        fed.hybrid.replace_offline_segments(compacted).unwrap();
        assert!(fed.hybrid.version() > v, "case {case}: no version bump");
        let after = fed.hybrid.scan(&pd).unwrap();
        assert!(
            !after.cache_hit,
            "case {case}: stale cache survived compaction"
        );
        assert_eq!(
            canonical(after.rows),
            before,
            "case {case}: compaction changed the answer"
        );

        // a late archive push of brand-new data: the boundary jumps past
        // every realtime row, so the archive becomes authoritative for
        // everything — exactly what semantic_reference predicts
        let fresh: Vec<Row> = (400..=429)
            .map(|ts| {
                Row::new()
                    .with("city", format!("c{}", ts % 5))
                    .with("ts", ts as i64)
                    .with("fare", (ts % 90) as f64)
            })
            .collect();
        let mut offline_after = fed.offline.clone();
        offline_after.extend(fresh.clone());
        fed.hybrid
            .register_offline_segment(lazy("late", fresh), None)
            .unwrap();
        let expect = reference_answer(&semantic_reference(&offline_after, &fed.realtime), &pd);
        let pushed = fed.hybrid.scan(&pd).unwrap();
        assert!(
            !pushed.cache_hit,
            "case {case}: stale cache survived a push"
        );
        assert_eq!(
            canonical(pushed.rows),
            expect,
            "case {case}: late push not reflected"
        );
    }
}

/// Realtime side behind a degraded scatter-gather broker: with a live
/// replica the federation still matches the reference; with data loss it
/// reports `partial` instead of failing.
#[test]
fn degraded_broker_realtime_slice() {
    let rows: Vec<Row> = (0..200i64)
        .map(|ts| {
            Row::new()
                .with("city", format!("c{}", ts % 3))
                .with("ts", ts)
                .with("fare", (ts % 50) as f64)
        })
        .collect();
    let (offline_rows, realtime_rows): (Vec<Row>, Vec<Row>) = (
        rows.iter()
            .filter(|r| r.get_int("ts").unwrap() <= 99)
            .cloned()
            .collect(),
        rows.iter()
            .filter(|r| r.get_int("ts").unwrap() > 79)
            .cloned()
            .collect(),
    );
    let pd = Pushdown {
        aggregation: Some(PushedAgg {
            group_by: Arc::new(vec![]),
            aggs: Arc::new(vec![
                ("n".into(), AggFn::Count),
                ("s".into(), AggFn::Sum("fare".into())),
            ]),
        }),
        ..Default::default()
    };
    let expect = reference_answer(&rows, &pd);

    let build_hybrid = |replication: usize| {
        let servers: Vec<Arc<ServerNode>> = (0..2).map(ServerNode::new).collect();
        let broker = Arc::new(Broker::new(servers));
        broker.register_table("trips", false);
        for (i, chunk) in realtime_rows.chunks(30).enumerate() {
            let seg = Segment::build(
                format!("rt_{i}"),
                &schema(),
                chunk.to_vec(),
                &IndexSpec::none(),
            )
            .unwrap();
            broker
                .place_segment("trips", Arc::new(seg), None, replication)
                .unwrap();
        }
        let hybrid = HybridTable::new(
            "trips",
            schema(),
            "ts",
            RealtimeSide::Brokered(broker.clone()),
        );
        hybrid
            .register_offline_segment(lazy("off", offline_rows.clone()), None)
            .unwrap();
        (hybrid, broker)
    };

    // replication 2: killing a server loses nothing — exact answer
    let (hybrid, broker) = build_hybrid(2);
    broker.servers()[0].set_down(true);
    let out = hybrid.scan(&pd).unwrap();
    assert!(!out.partial);
    assert_eq!(canonical(out.rows), expect);

    // replication 1: killing a server degrades the realtime slice to a
    // partial answer (never an error, never a stale cache)
    let (hybrid, broker) = build_hybrid(1);
    let healthy = hybrid.scan(&pd).unwrap();
    assert_eq!(canonical(healthy.rows), expect);
    broker.servers()[1].set_down(true);
    hybrid.invalidate(); // rebalance-style event alongside the failure
    let degraded = hybrid.scan(&pd).unwrap();
    assert!(degraded.partial);
    assert!(degraded.segments_unavailable > 0);
    assert!(degraded.rows[0].get_int("n").unwrap() < 200);
}

/// Deterministic digest for the ci gate: every case prints the digests
/// of an uncached and a cached execution of the same query stream; the
/// two must agree with each other and across processes.
fn fed_soak(seed: u64) -> Vec<String> {
    let mut lines = Vec::new();
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(case));
        let fed = arb_case(&mut rng);
        let mut cold_digests = Vec::new();
        let mut warm_digests = Vec::new();
        let mut hits = 0u64;
        for _ in 0..4 {
            let pd = arb_pushdown(&mut rng);
            let cold = fed.hybrid.scan(&pd).unwrap();
            cold_digests.push(format!("{:016x}", fnv(&canonical(cold.rows))));
            let warm = fed.hybrid.scan(&pd).unwrap();
            hits += u64::from(warm.cache_hit);
            warm_digests.push(format!("{:016x}", fnv(&canonical(warm.rows))));
        }
        assert_eq!(
            cold_digests, warm_digests,
            "case {case}: cache changed bytes"
        );
        // seal-style invalidation, then one more pass over a fresh query
        fed.hybrid
            .register_offline_segment(
                lazy(
                    "late",
                    (400..=409)
                        .map(|ts| {
                            Row::new()
                                .with("city", format!("c{}", ts % 5))
                                .with("ts", ts as i64)
                                .with("fare", (ts % 90) as f64)
                        })
                        .collect(),
                ),
                None,
            )
            .unwrap();
        let pd = arb_pushdown(&mut rng);
        let post = fnv(&canonical(fed.hybrid.scan(&pd).unwrap().rows));
        lines.push(format!(
            "case={case} digest={:016x} hits={hits} post_seal={post:016x}",
            fnv(&cold_digests)
        ));
    }
    lines
}

#[test]
fn fed_soak_deterministic_in_process() {
    assert_eq!(fed_soak(SEED_FED), fed_soak(SEED_FED));
}

/// ci.sh hook: seed from `RTDI_FED_SEED`, one `FED_SUMMARY` line per
/// case, byte-diffed across two separate processes.
#[test]
fn fed_env_seed_prints_summary() {
    let seed = std::env::var("RTDI_FED_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            s.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| s.parse().ok())
        })
        .unwrap_or(SEED_FED);
    for line in fed_soak(seed) {
        println!("FED_SUMMARY seed={seed:#x} {line}");
    }
}
